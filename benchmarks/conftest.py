"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
``repro.experiments`` and prints the same rows/series the paper reports.
The experiments are deterministic end-to-end simulations, so each target
runs exactly once (``rounds=1``) — the interesting output is the printed
table plus shape assertions, not wall-clock statistics.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
