"""Capacity-planning wall-clock benchmark — analytic vs the fleet DES.

Measures, on this machine:

* a fleet-scale capacity sweep (10^5 tenants per cell, loads spanning
  the exact and fluid regimes) answered twice from identical seeds and
  identical traffic arrays: once by the fleet DES
  (``repro.analytic.capacity_des`` driving the real ``FleetService``),
  once by the analytic planner (``plan_capacity``).  Per cell and in
  aggregate the wall clocks are reported with the fidelity deltas
  (placements, latency mean/p99, rejection rate) alongside, so the
  speedup number can never hide a wrong answer;
* the calibration cost split: a *cold* analytic stack pays one real DES
  run per distinct (benchmark, working set, contention) cell before it
  can replay; a *warm* run (artifacts resident or served from the
  experiment cache) skips straight to the analytic model.  Both are
  timed explicitly rather than folded into the sweep.

Honesty notes: every number here is single-process wall clock on
whatever CPU this container has (``cpu_count`` is recorded; on a 1-CPU
host there is no parallelism to credit).  The analytic arm's speedup is
algorithmic — fewer operations, not more cores — which is why the
sweep's aggregate speedup (>= 100x is this benchmark's acceptance bar)
transfers to any machine.  The DES arm uses the same seeds, the same
traffic arrays, and the same envelope schema; fidelity deltas are
reported from this very run, and the cross-validation suite
(``tests/test_analytic_validation.py``) enforces the bands.

Results are written to ``BENCH_capacity.json`` so successive PRs can
diff wall-clock numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_capacity.py [--quick]
        [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.analytic import (  # noqa: E402
    CalibrationStore,
    CapacityConfig,
    capacity_des,
    plan_capacity,
)
from repro.experiments.harness import make_stack, measure_progress  # noqa: E402
from repro.mem import MB  # noqa: E402
from repro.sim.clock import us  # noqa: E402

SEED = 7


def bench_sweep(tenants: int, loads, *, nodes: int = 8) -> dict:
    rows = []
    total_des = 0.0
    total_analytic = 0.0
    for load in loads:
        config = CapacityConfig(
            tenants=tenants, nodes=nodes, load=load, seed=SEED, bootstrap=200
        )
        start = time.perf_counter()
        des = capacity_des(config)
        des_s = time.perf_counter() - start
        start = time.perf_counter()
        analytic = plan_capacity(config)
        analytic_s = time.perf_counter() - start
        total_des += des_s
        total_analytic += analytic_s
        rows.append(
            {
                "load": load,
                "engine": analytic["engine"],
                "des_s": round(des_s, 3),
                "analytic_s": round(analytic_s, 4),
                "speedup": round(des_s / analytic_s, 1),
                "placements_rel_err": round(
                    analytic["placements"] / des["placements"] - 1, 4
                ),
                "latency_mean_rel_err": round(
                    analytic["latency_ps"]["mean"] / des["latency_ps"]["mean"] - 1,
                    4,
                ),
                "latency_p99_rel_err": round(
                    analytic["latency_ps"]["p99"]
                    / max(1, des["latency_ps"]["p99"])
                    - 1,
                    4,
                ),
                "rejection_rate_abs_err": round(
                    analytic["rejection_rate"] - des["rejection_rate"], 4
                ),
            }
        )
    return {
        "tenants": tenants,
        "nodes": nodes,
        "seed": SEED,
        "rows": rows,
        "total_des_s": round(total_des, 3),
        "total_analytic_s": round(total_analytic, 4),
        "aggregate_speedup": round(total_des / total_analytic, 1),
    }


def bench_calibration() -> dict:
    """Cold calibration cost vs warm replay, per the fig6-shaped cell."""
    store = CalibrationStore()

    def replay() -> float:
        stack = make_stack("analytic", calibration=store)
        launched = stack.launch(
            "MB", working_set=16 * MB, job_kwargs={"functional": False}
        )
        start = time.perf_counter()
        measure_progress(stack, [launched], warmup_ps=us(400), window_ps=us(200))
        return time.perf_counter() - start

    cold_s = replay()  # first run through this store pays the DES run
    warm_s = replay()  # artifacts resident: pure arithmetic
    assert store.calibrations == 1, "warm replay must not recalibrate"
    return {
        "cell": "MB read, 16 MiB working set, contention 1",
        "cold_calibration_s": round(cold_s, 3),
        "warm_replay_s": round(warm_s, 5),
        "note": "cold pays one real DES run per distinct cell; warm runs "
        "skip straight to the analytic model (artifacts are "
        "canonical-JSON, content-addressed by source-tree digest)",
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output", default="BENCH_capacity.json")
    args = parser.parse_args()

    tenants = 10_000 if args.quick else 100_000
    loads = [0.6, 6.0] if args.quick else [0.6, 4.5, 6.0]
    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "methodology": "identical seeds and traffic arrays per cell; the "
        "analytic arm is warm (no calibration inside the timed region — "
        "the capacity planner needs none, and calibration cost is timed "
        "separately below); speedup is algorithmic, single-process wall "
        "clock on this host's CPU, so it does not depend on core count",
        "sweep": bench_sweep(tenants, loads),
        "calibration": bench_calibration(),
    }
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
