"""Fleet wall-clock benchmark — sharded execution and the result cache.

Measures, on this machine:

* serial vs sharded (``--shards 4``) wall clock for one fleet-scaling
  cell at 1/2/4/8 nodes, asserting the summaries are identical while
  timing (the determinism suite proves byte-identity in depth);
* a fleet-scaling sweep with the content-addressed result cache, cold
  (every cell computed and stored) then warm (every cell a hit) — the
  warm run must return the identical table.

Sharding distributes per-node *build* and *apply* work (platform
synthesis, placement/eviction against real hypervisor stacks) across
worker processes; the coordinator's shadow bookkeeping keeps the serving
loop itself serial and deterministic.  Wall-clock wins therefore require
real CPUs: on a 1-CPU container the workers time-slice one core and the
IPC overhead makes sharded runs *slower* — ``cpu_count`` is recorded
alongside so the numbers read honestly (the same methodology as
``BENCH_simulator.json``'s ``--jobs`` rows).  The cache speedup is
CPU-independent: a warm sweep does no simulation at all.

Results are written to ``BENCH_fleet.json`` so successive PRs can diff
wall-clock numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_fleet.py [--quick]
        [--shards N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.experiments import fleet_scaling  # noqa: E402
from repro.experiments.cache import install_cache, uninstall_cache  # noqa: E402


def _time_serve(n_nodes: int, *, requests: int, shards: int):
    start = time.perf_counter()
    summary = fleet_scaling.serve_fleet(
        n_nodes, 0.9, requests=requests, reference_nodes=n_nodes, shards=shards
    )
    return time.perf_counter() - start, summary


def bench_sharding(shards: int, quick: bool) -> dict:
    node_counts = [1, 2, 4] if quick else [1, 2, 4, 8]
    requests = 60 if quick else 160
    rows = []
    for n_nodes in node_counts:
        serial_s, serial_summary = _time_serve(
            n_nodes, requests=requests, shards=1
        )
        sharded_s, sharded_summary = _time_serve(
            n_nodes, requests=requests, shards=shards
        )
        assert sharded_summary == serial_summary, (
            f"sharded summary diverged at {n_nodes} nodes"
        )
        rows.append(
            {
                "nodes": n_nodes,
                "shards": min(shards, n_nodes),
                "serial_s": round(serial_s, 3),
                "sharded_s": round(sharded_s, 3),
                "speedup": round(serial_s / sharded_s, 2),
                "placements": serial_summary["placements"],
            }
        )
    return {"requests": requests, "rows": rows}


def bench_cache(quick: bool) -> dict:
    grid = {
        "node_counts": [1, 2] if quick else [1, 2, 4],
        "loads": [0.6] if quick else [0.6, 1.5],
        "requests": 48 if quick else 160,
    }
    with tempfile.TemporaryDirectory(prefix="bench-fleet-cache-") as directory:
        cache = install_cache(directory)
        try:
            start = time.perf_counter()
            cold_table = fleet_scaling.run(**grid)
            cold_s = time.perf_counter() - start
            assert cache.hits == 0 and cache.stores > 0

            start = time.perf_counter()
            warm_table = fleet_scaling.run(**grid)
            warm_s = time.perf_counter() - start
            assert cache.misses == cache.stores, "warm sweep recomputed cells"
            assert warm_table.to_dict() == cold_table.to_dict(), (
                "warm sweep returned a different table"
            )
            summary = cache.summary()
        finally:
            uninstall_cache()
    return {
        "grid": grid,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_warm": round(cold_s / warm_s, 1),
        "cells": summary["stores"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--quick", action="store_true", help="CI-sized grids")
    parser.add_argument("--output", default="BENCH_fleet.json")
    args = parser.parse_args()

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "methodology": (
            "sharded speedup scales with real CPUs; on a 1-CPU host the "
            "shard workers time-slice one core and IPC overhead dominates, "
            "so speedup < 1 there is expected and recorded honestly. "
            "Summaries are asserted identical serial-vs-sharded and "
            "cold-vs-warm while timing."
        ),
        "sharding": bench_sharding(args.shards, args.quick),
        "cache": bench_cache(args.quick),
    }
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
