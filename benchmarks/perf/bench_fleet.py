"""Fleet wall-clock benchmark — sharded execution, op stream, cache.

Measures, on this machine:

* serial vs sharded vs sharded-with-lookahead wall clock for one
  fleet-scaling cell at 1/2/4/8 nodes (median of 3 runs each),
  asserting the summaries are identical while timing (the determinism
  suite proves byte-identity in depth);
* the op-stream protocol itself: messages and encoded bytes shipped,
  bytes per placement for the legacy pickle codec vs the binary
  framing, barrier-stall time and its share of the sharded wall clock,
  and the speculation ledger (grants / commits / rollbacks);
* a fleet-scaling sweep with the content-addressed result cache, cold
  (every cell computed and stored) then warm (every cell a hit) — the
  warm run must return the identical table.

Sharding distributes per-node *build* and *apply* work (platform
synthesis, placement/eviction against real hypervisor stacks) across
worker processes; the coordinator's shadow bookkeeping keeps the serving
loop itself serial and deterministic.  Wall-clock wins therefore require
real CPUs: on a 1-CPU container the workers time-slice one core and the
IPC overhead makes sharded runs *slower* — ``cpu_count`` is recorded
alongside so the numbers read honestly (the same methodology as
``BENCH_simulator.json``'s ``--jobs`` rows).  The op-stream byte and
stall-share reductions are protocol properties and hold on any host;
the cache speedup is CPU-independent (a warm sweep simulates nothing).

A single node degenerates to the serial path by construction (there is
nothing to partition), so the 1-node row reports speedup 1.0 by
definition instead of the old fork-pool overhead.

Results are written to ``BENCH_fleet.json`` so successive PRs can diff
wall-clock numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_fleet.py [--quick]
        [--shards N] [--lookahead K] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.experiments import fleet_scaling  # noqa: E402
from repro.experiments.cache import install_cache, uninstall_cache  # noqa: E402

REPEATS = 3


def _time_serve(
    n_nodes: int,
    *,
    requests: int,
    shards: int,
    lookahead: int = 0,
    codec: str = "binary",
):
    """Median-of-``REPEATS`` wall clock for one cell.

    Returns ``(median_s, summary, opstream_stats)``; the summary and the
    (deterministic) op-stream ledger are identical across repeats, so
    the last one is as good as any.
    """
    timings = []
    summary = None
    stats: dict = {}
    for _ in range(REPEATS):
        stats = {}
        start = time.perf_counter()
        summary = fleet_scaling.serve_fleet(
            n_nodes,
            0.9,
            requests=requests,
            reference_nodes=n_nodes,
            shards=shards,
            lookahead=lookahead,
            codec=codec,
            opstream_stats=stats,
        )
        timings.append(time.perf_counter() - start)
    return statistics.median(timings), summary, stats


def _opstream_row(stats: dict, placements: int, wall_s: float) -> dict:
    """The bench-facing slice of one run's op-stream ledger."""
    if not stats:  # serial run: no op stream at all
        return {}
    stall_s = stats["barrier_stall_s"]
    return {
        "codec": stats["codec"],
        "lookahead": stats["lookahead"],
        "messages": stats["messages"],
        "frames": stats["frames"],
        "frame_bytes": stats["frame_bytes"],
        "bytes_per_placement": round(stats["frame_bytes"] / max(placements, 1), 1),
        "barrier_stall_s": round(stall_s, 4),
        "stall_share": round(stall_s / wall_s, 4) if wall_s else 0.0,
        "stall_waits": stats["stall_waits"],
        "grants": stats["grants"],
        "commits": stats["commits"],
        "rollbacks": stats["rollbacks"],
        "rollback_rate": round(stats["rollbacks"] / max(stats["grants"], 1), 4),
        "gathers": stats["gathers"],
        "gather_cache_hits": stats["gather_cache_hits"],
    }


def bench_sharding(shards: int, lookahead: int, quick: bool) -> dict:
    node_counts = [1, 2, 4] if quick else [1, 2, 4, 8]
    requests = 60 if quick else 160
    rows = []
    for n_nodes in node_counts:
        serial_s, serial_summary, _ = _time_serve(
            n_nodes, requests=requests, shards=1
        )
        legacy_s, legacy_summary, legacy_stats = _time_serve(
            n_nodes, requests=requests, shards=shards, codec="pickle"
        )
        sharded_s, sharded_summary, sharded_stats = _time_serve(
            n_nodes, requests=requests, shards=shards
        )
        spec_s, spec_summary, spec_stats = _time_serve(
            n_nodes, requests=requests, shards=shards, lookahead=lookahead
        )
        for label, summary in (
            ("legacy-codec", legacy_summary),
            ("sharded", sharded_summary),
            ("lookahead", spec_summary),
        ):
            assert summary == serial_summary, (
                f"{label} summary diverged at {n_nodes} nodes"
            )
        placements = serial_summary["placements"]
        row = {
            "nodes": n_nodes,
            "shards": min(shards, n_nodes),
            "serial_s": round(serial_s, 3),
            "pickle_s": round(legacy_s, 3),
            "sharded_s": round(sharded_s, 3),
            "lookahead_s": round(spec_s, 3),
            "speedup": round(serial_s / sharded_s, 2),
            "speedup_lookahead": round(serial_s / spec_s, 2),
            "placements": placements,
            "opstream_pickle": _opstream_row(legacy_stats, placements, legacy_s),
            "opstream_binary": _opstream_row(sharded_stats, placements, sharded_s),
            "opstream_lookahead": _opstream_row(spec_stats, placements, spec_s),
        }
        if n_nodes > 1:
            pickle_bpp = row["opstream_pickle"]["bytes_per_placement"]
            binary_bpp = row["opstream_lookahead"]["bytes_per_placement"]
            row["bytes_reduction"] = round(pickle_bpp / binary_bpp, 2)
            pickle_share = row["opstream_pickle"]["stall_share"]
            spec_share = row["opstream_lookahead"]["stall_share"]
            if spec_share:
                row["stall_share_reduction"] = round(pickle_share / spec_share, 2)
        rows.append(row)
    return {"requests": requests, "lookahead": lookahead, "rows": rows}


def bench_observation(shards: int, quick: bool) -> dict:
    """Barrier-stall cost of the observation surfaces, old vs new.

    The ISSUE-9 protocol paid one synchronous gather round trip per
    summary surface (``simulated_report`` / ``metrics_snapshot`` /
    ``occupancy_report``), each shipping *full* metric snapshots.  The
    current protocol memoizes the gather on the op stream (three
    surfaces, one round trip) and ships deltas.  The ``pickle`` codec
    reproduces the old protocol end to end (no memoization, full
    snapshots), so this probe serves one trace per codec, then times
    observation rounds and reports stall seconds, stall share, and the
    deterministic round-trip counts.
    """
    from repro.fleet import (
        AdmissionConfig,
        TrafficGenerator,
        TrafficProfile,
        make_policy,
    )
    from repro.parallel import ShardedFleetCluster, ShardedFleetService

    n_nodes = 4
    requests = 60 if quick else 160
    rounds = 6 if quick else 12
    modes = {}
    for mode, codec in (("legacy", "pickle"), ("memoized", "binary")):
        cluster = ShardedFleetCluster.build(n_nodes, shards=shards, codec=codec)
        try:
            generator = TrafficGenerator(
                TrafficProfile(load=0.9),
                fleet_slots=cluster.total_slots,
                seed=7,
            )
            service = ShardedFleetService(
                cluster,
                make_policy("best-fit"),
                admission=AdmissionConfig(queue_limit=16),
            )
            start = time.perf_counter()
            service.serve(generator.generate(requests))
            serve_s = time.perf_counter() - start
            before = cluster.opstream_stats()
            start = time.perf_counter()
            for _ in range(rounds):
                cluster.simulated_report()
                cluster.metrics_snapshot()
                cluster.occupancy_report()
                # A monitoring loop sees new ops between rounds; emulate
                # by dropping the memo so each round re-observes.
                cluster._gather_cache = None
            probe_s = time.perf_counter() - start
            after = cluster.opstream_stats()
        finally:
            cluster.close()
        # Share of the whole observed run (serve + monitoring rounds)
        # spent blocked on worker acks: the denominator includes the
        # serving work a real run does, so the share is meaningful.
        wall_s = serve_s + probe_s
        stall_s = after["barrier_stall_s"]
        modes[mode] = {
            "serve_s": round(serve_s, 4),
            "probe_s": round(probe_s, 4),
            "stall_s": round(stall_s, 4),
            "stall_share": round(stall_s / wall_s, 4) if wall_s else 0.0,
            "probe_stall_s": round(
                stall_s - before["barrier_stall_s"], 4
            ),
            "stall_waits": after["stall_waits"] - before["stall_waits"],
            "gathers": after["gathers"] - before["gathers"],
            "gather_cache_hits": (
                after["gather_cache_hits"] - before["gather_cache_hits"]
            ),
        }
    legacy, memo = modes["legacy"], modes["memoized"]
    return {
        "nodes": n_nodes,
        "shards": shards,
        "rounds": rounds,
        "surfaces_per_round": 3,
        "legacy": legacy,
        "memoized": memo,
        "stall_share_reduction": round(
            legacy["stall_share"] / memo["stall_share"], 2
        ) if memo["stall_share"] else None,
        "stall_waits_reduction": round(
            legacy["stall_waits"] / max(memo["stall_waits"], 1), 2
        ),
    }


def bench_cache(quick: bool) -> dict:
    grid = {
        "node_counts": [1, 2] if quick else [1, 2, 4],
        "loads": [0.6] if quick else [0.6, 1.5],
        "requests": 48 if quick else 160,
    }
    with tempfile.TemporaryDirectory(prefix="bench-fleet-cache-") as directory:
        cache = install_cache(directory)
        try:
            start = time.perf_counter()
            cold_table = fleet_scaling.run(**grid)
            cold_s = time.perf_counter() - start
            assert cache.hits == 0 and cache.stores > 0

            start = time.perf_counter()
            warm_table = fleet_scaling.run(**grid)
            warm_s = time.perf_counter() - start
            assert cache.misses == cache.stores, "warm sweep recomputed cells"
            assert warm_table.to_dict() == cold_table.to_dict(), (
                "warm sweep returned a different table"
            )
            summary = cache.summary()
        finally:
            uninstall_cache()
    return {
        "grid": grid,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_warm": round(cold_s / warm_s, 1),
        "cells": summary["stores"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--lookahead", type=int, default=8)
    parser.add_argument("--quick", action="store_true", help="CI-sized grids")
    parser.add_argument("--output", default="BENCH_fleet.json")
    args = parser.parse_args()

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "methodology": (
            "median of 3 runs per cell; sharded speedup scales with real "
            "CPUs; on a 1-CPU host the shard workers time-slice one core "
            "and IPC overhead dominates, so speedup < 1 there is expected "
            "and recorded honestly. Op-stream bytes, message counts, and "
            "the speculation ledger are deterministic protocol properties; "
            "barrier_stall_s is wall clock. Summaries are asserted "
            "identical serial vs pickle-codec vs binary vs lookahead, and "
            "cold vs warm, while timing."
        ),
        "sharding": bench_sharding(args.shards, args.lookahead, args.quick),
        "observation": bench_observation(min(args.shards, 2), args.quick),
        "cache": bench_cache(args.quick),
    }
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
