"""Serving-gateway wall-clock benchmark — session throughput and the cache.

Measures, on this machine:

* gateway **throughput**: one closed-loop trace replayed end-to-end
  through ``GatewayFleetService`` + ``SloBudgetPolicy`` (one asyncio
  coroutine per session chain, SLO admission on every arrival),
  reporting sessions/sec and the wall clock normalized to 10^5 sessions
  — the scale the serving CLI is specified to sustain;
* serial vs sharded gateway wall clock at CI size, asserting the
  result dictionaries are identical while timing (byte-identity in
  depth is the determinism suite's job);
* the ``serve_slo`` experiment with the content-addressed result cache,
  cold then warm — the warm sweep must return the identical table.

The sharded row needs real CPUs to win: on a 1-CPU container the shard
workers time-slice one core and IPC overhead dominates, so speedup < 1
there is expected — ``cpu_count`` is recorded alongside so the numbers
read honestly (same methodology as ``BENCH_fleet.json``).  Throughput
and cache numbers are CPU-count-independent: the serving loop itself is
serial by design, and a warm sweep does no simulation at all.

Results are written to ``BENCH_serve.json`` so successive PRs can diff
wall-clock numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py [--quick]
        [--shards N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.experiments import serve_slo  # noqa: E402
from repro.experiments.cache import install_cache, uninstall_cache  # noqa: E402
from repro.fleet import FleetCluster, make_policy  # noqa: E402
from repro.serve import (  # noqa: E402
    Gateway,
    GatewayFleetService,
    GatewayShardedFleetService,
    ServeProfile,
    SloBudgetPolicy,
    synthesize,
)


def _build_trace(sessions: int, nodes: int, seed: int = 7):
    cluster = FleetCluster.build(nodes)
    trace = synthesize(
        ServeProfile(load=1.5, followup_prob=0.3),
        sessions=sessions,
        fleet_slots=cluster.total_slots,
        seed=seed,
    )
    return cluster, trace


def bench_throughput(quick: bool) -> dict:
    sessions = 20_000 if quick else 100_000
    nodes = 4
    cluster, trace = _build_trace(sessions, nodes)
    service = GatewayFleetService(
        cluster, make_policy("best-fit"), admission_policy=SloBudgetPolicy()
    )
    start = time.perf_counter()
    result = Gateway(service, trace).run()
    wall_s = time.perf_counter() - start
    outcomes = result.session_outcomes()
    return {
        "sessions": sessions,
        "nodes": nodes,
        "chains": result.chains,
        "wall_s": round(wall_s, 3),
        "sessions_per_s": round(sessions / wall_s),
        "wall_per_100k_sessions_s": round(wall_s * 100_000 / sessions, 3),
        "completed": outcomes.get("completed", 0)
        + outcomes.get("replaced_completed", 0),
        "shed": outcomes.get("rejected_slo_shed", 0),
    }


def bench_sharded(shards: int, quick: bool) -> dict:
    from repro.parallel import ShardedFleetCluster

    sessions = 1_000 if quick else 4_000
    nodes = 4
    _, trace = _build_trace(sessions, nodes)

    start = time.perf_counter()
    cluster = FleetCluster.build(nodes)
    service = GatewayFleetService(
        cluster, make_policy("best-fit"), admission_policy=SloBudgetPolicy()
    )
    serial_result = Gateway(service, trace).run().to_dict()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded_cluster = ShardedFleetCluster.build(nodes, shards=shards)
    try:
        sharded_service = GatewayShardedFleetService(
            sharded_cluster,
            make_policy("best-fit"),
            admission_policy=SloBudgetPolicy(),
        )
        sharded_result = Gateway(sharded_service, trace).run().to_dict()
    finally:
        sharded_cluster.close()
    sharded_s = time.perf_counter() - start

    assert sharded_result == serial_result, "sharded serving run diverged"
    return {
        "sessions": sessions,
        "shards": shards,
        "serial_s": round(serial_s, 3),
        "sharded_s": round(sharded_s, 3),
        "speedup": round(serial_s / sharded_s, 2),
    }


def bench_cache(quick: bool) -> dict:
    sessions = 600 if quick else 2_000
    with tempfile.TemporaryDirectory(prefix="bench-serve-cache-") as directory:
        cache = install_cache(directory)
        try:
            start = time.perf_counter()
            cold_table = serve_slo.run(sessions=sessions)
            cold_s = time.perf_counter() - start
            assert cache.hits == 0 and cache.stores > 0

            start = time.perf_counter()
            warm_table = serve_slo.run(sessions=sessions)
            warm_s = time.perf_counter() - start
            assert cache.misses == cache.stores, "warm sweep recomputed arms"
            assert warm_table.to_dict() == cold_table.to_dict(), (
                "warm sweep returned a different table"
            )
            summary = cache.summary()
        finally:
            uninstall_cache()
    return {
        "sessions": sessions,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_warm": round(cold_s / warm_s, 1),
        "arms": summary["stores"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--quick", action="store_true", help="CI-sized runs")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "methodology": (
            "throughput replays one closed-loop trace through the asyncio "
            "gateway with SLO admission on a serial fleet (the serving loop "
            "is serial by design, so sessions/sec is CPU-count-independent); "
            "the sharded row needs real CPUs to win and is recorded honestly "
            "either way; results are asserted identical serial-vs-sharded "
            "and cold-vs-warm while timing."
        ),
        "throughput": bench_throughput(args.quick),
        "sharded": bench_sharded(args.shards, args.quick),
        "cache": bench_cache(args.quick),
    }
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
