"""Simulator wall-clock microbenchmark — the perf trajectory's baseline.

Measures, on this machine:

* raw engine throughput (timed-heap events/s and zero-delay immediate-lane
  events/s);
* a commit-heavy streaming run (burst coalescing on vs off), where the
  analytic burst path replaces per-line event chains;
* one Fig. 6 cell (the OPTIMUS per-line hot path end to end);
* a Fig. 5 sweep, three ways: reference mode serial, fast mode serial,
  and fast mode with ``--jobs`` process fan-out.

``BASELINE_BEFORE_PR`` records the same workloads measured at the
pre-fast-path revision of this repository on the same host, so the JSON
carries honest before/after pairs; ``--jobs`` scaling additionally
depends on ``cpu_count`` (recorded alongside — a 1-CPU container cannot
show fan-out wins).  Simulated results are asserted identical between
modes while measuring (the equivalence suite proves it in depth), and
the simulated finish times below were verified identical to the pre-PR
revision as well.

Results are written to ``BENCH_simulator.json`` so successive PRs can
diff wall-clock numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_simulator.py [--jobs N]
        [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.experiments import fig5_latency, fig6_throughput  # noqa: E402
from repro.guest import NativeAccelerator  # noqa: E402
from repro.hv import PassthroughHypervisor  # noqa: E402
from repro.mem import MB, PAGE_SIZE_2M  # noqa: E402
from repro.platform import PlatformMode, PlatformParams, build_platform  # noqa: E402
from repro.platform.params import set_default_fast_path  # noqa: E402
from repro.sim.clock import ms  # noqa: E402
from repro.sim.engine import Engine  # noqa: E402


#: The same workloads measured at the pre-fast-path revision of this repo
#: (the commit before this benchmark existed), CPython 3.11, same host as
#: the committed BENCH_simulator.json.  Kept as constants because that
#: revision has no benchmark harness to re-run.
BASELINE_BEFORE_PR = {
    "note": "measured at the pre-fast-path revision on the same host",
    "stream_8mb_s": 3.80,
    "fig6_cell_64m_1job_s": 8.08,
}


def bench_engine(n_events: int) -> dict:
    """Raw event dispatch: timed heap vs the zero-delay immediate lane."""

    def noop() -> None:
        pass

    engine = Engine()
    for i in range(n_events):
        engine.call_at(i + 1, noop)
    start = time.perf_counter()
    engine.run()
    timed_s = time.perf_counter() - start

    engine = Engine()
    remaining = [n_events]

    def chain() -> None:
        remaining[0] -= 1
        if remaining[0]:
            engine.call_after(0, chain)

    engine.call_after(0, chain)
    start = time.perf_counter()
    engine.run()
    immediate_s = time.perf_counter() - start
    return {
        "n_events": n_events,
        "timed_events_per_s": round(n_events / timed_s),
        "immediate_events_per_s": round(n_events / immediate_s),
    }


def _fig5_grid(quick: bool) -> dict:
    if quick:
        return {"working_sets": ["64M"], "job_counts": [1, 2], "hops_per_job": 200}
    return {
        "working_sets": ["64M", "1G"],
        "job_counts": [1, 2],
        "hops_per_job": 400,
    }


def _run_fig5(fast: bool, jobs: int, quick: bool):
    set_default_fast_path(fast)
    try:
        start = time.perf_counter()
        tables = fig5_latency.run(page_size=PAGE_SIZE_2M, jobs=jobs, **_fig5_grid(quick))
        elapsed = time.perf_counter() - start
    finally:
        set_default_fast_path(True)
    rows = {label: table.rows for label, table in tables.items()}
    return elapsed, rows


def bench_fig5_sweep(jobs: int, quick: bool) -> dict:
    ref_s, ref_rows = _run_fig5(fast=False, jobs=1, quick=quick)
    fast_s, fast_rows = _run_fig5(fast=True, jobs=1, quick=quick)
    fast_jobs_s, fast_jobs_rows = _run_fig5(fast=True, jobs=jobs, quick=quick)
    assert fast_rows == ref_rows, "fast mode changed Fig. 5 results"
    assert fast_jobs_rows == ref_rows, "--jobs changed Fig. 5 results"
    return {
        "grid": _fig5_grid(quick),
        "jobs": jobs,
        "reference_serial_s": round(ref_s, 3),
        "fast_serial_s": round(fast_s, 3),
        "fast_jobs_s": round(fast_jobs_s, 3),
        "speedup_fast_serial": round(ref_s / fast_s, 2),
        "speedup_fast_jobs": round(ref_s / fast_jobs_s, 2),
    }


def _make_reader():
    from repro.accel.base import AcceleratorProfile
    from repro.accel.streaming import StreamingJob
    from repro.fpga.resources import ResourceFootprint

    class ComputeBoundReader(StreamingJob):
        # Slow enough that the DMA pipeline drains between tiles — the
        # regime where bursts commit on the analytic fast path.
        profile = AcceleratorProfile(
            name="RD0",
            description="compute-bound streaming reader (benchmark)",
            loc_verilog=0,
            freq_mhz=400.0,
            footprint=ResourceFootprint(alm_pct=1.0, bram_pct=1.0),
            max_outstanding=64,
        )
        bytes_per_cycle = 4.0
        output_ratio = 0.0
        tile_lines = 64
        prefetch_tiles = 2

    return ComputeBoundReader(functional=False)


def _run_stream(fast: bool, total_bytes: int):
    from repro.accel.streaming import REG_LEN, REG_SRC

    params = PlatformParams(speculative_region_opt=False, fast_path=fast)
    platform = build_platform(params, mode=PlatformMode.PASSTHROUGH)
    hypervisor = PassthroughHypervisor(platform)
    handle = NativeAccelerator(hypervisor, window_bytes=64 * MB)
    src = handle.alloc_buffer(total_bytes)
    job = _make_reader()
    job.regs.update({REG_SRC: src, REG_LEN: total_bytes})
    done = hypervisor.start_job(job)
    start = time.perf_counter()
    platform.engine.run_until(done, limit_ps=ms(500))
    elapsed = time.perf_counter() - start
    fastpath = platform.sockets[0].dma.fastpath
    return elapsed, platform.engine.now, (fastpath.committed_bursts if fastpath else 0)


def bench_coalescing(quick: bool) -> dict:
    total = (2 if quick else 8) * MB
    ref_s, ref_now, _ = _run_stream(fast=False, total_bytes=total)
    fast_s, fast_now, committed = _run_stream(fast=True, total_bytes=total)
    assert fast_now == ref_now, "coalescing changed the simulated finish time"
    result = {
        "stream_bytes": total,
        "reference_s": round(ref_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(ref_s / fast_s, 2),
        "committed_bursts": committed,
        "simulated_ps": ref_now,
    }
    if not quick:
        # Full mode runs the same 8 MB stream as the recorded baseline.
        result["speedup_vs_before_pr"] = round(
            BASELINE_BEFORE_PR["stream_8mb_s"] / fast_s, 2
        )
    return result


def _run_fig6_cell(fast: bool):
    set_default_fast_path(fast)
    try:
        start = time.perf_counter()
        table = fig6_throughput.run(
            page_size=PAGE_SIZE_2M, working_sets=["64M"], job_counts=[1]
        )
        elapsed = time.perf_counter() - start
    finally:
        set_default_fast_path(True)
    return elapsed, table.rows


def bench_fig6_cell() -> dict:
    """One Fig. 6 MemBench cell — the OPTIMUS per-line event chain end to end.

    Unlike the coalescing stream, MemBench's random-access pattern keeps the
    reference per-line path live, so this measures the engine/hot-path work
    rather than the burst commit path.
    """
    ref_s, ref_rows = _run_fig6_cell(fast=False)
    fast_s, fast_rows = _run_fig6_cell(fast=True)
    assert fast_rows == ref_rows, "fast mode changed the Fig. 6 cell"
    return {
        "cell": {"working_set": "64M", "jobs": 1},
        "reference_s": round(ref_s, 3),
        "fast_s": round(fast_s, 3),
        "rows": fast_rows,
        "speedup_vs_before_pr": round(
            BASELINE_BEFORE_PR["fig6_cell_64m_1job_s"] / fast_s, 2
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=max(1, (os.cpu_count() or 2) // 2))
    parser.add_argument("--quick", action="store_true", help="CI-sized grids")
    parser.add_argument("--output", default="BENCH_simulator.json")
    args = parser.parse_args()

    results = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "methodology": (
            "--jobs sweeps dispatch through a persistent fork pool, and only "
            "when a probed first cell clears the dispatch-cost heuristic "
            "(repro.parallel.pool.dispatch_plan); small or cheap grids stay "
            "serial instead of paying pool latency, so fast_jobs_s tracks "
            "fast_serial_s on hosts where fan-out cannot win (see cpu_count)."
        ),
        "baseline_before_pr": BASELINE_BEFORE_PR,
        "engine": bench_engine(100_000 if args.quick else 500_000),
        "coalescing": bench_coalescing(args.quick),
        "fig5_sweep": bench_fig5_sweep(args.jobs, args.quick),
    }
    if not args.quick:
        results["fig6_cell"] = bench_fig6_cell()
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
