"""Ablation — IOTLB conflict mitigation: 128 MB slice gaps on vs off."""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablation_conflict_mitigation(benchmark):
    table = run_once(
        benchmark,
        ablations.conflict_mitigation_study,
        n_jobs=8,
        per_job_working_set="96M",
        hops_per_job=800,
    )
    table.show()
    rows = {row[0]: row for row in table.rows}
    mitigated_lat, mitigated_miss = float(rows["mitigated"][1]), float(rows["mitigated"][2])
    contiguous_lat, contiguous_miss = float(rows["contiguous"][1]), float(rows["contiguous"][2])

    # With 96 MB per job (< the 128 MB conflict-free reach) the mitigated
    # layout keeps misses rare; contiguous slices alias every
    # accelerator's pages onto the same IOTLB sets and thrash.
    assert mitigated_miss < 0.10
    assert contiguous_miss > 0.5
    assert contiguous_lat > 1.25 * mitigated_lat
