"""Ablation — multiplexer tree vs flat mux (DESIGN.md, §5 / §7.2)."""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablation_muxtree(benchmark):
    table = run_once(benchmark, ablations.mux_tree_study)
    table.show()
    by_radix = {row[0]: row for row in table.rows}

    # Only the binary tree closes 400 MHz timing; the flat 8:1 mux cannot
    # (AmorphOS's flat mux runs at a lower shell frequency).
    assert by_radix[2][3] == "yes"
    assert by_radix[8][3] == "no"
    # The price of the tree: three levels x 33 ns of added latency.
    assert float(by_radix[2][4]) == 99.0
    # fmax degrades monotonically with fan-in.
    fmax = [float(by_radix[r][2]) for r in (2, 4, 8)]
    assert fmax[0] > fmax[1] > fmax[2]
