"""Fig. 1 — SSSP: shared-memory vs host-centric, native and virtualized."""

from benchmarks.conftest import run_once
from repro.experiments import fig1_sssp


def test_fig1_sssp(benchmark):
    table = run_once(
        benchmark,
        fig1_sssp.run,
        n_vertices=20_000,
        edge_counts=[80_000, 160_000, 320_000, 640_000],
    )
    table.show()
    gains = fig1_sssp.speedups(table)
    print("shared-memory advantage, native:     ", [f"{g:.0%}" for g in gains["native"]])
    print("shared-memory advantage, virtualized:", [f"{g:.0%}" for g in gains["virtualized"]])

    # Shape: shared-memory wins everywhere, and the gap widens when
    # virtualized (trap-and-emulate inflates host-centric control traffic).
    assert all(gain > 0.08 for gain in gains["native"])
    assert all(v >= n - 0.02 for n, v in zip(gains["native"], gains["virtualized"]))
    # The virtualized gap widens on larger graphs (trap-and-emulate).
    assert gains["virtualized"][-1] > gains["native"][-1]
    # Config (per-segment MMIO) is the slower host-centric variant on
    # pointer-chasing graphs with many small segments.
    for row in table.rows:
        _edges, shared, cfg, _copy, shared_v, cfg_v, _copy_v = row
        assert cfg > shared
        assert cfg_v > shared_v
