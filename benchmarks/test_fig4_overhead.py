"""Fig. 4 — OPTIMUS overhead vs pass-through (latency and throughput)."""

from benchmarks.conftest import run_once
from repro.experiments import fig4_overhead


def test_fig4_overhead(benchmark):
    tables = run_once(benchmark, fig4_overhead.run)
    tables["latency"].show()
    tables["throughput"].show()

    # Fig. 4a shape: UPI pays a larger *relative* latency penalty than
    # PCIe (same ~100 ns mux-tree adder on a smaller base), both under 35%.
    lat = {row[0]: row[3] for row in tables["latency"].rows}
    assert 110.0 < lat["UPI"] < 135.0  # paper: 124.2%
    assert 105.0 < lat["PCIe"] < 120.0  # paper: 111.1%
    assert lat["UPI"] > lat["PCIe"]

    # Fig. 4b shape: MemBench is the worst case (issue limit); realistic
    # benchmarks lose at most ~8%; compute-bound ones lose ~nothing.
    thr = {row[0]: row[3] for row in tables["throughput"].rows}
    assert 85.0 < thr["MB"] < 96.0  # paper: 90.1%
    for name in ("MD5", "SHA", "SW", "BTC"):
        assert thr[name] > 97.0
    for name in ("GAU", "GRS", "SBL"):
        assert 88.0 < thr[name] < 98.0
    assert all(ratio > 85.0 for ratio in thr.values())
