"""Fig. 5 — LinkedList latency vs working set / jobs / page size."""

import math

from benchmarks.conftest import run_once
from repro.experiments import fig5_latency
from repro.mem import PAGE_SIZE_2M, PAGE_SIZE_4K


def _col(table, label):
    return {row[0]: row[table.columns.index(label)] for row in table.rows}


def test_fig5a_2m_pages(benchmark):
    tables = run_once(
        benchmark,
        fig5_latency.run,
        page_size=PAGE_SIZE_2M,
        working_sets=["64M", "512M", "1G", "2G", "4G", "8G"],
        job_counts=[1, 8],
        hops_per_job=900,
    )
    for table in tables.values():
        table.show()
    upi = tables["UPI"]
    one_job = _col(upi, "1_jobs")
    eight_jobs = _col(upi, "8_jobs")

    # Flat while the working set fits the IOTLB's 1 GB reach...
    assert one_job["512M"] < 1.10 * one_job["64M"]
    # ...then latency climbs rapidly at 4-8 GB (page walks).
    assert one_job["4G"] > 1.3 * one_job["512M"]
    assert one_job["8G"] > one_job["4G"]
    # More jobs at small working sets costs little (<~10% queuing).
    assert eight_jobs["512M"] < 1.15 * one_job["512M"]
    # PCIe sits well above UPI at every point.
    pcie = _col(tables["PCIe"], "1_jobs")
    assert all(pcie[ws] > one_job[ws] for ws in one_job if not math.isnan(one_job[ws]))


def test_fig5b_4k_pages(benchmark):
    tables = run_once(
        benchmark,
        fig5_latency.run,
        page_size=PAGE_SIZE_4K,
        working_sets=["256K", "1M", "2M", "8M", "16M"],
        job_counts=[1],
        hops_per_job=900,
    )
    for table in tables.values():
        table.show()
    one_job = _col(tables["UPI"], "1_jobs")
    # With 4 KB pages the IOTLB covers only 2 MB: the knee moves 512x left.
    assert one_job["1M"] < 1.15 * one_job["256K"]
    assert one_job["8M"] > 1.3 * one_job["1M"]
    assert one_job["16M"] > one_job["8M"] * 0.95
