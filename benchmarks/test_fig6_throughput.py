"""Fig. 6 — MemBench aggregate throughput vs working set / jobs / pages."""

from benchmarks.conftest import run_once
from repro.accel.membench import MODE_READ, MODE_WRITE
from repro.experiments import fig6_throughput
from repro.mem import PAGE_SIZE_2M, PAGE_SIZE_4K


def _col(table, label):
    return {row[0]: row[table.columns.index(label)] for row in table.rows}


def test_fig6a_2m_pages_read(benchmark):
    table = run_once(
        benchmark,
        fig6_throughput.run,
        page_size=PAGE_SIZE_2M,
        working_sets=["64M", "512M", "1G", "2G", "8G"],
        job_counts=[1, 2, 8],
        mode=MODE_READ,
    )
    table.show()
    one = _col(table, "1_jobs")
    eight = _col(table, "8_jobs")
    # Flat to the IOTLB's 1 GB reach, then a steep drop.
    assert one["512M"] > 0.9 * one["64M"]
    assert eight["8G"] < 0.55 * eight["1G"]
    # Adding jobs does not diminish aggregate throughput (§6.4).
    assert eight["512M"] > 0.9 * one["512M"]
    # Absolute plateau lands near the platform's ~12.6 GB/s OPTIMUS cap.
    assert 10.0 < eight["512M"] < 14.5


def test_fig6a_2m_pages_write(benchmark):
    table = run_once(
        benchmark,
        fig6_throughput.run,
        page_size=PAGE_SIZE_2M,
        working_sets=["512M", "8G"],
        job_counts=[8],
        mode=MODE_WRITE,
    )
    table.show()
    eight = _col(table, "8_jobs")
    assert eight["512M"] > 8.0  # writes also near the plateau
    assert eight["8G"] < 0.6 * eight["512M"]


def test_fig6b_4k_pages_and_anomaly(benchmark):
    table = run_once(
        benchmark,
        fig6_throughput.run,
        page_size=PAGE_SIZE_4K,
        working_sets=["512K", "2M", "8M", "16M"],
        job_counts=[1, 8],
        mode=MODE_READ,
    )
    table.show()
    one = _col(table, "1_jobs")
    # 4 KB pages: the drop happens past 2 MB instead of 1 GB.
    assert one["8M"] < 0.75 * one["2M"]

    anomaly = fig6_throughput.read_anomaly()
    print("read anomaly:", anomaly)
    # §6.5: unusually high read throughput with 1 job inside one 2 MB
    # region — present with the speculative optimization, absent without.
    assert anomaly["anomaly_gbps"] > 1.05 * anomaly["anomaly_disabled_gbps"]
    assert anomaly["anomaly_gbps"] > 1.05 * anomaly["large_ws_gbps"]
