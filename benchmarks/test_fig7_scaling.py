"""Fig. 7 — real-world benchmark scaling with concurrent jobs."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_scaling


def test_fig7_scaling(benchmark):
    table = run_once(benchmark, fig7_scaling.run)
    table.show()
    eight = {row[0]: float(row[-1]) for row in table.rows}
    span = fig7_scaling.speedup_range(table)
    print("speedup range at 8 jobs:", span)

    # Aggregate throughput improves with more jobs (a saturated
    # benchmark may wobble a few percent around its plateau).
    for row in table.rows:
        values = [float(v) for v in row[1:]]
        assert values[-1] > 1.5
        assert all(b >= 0.85 * a for a, b in zip(values, values[1:]))

    # The paper's range: 1.98x-7x across the twelve benchmarks.
    assert 1.7 <= span["min"] <= 3.0
    assert 5.5 <= span["max"] <= 8.4

    # The interconnect-hungry benchmarks saturate; light ones scale on.
    for name in fig7_scaling.PAPER_SATURATING:
        assert eight[name] < 5.5, f"{name} should saturate the links"
    for name in ("BTC", "GRN"):
        assert eight[name] > 5.5, f"{name} should scale near-linearly"
    assert eight["AES"] > 4.0  # compute-bound: keeps scaling past 4 jobs
    # MD5 is the bandwidth-bound floor (the paper's 1.98x).
    assert eight["MD5"] == min(eight.values())
