"""Fig. 8 — preemptive temporal multiplexing overhead and scalability."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_temporal


def test_fig8_temporal(benchmark):
    table = run_once(
        benchmark,
        fig8_temporal.run,
        job_counts=[1, 2, 4, 8, 16],
        time_slice_ms=10.0,
        run_ms=45.0,
    )
    table.show()
    rows = {row[0]: [float(v) for v in row[1:-1]] for row in table.rows}

    for label, series in rows.items():
        one, two, *rest = series
        sixteen = series[-1]
        overhead_2 = 1.0 - two
        overhead_16 = 1.0 - sixteen
        print(f"{label}: overhead at 2 jobs {overhead_2:.2%}, at 16 jobs {overhead_16:.2%}")
        # Preemption costs something the moment a competitor exists...
        assert two < 1.0
        # ...but stays roughly constant as the oversubscription grows
        # (fixed preemption interval, §6.6).
        assert abs(overhead_16 - overhead_2) < 0.05

    # Microbenchmarks with tiny architected state lose ~1% or less;
    # the MD5 full-footprint worst case is an order of magnitude dearer.
    assert 1.0 - rows["LL"][1] < 0.03
    assert 1.0 - rows["MB"][1] < 0.03
    assert 0.04 < 1.0 - rows["MD5-worst"][1] < 0.15  # paper estimate: ~9%


def test_fig8_slice_length_sweep(benchmark):
    table = run_once(
        benchmark,
        fig8_temporal.slice_length_sweep,
        name="MB",
        slices_ms=[1.0, 5.0, 10.0],
    )
    table.show()
    values = [float(row[1]) for row in table.rows]
    # Longer slices amortize context switches: monotone improvement.
    assert values[0] < values[-1]
