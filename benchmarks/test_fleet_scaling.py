"""Fleet scaling — throughput grows with nodes; overload is bounded."""

from benchmarks.conftest import run_once
from repro.experiments import fleet_scaling


def test_fleet_scaling(benchmark):
    table = run_once(benchmark, fleet_scaling.run)
    table.show()

    for load in fleet_scaling.LOADS:
        series = fleet_scaling.throughput_by_nodes(table, load)
        assert len(series) == len(fleet_scaling.NODE_COUNTS)
        # Aggregate placed-tenant throughput increases with node count at
        # a fixed absolute offered rate.
        assert all(b > a for a, b in zip(series, series[1:])), (load, series)

    reject_col = table.columns.index("reject_rate")
    nodes_col = table.columns.index("nodes")
    by_cell = {
        (int(row[nodes_col]), float(row[1])): float(row[reject_col])
        for row in table.rows
    }
    # Admission control bounds overload gracefully: the under-provisioned
    # single node sheds a meaningful share of the overload trace, and the
    # full fleet absorbs nearly everything.
    overload = max(fleet_scaling.LOADS)
    assert by_cell[(1, overload)] > 0.3
    assert by_cell[(max(fleet_scaling.NODE_COUNTS), overload)] < 0.1
    # More capacity never rejects more.
    for load in fleet_scaling.LOADS:
        rates = [by_cell[(n, load)] for n in fleet_scaling.NODE_COUNTS]
        assert all(b <= a for a, b in zip(rates, rates[1:])), (load, rates)
