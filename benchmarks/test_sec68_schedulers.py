"""§6.8 — software scheduler policy enforcement."""

from benchmarks.conftest import run_once
from repro.experiments import sec68_schedulers


def test_sec68_schedulers(benchmark):
    table = run_once(
        benchmark,
        sec68_schedulers.run,
        oversubscription=[2, 4],
        slice_ms=2.0,
        run_ms=60.0,
    )
    table.show()
    errors = [float(row[-1]) for row in table.rows]
    mean_error = sum(errors) / len(errors)
    print(f"mean share error {mean_error:.2f} pp, worst {max(errors):.2f} pp")

    # Paper: execution times within 0.32% (mean) / 1.42% (worst) of the
    # policy's expectation.  Allow headroom for our shorter runs.
    assert mean_error < 2.0
    assert max(errors) < 6.0

    # Strict-priority rows: the high-priority pair owns the accelerator.
    priority_rows = [row for row in table.rows if row[0] == "priority"]
    for row in priority_rows:
        _policy, _jobs, vid, measured, expected, _err = row
        if float(expected) == 0.0:
            assert float(measured) < 3.0  # starved, as the policy dictates
