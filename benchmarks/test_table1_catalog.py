"""Table 1 — the benchmark catalog (app, description, LoC, frequency)."""

from benchmarks.conftest import run_once
from repro.accel import table1_rows
from repro.experiments.harness import ResultTable


def test_table1_catalog(benchmark):
    rows = run_once(benchmark, table1_rows)
    table = ResultTable(
        "Table 1 — benchmarks, Verilog LoC, synthesis frequency",
        ["app", "description", "loc", "freq_mhz"],
    )
    for row in rows:
        table.add(row["app"], row["description"], row["loc"], row["freq_mhz"])
    table.show()

    assert len(rows) == 14
    frequencies = {row["app"]: row["freq_mhz"] for row in rows}
    # The microbenchmarks run at the full 400 MHz shell clock; complex
    # circuits synthesize at 100-200 MHz (Table 1).
    assert frequencies["MB"] == frequencies["LL"] == 400.0
    assert frequencies["MD5"] == frequencies["SW"] == frequencies["BTC"] == 100.0
    assert sum(row["loc"] for row in rows) > 25_000
