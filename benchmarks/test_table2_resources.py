"""Table 2 — resource utilization, pass-through vs 8 accelerators."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table2_resources

#: Paper's OPTIMUS-column accelerator rows (ALM %), for shape comparison.
PAPER_ALM_8X = {
    "AES": 27.80, "MD5": 34.27, "SHA": 18.16, "FIR": 15.77, "GRN": 12.53,
    "RSD": 17.93, "SW": 10.34, "GRS": 9.92, "GAU": 25.28, "SBL": 18.49,
    "SSSP": 15.73, "BTC": 8.99, "MB": 4.84, "LL": -0.24,
}


def test_table2_resources(benchmark):
    table = run_once(benchmark, table2_resources.run)
    table.show()
    rows = {row[0]: row for row in table.rows}

    # Fixed components match the paper exactly.
    assert rows["Shell"][1] == pytest.approx(23.44)
    assert rows["Hardware Monitor"][1] == pytest.approx(6.16, abs=0.01)
    assert rows["Hardware Monitor"][1] < 7.0  # "less than 7% of resources"

    # Normal designs scale ~linearly.  The paper's per-benchmark
    # multipliers are idiosyncratic synthesis outcomes (6.8x-8.4x of the
    # single-instance cost); our uniform congestion model lands within
    # ~20% of every row.
    for name, paper_alm in PAPER_ALM_8X.items():
        ours = rows[name][1]
        if name == "LL":
            assert ours < 0  # net decrease, as in the paper
        else:
            assert ours == pytest.approx(paper_alm, rel=0.22)

    gain = table2_resources.utilization_gain()
    print(f"mean accelerator-utilization gain at 8x: {gain:.2f}x")
    assert 6.0 < gain < 9.0  # "roughly linear" utilization increase
