"""Table 3 — fairness across 8 homogeneous physical accelerators."""

from benchmarks.conftest import run_once
from repro.experiments import table3_fairness


def test_table3_fairness(benchmark):
    table = run_once(benchmark, table3_fairness.run)
    table.show()
    spreads = {row[0]: float(row[1]) for row in table.rows}

    # Paper: the maximum normalized throughput range is ~1% (100 x 1e-4);
    # most benchmarks sit one or two orders of magnitude below that.  We
    # allow a few percent of slack for short measurement windows.
    for name, spread_1e4 in spreads.items():
        assert spread_1e4 < 500, f"{name}: range {spread_1e4:.1f}e-4 too wide"
    # The bandwidth-saturating microbenchmark shares essentially exactly.
    assert spreads["MB"] < 60
