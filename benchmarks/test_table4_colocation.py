"""Table 4 — MemBench throughput when co-located with each benchmark."""

from benchmarks.conftest import run_once
from repro.experiments import table4_colocation


def test_table4_colocation(benchmark):
    table = run_once(benchmark, table4_colocation.run)
    table.show()
    normalized = {row[0]: float(row[2]) for row in table.rows}

    # Fairness floor: MemBench always keeps at least ~half its standalone
    # bandwidth, even against another bandwidth-hungry tenant.
    assert all(value > 0.45 for value in normalized.values())

    # Bandwidth-hungry co-tenants split the platform evenly...
    for name in ("MD5", "MB"):
        assert normalized[name] < 0.65, f"{name} should roughly halve MemBench"
    # ...light co-tenants leave MemBench nearly untouched.
    for name in ("GRN", "BTC", "LL"):
        assert normalized[name] > 0.90, f"{name} should barely dent MemBench"
    # Streaming benchmarks land in between, as in the paper's 0.75-0.86.
    for name in ("AES", "SHA", "FIR", "RSD", "GAU", "GRS", "SBL", "SSSP", "SW"):
        assert 0.60 < normalized[name] < 0.98
