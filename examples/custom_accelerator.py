#!/usr/bin/env python3
"""Build your own preemptible accelerator and run it under OPTIMUS.

Accelerator designers targeting OPTIMUS implement the paper's preemption
interface (§4.2): identify the minimal architected state, save it when
the hypervisor asks, and write the job body re-entrantly.  This example
implements a "vector triad" accelerator (c[i] = a[i] + s * b[i]) from
scratch — the complete recipe:

* an :class:`AcceleratorProfile` (frequency, resources, state size),
* a job body that reads operands via DMA, computes, writes results, and
  calls ``ctx.preempt_point()`` between work units,
* ``save_state`` / ``restore_state`` for the single cursor it needs.

Two instances then share one physical accelerator under 1 ms time slices,
getting preempted dozens of times — and still producing exact results.

Run:  python examples/custom_accelerator.py
"""

import struct

import numpy as np

from repro import PlatformParams, build_platform
from repro.accel import AcceleratorJob, AcceleratorProfile
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.guest import GuestAccelerator
from repro.hv import OptimusHypervisor
from repro.mem import MB
from repro.sim.clock import ms
from repro.sim.packet import CACHE_LINE_BYTES

REG_A, REG_B, REG_C, REG_COUNT, REG_SCALE = 0x00, 0x08, 0x10, 0x18, 0x20

TRIAD_PROFILE = AcceleratorProfile(
    name="TRIAD",
    description="Vector triad: c = a + s*b (float32)",
    loc_verilog=850,  # what a simple DSP pipeline would cost
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=1.1, bram_pct=0.9),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=32,
    preemptible=True,
    state_bytes=64,
)


class TriadJob(AcceleratorJob):
    """A minimal, fully preemptible custom accelerator."""

    profile = TRIAD_PROFILE

    def __init__(self):
        super().__init__()
        self.cursor = 0  # lines processed: the whole architected state

    def body(self, ctx):
        a, b, c = self.reg(REG_A), self.reg(REG_B), self.reg(REG_C)
        lines = self.reg(REG_COUNT)
        scale = struct.unpack("<f", struct.pack("<I", self.reg(REG_SCALE)))[0]
        while self.cursor < lines:
            offset = self.cursor * CACHE_LINE_BYTES
            data_a = yield ctx.read(a + offset)
            data_b = yield ctx.read(b + offset)
            va = np.frombuffer(data_a, dtype=np.float32)
            vb = np.frombuffer(data_b, dtype=np.float32)
            yield ctx.cycles(16)  # 16 lanes/cycle over 16 floats
            yield ctx.write(c + offset, (va + scale * vb).tobytes())
            self.cursor += 1
            if (yield from ctx.preempt_point()):
                return  # state already saved; we'll be resumed later
        self.done = True

    def save_state(self):
        return self.cursor.to_bytes(8, "little")

    def restore_state(self, data):
        self.cursor = int.from_bytes(data[:8], "little")


def main() -> None:
    platform = build_platform(
        PlatformParams(time_slice_ps=ms(1)), n_accelerators=1
    )
    hypervisor = OptimusHypervisor(platform)

    lines = 4000
    rng = np.random.RandomState(0)
    tenants = []
    for who, scale in (("vm-x", 2.0), ("vm-y", -0.5)):
        vm = hypervisor.create_vm(who)
        job = TriadJob()
        vaccel = hypervisor.create_virtual_accelerator(vm, job, physical_index=0)
        accel = GuestAccelerator(hypervisor, vm, vaccel, window_bytes=16 * MB)
        a = accel.alloc_buffer(lines * 64)
        b = accel.alloc_buffer(lines * 64)
        c = accel.alloc_buffer(lines * 64)
        va = rng.uniform(-100, 100, lines * 16).astype(np.float32)
        vb = rng.uniform(-100, 100, lines * 16).astype(np.float32)
        accel.write_buffer(a, va.tobytes())
        accel.write_buffer(b, vb.tobytes())
        for reg, value in (
            (REG_A, a), (REG_B, b), (REG_C, c), (REG_COUNT, lines),
            (REG_SCALE, struct.unpack("<I", struct.pack("<f", scale))[0]),
        ):
            accel.mmio_write(reg, value)
        done = accel.start()
        tenants.append((who, scale, job, vaccel, accel, c, va, vb, done))

    for *_rest, done in tenants:
        platform.engine.run_until(done)

    for who, scale, job, vaccel, accel, c, va, vb, _done in tenants:
        result = np.frombuffer(accel.read_buffer(c, lines * 64), dtype=np.float32)
        expected = va + np.float32(scale) * vb
        assert np.allclose(result, expected), f"{who}: wrong results!"
        print(f"{who}: c = a + {scale} * b over {lines * 16} floats — exact, "
              f"despite {vaccel.preempt_count} preemptions")
    print("\ncustom accelerator survived preemptive temporal multiplexing.")


if __name__ == "__main__":
    main()
