#!/usr/bin/env python3
"""Fleet serving: four heterogeneous OPTIMUS FPGAs behind one front door.

The paper runs one shared-memory FPGA; a provider runs racks of them.
This walkthrough builds a four-node fleet (each node a different
synthesized accelerator mix), generates a deterministic open-loop tenant
request stream at 90% offered load, and serves it end-to-end through
admission control:

* the placement policy picks the node (least-loaded here), the node's
  provider picks the slot with the paper's spatial-then-temporal logic;
* sessions end and free capacity; queued requests drain FIFO;
* the same seed always reproduces the identical placement trace.

Run:  python examples/fleet_serving.py
"""

from repro.fleet import (
    AdmissionConfig,
    FleetCluster,
    FleetService,
    TrafficGenerator,
    TrafficProfile,
    make_policy,
)


def serve(seed: int) -> "ServeResult":
    cluster = FleetCluster.build(4)
    print(f"fleet: {len(cluster.nodes)} nodes, {cluster.total_slots} slots")
    for node in cluster.nodes:
        print(f"  {node.name}: {', '.join(node.spec.slots)}")

    generator = TrafficGenerator(
        TrafficProfile(load=0.9), fleet_slots=cluster.total_slots, seed=seed
    )
    requests = generator.generate(160)
    print(f"\ntraffic: {len(requests)} requests at 90% offered load, seed {seed}")

    service = FleetService(
        cluster,
        make_policy("best-fit"),
        admission=AdmissionConfig(queue_limit=16, max_retries=3),
    )
    return service.serve(requests)


def main() -> None:
    result = serve(seed=42)
    print("\nfirst five placement decisions:")
    for line in result.metrics.trace[:5]:
        print(f"  {line}")

    print()
    print(result.metrics.render())

    # Determinism: a fresh fleet served from the same seed produces the
    # identical trace, placement for placement.
    again = serve(seed=42)
    assert again.metrics.trace == result.metrics.trace
    print("\nsame seed, fresh fleet: identical placement trace — reproducible")


if __name__ == "__main__":
    main()
