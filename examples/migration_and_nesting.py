#!/usr/bin/env python3
"""Beyond the evaluation: live migration and nested virtualization.

Two capabilities the paper argues for (§4.1, §7.1) but never measures:

1. **Migration** — a running MemBench tenant is moved from physical
   accelerator 0 to physical accelerator 1 mid-flight.  The move costs one
   preemption; the tenant's 64 GB IOVA slice (and every IO-page-table
   entry) stays exactly where it was.

2. **Nested virtualization** — a tenant acting as an L1 hypervisor
   sub-slices its DMA window between two L2 guests and runs an AES job
   for one of them.  The three-stage translation (L2 GVA -> L1 GVA ->
   IOVA -> HPA) is printed for one address.

Run:  python examples/migration_and_nesting.py
"""

from repro import PlatformParams, build_platform
from repro.accel import AesJob, MemBenchJob
from repro.accel.streaming import REG_DST, REG_LEN, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.guest import GuestAccelerator
from repro.hv import OptimusHypervisor
from repro.hv.nested import NestedHypervisor
from repro.kernels import encrypt_ecb
from repro.mem import MB
from repro.sim.clock import ms, us


def demonstrate_migration(platform, hv) -> None:
    print("== migration (§7.1) " + "=" * 40)
    vm = hv.create_vm("mover")
    job = MemBenchJob(functional=False, seed=0x5151, lines_per_request=16)
    vaccel = hv.create_virtual_accelerator(vm, job, physical_index=0)
    handle = GuestAccelerator(hv, vm, vaccel, window_bytes=24 * MB)
    ws = handle.alloc_buffer(8 * MB)
    for reg, value in ((REG_SRC, ws), (REG_LEN, 8 * MB), (REG_PARAM0, 0), (REG_PARAM1, 0)):
        handle.mmio_write(reg, value)
    handle.start()
    platform.run_for(ms(2))
    before = job.ops_done
    iova = vaccel.slice.iova_base
    hpa_before = platform.iommu.translate_sync(iova)
    print(f"running on accelerator {vaccel.physical_index}: {before} requests done")

    done = hv.migrate_virtual_accelerator(vaccel, 1)
    platform.engine.run_until(done, limit_ps=platform.engine.now + ms(50))
    platform.run_for(ms(2))
    print(f"migrated to accelerator {vaccel.physical_index} "
          f"({vaccel.preempt_count} preemption, slice untouched: "
          f"IOVA {iova:#x} still -> HPA {hpa_before:#x}: "
          f"{platform.iommu.translate_sync(iova) == hpa_before})")
    print(f"progress continued: {job.ops_done - before} more requests\n")
    assert job.ops_done > before


def demonstrate_nesting(platform, hv) -> None:
    print("== nested virtualization (§4.1) " + "=" * 28)
    vm = hv.create_vm("l1-hypervisor")
    job = AesJob(functional=True)
    vaccel = hv.create_virtual_accelerator(vm, job, physical_index=2)
    handle = GuestAccelerator(hv, vm, vaccel, window_bytes=64 * MB)
    l1 = NestedHypervisor(handle, sub_slice_bytes=16 * MB)
    tenant_a = l1.create_sub_guest()
    tenant_b = l1.create_sub_guest()
    print(f"L1 window sub-sliced: tenant A at +{tenant_a.base - (vaccel.window_base_gva or 0):#x}, "
          f"tenant B at +{tenant_b.base - (vaccel.window_base_gva or 0):#x}")

    plaintext = bytes(range(256)) * 8
    src = tenant_a.alloc_buffer(len(plaintext))
    dst = tenant_a.alloc_buffer(len(plaintext))
    tenant_a.write_buffer(src, plaintext)
    tenant_a.mmio_write(REG_SRC, src, is_address=True)
    tenant_a.mmio_write(REG_DST, dst, is_address=True)
    tenant_a.mmio_write(REG_LEN, len(plaintext))
    chain = l1.translation_chain(tenant_a, src)
    print("translation chain for tenant A's source buffer:")
    for stage, address in chain.items():
        print(f"  {stage:>7}: {address:#x}")
    done = handle.start()
    platform.engine.run_until(done, limit_ps=platform.engine.now + ms(100))
    assert tenant_a.read_buffer(dst, len(plaintext)) == encrypt_ecb(job.key, plaintext)
    print("tenant A's AES job ran through L2->L1->L0 and verified correct.\n")


def main() -> None:
    platform = build_platform(PlatformParams(time_slice_ps=us(500)), n_accelerators=3)
    hv = OptimusHypervisor(platform)
    demonstrate_migration(platform, hv)
    demonstrate_nesting(platform, hv)


if __name__ == "__main__":
    main()
