#!/usr/bin/env python3
"""Multi-tenant cloud: eight guests, eight different accelerators, one FPGA.

The paper's deployment story (§1, §3): a cloud provider configures one
shared-memory FPGA as a set of popular accelerators and rents them to
different customers.  This example spatially multiplexes eight tenants —
each with its own VM, its own IOVA slice, and a different accelerator —
runs them concurrently, and prints a per-tenant report showing:

* every tenant's job made progress simultaneously (spatial multiplexing),
* no IOMMU faults occurred (page table slicing isolated every DMA),
* bandwidth was shared (round-robin multiplexer tree).

Run:  python examples/multi_tenant_cloud.py
"""

from repro import PlatformParams, build_platform
from repro.accel import make_job
from repro.accel.streaming import REG_DST, REG_LEN, REG_SRC
from repro.experiments.harness import ENDLESS
from repro.guest import GuestAccelerator
from repro.hv import OptimusHypervisor
from repro.mem import MB
from repro.sim.clock import us

TENANTS = [
    ("alice", "AES"),
    ("bob", "SHA"),
    ("carol", "MD5"),
    ("dave", "FIR"),
    ("erin", "GAU"),
    ("frank", "GRS"),
    ("grace", "RSD"),
    ("heidi", "SW"),
]


def main() -> None:
    platform = build_platform(PlatformParams(), n_accelerators=8)
    hypervisor = OptimusHypervisor(platform)

    tenants = []
    for index, (who, bench) in enumerate(TENANTS):
        vm = hypervisor.create_vm(who)
        job = make_job(bench, functional=False)  # pattern mode: long-running
        vaccel = hypervisor.create_virtual_accelerator(vm, job, physical_index=index)
        accel = GuestAccelerator(hypervisor, vm, vaccel, window_bytes=96 * MB)
        src = accel.alloc_buffer(32 * MB)
        dst = accel.alloc_buffer(32 * MB)
        accel.mmio_write(REG_SRC, src)
        accel.mmio_write(REG_DST, dst)
        accel.mmio_write(REG_LEN, ENDLESS)
        accel.start()
        tenants.append((who, bench, job, vaccel))
        print(f"{who:>6}: {bench:4} on physical accelerator {index}, "
              f"slice {vaccel.slice.iova_base >> 30} GB")

    # Let everyone run for half a simulated millisecond.
    platform.run_for(us(200))
    base = [job.progress_units() for _w, _b, job, _v in tenants]
    platform.run_for(us(300))

    print("\nper-tenant throughput over a 300 us window:")
    total = 0.0
    for (who, bench, job, _vaccel), start in zip(tenants, base):
        gbps = (job.progress_units() - start) / us(300) * 1e3
        total += gbps
        print(f"  {who:>6} ({bench:4}): {gbps:6.2f} GB/s")
    print(f"  aggregate: {total:.2f} GB/s "
          f"(platform ceiling ~12.6 GB/s under OPTIMUS)")

    faults = platform.iommu.faults
    print(f"\nIOMMU faults: {faults} — page table slicing kept every tenant "
          "inside its own slice")
    assert faults["translation"] == 0 and faults["protection"] == 0


if __name__ == "__main__":
    main()
