#!/usr/bin/env python3
"""Pointer chasing: why shared-memory FPGAs beat host-centric ones (Fig. 1).

Runs single-source shortest path over the same random graph under three
programming models:

* **shared-memory** — the SSSP accelerator issues its own DMAs, chasing
  offset -> edge-list pointers without CPU involvement;
* **host-centric + Config** — the CPU programs a DMA engine for every
  non-contiguous edge-list segment;
* **host-centric + Copy** — the CPU marshals segments into a contiguous
  buffer, then issues one DMA per frontier round;

each natively and under virtualization (where trap-and-emulate makes
every host MMIO dearer).  This is the paper's motivating experiment.

Run:  python examples/pointer_chasing.py
"""

from repro.experiments import fig1_sssp


def main() -> None:
    table = fig1_sssp.run(
        n_vertices=10_000, edge_counts=[40_000, 160_000, 640_000]
    )
    table.show()
    gains = fig1_sssp.speedups(table)
    print("shared-memory advantage over the best host-centric variant:")
    for (native, virt), row in zip(
        zip(gains["native"], gains["virtualized"]), table.rows
    ):
        print(f"  {row[0]:>7} edges: native +{native:.0%}, virtualized +{virt:.0%}")
    print("\nthe gap widens under virtualization because every host-centric")
    print("DMA configuration traps to the hypervisor, while shared-memory")
    print("accelerators keep the data plane hypervisor-free.")


if __name__ == "__main__":
    main()
