#!/usr/bin/env python3
"""A provider's accelerator marketplace, end to end (§1, §3, §8).

The deployment story OPTIMUS targets: a cloud provider picks a mix of
popular accelerators from its library, synthesizes the configuration
(validated against the 400 MHz / 8-slot / resource constraints), boots an
OPTIMUS platform, and admits customers:

* spatial placement while free slots of the requested type exist,
* temporal oversubscription (preemptive time slicing) once they run out,
* live rebalancing onto freed slots when tenants leave.

Run:  python examples/provider_marketplace.py
"""

from repro.accel.streaming import REG_LEN, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.cloud import AcceleratorLibrary, CloudProvider, FpgaConfiguration
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import ms, us


def start_membench(tenant) -> None:
    ws = tenant.handle.alloc_buffer(8 * MB)
    for reg, value in ((REG_SRC, ws), (REG_LEN, 8 * MB), (REG_PARAM0, 0), (REG_PARAM1, 0)):
        tenant.handle.mmio_write(reg, value)
    tenant.handle.start()


def main() -> None:
    library = AcceleratorLibrary()
    print("accelerator library:")
    for entry in library.entries()[:6]:
        print(f"  {entry.name:5} {entry.description:34} "
              f"ALM {entry.alm_pct:4.2f}%  preemptible={entry.preemptible}")
    print("  ... (14 products total)\n")

    config = FpgaConfiguration.synthesize(["MB", "MB", "AES", "SHA"])
    usage = config.utilization_summary()
    print(f"synthesized configuration {config.slots}: "
          f"ALM {usage['alm_pct']:.1f}%, BRAM {usage['bram_pct']:.1f}% — fits\n")

    provider = CloudProvider(config, params=PlatformParams(time_slice_ps=us(500)))
    tenants = []
    for i in range(3):
        tenant = provider.place(f"cust{i}", "MB", window_bytes=16 * MB,
                                job_kwargs={"seed": 0x100 + i, "lines_per_request": 16})
        start_membench(tenant)
        kind = "oversubscribed" if tenant.oversubscribed else "dedicated"
        print(f"placed {tenant.name} on slot {tenant.physical_index} ({kind})")
        tenants.append(tenant)

    provider.platform.run_for(ms(3))
    print("\noccupancy:", {k: v["tenants"] for k, v in provider.occupancy_report().items()})

    departing = tenants[1]
    print(f"\n{departing.name} leaves; rebalancing...")
    provider.evict(departing)
    moved = provider.rebalance()
    print(f"{moved} tenant(s) migrated; occupancy now:",
          {k: v["tenants"] for k, v in provider.occupancy_report().items()})

    provider.platform.run_for(ms(2))
    for tenant in (tenants[0], tenants[2]):
        print(f"  {tenant.name}: {tenant.vaccel.job.ops_done} requests, "
              f"{tenant.vaccel.preempt_count} preemptions, "
              f"{getattr(tenant.vaccel, 'migrations', 0)} migrations")
    print("\nthe marketplace runs: synthesis-checked configuration, spatial +")
    print("temporal placement, and live rebalancing over OPTIMUS primitives.")


if __name__ == "__main__":
    main()
