#!/usr/bin/env python3
"""Quickstart: accelerate AES encryption inside a guest VM.

Walks the full OPTIMUS stack end to end:

1. build a simulated shared-memory FPGA platform with the hardware
   monitor (two physical accelerators);
2. start the hypervisor, boot a guest VM, and create a virtual
   accelerator (a mediated device with its own 64 GB IOVA slice);
3. from the guest: allocate FPGA-accessible DMA buffers (pages are
   registered through the shadow-paging hypercall), program the
   accelerator over MMIO, start the job;
4. verify that the AES accelerator's output in shared memory matches a
   host-computed reference — the same bytes, through real simulated DMAs.

Run:  python examples/quickstart.py
"""

from repro import PlatformParams, build_platform
from repro.accel import AesJob
from repro.accel.streaming import REG_DST, REG_LEN, REG_SRC
from repro.hv import OptimusHypervisor
from repro.kernels import encrypt_ecb
from repro.mem import MB
from repro.sim.clock import to_us


def main() -> None:
    # 1. The platform: CCI-P shell, UPI + 2x PCIe links, IOMMU, monitor.
    platform = build_platform(PlatformParams(), n_accelerators=2)
    hypervisor = OptimusHypervisor(platform)

    # 2. A tenant VM with one virtual AES accelerator.  connect() creates
    #    the mediated device and hands back a guest handle; leaving the
    #    with-block disconnects it and releases the IOVA slice.
    vm = hypervisor.create_vm("tenant0")
    job = AesJob(functional=True)
    with hypervisor.connect(vm, job, window_bytes=16 * MB) as accel:
        vaccel = accel.vaccel
        print(
            f"virtual accelerator {vaccel.name}: "
            f"IOVA slice at {vaccel.slice.iova_base:#x}"
        )

        # 3. Guest userspace: buffers, data, registers, go.
        plaintext = bytes(range(256)) * 64  # 16 KB
        src = accel.alloc_buffer(len(plaintext))
        dst = accel.alloc_buffer(len(plaintext))
        accel.write_buffer(src, plaintext)
        accel.mmio_write(REG_SRC, src)
        accel.mmio_write(REG_DST, dst)
        accel.mmio_write(REG_LEN, len(plaintext))
        done = accel.start()

        platform.engine.run_until(done)
        elapsed_us = to_us(platform.engine.now)

        # 4. The accelerator wrote ciphertext into shared memory; check it.
        ciphertext = accel.read_buffer(dst, len(plaintext))
        expected = encrypt_ecb(job.key, plaintext)
        assert ciphertext == expected, "accelerator output mismatch!"
    assert not accel.connected, "the with-block should have disconnected"
    print(f"encrypted {len(plaintext)} bytes in {elapsed_us:.1f} simulated us")
    print(f"first ciphertext block: {ciphertext[:16].hex()}")
    print("output verified against the host AES implementation — success.")


if __name__ == "__main__":
    main()
