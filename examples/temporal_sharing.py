#!/usr/bin/env python3
"""Temporal sharing: three tenants oversubscribe one physical accelerator.

Demonstrates preemptive temporal multiplexing (§4.2, §6.6, §6.8): three
VMs each own a virtual MemBench accelerator, all bound to the *same*
physical accelerator.  A weighted scheduler gives the "gold" tenant a
3x time-slice weight.  The example prints per-tenant accelerator time,
preemption counts, and verifies the schedule matches the policy.

Run:  python examples/temporal_sharing.py
"""

from repro import PlatformParams, build_platform
from repro.accel import MemBenchJob
from repro.accel.streaming import REG_LEN, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.guest import GuestAccelerator
from repro.hv import OptimusHypervisor, WeightedScheduler
from repro.mem import MB
from repro.sim.clock import ms

TENANTS = [("gold", 3.0), ("silver", 1.0), ("bronze", 1.0)]
SLICE_MS = 2.0
RUN_MS = 60.0


def main() -> None:
    params = PlatformParams(time_slice_ps=ms(SLICE_MS))
    platform = build_platform(params, n_accelerators=1)
    hypervisor = OptimusHypervisor(platform)

    weights = {}
    tenants = []
    for index, (who, weight) in enumerate(TENANTS):
        vm = hypervisor.create_vm(who)
        job = MemBenchJob(functional=False, seed=0xACE + 101 * index,
                          lines_per_request=64)
        vaccel = hypervisor.create_virtual_accelerator(vm, job, physical_index=0)
        weights[vaccel.vaccel_id] = weight
        accel = GuestAccelerator(hypervisor, vm, vaccel, window_bytes=32 * MB)
        ws = accel.alloc_buffer(16 * MB)
        accel.mmio_write(REG_SRC, ws)
        accel.mmio_write(REG_LEN, 16 * MB)
        accel.mmio_write(REG_PARAM0, 0)  # random reads
        accel.mmio_write(REG_PARAM1, 0)  # unbounded
        accel.start()
        tenants.append((who, weight, job, vaccel))

    manager = hypervisor.physical[0]
    manager.scheduler = WeightedScheduler(weights, ms(SLICE_MS))
    print(f"3 virtual accelerators on 1 physical, {SLICE_MS} ms slices, "
          f"weights gold=3 silver=1 bronze=1\n")

    platform.run_for(ms(RUN_MS))

    total_busy = sum(va.utilization.current_busy_ps() for _w, _wt, _j, va in tenants)
    print(f"after {RUN_MS:.0f} simulated ms "
          f"({manager.context_switches} context switches):")
    expected = manager.scheduler.expected_shares([va for *_rest, va in tenants])
    for who, weight, job, vaccel in tenants:
        share = vaccel.utilization.current_busy_ps() / total_busy
        print(
            f"  {who:>6} (w={weight:.0f}): {share:6.1%} of accelerator time "
            f"(expected {expected[vaccel.vaccel_id]:.1%}), "
            f"{vaccel.preempt_count} preemptions, "
            f"{job.ops_done} requests completed"
        )
        assert abs(share - expected[vaccel.vaccel_id]) < 0.05
    print("\nevery tenant was preempted and resumed without losing progress;")
    print("shares match the weighted policy — temporal multiplexing works.")


if __name__ == "__main__":
    main()
