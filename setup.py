"""Setup shim: enables legacy editable installs (`pip install -e .`) on
offline machines that lack the `wheel` package (PEP 517 editable builds
need bdist_wheel).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
