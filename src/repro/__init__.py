"""OPTIMUS reproduction: a hypervisor for shared-memory FPGA platforms.

This package reproduces the ASPLOS 2020 paper *"A Hypervisor for
Shared-Memory FPGA Platforms"* (Ma et al.) as a full-system, discrete-event
simulation: the Intel-HARP-like platform (CCI-P shell, UPI + PCIe links,
IOMMU with a 512-entry set-indexed IOTLB), the OPTIMUS hardware monitor
(VCU, multiplexer tree, auditors, page table slicing), the hypervisor
(trap-and-emulate MMIO, shadow paging, preemptive temporal multiplexing),
a guest driver/userspace stack, and the paper's fourteen benchmark
accelerators.

Quick start::

    from repro import OptimusHypervisor, PlatformParams, build_platform

    platform = build_platform(PlatformParams(), n_accelerators=2)
    hypervisor = OptimusHypervisor(platform)
    vm = hypervisor.create_vm("tenant0")
    ...

See ``examples/quickstart.py`` for a complete runnable walk-through, and
``DESIGN.md`` / ``EXPERIMENTS.md`` for the reproduction methodology.
"""

from repro.platform.builder import Platform, PlatformMode, build_platform
from repro.platform.params import DEFAULT_PARAMS, PlatformParams

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PARAMS",
    "OptimusHypervisor",
    "PassthroughHypervisor",
    "Platform",
    "PlatformMode",
    "PlatformParams",
    "build_platform",
    "__version__",
]


def __getattr__(name):  # lazy re-exports to avoid import cycles at startup
    if name == "OptimusHypervisor":
        from repro.hv.hypervisor import OptimusHypervisor

        return OptimusHypervisor
    if name == "PassthroughHypervisor":
        from repro.hv.passthrough import PassthroughHypervisor

        return PassthroughHypervisor
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
