"""Command-line entry point: list and run the paper's experiments.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro run fig4             # one experiment
    python -m repro run all              # the whole evaluation section
"""

from __future__ import annotations

import argparse
import sys
import time

EXPERIMENTS = {
    "fig1": ("repro.experiments.fig1_sssp", "SSSP: shared-memory vs host-centric"),
    "table2": ("repro.experiments.table2_resources", "FPGA resource utilization"),
    "fig4": ("repro.experiments.fig4_overhead", "virtualization overhead vs pass-through"),
    "fig5": ("repro.experiments.fig5_latency", "LinkedList latency sweeps"),
    "fig6": ("repro.experiments.fig6_throughput", "MemBench throughput sweeps"),
    "fig7": ("repro.experiments.fig7_scaling", "real-world benchmark scaling"),
    "fig8": ("repro.experiments.fig8_temporal", "temporal multiplexing"),
    "table3": ("repro.experiments.table3_fairness", "spatial-multiplexing fairness"),
    "table4": ("repro.experiments.table4_colocation", "MemBench co-location"),
    "sec68": ("repro.experiments.sec68_schedulers", "scheduler policy enforcement"),
    "ablations": ("repro.experiments.ablations", "mux tree / IOTLB / bandwidth ablations"),
}


def _run_one(key: str) -> None:
    import importlib

    module_name, _description = EXPERIMENTS[key]
    module = importlib.import_module(module_name)
    started = time.time()
    print(f"### {key}: {module_name} " + "#" * 20)
    module.main()
    print(f"[{key} done in {time.time() - started:.1f}s wall]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the OPTIMUS paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_module, description) in EXPERIMENTS.items():
            print(f"  {key.ljust(width)}  {description}")
        print("\nrun with: python -m repro run <experiment|all>")
        return 0

    if args.experiment == "all":
        for key in EXPERIMENTS:
            _run_one(key)
    else:
        _run_one(args.experiment)
    return 0


if __name__ == "__main__":
    sys.exit(main())
