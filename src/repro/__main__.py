"""Command-line entry point: list, run, and trace the paper's experiments.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro list --json          # same, machine-readable
    python -m repro run fig4             # one experiment
    python -m repro run all              # the whole evaluation section
    python -m repro run fig6 --jobs 8    # fan sweep cells across processes
    python -m repro run fig5 --profile   # print a cProfile summary after
    python -m repro run fig4 --reference # per-line reference timing path
    python -m repro run fig5 --json      # machine-readable result envelope
    python -m repro trace fig5 --quick   # Perfetto-loadable trace capture
    python -m repro fleet --nodes 4 --load 0.9 --seed 1   # fleet serving
    python -m repro chaos fleet --plan single-node-crash  # fault injection
    python -m repro chaos single --plan rogue-guest --json
    python -m repro serve --sessions 2000 --load 2.0      # serving gateway
    python -m repro serve --trace sessions.json --shards 2 --json
    python -m repro capacity --tenants 1000000 --load 6.0 # analytic planner
    python -m repro capacity --mode optimus --tenants 5000 --json
    python -m repro fuzz --seed 7 --count 20              # differential fuzzing
    python -m repro fuzz --replay repro-seed7-idx3-abc.json

``run`` exits non-zero if any experiment raises (and keeps going through
the rest of ``all``, reporting every failure at the end).

Every ``--json`` mode prints one envelope object to stdout —
``{"experiment": ..., "params": ..., "results": ...}`` — with all human
narration diverted to stderr.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
import traceback

from repro.envelope import emit_envelope, to_jsonable

#: Exit codes shared by every subcommand (also shown in ``--help``).
EXIT_CODES = """\
exit codes:
  0  success
  1  an experiment failed (raised; see the traceback on stderr)
  2  usage or configuration error (bad flags, invalid fleet setup)
"""

EXPERIMENTS = {
    "fig1": ("repro.experiments.fig1_sssp", "SSSP: shared-memory vs host-centric"),
    "table2": ("repro.experiments.table2_resources", "FPGA resource utilization"),
    "fig4": ("repro.experiments.fig4_overhead", "virtualization overhead vs pass-through"),
    "fig5": ("repro.experiments.fig5_latency", "LinkedList latency sweeps"),
    "fig6": ("repro.experiments.fig6_throughput", "MemBench throughput sweeps"),
    "fig7": ("repro.experiments.fig7_scaling", "real-world benchmark scaling"),
    "fig8": ("repro.experiments.fig8_temporal", "temporal multiplexing"),
    "table3": ("repro.experiments.table3_fairness", "spatial-multiplexing fairness"),
    "table4": ("repro.experiments.table4_colocation", "MemBench co-location"),
    "sec68": ("repro.experiments.sec68_schedulers", "scheduler policy enforcement"),
    "ablations": ("repro.experiments.ablations", "mux tree / IOTLB / bandwidth ablations"),
    "fleet_scaling": (
        "repro.experiments.fleet_scaling",
        "fleet throughput + rejections vs node count x offered load",
    ),
    "chaos_recovery": (
        "repro.experiments.chaos_recovery",
        "availability + placement tails vs injected node-crash rate",
    ),
    "migration_recovery": (
        "repro.experiments.migration_recovery",
        "proactive evacuation (live migration) vs reactive failover",
    ),
    "serve_slo": (
        "repro.experiments.serve_slo",
        "in-budget p99 attainment: SLO shedding vs queue-depth admission",
    ),
    "capacity_plan": (
        "repro.experiments.capacity_plan",
        "capacity sweep: analytic fast-forward vs fleet DES, side by side",
    ),
}


# Back-compat alias: the conversion lives in repro.envelope now, shared
# by every subcommand's --json path.
_to_jsonable = to_jsonable


def _run_one(key: str, jobs: int = 1, *, entry: str = "main"):
    """Run one experiment; returns ``(ok, result)`` instead of raising.

    When a result cache is installed (``--cache-dir``), the whole
    experiment is keyed on (registry key, entry point, simulator mode,
    source-tree digest) — ``--jobs`` is deliberately *not* part of the
    key, since fan-out never changes results.
    """
    import importlib
    import inspect

    from repro.experiments.cache import current_cache

    module_name, _description = EXPERIMENTS[key]
    cache = current_cache()
    cache_key = None
    if cache is not None:
        cache_key = cache.key(
            f"cli.{key}",
            {"entry": entry, "fast_path": os.environ.get("REPRO_FAST_PATH", "1")},
        )
        hit, result = cache.load(cache_key)
        if hit:
            print(f"### {key}: {module_name} [cached] " + "#" * 11)
            return True, result
    started = time.time()
    print(f"### {key}: {module_name} " + "#" * 20)
    try:
        module = importlib.import_module(module_name)
        # Fall back to main() for experiments without a quick() variant.
        runner = getattr(module, entry, None) or module.main
        if jobs > 1 and "jobs" in inspect.signature(runner).parameters:
            result = runner(jobs=jobs)
        else:
            result = runner()
    except Exception:
        traceback.print_exc()
        print(f"[{key} FAILED after {time.time() - started:.1f}s wall]")
        return False, None
    print(f"[{key} done in {time.time() - started:.1f}s wall]")
    if cache is not None and cache_key is not None:
        cache.store(cache_key, result)
    return True, result


def _maybe_dump_opstream(
    args: argparse.Namespace, cluster, sharded: bool
) -> None:
    """Write the op-stream ledger to ``--opstream-stats`` (side channel).

    The stats file is diagnostic output, never part of a result envelope:
    it records codec/lookahead/rollback accounting for the bench harness
    and the CI proxy gate.  A serial run writes an empty object so
    callers can treat the file's existence uniformly.
    """
    path = getattr(args, "opstream_stats", None)
    if not path:
        return
    import json

    stats = cluster.opstream_stats() if sharded else {}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _fleet_command(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.fleet import (
        AdmissionConfig,
        FleetCluster,
        FleetService,
        TrafficGenerator,
        TrafficProfile,
        make_policy,
    )

    # One node (or one shard) degenerates to the serial path: forking a
    # pool to stream ops to a single worker only adds IPC overhead.
    sharded = args.shards > 1 and args.nodes > 1
    cluster = None
    try:
        if sharded:
            from repro.parallel import ShardedFleetCluster, ShardedFleetService

            cluster = ShardedFleetCluster.build(
                args.nodes,
                shards=args.shards,
                max_oversub=args.max_oversub,
                lookahead=args.lookahead,
            )
            service_cls = ShardedFleetService
        else:
            cluster = FleetCluster.build(args.nodes, max_oversub=args.max_oversub)
            service_cls = FleetService
        generator = TrafficGenerator(
            TrafficProfile(load=args.load),
            fleet_slots=cluster.total_slots,
            seed=args.seed,
        )
        service = service_cls(
            cluster,
            make_policy(args.policy),
            admission=AdmissionConfig(queue_limit=args.queue, max_retries=args.retries),
        )
        result = service.serve(generator.generate(args.requests))
        node_report = cluster.simulated_report()
        _maybe_dump_opstream(args, cluster, sharded)
    except ReproError as error:
        print(f"fleet: error: {error}", file=sys.stderr)
        return 2
    finally:
        if sharded and cluster is not None:
            cluster.close()
    if args.json:
        results = _to_jsonable(result.summary())
        results["nodes"] = _to_jsonable(node_report)
        # ``--shards``/``--lookahead`` are execution details, not parameters:
        # results are byte-identical at any shard count or speculation depth,
        # so they stay out of the envelope.
        emit_envelope(
            "fleet",
            {
                "nodes": args.nodes,
                "load": args.load,
                "seed": args.seed,
                "requests": args.requests,
                "policy": args.policy,
                "queue": args.queue,
                "retries": args.retries,
                "max_oversub": args.max_oversub,
            },
            results,
        )
    else:
        print(
            f"fleet: {args.nodes} nodes ({cluster.total_slots} slots), "
            f"policy {args.policy}, load {args.load}, seed {args.seed}, "
            f"{args.requests} requests"
        )
        print(result.metrics.render())
    if args.trace:
        print("\nplacement trace:")
        for line in result.metrics.trace:
            print(f"  {line}")
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    """Replay (or synthesize) a session trace through the serving gateway."""
    from repro.errors import ReproError
    from repro.fleet import AdmissionConfig, FleetCluster, make_policy
    from repro.serve import (
        ArrivalTrace,
        Gateway,
        GatewayFleetService,
        GatewayShardedFleetService,
        ServeProfile,
        SloBudgetPolicy,
        synthesize,
    )

    sessions = args.sessions if args.sessions is not None else (
        800 if args.quick else 2000
    )
    nodes = args.nodes if args.nodes is not None else (2 if args.quick else 3)
    sharded = args.shards > 1 and nodes > 1
    cluster = None
    try:
        if sharded:
            from repro.parallel import ShardedFleetCluster

            cluster = ShardedFleetCluster.build(
                nodes, shards=args.shards, lookahead=args.lookahead
            )
            service_cls = GatewayShardedFleetService
        else:
            cluster = FleetCluster.build(nodes)
            service_cls = GatewayFleetService
        if args.trace_file:
            trace = ArrivalTrace.load(args.trace_file)
        else:
            trace = synthesize(
                ServeProfile(
                    load=args.load,
                    followup_prob=args.followup,
                    diurnal_amplitude=args.diurnal,
                    burst_prob=args.burst,
                ),
                sessions=sessions,
                fleet_slots=cluster.total_slots,
                seed=args.seed,
            )
        if args.save_trace:
            path = trace.write_json(args.save_trace)
            print(f"serve: wrote trace {path}", file=sys.stderr)
        admission_policy = (
            SloBudgetPolicy() if args.admission == "slo-budget" else None
        )
        service = service_cls(
            cluster,
            make_policy(args.policy),
            admission=AdmissionConfig(
                queue_limit=args.queue, max_retries=args.retries
            ),
            admission_policy=admission_policy,
        )
        gateway = Gateway(service, trace)
        result = gateway.run()
        _maybe_dump_opstream(args, cluster, sharded)
    except ReproError as error:
        print(f"serve: error: {error}", file=sys.stderr)
        return 2
    finally:
        if sharded and cluster is not None:
            cluster.close()
    results = _to_jsonable(result.to_dict())
    if args.json:
        # ``--shards``/``--lookahead`` are execution details: envelopes are
        # byte-identical at any shard count or speculation depth, so they
        # stay out of the params block.  The
        # trace is identified by digest, not file path: synthesizing a
        # trace and replaying its saved copy are the same experiment.
        emit_envelope(
            "serve",
            {
                "trace": trace.digest(),
                "sessions": sessions,
                "seed": args.seed,
                "load": args.load,
                "followup": args.followup,
                "diurnal": args.diurnal,
                "burst": args.burst,
                "nodes": nodes,
                "policy": args.policy,
                "admission": args.admission,
                "queue": args.queue,
                "retries": args.retries,
                "quick": args.quick,
            },
            results,
        )
        return 0
    trace_info = results["trace"]
    print(
        f"serve: {trace_info['sessions']} sessions in {trace_info['chains']} "
        f"chains (trace {trace_info['name']}, digest {trace_info['digest']}), "
        f"{nodes} nodes, admission {args.admission}"
    )
    session_info = results["sessions"]
    print(f"outcomes: {session_info['outcomes']}")
    print(
        f"availability: {session_info['availability']:.4f}  "
        f"abandoned: {session_info['abandoned']}"
    )
    for name, stats in results["classes"].items():
        p99 = stats.get("admit_p99_ps")
        tail = f"  admit p99 {p99 / 1e9:.2f} ms" if p99 else ""
        print(
            f"  {name:<8} admitted {stats.get('admitted', 0):>6}  "
            f"shed {stats.get('shed', 0):>5}  "
            f"failed {stats.get('failed', 0):>4}{tail}"
        )
    if results["slo"] is not None:
        for name, stats in results["slo"]["classes"].items():
            print(
                f"  slo[{name}]: attainment {stats['attainment']:.4f} "
                f"(budget {stats['budget_ps'] / 1e9:.2f} ms, "
                f"estimate {stats['estimate_ps'] / 1e9:.2f} ms)"
            )
    return 0


def _capacity_command(args: argparse.Namespace) -> int:
    """One capacity-planning question, answered by the chosen backend."""
    from repro.analytic import CapacityConfig, default_store, run_capacity
    from repro.errors import ReproError
    from repro.sim.clock import ms

    try:
        config = CapacityConfig(
            tenants=args.tenants,
            nodes=args.nodes,
            load=args.load,
            seed=args.seed,
            mean_session_ps=ms(args.mean_session_ms),
            horizon_ps=int(args.horizon_s * 10**12),
            bootstrap=args.bootstrap,
        )
        results = run_capacity(
            args.mode, config, goodput=not args.no_goodput
        )
    except ReproError as error:
        print(f"capacity: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        emit_envelope(
            "capacity",
            {
                "mode": args.mode,
                "tenants": args.tenants,
                "nodes": args.nodes,
                "load": args.load,
                "seed": args.seed,
                "mean_session_ms": args.mean_session_ms,
                "horizon_s": args.horizon_s,
                "bootstrap": args.bootstrap,
                "goodput": not args.no_goodput,
            },
            results,
        )
        return 0
    print(
        f"capacity[{args.mode}/{results['engine']}]: {args.tenants} tenants, "
        f"{args.nodes} nodes, load {args.load}, seed {args.seed}"
    )
    latency = results["latency_ps"]
    cis = results.get("latency_ci95_ps") or {}
    print(
        f"placed {results['placements']:.1f} / {results['requests']} "
        f"(rejection rate {results['rejection_rate']:.4f})"
    )
    mean_ci = cis.get("mean_ps")
    ci_note = (
        f"  [ci95 {mean_ci[0] / 1e9:.3f}..{mean_ci[1] / 1e9:.3f}]"
        if mean_ci
        else ""
    )
    print(
        f"latency: mean {latency['mean'] / 1e9:.3f} ms{ci_note}  "
        f"p50 {latency['p50'] / 1e9:.3f} ms  p99 {latency['p99'] / 1e9:.3f} ms"
    )
    for name, stats in results["classes"].items():
        ci = stats.get("attainment_ci95") or []
        tail = f"  [ci95 {ci[0]:.4f}..{ci[1]:.4f}]" if ci else ""
        print(
            f"  {name:<8} budget {stats['budget_ps'] / 1e9:>6.1f} ms  "
            f"share {stats['share']:.2f}  "
            f"attainment {stats['attainment']:.4f}{tail}"
        )
    util = "  ".join(
        f"{t}={u:.2f}" for t, u in sorted(results["utilization_by_type"].items())
    )
    print(f"utilization/slot: {util}")
    if results["goodput_gbps_by_type"]:
        goodput = "  ".join(
            f"{t}={v:.1f}" for t, v in sorted(results["goodput_gbps_by_type"].items())
        )
        print(f"goodput GB/s: {goodput}")
    print(
        f"span {results['span_ps'] / 1e12:.3f} s  "
        f"calibration digest {results['calibration_digest']}  "
        f"cells {len(default_store())}"
    )
    return 0


def _chaos_command(args: argparse.Namespace) -> int:
    """Replay a fault plan and report injected events vs recovery outcomes."""
    import dataclasses

    from repro.errors import ReproError
    from repro.faults import resolve_plan, run_single_chaos
    from repro.sim.clock import ms

    cluster = None
    sharded = (
        args.experiment == "fleet" and args.shards > 1 and args.nodes > 1
    )
    try:
        plan = resolve_plan(args.plan)
        if args.seed is not None:
            plan = dataclasses.replace(plan, seed=args.seed)
        if args.experiment == "fleet":
            from repro.fleet import (
                FleetCluster,
                FleetService,
                TrafficGenerator,
                TrafficProfile,
                make_policy,
            )

            if sharded:
                from repro.parallel import ShardedFleetCluster, ShardedFleetService

                cluster = ShardedFleetCluster.build(
                    args.nodes, shards=args.shards, lookahead=args.lookahead
                )
                service_cls = ShardedFleetService
            else:
                cluster = FleetCluster.build(args.nodes)
                service_cls = FleetService
            generator = TrafficGenerator(
                TrafficProfile(load=args.load),
                fleet_slots=cluster.total_slots,
                seed=args.traffic_seed,
            )
            service = service_cls(cluster, make_policy(args.policy))
            service.install_faults(plan)
            if args.autoscale:
                from repro.fleet import AutoscaleConfig

                if args.autoscale >= args.nodes:
                    raise ReproError(
                        f"--autoscale {args.autoscale} must leave at least "
                        f"one active node (fleet has {args.nodes})"
                    )
                standby = tuple(
                    f"node{i}"
                    for i in range(args.nodes - args.autoscale, args.nodes)
                )
                service.install_autoscaler(
                    AutoscaleConfig(standby_nodes=standby)
                )
            if args.drain_node:
                service.schedule_op(
                    ms(args.drain_at_ms), "drain", node_name=args.drain_node
                )
            result = service.serve(generator.generate(args.requests))
            results = {
                "plan": _to_jsonable(plan.to_dict()),
                "injected": _to_jsonable(result.fault_log.summary()),
                "outcomes": result.outcome_counts(),
                "availability": result.availability(),
                "summary": _to_jsonable(result.summary()),
                "nodes": _to_jsonable(cluster.simulated_report()),
            }
            if service.autoscaler is not None:
                results["autoscaler"] = _to_jsonable(
                    service.autoscaler.summary()
                )
            _maybe_dump_opstream(args, cluster, sharded)
        else:  # single
            report = run_single_chaos(plan, window_ps=ms(args.window_ms))
            results = {
                "plan": _to_jsonable(plan.to_dict()),
                "injected": _to_jsonable(report["fault_log"]),
                "report": _to_jsonable(report),
            }
    except ReproError as error:
        print(f"chaos: error: {error}", file=sys.stderr)
        return 2
    finally:
        if sharded and cluster is not None:
            cluster.close()
    if args.json:
        params = {
            "mode": args.experiment,
            "plan": args.plan,
            "seed": plan.seed,
            "nodes": args.nodes,
            "requests": args.requests,
            "load": args.load,
            "traffic_seed": args.traffic_seed,
            "policy": args.policy,
            "window_ms": args.window_ms,
            "reference": args.reference,
        }
        # Only stamped when requested, so legacy envelopes stay
        # byte-identical.
        if args.autoscale:
            params["autoscale_standby"] = args.autoscale
        if args.drain_node:
            params["drain_node"] = args.drain_node
            params["drain_at_ms"] = args.drain_at_ms
        emit_envelope("chaos", params, results)
        return 0
    print(f"chaos[{args.experiment}]: plan {plan.name} (seed {plan.seed}, "
          f"digest {plan.digest()})")
    for event in results["injected"]["events"]:
        details = event.get("details", {})
        extra = f" {details}" if details else ""
        print(f"  {event['at_ps']:>15} ps  {event['kind']:<18} "
              f"{event['target']:<10} -> {event['outcome']}{extra}")
    if args.experiment == "fleet":
        print(f"outcomes: {results['outcomes']}")
        print(f"availability: {results['availability']:.4f}")
        if "autoscaler" in results:
            print(f"autoscaler: {results['autoscaler']['by_action']}")
    else:
        report = results["report"]
        print(f"victim progress: {report['victim_progress_units']} units")
        print(f"violations: {report['violations']}")
        print(f"quarantined: {report['watchdog']['quarantined'] or 'none'}")
    print(f"recovery digest: {results['injected']['digest']}")
    return 0


def _fuzz_command(args: argparse.Namespace) -> int:
    """Constrained-random differential fuzzing over the whole stack."""
    from repro.errors import ReproError
    from repro.scenario import FuzzConfig, replay, run_fuzz

    def narrate(line: str) -> None:
        print(line, file=sys.stderr)

    try:
        if args.replay:
            result = replay(args.replay)
            narrate(
                f"fuzz: replayed {result.scenario.digest()} "
                f"({result.scenario.kind}) -> "
                f"{'ok' if result.ok else 'FAIL'}"
            )
            if args.json:
                emit_envelope(
                    "fuzz",
                    {"replay": args.replay, "digest": result.scenario.digest()},
                    result.to_dict(),
                )
            else:
                for failure in result.failures:
                    print(f"  {failure}")
            return 0 if result.ok else 1
        config = FuzzConfig(
            seed=args.seed,
            count=args.count,
            kinds=args.kinds,
            shrink_failures=not args.no_shrink,
            save_failures=args.save_failures,
        )
        report = run_fuzz(config, narrate=narrate)
    except (ReproError, OSError, ValueError) as error:
        print(f"fuzz: error: {error}", file=sys.stderr)
        return 2
    results = report.to_dict()
    if args.json:
        emit_envelope(
            "fuzz",
            {
                "seed": args.seed,
                "count": args.count,
                "kinds": sorted(config.generator().kinds),
                "shrink": not args.no_shrink,
            },
            results,
        )
    else:
        print(
            f"fuzz: {results['scenarios']} scenarios (seed {args.seed}): "
            f"{results['passed']} passed, {results['failed']} failed "
            f"{results['by_kind']}"
        )
        for failure in results["failures"]:
            print(f"  [{failure['index']}] {failure['kind']} "
                  f"{failure['digest']}: {failure['failures']}")
        for path in report.saved_paths:
            print(f"  reproducer: {path}")
    return 0 if report.ok else 1


def _trace_command(args: argparse.Namespace) -> int:
    from repro.telemetry import install_tracer, uninstall_tracer

    output = args.output or f"trace-{args.experiment}.json"
    tracer = install_tracer()
    try:
        # Serial on purpose: parallel_map workers are separate processes
        # whose events would never reach this tracer.
        entry = "quick" if args.quick else "main"
        with contextlib.redirect_stdout(sys.stderr):
            ok, _result = _run_one(args.experiment, entry=entry)
        if not ok:
            return 1
        path = tracer.write(output)
    finally:
        uninstall_tracer()
    categories = sorted(tracer.span_categories())
    if args.json:
        emit_envelope(
            args.experiment,
            {"quick": args.quick, "output": str(path)},
            {
                "trace_file": str(path),
                "events": tracer.event_count,
                "span_categories": categories,
            },
        )
    else:
        print(
            f"trace: wrote {path} ({tracer.event_count} events; "
            f"span categories: {', '.join(categories) or 'none'})"
        )
        print("trace: load it in https://ui.perfetto.dev or chrome://tracing")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the OPTIMUS paper's tables and figures.",
        epilog=EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")
    lister = sub.add_parser("list", help="list available experiments")
    lister.add_argument(
        "--json", action="store_true", help="emit the registry as JSON"
    )
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    runner.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep cells across N worker processes",
    )
    runner.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top 25 cumulative entries",
    )
    runner.add_argument(
        "--reference",
        action="store_true",
        help="disable the simulator fast path (timing-equivalent reference mode)",
    )
    runner.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable result envelope on stdout",
    )
    runner.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
        help="content-addressed result cache directory "
        "(default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    runner.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (always recompute)",
    )

    tracer_cmd = sub.add_parser(
        "trace", help="run one experiment under the telemetry tracer"
    )
    tracer_cmd.add_argument("experiment", choices=list(EXPERIMENTS))
    tracer_cmd.add_argument(
        "--quick",
        action="store_true",
        help="use the experiment's quick() grid when it has one",
    )
    tracer_cmd.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="trace file path (default: trace-<experiment>.json)",
    )
    tracer_cmd.add_argument(
        "--reference",
        action="store_true",
        help="disable the simulator fast path (timing-equivalent reference mode)",
    )
    tracer_cmd.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable result envelope on stdout",
    )

    fleet = sub.add_parser(
        "fleet", help="serve deterministic tenant traffic on a multi-FPGA fleet"
    )
    fleet.add_argument("--nodes", type=int, default=4, help="fleet size")
    fleet.add_argument("--load", type=float, default=0.9, help="offered load")
    fleet.add_argument("--seed", type=int, default=1, help="traffic seed")
    fleet.add_argument("--requests", type=int, default=200, help="request count")
    fleet.add_argument(
        "--policy",
        default="best-fit",
        choices=["first-fit", "best-fit", "affinity"],
        help="placement policy",
    )
    fleet.add_argument("--queue", type=int, default=32, help="admission queue limit")
    fleet.add_argument("--retries", type=int, default=3, help="max placement retries")
    fleet.add_argument(
        "--max-oversub", type=int, default=4, help="tenants per physical slot"
    )
    fleet.add_argument("--json", action="store_true", help="emit summary as JSON")
    fleet.add_argument(
        "--trace", action="store_true", help="print the full placement trace"
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard fleet nodes across N worker processes (byte-identical results)",
    )
    fleet.add_argument(
        "--lookahead",
        type=int,
        default=0,
        metavar="K",
        help="let shard workers speculate K epochs ahead of the coordinator "
        "(0 = no speculation; byte-identical results at any depth)",
    )
    fleet.add_argument(
        "--opstream-stats",
        metavar="FILE",
        default=None,
        help="write the sharded op-stream/speculation ledger as JSON",
    )

    serve = sub.add_parser(
        "serve", help="replay a session trace through the SLO-aware gateway"
    )
    serve.add_argument(
        "--trace",
        dest="trace_file",
        metavar="FILE",
        default=None,
        help="replay a .json/.csv arrival trace instead of synthesizing one",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=None,
        metavar="N",
        help="synthetic trace size (default: 2000, or 800 with --quick)",
    )
    serve.add_argument("--seed", type=int, default=1, help="synthetic trace seed")
    serve.add_argument("--load", type=float, default=1.5, help="offered load")
    serve.add_argument(
        "--followup",
        type=float,
        default=0.3,
        metavar="P",
        help="closed-loop probability a tenant returns after a session",
    )
    serve.add_argument(
        "--diurnal",
        type=float,
        default=0.0,
        metavar="A",
        help="diurnal rate-modulation amplitude in [0, 1)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=0.0,
        metavar="P",
        help="per-arrival probability of starting a burst episode",
    )
    serve.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="fleet size (default: 3, or 2 with --quick)",
    )
    serve.add_argument(
        "--policy",
        default="best-fit",
        choices=["first-fit", "best-fit", "affinity"],
        help="placement policy",
    )
    serve.add_argument(
        "--admission",
        default="slo-budget",
        choices=["queue-depth", "slo-budget"],
        help="admission policy (queue-depth = legacy bounded queue only)",
    )
    serve.add_argument("--queue", type=int, default=32, help="admission queue limit")
    serve.add_argument("--retries", type=int, default=3, help="max placement retries")
    serve.add_argument(
        "--quick", action="store_true", help="small fleet + short trace preset"
    )
    serve.add_argument(
        "--save-trace",
        metavar="FILE",
        default=None,
        help="write the (synthesized) trace as JSON for later replay",
    )
    serve.add_argument("--json", action="store_true", help="emit envelope as JSON")
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard fleet nodes across N worker processes (byte-identical results)",
    )
    serve.add_argument(
        "--lookahead",
        type=int,
        default=0,
        metavar="K",
        help="let shard workers speculate K epochs ahead of the coordinator "
        "(0 = no speculation; byte-identical results at any depth)",
    )
    serve.add_argument(
        "--opstream-stats",
        metavar="FILE",
        default=None,
        help="write the sharded op-stream/speculation ledger as JSON",
    )

    from repro.experiments.harness import STACK_MODES

    capacity = sub.add_parser(
        "capacity",
        help="fleet capacity planning (analytic fast-forward or DES)",
    )
    capacity.add_argument(
        "--mode",
        default="analytic",
        # Single-sourced from the stack registry: a new stack mode shows
        # up here (and in error messages) without touching the CLI.
        choices=list(STACK_MODES),
        help="backend: analytic = calibrated planner, optimus = fleet DES",
    )
    capacity.add_argument(
        "--tenants", type=int, default=100_000, help="tenant request count"
    )
    capacity.add_argument("--nodes", type=int, default=8, help="fleet size")
    capacity.add_argument("--load", type=float, default=1.2, help="offered load")
    capacity.add_argument("--seed", type=int, default=7, help="traffic seed")
    capacity.add_argument(
        "--mean-session-ms",
        type=int,
        default=20,
        metavar="MS",
        help="mean tenant session length in milliseconds",
    )
    capacity.add_argument(
        "--horizon-s",
        type=float,
        default=0.0,
        metavar="S",
        help="simulated-time horizon in seconds (0 = whole trace)",
    )
    capacity.add_argument(
        "--bootstrap",
        type=int,
        default=200,
        metavar="B",
        help="bootstrap resamples for the 95%% confidence intervals",
    )
    capacity.add_argument(
        "--no-goodput",
        action="store_true",
        help="skip calibrated per-type goodput (avoids calibration runs)",
    )
    capacity.add_argument("--json", action="store_true", help="emit envelope as JSON")

    chaos = sub.add_parser(
        "chaos", help="inject a deterministic fault plan and watch recovery"
    )
    chaos.add_argument(
        "experiment",
        choices=["fleet", "single"],
        help="fleet = serving loop under faults; single = one hypervisor",
    )
    from repro.faults.plan import preset_names

    chaos.add_argument(
        "--plan",
        default="single-node-crash",
        metavar="PRESET|FILE",
        # Single-sourced from the fault-plan registry, like --mode above:
        # registering a preset adds it here and to the fuzzer's draws.
        help="fault-plan preset name or JSON plan file "
        f"(presets: {', '.join(preset_names())})",
    )
    chaos.add_argument(
        "--seed", type=int, default=None, help="override the plan's seed"
    )
    chaos.add_argument("--nodes", type=int, default=3, help="fleet size")
    chaos.add_argument(
        "--requests", type=int, default=80, help="fleet request count"
    )
    chaos.add_argument("--load", type=float, default=0.85, help="offered load")
    chaos.add_argument(
        "--traffic-seed", type=int, default=1, help="tenant traffic seed"
    )
    chaos.add_argument(
        "--policy",
        default="best-fit",
        choices=["first-fit", "best-fit", "affinity"],
        help="placement policy",
    )
    chaos.add_argument(
        "--window-ms",
        type=int,
        default=20,
        metavar="MS",
        help="single-platform run window in milliseconds",
    )
    chaos.add_argument(
        "--reference",
        action="store_true",
        help="disable the simulator fast path (timing-equivalent reference mode)",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable envelope of events vs outcomes",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard fleet nodes across N worker processes (byte-identical results)",
    )
    chaos.add_argument(
        "--lookahead",
        type=int,
        default=0,
        metavar="K",
        help="let shard workers speculate K epochs ahead of the coordinator "
        "(0 = no speculation; byte-identical results at any depth)",
    )
    chaos.add_argument(
        "--opstream-stats",
        metavar="FILE",
        default=None,
        help="write the sharded op-stream/speculation ledger as JSON",
    )
    chaos.add_argument(
        "--autoscale",
        type=int,
        default=0,
        metavar="N",
        help="install the elastic autoscaler with the last N fleet nodes "
        "parked as standby capacity (proactive evacuation of DEGRADED nodes)",
    )
    chaos.add_argument(
        "--drain-node",
        default=None,
        metavar="NAME",
        help="schedule a typed drain (cordon + live-migrate residents) of NAME",
    )
    chaos.add_argument(
        "--drain-at-ms",
        type=int,
        default=5,
        metavar="MS",
        help="simulated time of the scheduled --drain-node, in milliseconds",
    )
    from repro.scenario import kind_names

    fuzz = sub.add_parser(
        "fuzz",
        help="constrained-random differential fuzzing of the whole stack",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (scenario i is a "
        "pure function of (seed, i))"
    )
    fuzz.add_argument(
        "--count", type=int, default=5, metavar="N",
        help="number of scenarios to draw and run"
    )
    fuzz.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2",
        help="comma-separated scenario kinds to draw from "
        f"(default: all; kinds: {', '.join(kind_names())})",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures as drawn, without delta-debugging them down "
        "to minimal reproducers",
    )
    fuzz.add_argument(
        "--save-failures",
        metavar="DIR",
        default=None,
        help="write each (shrunk) failing scenario as a canonical-JSON "
        "reproducer file under DIR",
    )
    fuzz.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="re-run one saved reproducer through the oracle instead of "
        "fuzzing",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="emit the campaign envelope as JSON"
    )

    args = parser.parse_args(argv)

    if args.command == "fuzz":
        return _fuzz_command(args)

    if args.command == "fleet":
        return _fleet_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "capacity":
        return _capacity_command(args)

    if args.command == "list" or args.command is None:
        as_json = bool(getattr(args, "json", False))
        if as_json:
            registry = {
                key: {"module": module, "description": description}
                for key, (module, description) in EXPERIMENTS.items()
            }
            print(json.dumps(registry, indent=2))
            return 0
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_module, description) in EXPERIMENTS.items():
            print(f"  {key.ljust(width)}  {description}")
        print("\nrun with: python -m repro run <experiment|all>")
        return 0

    if args.reference:
        from repro.platform.params import set_default_fast_path

        # The env var also covers worker processes started via "spawn".
        os.environ["REPRO_FAST_PATH"] = "0"
        set_default_fast_path(False)

    if args.command == "chaos":
        return _chaos_command(args)

    if args.command == "trace":
        return _trace_command(args)

    from repro.experiments.cache import install_cache, uninstall_cache

    cache = None
    if not args.no_cache:
        cache = install_cache(args.cache_dir)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        as_json = bool(args.json)
        redirect = (
            contextlib.redirect_stdout(sys.stderr)
            if as_json
            else contextlib.nullcontext()
        )
        params = {"jobs": args.jobs, "reference": args.reference}
        if args.experiment == "all":
            results, failed = {}, []
            with redirect:
                for key in EXPERIMENTS:
                    ok, result = _run_one(key, jobs=args.jobs)
                    if ok:
                        results[key] = result
                    else:
                        failed.append(key)
            if as_json:
                emit_envelope(
                    "all", params, {"tables": results, "failed": failed}
                )
            if failed:
                print(
                    f"FAILED experiments: {', '.join(failed)}",
                    file=sys.stderr if as_json else sys.stdout,
                )
                return 1
            return 0
        with redirect:
            ok, result = _run_one(args.experiment, jobs=args.jobs)
        if not ok:
            return 1
        if as_json:
            emit_envelope(args.experiment, params, result)
        return 0
    finally:
        if cache is not None:
            print(cache.render(), file=sys.stderr)
            uninstall_cache()
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(25)


if __name__ == "__main__":
    sys.exit(main())
