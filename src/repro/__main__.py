"""Command-line entry point: list and run the paper's experiments.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro list --json          # same, machine-readable
    python -m repro run fig4             # one experiment
    python -m repro run all              # the whole evaluation section
    python -m repro run fig6 --jobs 8    # fan sweep cells across processes
    python -m repro run fig5 --profile   # print a cProfile summary after
    python -m repro run fig4 --reference # per-line reference timing path
    python -m repro fleet --nodes 4 --load 0.9 --seed 1   # fleet serving

``run`` exits non-zero if any experiment raises (and keeps going through
the rest of ``all``, reporting every failure at the end).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback

EXPERIMENTS = {
    "fig1": ("repro.experiments.fig1_sssp", "SSSP: shared-memory vs host-centric"),
    "table2": ("repro.experiments.table2_resources", "FPGA resource utilization"),
    "fig4": ("repro.experiments.fig4_overhead", "virtualization overhead vs pass-through"),
    "fig5": ("repro.experiments.fig5_latency", "LinkedList latency sweeps"),
    "fig6": ("repro.experiments.fig6_throughput", "MemBench throughput sweeps"),
    "fig7": ("repro.experiments.fig7_scaling", "real-world benchmark scaling"),
    "fig8": ("repro.experiments.fig8_temporal", "temporal multiplexing"),
    "table3": ("repro.experiments.table3_fairness", "spatial-multiplexing fairness"),
    "table4": ("repro.experiments.table4_colocation", "MemBench co-location"),
    "sec68": ("repro.experiments.sec68_schedulers", "scheduler policy enforcement"),
    "ablations": ("repro.experiments.ablations", "mux tree / IOTLB / bandwidth ablations"),
    "fleet_scaling": (
        "repro.experiments.fleet_scaling",
        "fleet throughput + rejections vs node count x offered load",
    ),
}


def _run_one(key: str, jobs: int = 1) -> bool:
    """Run one experiment; returns False (instead of raising) on failure."""
    import importlib
    import inspect

    module_name, _description = EXPERIMENTS[key]
    started = time.time()
    print(f"### {key}: {module_name} " + "#" * 20)
    try:
        module = importlib.import_module(module_name)
        if jobs > 1 and "jobs" in inspect.signature(module.main).parameters:
            module.main(jobs=jobs)
        else:
            module.main()
    except Exception:
        traceback.print_exc()
        print(f"[{key} FAILED after {time.time() - started:.1f}s wall]")
        return False
    print(f"[{key} done in {time.time() - started:.1f}s wall]")
    return True


def _fleet_command(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.fleet import (
        AdmissionConfig,
        FleetCluster,
        FleetService,
        TrafficGenerator,
        TrafficProfile,
        make_policy,
    )

    try:
        cluster = FleetCluster.build(args.nodes, max_oversub=args.max_oversub)
        generator = TrafficGenerator(
            TrafficProfile(load=args.load),
            fleet_slots=cluster.total_slots,
            seed=args.seed,
        )
        service = FleetService(
            cluster,
            make_policy(args.policy),
            admission=AdmissionConfig(queue_limit=args.queue, max_retries=args.retries),
        )
        result = service.serve(generator.generate(args.requests))
    except ReproError as error:
        print(f"fleet: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.summary(), indent=2))
    else:
        print(
            f"fleet: {args.nodes} nodes ({cluster.total_slots} slots), "
            f"policy {args.policy}, load {args.load}, seed {args.seed}, "
            f"{args.requests} requests"
        )
        print(result.metrics.render())
    if args.trace:
        print("\nplacement trace:")
        for line in result.metrics.trace:
            print(f"  {line}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the OPTIMUS paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command")
    lister = sub.add_parser("list", help="list available experiments")
    lister.add_argument(
        "--json", action="store_true", help="emit the registry as JSON"
    )
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    runner.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep cells across N worker processes",
    )
    runner.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top 25 cumulative entries",
    )
    runner.add_argument(
        "--reference",
        action="store_true",
        help="disable the simulator fast path (timing-equivalent reference mode)",
    )

    fleet = sub.add_parser(
        "fleet", help="serve deterministic tenant traffic on a multi-FPGA fleet"
    )
    fleet.add_argument("--nodes", type=int, default=4, help="fleet size")
    fleet.add_argument("--load", type=float, default=0.9, help="offered load")
    fleet.add_argument("--seed", type=int, default=1, help="traffic seed")
    fleet.add_argument("--requests", type=int, default=200, help="request count")
    fleet.add_argument(
        "--policy",
        default="best-fit",
        choices=["first-fit", "best-fit", "affinity"],
        help="placement policy",
    )
    fleet.add_argument("--queue", type=int, default=32, help="admission queue limit")
    fleet.add_argument("--retries", type=int, default=3, help="max placement retries")
    fleet.add_argument(
        "--max-oversub", type=int, default=4, help="tenants per physical slot"
    )
    fleet.add_argument("--json", action="store_true", help="emit summary as JSON")
    fleet.add_argument(
        "--trace", action="store_true", help="print the full placement trace"
    )
    args = parser.parse_args(argv)

    if args.command == "fleet":
        return _fleet_command(args)

    if args.command == "list" or args.command is None:
        as_json = bool(getattr(args, "json", False))
        if as_json:
            registry = {
                key: {"module": module, "description": description}
                for key, (module, description) in EXPERIMENTS.items()
            }
            print(json.dumps(registry, indent=2))
            return 0
        width = max(len(k) for k in EXPERIMENTS)
        for key, (_module, description) in EXPERIMENTS.items():
            print(f"  {key.ljust(width)}  {description}")
        print("\nrun with: python -m repro run <experiment|all>")
        return 0

    if args.reference:
        import os

        from repro.platform.params import set_default_fast_path

        # The env var also covers worker processes started via "spawn".
        os.environ["REPRO_FAST_PATH"] = "0"
        set_default_fast_path(False)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.experiment == "all":
            failed = [key for key in EXPERIMENTS if not _run_one(key, jobs=args.jobs)]
            if failed:
                print(f"FAILED experiments: {', '.join(failed)}")
                return 1
            return 0
        return 0 if _run_one(args.experiment, jobs=args.jobs) else 1
    finally:
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(25)


if __name__ == "__main__":
    sys.exit(main())
