"""Accelerator models: Table 1's fourteen benchmarks plus base machinery."""

from repro.accel.aes import AES_PROFILE, AesJob
from repro.accel.base import (
    CMD_PREEMPT,
    CMD_RESUME,
    CMD_START,
    CTRL_CMD,
    CTRL_STATE_ADDR,
    CTRL_STATE_SIZE,
    CTRL_STATUS,
    STATUS_DONE,
    STATUS_IDLE,
    STATUS_RUNNING,
    STATUS_SAVED,
    AcceleratorJob,
    AcceleratorProfile,
    ExecutionContext,
)
from repro.accel.btc import BTC_PROFILE, BtcJob
from repro.accel.filters import GAU_PROFILE, GRS_PROFILE, SBL_PROFILE, GauJob, GrsJob, SblJob
from repro.accel.fir import FIR_PROFILE, FirJob
from repro.accel.grn import GRN_PROFILE, GrnJob
from repro.accel.hostcentric import HostCentricResult, HostCentricSsspRunner
from repro.accel.linkedlist import LL_PROFILE, LinkedListJob, build_list_image
from repro.accel.md5 import MD5_PROFILE, Md5Job
from repro.accel.membench import (
    MB_PROFILE,
    MODE_MIXED,
    MODE_READ,
    MODE_WRITE,
    MemBenchJob,
)
from repro.accel.registry import (
    CATALOG,
    REAL_WORLD,
    STREAMING,
    make_job,
    profile_of,
    table1_rows,
)
from repro.accel.rsd import RSD_PROFILE, RsdJob
from repro.accel.sha import SHA_PROFILE, Sha512Job
from repro.accel.sssp import SSSP_PROFILE, SsspJob
from repro.accel.streaming import (
    REG_DST,
    REG_LEN,
    REG_PARAM0,
    REG_PARAM1,
    REG_SRC,
    StreamingJob,
)
from repro.accel.sw import SW_PROFILE, SwJob

__all__ = [
    "AES_PROFILE",
    "AcceleratorJob",
    "AcceleratorProfile",
    "AesJob",
    "BTC_PROFILE",
    "BtcJob",
    "CATALOG",
    "CMD_PREEMPT",
    "CMD_RESUME",
    "CMD_START",
    "CTRL_CMD",
    "CTRL_STATE_ADDR",
    "CTRL_STATE_SIZE",
    "CTRL_STATUS",
    "ExecutionContext",
    "FIR_PROFILE",
    "FirJob",
    "GAU_PROFILE",
    "GRN_PROFILE",
    "GRS_PROFILE",
    "GauJob",
    "GrnJob",
    "GrsJob",
    "HostCentricResult",
    "HostCentricSsspRunner",
    "LL_PROFILE",
    "LinkedListJob",
    "MB_PROFILE",
    "MD5_PROFILE",
    "MODE_MIXED",
    "MODE_READ",
    "MODE_WRITE",
    "Md5Job",
    "MemBenchJob",
    "REAL_WORLD",
    "REG_DST",
    "REG_LEN",
    "REG_PARAM0",
    "REG_PARAM1",
    "REG_SRC",
    "RSD_PROFILE",
    "RsdJob",
    "SBL_PROFILE",
    "SHA_PROFILE",
    "SSSP_PROFILE",
    "STATUS_DONE",
    "STATUS_IDLE",
    "STATUS_RUNNING",
    "STATUS_SAVED",
    "STREAMING",
    "SW_PROFILE",
    "SblJob",
    "Sha512Job",
    "SsspJob",
    "StreamingJob",
    "SwJob",
    "build_list_image",
    "make_job",
    "profile_of",
    "table1_rows",
]
