"""AES benchmark accelerator (Table 1: AES128, 1,965 LoC, 200 MHz)."""

from __future__ import annotations

from repro.accel.base import AcceleratorProfile
from repro.accel.streaming import REG_PARAM0, StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.aes128 import encrypt_ecb

AES_PROFILE = AcceleratorProfile(
    name="AES",
    description="AES128 Encryption Algorithm",
    loc_verilog=1965,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=3.62, bram_pct=2.82),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=96,
    state_bytes=64,
)

#: Default key when the guest does not program REG_PARAM0/REG_PARAM1.
DEFAULT_KEY = bytes(range(16))


class AesJob(StreamingJob):
    """ECB-encrypts a buffer in shared memory."""

    profile = AES_PROFILE
    bytes_per_cycle = 10.0  # ~2.0 GB/s demand at 200 MHz
    output_ratio = 1.0
    tile_lines = 64

    def __init__(self, *, key: bytes = DEFAULT_KEY, functional: bool = True) -> None:
        super().__init__(functional=functional)
        self.key = key

    def configure(self, registers) -> None:
        super().configure(registers)
        if REG_PARAM0 in registers:
            # Guests may pass a key id; derive 16 deterministic key bytes.
            seed = registers[REG_PARAM0]
            self.key = bytes((seed >> (8 * (i % 8)) ^ i) & 0xFF for i in range(16))

    def transform(self, data: bytes, offset: int) -> bytes:
        return encrypt_ecb(self.key, data)
