"""Accelerator model machinery: profiles, execution contexts, jobs.

The paper's accelerators are Verilog circuits; here each is a behavioral
model (:class:`AcceleratorJob`) that performs the *real* computation in
Python (so functional results are testable) while issuing DMAs and
charging compute cycles through an :class:`ExecutionContext`, which is the
simulation-time equivalent of the circuit's datapath.

The preemption interface (§4.2) is implemented cooperatively, exactly as
the paper prescribes for accelerator designers: a job calls
``yield from ctx.preempt_point()`` between units of work; when the
hypervisor has requested preemption the context drains in-flight DMAs,
serializes the job's *minimal architected state* (``save_state``) into the
guest-provided state buffer, signals completion, and the job body returns.
On resume the hypervisor restores the state and starts the body again —
the body must therefore be written re-entrantly, resuming from its saved
cursor (e.g. LinkedList saves just the next node address).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.fpga.afu import AfuSocket
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import Clock
from repro.sim.engine import Engine, Future

# Control-register offsets within each accelerator's 4 KB MMIO page (§4.2).
# These are privileged: the hypervisor traps guest access and drives them
# itself; guests only ever see emulated values.
CTRL_CMD = 0xE0
CTRL_STATUS = 0xE8
CTRL_STATE_ADDR = 0xF0
CTRL_STATE_SIZE = 0xF8

CMD_START = 1
CMD_PREEMPT = 2
CMD_RESUME = 3

STATUS_IDLE = 0
STATUS_RUNNING = 1
STATUS_SAVED = 2
STATUS_DONE = 3


@dataclass(frozen=True)
class AcceleratorProfile:
    """Static characteristics of one accelerator circuit (Table 1 / 2)."""

    name: str
    description: str
    loc_verilog: int  # lines of Verilog in the paper's implementation
    freq_mhz: float  # synthesis frequency (Table 1)
    footprint: ResourceFootprint  # single-instance (PT column of Table 2)
    character: SynthesisCharacter = SynthesisCharacter.NORMAL
    max_outstanding: int = 64  # DMA window (closed-loop issue depth)
    preemptible: bool = False  # implements the §4.2 interface natively
    state_bytes: int = 64  # architected state saved on preemption

    @property
    def clock(self) -> Clock:
        return Clock(self.freq_mhz)


class ExecutionContext:
    """The datapath a job runs against: DMA, clock, preemption plumbing."""

    def __init__(
        self,
        engine: Engine,
        socket: AfuSocket,
        *,
        clock: Clock,
        channel: VirtualChannel = VirtualChannel.VA,
    ) -> None:
        self.engine = engine
        self.socket = socket
        self.clock = clock
        self.channel = channel
        self.preempt_requested = False
        self.saved: Optional[Future] = None
        self._save_cost_ps = 0

    # -- datapath ---------------------------------------------------------------

    def read(self, gva: int, size: int = 64) -> Future:
        return self.socket.dma.read(gva, size, channel=self.channel)

    def write(self, gva: int, data: Optional[bytes] = None, size: Optional[int] = None) -> Future:
        return self.socket.dma.write(gva, data, size, channel=self.channel)

    def read_burst(self, gva: int, size: int) -> Future:
        """Read ``size`` contiguous bytes as one coalescible burst.

        Timing-equivalent to issuing per-line :meth:`read` calls and
        waiting for all of them; the future resolves to the joined bytes.
        """
        return self.socket.dma.read(gva, size, channel=self.channel, coalesced=True)

    def write_burst(self, gva: int, data: Optional[bytes] = None, size: Optional[int] = None) -> Future:
        """Write a contiguous burst (always expanded to per-line writes)."""
        return self.socket.dma.write(gva, data, size, channel=self.channel, coalesced=True)

    @property
    def coalescing_enabled(self) -> bool:
        """True when the simulator fast path is attached to this datapath."""
        return self.socket.dma.fastpath is not None

    def cycles(self, n: float) -> int:
        """Compute time: ``n`` cycles of the accelerator's own clock, in ps."""
        return self.clock.cycles(n)

    # -- preemption interface (§4.2) ------------------------------------------------

    def arm_preemption(self, save_cost_ps: int) -> Future:
        """Hypervisor side: request preemption; returns the 'saved' future."""
        self.preempt_requested = True
        self._save_cost_ps = save_cost_ps
        self.saved = self.engine.future()
        return self.saved

    def preempt_point(self) -> Generator:
        """Job side: yield-from between work units; True when preempted."""
        if not self.preempt_requested:
            return False
        # Stop issuing: queued-but-unissued requests are dropped (their
        # futures resolve to None; re-entrant jobs re-issue after resume),
        # then all genuinely in-flight transactions drain (§4.2).
        self.socket.dma.abandon_queued()
        yield self.socket.dma.drain()
        if self._save_cost_ps:
            yield self._save_cost_ps
        assert self.saved is not None
        if not self.saved.done():
            self.saved.set_result(True)
        return True


class AcceleratorJob:
    """Base class for one virtual accelerator's workload instance.

    Subclasses implement :meth:`body` (re-entrant generator),
    :meth:`save_state` / :meth:`restore_state`, and set ``self.done`` when
    the job finishes.  Everything a job needs from the guest arrives via
    application registers, mirrored into ``self.regs`` by the hypervisor.
    """

    profile: AcceleratorProfile

    def __init__(self, profile: Optional[AcceleratorProfile] = None) -> None:
        if profile is not None:
            self.profile = profile
        if getattr(self, "profile", None) is None:
            raise ConfigurationError("job needs an AcceleratorProfile")
        self.done = False
        self.regs: dict[int, int] = {}  # application-register view
        self.completion: Optional[Future] = None

    # -- configuration -----------------------------------------------------------

    def reg(self, offset: int, default: int = 0) -> int:
        return self.regs.get(offset, default)

    def configure(self, registers: dict[int, int]) -> None:
        """Receive the guest's application-register writes."""
        self.regs.update(registers)

    # -- execution ----------------------------------------------------------------

    def body(self, ctx: ExecutionContext) -> Generator:
        """The circuit's behavior; must be re-entrant across preemptions."""
        raise NotImplementedError

    # -- preemption state (§4.2: designers choose the minimal state) -----------------

    def state_size(self) -> int:
        """How much buffer memory the job needs for its saved state."""
        return self.profile.state_bytes

    def save_state(self) -> bytes:
        """Serialize the minimal architected state (cursors, partial sums)."""
        return b""

    def restore_state(self, data: bytes) -> None:
        """Reload state saved by :meth:`save_state`."""

    # -- bookkeeping ---------------------------------------------------------------

    def progress_units(self) -> int:
        """Monotonic progress counter (for fairness/throughput accounting)."""
        return 0
