"""BTC benchmark accelerator (Table 1: Bitcoin Miner, 1,009 LoC, 100 MHz).

Ported from the Open-Source-FPGA-Bitcoin-Miner: reads an 80-byte block
header from shared memory, grinds nonces with double-SHA256, and writes
back any winning nonce.  Almost pure compute — its DMA traffic is a
handful of lines, which is why Table 4 shows a co-located MemBench
keeping 1.00x of its bandwidth and Fig. 7 shows near-perfect scaling.
"""

from __future__ import annotations

import struct
from typing import Generator

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_DST, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.bitcoin import HEADER_BYTES, NONCE_OFFSET, meets_target

BTC_PROFILE = AcceleratorProfile(
    name="BTC",
    description="Bitcoin Miner",
    loc_verilog=1009,
    freq_mhz=100.0,
    footprint=ResourceFootprint(alm_pct=1.32, bram_pct=0.48),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=8,
    state_bytes=128,  # midstate + nonce counter
)

#: Fully unrolled double-SHA256 pipelines finish one attempt per cycle per
#: pipeline; the model charges this many cycles per nonce attempt.
CYCLES_PER_ATTEMPT = 1.0

#: Attempts between preemption checks / progress updates.
ATTEMPT_BATCH = 4096


class BtcJob(AcceleratorJob):
    """Grinds nonces for the header at REG_SRC against a target.

    Registers: REG_SRC = header GVA (80 bytes), REG_DST = result GVA,
    REG_PARAM0 = leading-zero bits of the target, REG_PARAM1 = maximum
    attempts (0 = 2^32 full nonce space).
    """

    profile = BTC_PROFILE

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__()
        self.functional = functional
        self.nonce = 0
        self.attempts = 0
        self.found_nonce: int = -1
        self._header: bytes = b""

    def body(self, ctx: ExecutionContext) -> Generator:
        src = self.reg(REG_SRC)
        dst = self.reg(REG_DST)
        zero_bits = self.reg(REG_PARAM0, 16)
        max_attempts = self.reg(REG_PARAM1, 0) or (1 << 32)
        target = 1 << (256 - zero_bits)

        if not self._header:
            # Fetch the 80-byte header (two cache lines).
            futures = [ctx.read(src), ctx.read(src + 64)]
            yield futures
            if self.functional:
                raw = b"".join((f.result() or bytes(64)) for f in futures)
                self._header = raw[:HEADER_BYTES]
            else:
                self._header = bytes(HEADER_BYTES)

        while self.attempts < max_attempts and self.found_nonce < 0:
            batch = min(ATTEMPT_BATCH, max_attempts - self.attempts)
            if self.functional:
                header = bytearray(self._header)
                for i in range(batch):
                    struct.pack_into("<I", header, NONCE_OFFSET, (self.nonce + i) & 0xFFFFFFFF)
                    if meets_target(bytes(header), target):
                        self.found_nonce = (self.nonce + i) & 0xFFFFFFFF
                        break
            yield ctx.cycles(batch * CYCLES_PER_ATTEMPT)
            self.nonce = (self.nonce + batch) & 0xFFFFFFFF
            self.attempts += batch
            preempted = yield from ctx.preempt_point()
            if preempted:
                return

        if dst:
            result = None
            if self.functional:
                result = struct.pack("<q", self.found_nonce) + bytes(56)
            yield ctx.write(dst, result)
        self.done = True

    def save_state(self) -> bytes:
        return struct.pack("<QQq", self.nonce, self.attempts, self.found_nonce)

    def restore_state(self, data: bytes) -> None:
        self.nonce, self.attempts, self.found_nonce = struct.unpack_from("<QQq", data)

    def progress_units(self) -> int:
        return self.attempts
