"""Image-filter benchmark accelerators: GAU, GRS, SBL (Table 1).

All three are row-streaming pipelines over 8-bit images.  The paper names
them (with SSSP) as the benchmarks that stop scaling past four instances
because the interconnect saturates (Fig. 7) — so their per-cycle rates
are the highest of the streaming set (~3.8-4 GB/s demand each).

Shared-memory layout: row-major images.  GRS consumes RGBA (4 B/pixel)
and emits luma (1 B/pixel); GAU and SBL consume and emit grayscale.  The
3x3 stencils carry two rows of history across tiles, like the line
buffers of the hardware pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.accel.base import AcceleratorProfile
from repro.accel.streaming import REG_PARAM0, StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.image import gaussian_blur, grayscale, sobel

GAU_PROFILE = AcceleratorProfile(
    name="GAU",
    description="Gaussian Image Filter",
    loc_verilog=2406,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=3.41, bram_pct=2.60),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=72,  # line buffers bound outstanding fetches
    state_bytes=8192,  # two row buffers
)

GRS_PROFILE = AcceleratorProfile(
    name="GRS",
    description="Grayscale Image Filter",
    loc_verilog=2266,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=1.32, bram_pct=2.28),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=72,
    state_bytes=4096,
)

SBL_PROFILE = AcceleratorProfile(
    name="SBL",
    description="Sobel Image Filter",
    loc_verilog=2451,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=2.39, bram_pct=2.55),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=72,
    state_bytes=8192,
)

#: Default image row width in pixels (grayscale bytes); guests override
#: via REG_PARAM0.
DEFAULT_ROW_PIXELS = 1024


class _StencilJob(StreamingJob):
    """Shared machinery for the 3x3 stencil filters (GAU, SBL)."""

    row_pixels = DEFAULT_ROW_PIXELS

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__(functional=functional)
        self._tail = np.zeros((0, self.row_pixels), dtype=np.uint8)

    def configure(self, registers) -> None:
        super().configure(registers)
        if registers.get(REG_PARAM0):
            self.row_pixels = int(registers[REG_PARAM0])
            self._tail = np.zeros((0, self.row_pixels), dtype=np.uint8)

    def _stencil(self, image: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def transform(self, data: bytes, offset: int) -> bytes:
        width = self.row_pixels
        if len(data) % width:
            return data  # partial rows: pass through (test images align)
        rows = np.frombuffer(data, dtype=np.uint8).reshape(-1, width)
        stacked = np.vstack([self._tail, rows])
        filtered = self._stencil(stacked)
        # Emit the rows corresponding to this tile; keep 2 rows of history.
        out = filtered[len(self._tail):][: len(rows)]
        self._tail = stacked[-2:].copy() if len(stacked) >= 2 else stacked.copy()
        return out.tobytes()


class GauJob(_StencilJob):
    """3x3 Gaussian blur over a grayscale image."""

    profile = GAU_PROFILE
    bytes_per_cycle = 19.5  # ~3.9 GB/s demand at 200 MHz
    output_ratio = 1.0
    tile_lines = 64

    def _stencil(self, image: np.ndarray) -> np.ndarray:
        return gaussian_blur(image)


class SblJob(_StencilJob):
    """3x3 Sobel gradient magnitude over a grayscale image."""

    profile = SBL_PROFILE
    bytes_per_cycle = 20.0  # ~4.0 GB/s demand at 200 MHz
    output_ratio = 1.0
    tile_lines = 64

    def _stencil(self, image: np.ndarray) -> np.ndarray:
        return sobel(image)


class GrsJob(StreamingJob):
    """RGBA -> luma conversion (pointwise: no row history needed)."""

    profile = GRS_PROFILE
    bytes_per_cycle = 19.0  # ~3.8 GB/s demand at 200 MHz
    output_ratio = 0.25  # 4 bytes in, 1 byte out
    tile_lines = 64

    def transform(self, data: bytes, offset: int) -> bytes:
        pixels = np.frombuffer(data, dtype=np.uint8).reshape(-1, 4)
        rgba = pixels.reshape(1, -1, 4)
        return grayscale(rgba).tobytes()
