"""FIR benchmark accelerator (Table 1: FIR filter, 1,090 LoC, 200 MHz)."""

from __future__ import annotations

import numpy as np

from repro.accel.base import AcceleratorProfile
from repro.accel.streaming import StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.dsp import fir_filter, lowpass_taps

FIR_PROFILE = AcceleratorProfile(
    name="FIR",
    description="Finite Impulse Response Filter",
    loc_verilog=1090,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=1.92, bram_pct=2.82),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=96,
    state_bytes=64,
)


class FirJob(StreamingJob):
    """Filters an int16 sample stream with a 16-tap low-pass filter.

    A real transversal filter carries (n_taps - 1) samples of history
    across tile boundaries; the model does the same so tiled output equals
    whole-buffer filtering exactly.
    """

    profile = FIR_PROFILE
    bytes_per_cycle = 11.5  # ~2.3 GB/s demand at 200 MHz
    output_ratio = 1.0
    tile_lines = 64

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__(functional=functional)
        self.taps = lowpass_taps(16)
        self._history = np.zeros(len(self.taps) - 1, dtype=np.int16)

    def transform(self, data: bytes, offset: int) -> bytes:
        samples = np.frombuffer(data, dtype=np.int16)
        padded = np.concatenate([self._history, samples])
        filtered = fir_filter(padded, self.taps)[len(self._history):]
        self._history = padded[-(len(self.taps) - 1):].copy()
        return filtered.tobytes()
