"""GRN benchmark accelerator (Table 1: Gaussian RNG, 1,238 LoC, 200 MHz).

A pure producer: no input DMA at all — the circuit's LFSR + Box-Muller
pipeline generates samples and streams them to shared memory.  Its light,
write-only traffic is why a co-located MemBench keeps ~1.0x of its
bandwidth (Table 4).
"""

from __future__ import annotations

from typing import Generator

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_DST, REG_LEN, REG_PARAM0
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.dsp import GaussianGenerator
from repro.sim.packet import CACHE_LINE_BYTES

GRN_PROFILE = AcceleratorProfile(
    name="GRN",
    description="Gaussian Random Number Generator",
    loc_verilog=1238,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=1.76, bram_pct=1.02),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=32,
    state_bytes=64,  # LFSR state + sample counter
)


class GrnJob(AcceleratorJob):
    """Generates REG_LEN bytes of float32 Gaussian samples into REG_DST."""

    profile = GRN_PROFILE
    bytes_per_cycle = 2.0  # ~0.4 GB/s write demand at 200 MHz
    tile_lines = 32

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__()
        self.functional = functional
        self.cursor = 0
        self.bytes_out = 0
        self._generator = GaussianGenerator()

    def body(self, ctx: ExecutionContext) -> Generator:
        dst = self.reg(REG_DST)
        total = self.reg(REG_LEN)
        seed = self.reg(REG_PARAM0)
        if seed and self.cursor == 0:
            self._generator = GaussianGenerator(seed)
        tile_bytes = self.tile_lines * CACHE_LINE_BYTES
        while self.cursor < total:
            chunk = min(tile_bytes, total - self.cursor)
            # The Box-Muller pipeline produces samples at its fixed rate.
            yield ctx.cycles(chunk / self.bytes_per_cycle)
            writes = []
            for i in range(0, chunk, CACHE_LINE_BYTES):
                line = None
                if self.functional:
                    line = self._generator.block(CACHE_LINE_BYTES // 4).tobytes()
                writes.append(ctx.write(dst + self.cursor + i, line))
            yield writes
            self.cursor += chunk
            self.bytes_out += chunk
            preempted = yield from ctx.preempt_point()
            if preempted:
                return
        self.done = True

    def save_state(self) -> bytes:
        state = self._generator._uniform.state
        return self.cursor.to_bytes(8, "little") + state.to_bytes(8, "little")

    def restore_state(self, data: bytes) -> None:
        self.cursor = int.from_bytes(data[:8], "little")
        self._generator._uniform.state = int.from_bytes(data[8:16], "little")

    def progress_units(self) -> int:
        return self.bytes_out
