"""Host-centric baseline: the programming model OPTIMUS argues against.

In the host-centric model (§2.1) accelerators cannot issue DMAs; the CPU
configures a DMA engine for every transfer.  For pointer-chasing
workloads like SSSP the host must either

* **Config** — program the DMA engine once per non-contiguous data
  segment (every frontier vertex's edge list), paying MMIO configuration
  latency per segment, or
* **Copy** — marshal all segments into one contiguous staging buffer with
  CPU memcpys, then issue a single DMA per round.

Both are implemented here as host-side simulation processes driving the
same platform links and the same CSR graphs as the shared-memory SSSP
accelerator, which is what Fig. 1 compares.  Virtualization multiplies
the MMIO cost by the trap-and-emulate overhead — the reason the
host-centric gap widens from 17-60% (native) to 37-85% (virtualized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import ConfigurationError
from repro.kernels.graph import CsrGraph, EDGE_BYTES, OFFSET_BYTES, INFINITY
from repro.platform.builder import Platform
from repro.sim.clock import Clock, gbps_to_bytes_per_ps, us

#: CPU time to prepare one DMA descriptor in the engine's ring.
DESCRIPTOR_NS = 50
#: Segments batched behind one doorbell MMIO (descriptor-ring style).
DOORBELL_BATCH = 8
#: DMA-engine per-transfer turnaround (fetch descriptor, start transfer).
ENGINE_SETUP_NS = 300
#: CPU memcpy bandwidth for the Copy variant's marshalling.
HOST_COPY_GBPS = 2.0
#: CPU random-gather overhead per non-contiguous segment (cache misses
#: while chasing offsets and edge lists on the host).
GATHER_NS = 350
#: Host-side cost to apply one relaxation result when building the next
#: frontier (both variants pay this; the shared-memory accelerator does
#: the equivalent work on the FPGA).
RESULT_NS_PER_EDGE = 8


@dataclass
class HostCentricResult:
    elapsed_ps: int
    dma_configs: int
    bytes_transferred: int
    edges_relaxed: int


class HostCentricSsspRunner:
    """Runs SSSP on a host-centric FPGA (Config or Copy variant)."""

    def __init__(
        self,
        platform: Platform,
        graph: CsrGraph,
        *,
        variant: str = "config",
        virtualized: bool = False,
        edges_per_cycle: float = 4.0,
        accel_mhz: float = 200.0,
    ) -> None:
        if variant not in ("config", "copy"):
            raise ConfigurationError("variant must be 'config' or 'copy'")
        self.platform = platform
        self.graph = graph
        self.variant = variant
        self.virtualized = virtualized
        self.edges_per_cycle = edges_per_cycle
        self.accel_clock = Clock(accel_mhz)
        self.result: HostCentricResult = HostCentricResult(0, 0, 0, 0)

    # -- cost model ------------------------------------------------------------------

    @property
    def _mmio_op_ps(self) -> int:
        params = self.platform.params
        if self.virtualized:
            return params.mmio_native_ps + params.mmio_trap_ps
        return params.mmio_native_ps

    def _segment_config_ps(self) -> int:
        """Per-segment DMA-engine cost: descriptor + amortized doorbell +
        engine turnaround.  Virtualization inflates the (trapped) doorbell."""
        doorbell = self._mmio_op_ps // DOORBELL_BATCH
        return DESCRIPTOR_NS * 1000 + doorbell + ENGINE_SETUP_NS * 1000

    # -- transfers -----------------------------------------------------------------------

    def _transfer(self, size_bytes: int):
        """One DMA-engine transfer from host memory to the accelerator."""
        link = self.platform.selector.pcie_links[0]
        future = self.platform.engine.future()
        link.send_from_memory(size_bytes + 16, future.set_result, None)
        self.result.bytes_transferred += size_bytes
        return future

    # -- the algorithm (structure identical to the shared-memory SSSP) ---------------------

    def run(self, source: int = 0):
        """Spawn the host process; returns its completion future."""
        process = self.platform.engine.spawn(self._body(source), name=f"hc-sssp-{self.variant}")
        return process.completion

    def _body(self, source: int) -> Generator:
        graph = self.graph
        start_ps = self.platform.engine.now
        dist = [int(INFINITY)] * graph.n_vertices
        dist[source] = 0
        frontier = [source]
        copy_rate = gbps_to_bytes_per_ps(HOST_COPY_GBPS)

        while frontier:
            segments = []  # (vertex, edge_start, degree)
            for vertex in frontier:
                edge_start = int(graph.offsets[vertex])
                degree = int(graph.offsets[vertex + 1]) - edge_start
                if degree:
                    segments.append((vertex, edge_start, degree))

            total_edges = sum(d for _v, _e, d in segments)
            if self.variant == "config":
                # One DMA-engine descriptor + transfer per non-contiguous
                # segment, issued sequentially: the CPU stays in the loop
                # for every edge list (§2.1, "initiate multiple data
                # transmissions separately and sequentially").
                last_transfer = None
                for _vertex, _edge_start, degree in segments:
                    yield self._segment_config_ps()
                    self.result.dma_configs += 1
                    # The engine pipelines transfers behind the descriptor
                    # ring; the CPU only synchronizes at the round barrier.
                    last_transfer = self._transfer(degree * EDGE_BYTES)
                if last_transfer is not None:
                    yield last_transfer
            else:
                # Marshal every segment into a contiguous staging buffer
                # with CPU gathers + memcpys, then one descriptor and one
                # bulk transfer per round.
                total_bytes = total_edges * EDGE_BYTES
                if total_bytes:
                    gather_ps = len(segments) * GATHER_NS * 1000
                    yield gather_ps + max(1, round(total_bytes / copy_rate))
                    yield self._segment_config_ps()
                    self.result.dma_configs += 1
                    yield self._transfer(total_bytes)

            # The accelerator relaxes the delivered edges.
            if total_edges:
                yield self.accel_clock.cycles(total_edges / self.edges_per_cycle)
            self.result.edges_relaxed += total_edges

            # Results return to the host: one transfer per round.
            yield self._segment_config_ps()
            self.result.dma_configs += 1
            yield self._transfer(max(64, len(frontier) * 4))

            # Host-side relaxation bookkeeping to build the next frontier —
            # in the host-centric model the CPU owns the traversal state.
            if total_edges:
                yield total_edges * RESULT_NS_PER_EDGE * 1000
            next_frontier = []
            seen = set()
            for vertex, edge_start, degree in segments:
                base_dist = dist[vertex]
                for index in range(edge_start, edge_start + degree):
                    target = int(graph.targets[index])
                    weight = int(graph.weights[index])
                    if base_dist + weight < dist[target]:
                        dist[target] = base_dist + weight
                        if target not in seen:
                            seen.add(target)
                            next_frontier.append(target)
            frontier = next_frontier

        self.result.elapsed_ps = self.platform.engine.now - start_ps
        return self.result
