"""LinkedList (LL): the latency microbenchmark (§6.1, 695 LoC, 400 MHz).

"LinkedList sequentially fetches cache line sized nodes from a linked
list distributed randomly in DRAM ... creating a latency bottleneck."
One outstanding request at a time — every fetch pays the full round trip,
which is what makes it the worst case for latency-bound pointer chasing.

Two node-address sources:

* **functional mode** — a real linked list laid out in shared memory
  (see :func:`build_list_image`); the walker reads each node's 8-byte
  ``next`` pointer from the returned data.  True pointer chasing: the
  next address is unknowable until the DMA completes.
* **pattern mode** — for multi-gigabyte working sets, a xorshift stream
  generates the same *distribution* of node addresses without
  materializing the list; timing behaviour (IOTLB sets touched, serial
  dependence) is identical.

Implements the preemption interface; the saved state is exactly what the
paper suggests for a linked-list walker: the next node's address (§4.2).
"""

from __future__ import annotations

import struct
from typing import Generator, List, Optional, Tuple

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_LEN, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.dsp import Xorshift64Star
from repro.sim.packet import CACHE_LINE_BYTES
from repro.sim.stats import LatencyRecorder

LL_PROFILE = AcceleratorProfile(
    name="LL",
    description="Linked List Walker",
    loc_verilog=695,
    freq_mhz=400.0,
    footprint=ResourceFootprint(alm_pct=0.15, bram_pct=0.0),
    character=SynthesisCharacter.TRIVIAL,
    max_outstanding=1,  # strictly serial: the latency bottleneck by design
    preemptible=True,
    state_bytes=64,
)

#: REG_PARAM0: 1 = pattern mode (synthetic addresses), 0 = real pointers.
ADDR_MODE_POINTERS = 0
ADDR_MODE_PATTERN = 1


def build_list_image(
    working_set: int, *, seed: int = 99, node_count: int = 0
) -> Tuple[bytes, List[int]]:
    """A real linked-list byte image covering ``working_set`` bytes.

    Nodes are one cache line; the traversal order is a random permutation
    (a random Hamiltonian cycle), so walks are distributed randomly in
    memory exactly as the paper describes.  Returns the image and the
    order of node offsets (for verification).
    """
    total_nodes = working_set // CACHE_LINE_BYTES
    count = node_count or total_nodes
    rng = Xorshift64Star(seed)
    # Fisher-Yates over node indices.
    order = list(range(total_nodes))
    for i in range(total_nodes - 1, 0, -1):
        j = rng.next_u64() % (i + 1)
        order[i], order[j] = order[j], order[i]
    order = order[:count]
    # Rotate so node 0 leads: the walker starts at offset 0 (position 0).
    if 0 in order:
        zero_at = order.index(0)
        order = order[zero_at:] + order[:zero_at]
    image = bytearray(working_set)
    for position, node in enumerate(order):
        next_node = order[(position + 1) % len(order)]
        offset = node * CACHE_LINE_BYTES
        struct.pack_into("<Q", image, offset, next_node * CACHE_LINE_BYTES)
        struct.pack_into("<Q", image, offset + 8, position)  # payload
    return bytes(image), [node * CACHE_LINE_BYTES for node in order]


class LinkedListJob(AcceleratorJob):
    """Serially chases ``REG_PARAM1`` nodes starting at REG_SRC.

    Registers: REG_SRC = list base GVA, REG_LEN = working-set bytes,
    REG_PARAM0 = address mode, REG_PARAM1 = hops to perform.
    """

    profile = LL_PROFILE

    def __init__(
        self,
        *,
        seed: int = 0xABCDEF01,
        functional: bool = True,
        target_hops: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.functional = functional
        self.target_hops = target_hops  # experiment harness hint (REG_PARAM1)
        self.rng = Xorshift64Star(seed)
        self.hops_done = 0
        self.next_offset = 0  # the minimal preemption state (§4.2)
        self.latency = LatencyRecorder("ll")
        self.payload_sum = 0

    def body(self, ctx: ExecutionContext) -> Generator:
        base = self.reg(REG_SRC)
        working_set = self.reg(REG_LEN)
        mode = self.reg(REG_PARAM0, ADDR_MODE_POINTERS)
        target_hops = self.reg(REG_PARAM1, 1024)
        while self.hops_done < target_hops:
            start_ps = ctx.engine.now
            data = yield ctx.read(base + self.next_offset)
            self.latency.record(ctx.engine.now - start_ps)
            yield ctx.cycles(2)  # node-processing pipeline
            if mode == ADDR_MODE_POINTERS:
                if data is None:
                    break  # dropped DMA: the walk cannot continue
                self.next_offset = struct.unpack_from("<Q", data, 0)[0]
                self.payload_sum += struct.unpack_from("<Q", data, 8)[0]
            else:
                lines = working_set // CACHE_LINE_BYTES
                self.next_offset = (self.rng.next_u64() % lines) * CACHE_LINE_BYTES
            self.hops_done += 1
            if self.hops_done % 64 == 0:
                preempted = yield from ctx.preempt_point()
                if preempted:
                    return
        self.done = True

    def save_state(self) -> bytes:
        return (
            self.next_offset.to_bytes(8, "little")
            + self.hops_done.to_bytes(8, "little")
            + self.rng.state.to_bytes(8, "little")
        )

    def restore_state(self, data: bytes) -> None:
        self.next_offset = int.from_bytes(data[:8], "little")
        self.hops_done = int.from_bytes(data[8:16], "little")
        self.rng.state = int.from_bytes(data[16:24], "little")

    def progress_units(self) -> int:
        return self.hops_done
