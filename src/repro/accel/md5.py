"""MD5 benchmark accelerator (Table 1: MD5, 1,266 LoC, 100 MHz).

The paper's MD5 circuit is its largest real-world benchmark (34% of ALMs
at 8 instances) and bandwidth-hungry enough that a co-located MemBench
drops to ~0.5x (Table 4) — it hashes many independent streams in parallel.
The model streams input at a high per-cycle rate and emits one 16-byte
digest per 4 KB chunk (many-stream behavior), matching both facts.
"""

from __future__ import annotations

from typing import Generator

from repro.accel.base import AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_DST, StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.md5 import md5_bytes
from repro.sim.packet import CACHE_LINE_BYTES

MD5_PROFILE = AcceleratorProfile(
    name="MD5",
    description="MD5 Hashing Algorithm",
    loc_verilog=1266,
    freq_mhz=100.0,
    footprint=ResourceFootprint(alm_pct=4.35, bram_pct=2.82),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=448,
    state_bytes=256,  # per-lane chaining state of the parallel hasher
)

#: Input bytes hashed per digest record.
CHUNK_BYTES = 4096


class Md5Job(StreamingJob):
    """Hashes a buffer as independent 4 KB chunks (parallel-lane circuit)."""

    profile = MD5_PROFILE
    bytes_per_cycle = 71.0  # ~7.1 GB/s demand at 100 MHz: bandwidth-hungry
    output_ratio = 0.0  # digests are written in finalize()
    tile_lines = 64
    prefetch_tiles = 8  # short per-tile occupancy: fetch deep to hide latency

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__(functional=functional)
        self.digests: list = []
        self._chunk = b""

    def transform(self, data: bytes, offset: int) -> bytes:
        self._chunk += data
        while len(self._chunk) >= CHUNK_BYTES:
            self.digests.append(md5_bytes(self._chunk[:CHUNK_BYTES]))
            self._chunk = self._chunk[CHUNK_BYTES:]
        return data

    def finalize(self, ctx: ExecutionContext) -> Generator:
        if self.functional and self._chunk:
            self.digests.append(md5_bytes(self._chunk))
            self._chunk = b""
        dst = self.reg(REG_DST)
        if dst and self.functional:
            for index, digest in enumerate(self.digests):
                record = digest + bytes(CACHE_LINE_BYTES - len(digest))
                yield ctx.write(dst + index * CACHE_LINE_BYTES, record)
        elif dst:
            n_records = max(1, self.cursor // CHUNK_BYTES)
            yield [
                ctx.write(dst + i * CACHE_LINE_BYTES)
                for i in range(min(n_records, 64))
            ]
