"""MemBench (MB): the bandwidth microbenchmark (§6.1, 1,020 LoC, 400 MHz).

"MemBench concurrently issues random DMA read and write requests in order
to saturate HARP's bandwidth.  The random reads and writes result in the
worst-case effects of IOTLB misses."  It implements the preemption
interface, making it one of the two benchmarks used to evaluate temporal
multiplexing (Fig. 8).

Addressing: a xorshift64* stream generates line-aligned offsets within
the configured working set, so the *address pattern* (which IOTLB sets
get hit) is exact without materializing gigabytes.  The PRNG state is
part of the saved preemption state, so a resumed job continues the same
address sequence.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_LEN, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.dsp import Xorshift64Star
from repro.sim.packet import CACHE_LINE_BYTES

MB_PROFILE = AcceleratorProfile(
    name="MB",
    description="Random Memory Accesses",
    loc_verilog=1020,
    freq_mhz=400.0,
    footprint=ResourceFootprint(alm_pct=0.83, bram_pct=0.0),
    character=SynthesisCharacter.SIMPLE,
    max_outstanding=384,
    preemptible=True,
    state_bytes=64,
)

#: REG_PARAM0 values selecting the access mode.
MODE_READ = 0
MODE_WRITE = 1
MODE_MIXED = 2

#: How many requests MemBench keeps posted per batch between preemption
#: checks; small enough that preemption latency stays in the microseconds.
BATCH_REQUESTS = 64


class MemBenchJob(AcceleratorJob):
    """Saturates the interconnect with random line-sized DMAs.

    Registers: REG_SRC = working-set base GVA, REG_LEN = working-set
    bytes, REG_PARAM0 = mode (read/write/mixed), REG_PARAM1 = total
    requests to issue (0 = effectively unbounded).
    """

    profile = MB_PROFILE

    def __init__(
        self,
        *,
        seed: int = 0xC0FFEE123,
        functional: bool = False,
        lines_per_request: int = 1,
        mode: int = MODE_READ,
    ) -> None:
        super().__init__()
        self.functional = functional
        self.mb_mode = mode  # default for REG_PARAM0 (harness convenience)
        self.rng = Xorshift64Star(seed)
        self.ops_done = 0
        self.bytes_done = 0
        self._since_check = 0
        # 1 = true single-line random accesses (the paper's MB).  Long
        # temporal-multiplexing runs batch lines per request to bound the
        # event count; per-line issue/serialization costs are unchanged.
        self.lines_per_request = lines_per_request

    # -- address stream -----------------------------------------------------------

    def _next_offset(self, working_set: int) -> int:
        request = self.lines_per_request * CACHE_LINE_BYTES
        slots = max(1, working_set // request)
        return (self.rng.next_u64() % slots) * request

    # -- execution ------------------------------------------------------------------

    def body(self, ctx: ExecutionContext) -> Generator:
        base = self.reg(REG_SRC)
        working_set = self.reg(REG_LEN)
        mode = self.reg(REG_PARAM0, MODE_READ)
        target_ops = self.reg(REG_PARAM1, 0) or (1 << 62)
        assert working_set >= CACHE_LINE_BYTES, "working set too small"
        issued = self.ops_done  # resume point after a preemption
        in_flight: deque = deque()
        while self.ops_done < target_ops:
            # Keep the request pipeline brim-full: issue ahead without a
            # batch barrier ("issues memory requests at every possible FPGA
            # cycle", §6.3), retiring the oldest response as needed.
            request_bytes = self.lines_per_request * CACHE_LINE_BYTES
            while issued < target_ops and len(in_flight) < 4 * self.profile.max_outstanding:
                offset = self._next_offset(working_set)
                do_write = mode == MODE_WRITE or (mode == MODE_MIXED and issued % 2)
                if do_write:
                    payload = (
                        bytes([issued & 0xFF]) * request_bytes if self.functional else None
                    )
                    in_flight.append(ctx.write(base + offset, payload, request_bytes))
                else:
                    in_flight.append(ctx.read(base + offset, request_bytes))
                issued += 1
            retire = in_flight.popleft()
            result = yield retire
            if result is not None and result is not False:
                self.ops_done += 1
                self.bytes_done += request_bytes
            else:
                issued -= 1  # dropped (preemption/reset): not real traffic
            self._since_check += 1
            if ctx.preempt_requested or self._since_check >= BATCH_REQUESTS:
                self._since_check = 0
                preempted = yield from ctx.preempt_point()
                if preempted:
                    return
        while in_flight:
            result = yield in_flight.popleft()
            if result is not None and result is not False:
                self.ops_done += 1
                self.bytes_done += self.lines_per_request * CACHE_LINE_BYTES
        self.done = True

    # -- preemption state (§4.2: the minimal state is tiny) ----------------------------

    def save_state(self) -> bytes:
        return self.ops_done.to_bytes(8, "little") + self.rng.state.to_bytes(8, "little")

    def restore_state(self, data: bytes) -> None:
        self.ops_done = int.from_bytes(data[:8], "little")
        self.rng.state = int.from_bytes(data[8:16], "little")

    def progress_units(self) -> int:
        return self.ops_done
