"""The benchmark catalog: Table 1's fourteen accelerators in one place.

Each entry couples the paper's static data (description, lines of
Verilog, synthesis frequency — Table 1; single-instance resource
footprint — Table 2's pass-through column) with the job class that
models the circuit.  Experiments and examples look benchmarks up here.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.accel.aes import AES_PROFILE, AesJob
from repro.accel.base import AcceleratorJob, AcceleratorProfile
from repro.accel.btc import BTC_PROFILE, BtcJob
from repro.accel.filters import (
    GAU_PROFILE,
    GRS_PROFILE,
    SBL_PROFILE,
    GauJob,
    GrsJob,
    SblJob,
)
from repro.accel.fir import FIR_PROFILE, FirJob
from repro.accel.grn import GRN_PROFILE, GrnJob
from repro.accel.linkedlist import LL_PROFILE, LinkedListJob
from repro.accel.md5 import MD5_PROFILE, Md5Job
from repro.accel.membench import MB_PROFILE, MemBenchJob
from repro.accel.rsd import RSD_PROFILE, RsdJob
from repro.accel.sha import SHA_PROFILE, Sha512Job
from repro.accel.sssp import SSSP_PROFILE, SsspJob
from repro.accel.sw import SW_PROFILE, SwJob
from repro.errors import ConfigurationError

JobFactory = Callable[..., AcceleratorJob]

#: name -> (profile, job class), in Table 1 order.
CATALOG: Dict[str, tuple] = {
    "AES": (AES_PROFILE, AesJob),
    "MD5": (MD5_PROFILE, Md5Job),
    "SHA": (SHA_PROFILE, Sha512Job),
    "FIR": (FIR_PROFILE, FirJob),
    "GRN": (GRN_PROFILE, GrnJob),
    "RSD": (RSD_PROFILE, RsdJob),
    "SW": (SW_PROFILE, SwJob),
    "GAU": (GAU_PROFILE, GauJob),
    "GRS": (GRS_PROFILE, GrsJob),
    "SBL": (SBL_PROFILE, SblJob),
    "SSSP": (SSSP_PROFILE, SsspJob),
    "BTC": (BTC_PROFILE, BtcJob),
    "MB": (MB_PROFILE, MemBenchJob),
    "LL": (LL_PROFILE, LinkedListJob),
}

#: The twelve "real-world" benchmarks (everything but the microbenchmarks).
REAL_WORLD = [name for name in CATALOG if name not in ("MB", "LL")]

#: The streaming subset used for simple aggregate-throughput experiments.
STREAMING = ["AES", "MD5", "SHA", "FIR", "RSD", "SW", "GAU", "GRS", "SBL"]


def profile_of(name: str) -> AcceleratorProfile:
    try:
        return CATALOG[name][0]
    except KeyError:
        raise ConfigurationError(f"unknown benchmark {name!r}") from None


def make_job(name: str, **kwargs) -> AcceleratorJob:
    """Instantiate a fresh job for a benchmark by catalog name."""
    try:
        _profile, factory = CATALOG[name]
    except KeyError:
        raise ConfigurationError(f"unknown benchmark {name!r}") from None
    return factory(**kwargs)


def table1_rows() -> List[dict]:
    """Table 1 of the paper: app, description, LoC, frequency."""
    return [
        {
            "app": name,
            "description": profile.description,
            "loc": profile.loc_verilog,
            "freq_mhz": profile.freq_mhz,
        }
        for name, (profile, _factory) in CATALOG.items()
    ]
