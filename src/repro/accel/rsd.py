"""RSD benchmark accelerator (Table 1: Reed Solomon Decoder, 5,324 LoC)."""

from __future__ import annotations

from repro.accel.base import AcceleratorProfile
from repro.accel.streaming import StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.reed_solomon import DecodeError, ReedSolomon

RSD_PROFILE = AcceleratorProfile(
    name="RSD",
    description="Reed Solomon Decoder",
    loc_verilog=5324,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=2.21, bram_pct=2.87),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=96,
    state_bytes=512,  # syndrome/locator pipeline registers
)

#: Shared-memory record layout: RS(255,223) codewords padded to 256 bytes
#: (4 cache lines) so records stay line-aligned; decoded messages padded
#: likewise to 224 -> 256 bytes.
RECORD_BYTES = 256


class RsdJob(StreamingJob):
    """Decodes a stream of RS(255,223) codewords, correcting errors."""

    profile = RSD_PROFILE
    bytes_per_cycle = 12.0  # ~2.4 GB/s demand at 200 MHz
    output_ratio = 1.0  # 256-byte record in, 256-byte record out
    tile_lines = 64  # 16 records per tile

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__(functional=functional)
        self.codec = ReedSolomon(255, 223)
        self.blocks_corrected = 0
        self.blocks_failed = 0

    def transform(self, data: bytes, offset: int) -> bytes:
        out = bytearray(len(data))
        for start in range(0, len(data), RECORD_BYTES):
            record = data[start : start + RECORD_BYTES]
            codeword = record[:255]
            try:
                message = self.codec.decode(codeword)
                self.blocks_corrected += 1
                failed = 0
            except DecodeError:
                message = bytes(223)  # uncorrectable: emit zeros + flag
                self.blocks_failed += 1
                failed = 1
            out[start : start + 223] = message
            out[start + RECORD_BYTES - 1] = failed
        return bytes(out)
