"""SHA benchmark accelerator (Table 1: SHA512, 2,218 LoC, 200 MHz)."""

from __future__ import annotations

from typing import Generator

from repro.accel.base import AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_DST, StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.sha2 import Sha512

SHA_PROFILE = AcceleratorProfile(
    name="SHA",
    description="SHA512 Hashing Algorithm",
    loc_verilog=2218,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=2.16, bram_pct=2.82),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=64,
    state_bytes=128,
)


class Sha512Job(StreamingJob):
    """Computes SHA-512 over the whole input buffer, writes the digest."""

    profile = SHA_PROFILE
    bytes_per_cycle = 13.0  # ~2.6 GB/s demand at 200 MHz
    output_ratio = 0.0
    tile_lines = 64

    def __init__(self, *, functional: bool = True) -> None:
        super().__init__(functional=functional)
        self._hasher = Sha512()
        self.digest: bytes = b""

    def transform(self, data: bytes, offset: int) -> bytes:
        self._hasher.update(data)
        return data

    def finalize(self, ctx: ExecutionContext) -> Generator:
        dst = self.reg(REG_DST)
        if self.functional:
            self.digest = self._hasher.digest()
            if dst:
                yield ctx.write(dst, self.digest + bytes(64 - len(self.digest)))
        elif dst:
            yield ctx.write(dst)
