"""SSSP benchmark accelerator (Table 1: 3,140 LoC, 200 MHz).

A shared-memory graph engine running frontier-based Bellman-Ford over a
CSR graph resident in guest memory (ported from Zhou & Prasanna's
CPU-FPGA accelerator).  This is the paper's showcase for the
shared-memory programming model: expanding a frontier vertex requires
reading its offsets, *then* its edge list — addresses known only after
the first DMA returns, i.e. genuine pointer chasing (§2.1, Fig. 1).

Modes:

* **functional** — the graph's serialized bytes live in simulated DRAM;
  every offset and edge is read through real DMAs and distances are
  written back, verifiable against Dijkstra;
* **pattern** — for the paper-scale graphs (800 K vertices, up to 51 M
  edges) the CSR arrays stay in host-Python memory and the job issues the
  *same sequence of DMA addresses* without materializing gigabytes.

Memory layout (matching :meth:`repro.kernels.graph.CsrGraph.serialize`):
``offsets[n+1] (u64) || (target u32, weight u32)[m] || dist[n] (u32)``,
with the distance array at ``REG_DST``.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Optional

import numpy as np

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.accel.streaming import REG_DST, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.graph import EDGE_BYTES, INFINITY, OFFSET_BYTES, CsrGraph
from repro.mem.address import align_down
from repro.sim.packet import CACHE_LINE_BYTES

SSSP_PROFILE = AcceleratorProfile(
    name="SSSP",
    description="Single Source Shortest Path",
    loc_verilog=3140,
    freq_mhz=200.0,
    footprint=ResourceFootprint(alm_pct=1.96, bram_pct=2.82),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=96,
    state_bytes=4096,  # frontier queue head + per-pipeline registers
)


class SsspJob(AcceleratorJob):
    """Frontier Bellman-Ford over a CSR graph in shared memory.

    Registers: REG_SRC = graph image base, REG_DST = distance array base,
    REG_PARAM0 = vertex count, REG_PARAM1 = source vertex.
    """

    profile = SSSP_PROFILE
    #: Edge-processing rate of the pipeline (edges per cycle at 200 MHz).
    edges_per_cycle = 4.0
    #: Frontier vertices kept in flight by the vertex pipeline.
    pipeline_depth = 8

    def __init__(
        self,
        *,
        functional: bool = True,
        graph: Optional[CsrGraph] = None,
        pipeline_depth: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.functional = functional
        self.graph = graph  # pattern mode reads structure from here
        if pipeline_depth is not None:
            self.pipeline_depth = pipeline_depth
        self.distances: Optional[np.ndarray] = None
        self.edges_relaxed = 0
        self.rounds = 0
        self.frontier: List[int] = []
        self.resumed_mid_round = False

    # -- DMA helpers --------------------------------------------------------------

    #: Cache lines per edge-list fetch (the edge engine issues bursts; the
    #: per-line issue throttle and serialization keep timing identical).
    lines_per_request = 16

    def _read_lines(self, ctx: ExecutionContext, base: int, start: int, size: int):
        """Futures covering the byte range [start, start+size), in bursts."""
        first = align_down(start, CACHE_LINE_BYTES)
        end = align_down(start + size - 1, CACHE_LINE_BYTES) + CACHE_LINE_BYTES
        step = self.lines_per_request * CACHE_LINE_BYTES
        futures = [
            ctx.read(base + offset, min(step, end - offset))
            for offset in range(first, end, step)
        ]
        return futures, first

    # -- execution -------------------------------------------------------------------

    def body(self, ctx: ExecutionContext) -> Generator:
        base = self.reg(REG_SRC)
        dist_base = self.reg(REG_DST)
        n_vertices = self.reg(REG_PARAM0)
        source = self.reg(REG_PARAM1)
        offsets_bytes = (n_vertices + 1) * OFFSET_BYTES

        if self.distances is None:
            self.distances = np.full(n_vertices, int(INFINITY), dtype=np.uint64)
            self.distances[source] = 0
            self.frontier = [source]
        posted_writes: List = []

        while self.frontier:
            self.rounds += 1
            next_frontier: List[int] = []
            seen = set()
            # The edge engine keeps a small batch of frontier vertices in
            # flight (its vertex pipeline depth): offset fetches for the
            # whole batch overlap, then the edge-list fetches overlap.
            for start_index in range(0, len(self.frontier), self.pipeline_depth):
                batch = self.frontier[start_index : start_index + self.pipeline_depth]

                # 1) Fetch each vertex's offset pair (pointer chase step 1).
                offset_reads = []
                for vertex in batch:
                    futures, first_line = self._read_lines(
                        ctx, base, vertex * OFFSET_BYTES, 2 * OFFSET_BYTES
                    )
                    offset_reads.append((vertex, futures, first_line))
                yield [f for _v, fs, _fl in offset_reads for f in fs]

                spans = []  # (vertex, edge_start, degree)
                for vertex, futures, first_line in offset_reads:
                    if self.functional:
                        raw = b"".join(
                            (f.result() or bytes(CACHE_LINE_BYTES)) for f in futures
                        )
                        rel = vertex * OFFSET_BYTES - first_line
                        edge_start, edge_end = struct.unpack_from("<QQ", raw, rel)
                    else:
                        edge_start = int(self.graph.offsets[vertex])
                        edge_end = int(self.graph.offsets[vertex + 1])
                    if edge_end > edge_start:
                        spans.append((vertex, edge_start, edge_end - edge_start))

                # 2) Fetch every batched edge list (pointer chase step 2).
                edge_reads = []
                total_degree = 0
                for vertex, edge_start, degree in spans:
                    edge_byte_start = offsets_bytes + edge_start * EDGE_BYTES
                    futures, first_line = self._read_lines(
                        ctx, base, edge_byte_start, degree * EDGE_BYTES
                    )
                    edge_reads.append((vertex, edge_start, degree, futures, first_line))
                    total_degree += degree
                if edge_reads:
                    yield [f for *_m, fs, _fl in edge_reads for f in fs]
                    yield ctx.cycles(total_degree / self.edges_per_cycle)

                # 3) Relax edges; post improved-distance write-backs.
                writes = posted_writes
                for vertex, edge_start, degree, futures, first_line in edge_reads:
                    edge_byte_start = offsets_bytes + edge_start * EDGE_BYTES
                    if self.functional:
                        raw = b"".join(
                            (f.result() or bytes(CACHE_LINE_BYTES)) for f in futures
                        )
                        rel = edge_byte_start - first_line
                        records = np.frombuffer(
                            raw[rel : rel + degree * EDGE_BYTES], dtype="<u4"
                        )
                        targets = records[0::2]
                        weights = records[1::2]
                    else:
                        targets = self.graph.targets[edge_start : edge_start + degree]
                        weights = self.graph.weights[edge_start : edge_start + degree]
                    vertex_dist = int(self.distances[vertex])
                    for t, w in zip(targets.tolist(), weights.tolist()):
                        candidate = vertex_dist + w
                        if candidate < self.distances[t]:
                            self.distances[t] = candidate
                            if t not in seen:
                                seen.add(t)
                                next_frontier.append(t)
                            line = align_down(t * 4, CACHE_LINE_BYTES)
                            writes.append(ctx.write(dist_base + line))
                    self.edges_relaxed += degree
                # Distance updates are posted; stall only on deep backlog.
                while len(writes) > 256:
                    yield writes.pop(0)

            self.frontier = next_frontier
            if ctx.preempt_requested:
                while posted_writes:
                    yield posted_writes.pop(0)
            preempted = yield from ctx.preempt_point()
            if preempted:
                return
        while posted_writes:
            yield posted_writes.pop(0)

        # Final distance array write-back (functional mode keeps it exact).
        if self.functional and dist_base:
            packed = np.minimum(self.distances, int(INFINITY)).astype("<u4").tobytes()
            writes = []
            for i in range(0, len(packed), CACHE_LINE_BYTES):
                chunk = packed[i : i + CACHE_LINE_BYTES]
                chunk += bytes(CACHE_LINE_BYTES - len(chunk))
                writes.append(ctx.write(dist_base + i, chunk))
            yield writes
        self.done = True

    # -- preemption state -----------------------------------------------------------------

    def state_size(self) -> int:
        # Frontier + distances summary; bounded by the profile's buffer.
        return self.profile.state_bytes

    def save_state(self) -> bytes:
        header = struct.pack("<QQ", self.rounds, len(self.frontier))
        body = struct.pack(f"<{len(self.frontier)}I", *self.frontier[:500])
        return (header + body)[: self.profile.state_bytes]

    def restore_state(self, data: bytes) -> None:
        # distances/frontier live in the job object across preemptions in
        # this model; the serialized form exists for size accounting and
        # is validated by tests for round-trip of the frontier head.
        if len(data) >= 16:
            self.rounds = struct.unpack_from("<Q", data, 0)[0]

    def progress_units(self) -> int:
        return self.edges_relaxed
