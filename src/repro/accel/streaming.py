"""Streaming accelerator base: read tile, compute, write tile, repeat.

Most of the HardCloud benchmarks (AES, MD5, SHA, FIR, RSD, SW, and the
image filters) are streaming pipelines: fetch a tile of input from shared
memory, push it through the datapath, emit output.  :class:`StreamingJob`
captures that shape once; each benchmark supplies a *transform* (its real
kernel), a compute rate (bytes per cycle at the circuit's clock — the
knob that sets its interconnect demand), and an output ratio.

Two execution modes:

* ``functional=True`` — tests: every byte really moves and the kernel
  really runs, so outputs can be checked against references;
* ``functional=False`` — performance experiments: the DMA pattern and all
  timing are identical, but payloads are not transformed in Python (the
  simulated platform still carries the bytes), keeping big sweeps fast.

All DMAs are single cache lines, matching CCI-P's common case and — more
importantly — the per-packet round-robin arbitration of the multiplexer
tree, which is what makes bandwidth sharing fair (§6.7).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.errors import ConfigurationError
from repro.sim.packet import CACHE_LINE_BYTES

# Application-register offsets shared by every streaming benchmark.
REG_SRC = 0x00
REG_DST = 0x08
REG_LEN = 0x10
REG_PARAM0 = 0x18
REG_PARAM1 = 0x20


class StreamingJob(AcceleratorJob):
    """Tile-at-a-time streaming accelerator."""

    #: Input bytes consumed per accelerator-clock cycle (demand knob).
    bytes_per_cycle: float = 8.0
    #: Output bytes produced per input byte (0 = sink, 1 = transform, ...).
    output_ratio: float = 1.0
    #: Tile size in cache lines.
    tile_lines: int = 64
    #: How many tiles the fetch unit runs ahead of the datapath.
    prefetch_tiles: int = 2
    #: Posted-write backlog allowed before the pipeline stalls (in lines).
    max_posted_writes: int = 256
    #: Cache lines per DMA request.  1 = CCI-P single-line requests (the
    #: default; finest arbitration granularity).  Long-horizon experiments
    #: (e.g. Fig. 8's tens of milliseconds) raise this to batch simulation
    #: events; the issue throttle and link serialization still charge per
    #: line, so throughput and timing are unchanged.
    lines_per_request: int = 1

    def __init__(
        self,
        profile: Optional[AcceleratorProfile] = None,
        *,
        functional: bool = True,
    ) -> None:
        super().__init__(profile)
        self.functional = functional
        self.cursor = 0  # bytes of input consumed (the preemption state)
        self.bytes_in = 0
        self.bytes_out = 0

    # -- subclass hooks ----------------------------------------------------------

    def transform(self, data: bytes, offset: int) -> bytes:
        """The benchmark's real kernel; only called in functional mode."""
        return data

    def finalize(self, ctx: ExecutionContext) -> Generator:
        """Run after the stream is exhausted (e.g. write a digest)."""
        return
        yield  # pragma: no cover

    # -- execution ------------------------------------------------------------------

    def _issue_tile_reads(self, ctx: ExecutionContext, src: int, cursor: int, chunk: int):
        if self.lines_per_request == 1 and ctx.coalescing_enabled:
            # One burst per tile: the DMA engine either commits it on the
            # simulator fast path (per-line timing expanded analytically)
            # or splits it back into exactly the per-line reads below.
            return [ctx.read_burst(src + cursor, chunk)]
        step = self.lines_per_request * CACHE_LINE_BYTES
        return [
            ctx.read(src + cursor + offset, min(step, chunk - offset))
            for offset in range(0, chunk, step)
        ]

    def body(self, ctx: ExecutionContext) -> Generator:
        src = self.reg(REG_SRC)
        dst = self.reg(REG_DST)
        total = self.reg(REG_LEN)
        if total % CACHE_LINE_BYTES:
            raise ConfigurationError("stream length must be line-aligned")
        tile_bytes = self.tile_lines * CACHE_LINE_BYTES

        # The fetch unit runs ``prefetch_tiles`` ahead of the datapath (a
        # ping-pong line buffer in hardware), and writes are posted — the
        # pipeline only stalls on writes when the posted backlog is deep.
        tiles: Deque = deque()
        pending_writes: Deque = deque()
        issue_cursor = self.cursor

        def top_up() -> None:
            nonlocal issue_cursor
            while issue_cursor < total and len(tiles) < self.prefetch_tiles:
                chunk = min(tile_bytes, total - issue_cursor)
                tiles.append(
                    (issue_cursor, chunk, self._issue_tile_reads(ctx, src, issue_cursor, chunk))
                )
                issue_cursor += chunk

        while self.cursor < total:
            top_up()
            cursor, chunk, reads = tiles.popleft()
            yield reads

            if self.functional:
                pieces: List[bytes] = []
                for future in reads:
                    data = future.result()
                    pieces.append(data if data is not None else bytes(CACHE_LINE_BYTES))
                payload = self.transform(b"".join(pieces), cursor)
            else:
                payload = None

            # Datapath occupancy: the circuit chews the tile at its rate.
            yield ctx.cycles(chunk / self.bytes_per_cycle)

            out_bytes = int(chunk * self.output_ratio)
            if out_bytes:
                out_offset = int(cursor * self.output_ratio)
                step = self.lines_per_request * CACHE_LINE_BYTES
                for i in range(0, out_bytes, step):
                    size = min(step, out_bytes - i)
                    size = ((size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES) * CACHE_LINE_BYTES
                    line = None
                    if payload is not None:
                        line = payload[i : i + size]
                        if len(line) < size:
                            line = line + bytes(size - len(line))
                    pending_writes.append(ctx.write(dst + out_offset + i, line, size))
                self.bytes_out += out_bytes
                while len(pending_writes) > self.max_posted_writes:
                    yield pending_writes.popleft()

            self.cursor = cursor + chunk
            self.bytes_in += chunk
            if ctx.preempt_requested:
                while pending_writes:
                    yield pending_writes.popleft()
                preempted = yield from ctx.preempt_point()
                if preempted:
                    return
        while pending_writes:
            yield pending_writes.popleft()
        yield from self.finalize(ctx)
        self.done = True

    # -- preemption state --------------------------------------------------------------

    def save_state(self) -> bytes:
        return self.cursor.to_bytes(8, "little")

    def restore_state(self, data: bytes) -> None:
        self.cursor = int.from_bytes(data[:8], "little")

    def progress_units(self) -> int:
        return self.bytes_in
