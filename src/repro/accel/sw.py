"""SW benchmark accelerator (Table 1: Smith Waterman, 1,265 LoC, 100 MHz).

The circuit is a systolic array: the query sequence is resident in the
array's PEs, target sequences stream through, and each target's best
local-alignment score streams out.  Shared-memory record layout: 60-byte
target sequence + 4-byte pad per cache line in, one score per record out
(packed 16 scores per output line).
"""

from __future__ import annotations

import struct

from repro.accel.base import AcceleratorProfile
from repro.accel.streaming import StreamingJob
from repro.fpga.resources import ResourceFootprint, SynthesisCharacter
from repro.kernels.smith_waterman import best_score

SW_PROFILE = AcceleratorProfile(
    name="SW",
    description="Smith Waterman Algorithm",
    loc_verilog=1265,
    freq_mhz=100.0,
    footprint=ResourceFootprint(alm_pct=1.42, bram_pct=1.47),
    character=SynthesisCharacter.NORMAL,
    max_outstanding=64,
    state_bytes=256,  # anti-diagonal wavefront registers
)

TARGET_BYTES = 60  # sequence payload per 64-byte record
_BASES = "ACGT"


def decode_sequence(record: bytes) -> str:
    """Record bytes -> nucleotide string (2 bits per base would be the
    hardware encoding; bytes keep the model debuggable)."""
    return "".join(_BASES[b & 3] for b in record.rstrip(b"\x00") or b"\x00")


class SwJob(StreamingJob):
    """Scores streamed target sequences against a resident query."""

    profile = SW_PROFILE
    bytes_per_cycle = 19.0  # ~1.9 GB/s demand at 100 MHz (wide systolic array)
    output_ratio = 4 / 64  # one uint32 score per 64-byte record
    tile_lines = 64

    def __init__(self, *, query: str = "ACGTACGTACGTACGT", functional: bool = True) -> None:
        super().__init__(functional=functional)
        self.query = query
        self.scores: list = []

    def transform(self, data: bytes, offset: int) -> bytes:
        out = bytearray()
        for start in range(0, len(data), 64):
            target = decode_sequence(data[start : start + TARGET_BYTES])
            score = best_score(self.query, target)
            self.scores.append(score)
            out += struct.pack("<I", score)
        return bytes(out)
