"""``repro.analytic`` — the calibrated fast-forward backend.

A third stack mode beside ``optimus`` and ``passthrough``
(``make_stack("analytic", ...)``): DES-calibrated service-time cells
(:mod:`~repro.analytic.calibration`), a replaying Stack implementation
(:mod:`~repro.analytic.stack`), and a fleet-scale capacity planner
(:mod:`~repro.analytic.capacity`) that answers week-of-simulated-time,
million-tenant what-ifs in seconds while the DES path stays available as
the reference answer.
"""

from repro.analytic.calibration import (
    CalibrationStore,
    CellSpec,
    CellStats,
    LATENCY_BENCHMARKS,
    SUPPORTED_BENCHMARKS,
    calibrate_cell,
    default_store,
    reset_default_store,
)
from repro.analytic.capacity import (
    CapacityConfig,
    capacity_des,
    capacity_modes,
    plan_capacity,
    run_capacity,
    slot_capacity,
)
from repro.analytic.stack import AnalyticStack

__all__ = [
    "AnalyticStack",
    "CalibrationStore",
    "CapacityConfig",
    "CellSpec",
    "CellStats",
    "LATENCY_BENCHMARKS",
    "SUPPORTED_BENCHMARKS",
    "calibrate_cell",
    "capacity_des",
    "capacity_modes",
    "default_store",
    "plan_capacity",
    "reset_default_store",
    "run_capacity",
    "slot_capacity",
]
