"""DES-calibrated service-time cells: the analytic backend's ground truth.

The analytic backend (:mod:`repro.analytic.stack`) never guesses what an
accelerator does — it *replays* what the detailed simulator measured.  A
**cell** is one operating point of the platform:

    (benchmark, per-job working set, contention level,
     page size, channel, variant, speculative flag)

Calibrating a cell runs the real OPTIMUS DES once, with the same
conventions the figure experiments use (fig5's steady-state LinkedList
latency samples, fig6's warm-up + window MemBench throughput), and fits a
compact summary: sample count, mean, min/p50/p95/p99/max service-time
quantiles, per-job throughput, plus two derived overhead factors —
**IOTLB pressure** (resident pages over IOTLB entries: > 1 means the
working set thrashes the translation cache) and the **mux-slicing
adder** (tree depth x per-level latency, the paper's ~100 ns).

Artifacts are *canonical JSON* (sorted keys, tight separators — the same
:func:`repro.experiments.cache.canonical_json` every envelope uses),
seeded, and stored through the content-addressed experiment cache when
one is installed: a warm run loads the artifact and skips straight to
the analytic model; editing any simulator source invalidates every cell
via the cache's source-tree digest.  The store's :meth:`digest` is a
stable fingerprint of every cell consulted, and participates in
downstream experiment cache keys so an analytic result can never shadow
a DES result calibrated differently.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.cache import canonical_json, current_cache
from repro.interconnect import VirtualChannel
from repro.mem.iommu import IOTLB_ENTRIES
from repro.platform import PlatformParams
from repro.sim.clock import ms, us

#: Benchmarks whose service metric is a per-access latency distribution.
LATENCY_BENCHMARKS = ("LL",)

#: Benchmarks the analytic backend can replay.  SSSP and BTC report
#: progress in units the byte-rate replay cannot honestly express, so
#: they stay DES-only rather than silently reading as zero.
SUPPORTED_BENCHMARKS = (
    "LL", "MB", "AES", "SHA", "MD5", "FIR", "GRN", "SW", "RSD", "GAU",
    "GRS", "SBL",
)

#: Seeds matching the figure experiments' conventions, so a calibration
#: run of a fig5/fig6 cell is bit-identical to the figure's own DES run.
_LL_SEED = 0x51C0FFEE
_MB_SEED = 0xFEED_BEEF


@dataclass(frozen=True)
class CellSpec:
    """One calibration cell: a benchmark at one platform operating point.

    ``working_set`` is *per job*; ``contention`` is the number of
    concurrent jobs on the node (each on its own physical slot, the
    fig5/fig6 convention).  ``variant`` disambiguates benchmark modes
    (``"read"``/``"write"`` for MB); ``channel`` is the virtual-channel
    value (``"va"``, ``"vl0"``, ``"vh0"``).  ``hops``/``warmup_us``/
    ``window_us`` pin the measurement protocol into the artifact key —
    0 hops means the fig5 auto rule (4x the per-job page count).
    """

    benchmark: str
    working_set: int
    contention: int = 1
    page_size: int = 0  # 0 -> PlatformParams default
    channel: str = "va"
    variant: str = ""
    speculative: bool = True
    hops: int = 0
    warmup_us: int = 400
    window_us: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.benchmark not in SUPPORTED_BENCHMARKS:
            raise ConfigurationError(
                f"benchmark {self.benchmark!r} is not analytically replayable; "
                f"supported: {SUPPORTED_BENCHMARKS}"
            )
        if self.working_set <= 0 or self.contention < 1:
            raise ConfigurationError("working set and contention must be positive")

    @property
    def kind(self) -> str:
        return "latency" if self.benchmark in LATENCY_BENCHMARKS else "throughput"

    def payload(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class CellStats:
    """The fitted summary of one calibrated cell (canonical-JSON-able).

    Latency cells carry the quantile envelope in picoseconds; throughput
    cells carry per-job and aggregate GB/s.  Both carry the derived
    overhead factors so capacity reports can cite them.
    """

    spec: CellSpec
    kind: str
    samples: int
    mean_ps: float
    min_ps: int
    p50_ps: int
    p95_ps: int
    p99_ps: int
    max_ps: int
    gbps_per_job: float
    gbps_total: float
    iotlb_pressure: float
    mux_overhead_ps: int

    def payload(self) -> Dict[str, object]:
        data = asdict(self)
        data["spec"] = self.spec.payload()
        return data

    def canonical(self) -> str:
        return canonical_json(self.payload())

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CellStats":
        data = dict(payload)
        data["spec"] = CellSpec(**data["spec"])
        return cls(**data)


def _mux_overhead_ps(params: PlatformParams, n_accelerators: int = 8) -> int:
    levels = max(1, math.ceil(math.log(max(2, n_accelerators), params.mux_tree_radix)))
    return levels * params.mux_level_latency_ps


def _params_for(spec: CellSpec) -> PlatformParams:
    kwargs: Dict[str, object] = {"speculative_region_opt": spec.speculative}
    if spec.page_size:
        kwargs["page_size"] = spec.page_size
    return PlatformParams(**kwargs)


def calibrate_cell(spec: CellSpec) -> CellStats:
    """Run the real DES once for ``spec`` and fit its service summary."""
    # Imported here (not at module top): the harness imports repro.analytic
    # lazily for the same reason — the factory registry would be circular.
    from repro.experiments.harness import OptimusStack, measure_progress

    params = _params_for(spec)
    page_size = params.page_size
    stack = OptimusStack(params, n_accelerators=8)
    pressure = (
        max(1, spec.working_set // page_size) * spec.contention / IOTLB_ENTRIES
    )
    mux_ps = _mux_overhead_ps(params)

    if spec.kind == "latency":
        pages = max(1, spec.working_set // page_size)
        hops = spec.hops or max(256, 4 * pages)
        jobs = []
        for index in range(spec.contention):
            jobs.append(
                stack.launch(
                    "LL",
                    physical_index=index,
                    working_set=spec.working_set,
                    channel=VirtualChannel(spec.channel),
                    job_kwargs={
                        "functional": False,
                        "seed": _LL_SEED + 31 * index + spec.seed,
                        "target_hops": hops,
                    },
                )
            )
        stack.run_for(ms(5 + 2 * hops // 1000))
        samples: List[int] = []
        for launched in jobs:
            samples.extend(launched.job.latency.steady_samples_ps())
        if not samples:
            raise ConfigurationError(f"calibration produced no samples: {spec}")
        ordered = sorted(samples)

        def rank(q: float) -> int:
            return ordered[min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))]

        return CellStats(
            spec=spec,
            kind="latency",
            samples=len(ordered),
            mean_ps=sum(ordered) / len(ordered),
            min_ps=ordered[0],
            p50_ps=rank(0.50),
            p95_ps=rank(0.95),
            p99_ps=rank(0.99),
            max_ps=ordered[-1],
            gbps_per_job=0.0,
            gbps_total=0.0,
            iotlb_pressure=pressure,
            mux_overhead_ps=mux_ps,
        )

    # Throughput kind: fig6's warm-up + window protocol, one job per slot.
    from repro.accel.membench import MODE_READ, MODE_WRITE

    jobs = []
    for index in range(spec.contention):
        job_kwargs: Dict[str, object] = {"functional": False}
        if spec.benchmark == "MB":
            job_kwargs["seed"] = _MB_SEED + 104729 * index + spec.seed
            job_kwargs["mode"] = MODE_WRITE if spec.variant == "write" else MODE_READ
        jobs.append(
            stack.launch(
                spec.benchmark,
                physical_index=index,
                working_set=spec.working_set,
                channel=VirtualChannel(spec.channel),
                job_kwargs=job_kwargs,
            )
        )
    rates = measure_progress(
        stack, jobs, warmup_ps=us(spec.warmup_us), window_ps=us(spec.window_us)
    )
    total = float(sum(rates))
    return CellStats(
        spec=spec,
        kind="throughput",
        samples=len(rates),
        mean_ps=0.0,
        min_ps=0,
        p50_ps=0,
        p95_ps=0,
        p99_ps=0,
        max_ps=0,
        gbps_per_job=total / len(rates),
        gbps_total=total,
        iotlb_pressure=pressure,
        mux_overhead_ps=mux_ps,
    )


class CalibrationStore:
    """Resident calibrated cells, backed by the experiment cache.

    Lookups go memory -> installed :class:`ExperimentCache` -> fresh DES
    calibration (then stored back as a canonical-JSON artifact).  The
    store is append-only within a process; :meth:`digest` fingerprints
    every resident cell in key order.
    """

    #: Experiment-cache namespace for calibration artifacts.
    CACHE_TAG = "analytic.calibration"

    def __init__(self) -> None:
        self._cells: Dict[str, CellStats] = {}
        self.calibrations = 0  # fresh DES runs (cache misses)

    def __len__(self) -> int:
        return len(self._cells)

    def get_or_calibrate(self, spec: CellSpec) -> CellStats:
        key = canonical_json(spec.payload())
        stats = self._cells.get(key)
        if stats is not None:
            return stats
        cache = current_cache()
        cache_key = None
        if cache is not None:
            cache_key = cache.key(self.CACHE_TAG, spec.payload())
            hit, artifact = cache.load(cache_key)
            if hit:
                stats = CellStats.from_payload(json.loads(artifact))
                self._cells[key] = stats
                return stats
        stats = calibrate_cell(spec)
        self.calibrations += 1
        self._cells[key] = stats
        if cache is not None and cache_key is not None:
            cache.store(cache_key, stats.canonical())
        return stats

    def digest(self) -> str:
        """Fingerprint of every resident cell, stable across processes."""
        payload = canonical_json(
            [self._cells[key].payload() for key in sorted(self._cells)]
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> Dict[str, object]:
        return {
            "cells": len(self._cells),
            "calibrations": self.calibrations,
            "digest": self.digest(),
        }


_DEFAULT: Optional[CalibrationStore] = None


def default_store() -> CalibrationStore:
    """The process-wide store ``make_stack("analytic")`` uses by default."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = CalibrationStore()
    return _DEFAULT


def reset_default_store() -> None:
    global _DEFAULT
    _DEFAULT = None
