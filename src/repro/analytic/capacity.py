"""Fleet-scale capacity planning: analytic fast-forward vs the DES.

The fleet DES (:class:`repro.fleet.admission.FleetService`) simulates
every tenant request through real per-node stacks — faithful, but
wall-clock-bound at ~10^5 requests no matter how many shards run on one
CPU.  This module exploits a structural fact of that loop: **admission
aggregates exactly to per-type capacity**.  A request of type ``t`` is
placeable iff fleet-wide occupancy of ``t`` is below ``max_oversub x
(physical slots of t)``; which node/slot it lands on changes the trace,
never the latency or the outcome.  Cross-type coupling exists only
through the shared bounded queue.  The capacity planner therefore never
builds a node:

* **exact mode** — while no type's occupancy ever reaches its ceiling,
  the DES trajectory is computed in closed form from the (seeded) traffic
  arrays: every request places immediately at the placement cost.  A
  vectorized peak-occupancy scan proves the condition; 10^6 tenants over
  a week of simulated time cost one ``numpy`` sort.
* **fluid mode** — under contention, a bucketed fluid model with a
  diffusion correction marches expected per-type occupancy, the shared
  FIFO queue (aged in buckets, capped at ``queue_limit``, expired at the
  retry-ladder horizon), and the placed-latency mass distribution.  The
  diffusion term (occupancy ~ Normal(n, n)) is what lets a *mean*-field
  model reproduce the stochastic blocking the DES shows below nominal
  saturation.

Outputs are a canonical-JSON-able envelope: placements, typed
rejections, latency mean/p50/p99 with bootstrap confidence intervals,
per-class SLO attainment (classes ride the latency mixture — admission
is class-blind, a fact the DES comparator verifies), per-type
utilization, and optionally calibrated goodput.  ``capacity_des`` runs
the real :class:`FleetService` on the identical seeded traffic and emits
the same envelope shape, so cross-validation compares like with like.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analytic.calibration import (
    CalibrationStore,
    CellSpec,
    SUPPORTED_BENCHMARKS,
    LATENCY_BENCHMARKS,
    default_store,
)
from repro.errors import ConfigurationError
from repro.fleet.admission import (
    AdmissionConfig,
    DEFAULT_PLACEMENT_COST_PS,
    FleetService,
)
from repro.fleet.cluster import DEFAULT_TEMPLATES, FleetCluster
from repro.fleet.node import DEFAULT_MAX_OVERSUB
from repro.fleet.placement import make_policy
from repro.fleet.traffic import DEFAULT_MIX, TenantRequest, TrafficGenerator, TrafficProfile
from repro.mem import MB
from repro.serve.slo import capacity_classes
from repro.serve.trace import DEFAULT_CLASS_MIX
from repro.sim.clock import ms, us

#: Stack modes the capacity planner can serve (derived from the stack
#: registry, minus pass-through: a single unvirtualized accelerator has
#: no fleet to plan).
def capacity_modes() -> Tuple[str, ...]:
    from repro.experiments.harness import STACK_MODES

    return tuple(mode for mode in STACK_MODES if mode != "passthrough")


#: Fluid-model resolution limits: bucket count is capped so week-long
#: horizons widen the bucket instead of exhausting memory/time.
MAX_BUCKETS = 400_000


@dataclass(frozen=True)
class CapacityConfig:
    """One capacity-planning scenario, shared by both backends."""

    tenants: int = 100_000
    nodes: int = 8
    load: float = 1.2
    seed: int = 7
    mean_session_ps: int = ms(20)
    horizon_ps: int = 0  # 0 -> serve the whole trace
    max_oversub: int = DEFAULT_MAX_OVERSUB
    queue_limit: int = 32
    max_retries: int = 3
    backoff_ps: int = ms(2)
    backoff_factor: float = 2.0
    placement_cost_ps: int = DEFAULT_PLACEMENT_COST_PS
    policy: str = "best-fit"
    bootstrap: int = 200
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    class_mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_MIX)
    )

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.nodes < 1:
            raise ConfigurationError("tenants and nodes must be positive")
        if self.horizon_ps < 0:
            raise ConfigurationError("horizon must be >= 0")

    def profile(self) -> TrafficProfile:
        return TrafficProfile(
            load=self.load,
            mix=dict(self.mix),
            mean_session_ps=self.mean_session_ps,
            class_mix=dict(self.class_mix),
        )

    def admission(self) -> AdmissionConfig:
        return AdmissionConfig(
            queue_limit=self.queue_limit,
            max_retries=self.max_retries,
            backoff_ps=self.backoff_ps,
            backoff_factor=self.backoff_factor,
            placement_cost_ps=self.placement_cost_ps,
        )

    def ladder_ps(self) -> int:
        """Longest wait before ``retries_exhausted``: the backoff sum."""
        return sum(
            int(self.backoff_ps * self.backoff_factor ** k)
            for k in range(self.max_retries)
        )

    def payload(self) -> Dict[str, object]:
        return asdict(self)


def slot_capacity(
    n_nodes: int, templates=DEFAULT_TEMPLATES
) -> Dict[str, int]:
    """Physical slots per type for ``FleetCluster.build(n_nodes)`` —
    the same template cycling, without synthesizing a single node."""
    caps: Dict[str, int] = {}
    for index in range(n_nodes):
        for slot_type in templates[index % len(templates)]:
            caps[slot_type] = caps.get(slot_type, 0) + 1
    return dict(sorted(caps.items()))


# -- weighted latency distributions -------------------------------------------------


def _weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> int:
    """``ceil(q * n)`` rank rule over a weighted sample, matching
    :meth:`repro.sim.stats.LatencyRecorder.quantile_ps`."""
    total = float(weights.sum())
    if total <= 0:
        return 0
    rank = min(total, max(0.0, math.ceil(q * total * (1 - 1e-12))))
    cum = np.cumsum(weights)
    index = int(np.searchsorted(cum, rank - 1e-9))
    return int(values[min(index, len(values) - 1)])


def _bootstrap_cis(
    values: np.ndarray,
    weights: np.ndarray,
    *,
    rounds: int,
    seed: int,
    budgets: Dict[str, int],
) -> Dict[str, object]:
    """Seeded multinomial bootstrap over a weighted latency distribution.

    Returns 95% CIs for the mean, the p99, and each class's attainment.
    Classes are i.i.d. labels over the same mixture, so their attainment
    uncertainty is the budget-threshold mass uncertainty.
    """
    total = int(round(float(weights.sum())))
    if total <= 0 or rounds <= 0:
        return {}
    rng = np.random.RandomState(0xB007 ^ (seed & 0xFFFFFFFF))
    p = weights / weights.sum()
    counts = rng.multinomial(total, p, size=rounds).astype(np.float64)
    means = counts @ values / total
    cum = np.cumsum(counts, axis=1)
    rank = math.ceil(0.99 * total)
    p99_idx = np.argmax(cum >= rank, axis=1)
    p99s = values[p99_idx]
    out: Dict[str, object] = {
        "mean_ps": [float(np.percentile(means, 2.5)), float(np.percentile(means, 97.5))],
        "p99_ps": [float(np.percentile(p99s, 2.5)), float(np.percentile(p99s, 97.5))],
        "attainment": {},
    }
    for name, budget in sorted(budgets.items()):
        mask = values <= budget
        att = counts[:, mask].sum(axis=1) / total
        out["attainment"][name] = [
            float(np.percentile(att, 2.5)),
            float(np.percentile(att, 97.5)),
        ]
    return out


def _latency_block(
    values: np.ndarray, weights: np.ndarray, *, bootstrap: int, seed: int,
    budgets: Dict[str, int],
) -> Tuple[Dict[str, object], Dict[str, object], Dict[str, float]]:
    """(latency summary, bootstrap CIs, attainment-by-class)."""
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    keep = weights > 0
    values, weights = values[keep], weights[keep]
    total = float(weights.sum())
    if total <= 0:
        return {"mean": 0.0, "p50": 0, "p99": 0}, {}, {
            name: 1.0 for name in budgets
        }
    summary = {
        "mean": float((values * weights).sum() / total),
        "p50": _weighted_quantile(values, weights, 0.50),
        "p99": _weighted_quantile(values, weights, 0.99),
    }
    attainment = {
        name: float(weights[values <= budget].sum() / total)
        for name, budget in sorted(budgets.items())
    }
    cis = _bootstrap_cis(
        values, weights, rounds=bootstrap, seed=seed, budgets=budgets
    )
    return summary, cis, attainment


# -- the analytic planner ------------------------------------------------------------


def _phi(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _pdf(z: float) -> float:
    return math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def _exact_peaks(
    arrival: np.ndarray,
    depart: np.ndarray,
    type_index: np.ndarray,
    n_types: int,
) -> List[int]:
    """Peak concurrent occupancy per type, vectorized.

    Arrivals sort before departures at equal timestamps — the serving
    heap pushes the whole arrival trace first, so at a tie the arriving
    request sees occupancy *before* the departure frees it.
    """
    peaks: List[int] = []
    for t in range(n_types):
        mask = type_index == t
        count = int(mask.sum())
        if count == 0:
            peaks.append(0)
            continue
        times = np.concatenate([arrival[mask], depart[mask]])
        flags = np.concatenate(
            [np.zeros(count, dtype=np.int8), np.ones(count, dtype=np.int8)]
        )
        deltas = np.concatenate(
            [np.ones(count, dtype=np.int32), -np.ones(count, dtype=np.int32)]
        )
        order = np.lexsort((flags, times))
        peaks.append(int(np.cumsum(deltas[order]).max()))
    return peaks


def plan_capacity(
    config: CapacityConfig,
    *,
    calibration: Optional[CalibrationStore] = None,
    goodput: bool = False,
) -> Dict[str, object]:
    """The analytic capacity plan: exact where provable, fluid elsewhere."""
    caps = slot_capacity(config.nodes)
    ceilings = {t: caps[t] * config.max_oversub for t in caps}
    total_slots = sum(caps.values())
    generator = TrafficGenerator(
        config.profile(), fleet_slots=total_slots, seed=config.seed
    )
    arrays = generator.generate_arrays(config.tenants)
    arrival = arrays["arrival_ps"]
    type_index = arrays["type_index"]
    session = arrays["session_ps"]
    types: List[str] = arrays["types"]
    if config.horizon_ps:
        keep = arrival <= config.horizon_ps
        arrival, type_index, session = arrival[keep], type_index[keep], session[keep]
    offered = int(arrival.size)
    if offered == 0:
        raise ConfigurationError("horizon excludes every arrival")

    supported = np.array([t in ceilings for t in types], dtype=bool)
    request_supported = supported[type_index]
    unsupported = int((~request_supported).sum())
    arrival_s = arrival[request_supported]
    type_s = type_index[request_supported]
    session_s = session[request_supported]

    cost = config.placement_cost_ps
    budgets = {
        name: cls.budget_ps for name, cls in capacity_classes().items()
        if name in config.class_mix
    }
    shares = _normalized_shares(config.class_mix)

    depart = arrival_s + cost + session_s
    peaks = _exact_peaks(arrival_s, depart, type_s, len(types))
    contended = any(
        types[t] in ceilings and peaks[t] > ceilings[types[t]]
        for t in range(len(types))
    )

    if not contended:
        engine = "exact"
        placements = float(arrival_s.size)
        rejections = {"queue_full": 0.0, "retries_exhausted": 0.0}
        values = np.array([cost], dtype=np.float64)
        weights = np.array([placements], dtype=np.float64)
        occupancy_integral = {
            types[t]: float((cost + session_s[type_s == t]).sum())
            for t in range(len(types))
            if types[t] in ceilings
        }
        span_ps = int(depart.max()) if depart.size else 0
    else:
        engine = "fluid"
        fluid = _fluid_march(
            config, arrival_s, type_s, session_s, types, ceilings
        )
        placements = fluid["placements"]
        rejections = fluid["rejections"]
        values = fluid["latency_values"]
        weights = fluid["latency_weights"]
        occupancy_integral = fluid["occupancy_integral"]
        span_ps = fluid["span_ps"]

    latency, cis, attainment = _latency_block(
        values, weights, bootstrap=config.bootstrap, seed=config.seed,
        budgets=budgets,
    )
    rejected_total = unsupported + sum(rejections.values())
    utilization = {
        t: occupancy_integral.get(t, 0.0) / (span_ps * caps[t]) if span_ps else 0.0
        for t in sorted(caps)
    }

    store = calibration if calibration is not None else default_store()
    goodput_by_type: Dict[str, float] = {}
    if goodput:
        goodput_by_type = _calibrated_goodput(store, caps, utilization)

    classes = {
        name: {
            "budget_ps": budgets[name],
            "share": shares[name],
            "attainment": attainment.get(name, 1.0),
            "attainment_ci95": (cis.get("attainment") or {}).get(name, []),
            "expected_placed": placements * shares[name],
        }
        for name in sorted(shares)
    }
    return {
        "mode": "analytic",
        "engine": engine,
        "config": config.payload(),
        "requests": offered,
        "placements": placements,
        "rejections": {
            "queue_full": rejections["queue_full"],
            "retries_exhausted": rejections["retries_exhausted"],
            "unsupported": float(unsupported),
        },
        "rejection_rate": rejected_total / offered,
        "latency_ps": latency,
        "latency_ci95_ps": {k: v for k, v in cis.items() if k != "attainment"},
        "classes": classes,
        "utilization_by_type": utilization,
        "goodput_gbps_by_type": goodput_by_type,
        "calibration_digest": store.digest(),
        "span_ps": span_ps,
        "horizon_ps": config.horizon_ps,
    }


def _normalized_shares(class_mix: Dict[str, float]) -> Dict[str, float]:
    total = sum(class_mix.values())
    return {name: weight / total for name, weight in sorted(class_mix.items())}


def _fluid_march(
    config: CapacityConfig,
    arrival: np.ndarray,
    type_index: np.ndarray,
    session: np.ndarray,
    types: List[str],
    ceilings: Dict[str, int],
) -> Dict[str, object]:
    """The bucketed fluid/diffusion model over the contended trace."""
    ladder_ps = config.ladder_ps()
    delta = max(us(50), min(config.backoff_ps // 4, config.mean_session_ps // 16))
    span_ps = int(arrival.max()) + ladder_ps + 4 * config.mean_session_ps
    if span_ps // delta + 2 > MAX_BUCKETS:
        delta = span_ps // MAX_BUCKETS + 1
    n_buckets = int(span_ps // delta) + 2
    max_age = max(1, int(math.ceil(ladder_ps / delta)))

    active = [t for t in range(len(types)) if types[t] in ceilings]
    arr_counts: Dict[int, List[float]] = {}
    mean_session: Dict[int, float] = {}
    p_complete: Dict[int, float] = {}
    for t in active:
        mask = type_index == t
        arr_counts[t] = np.bincount(
            (arrival[mask] // delta).astype(np.int64), minlength=n_buckets
        ).astype(np.float64).tolist()
        mean_t = float(session[mask].mean()) if mask.any() else float(
            config.mean_session_ps
        )
        mean_session[t] = mean_t + config.placement_cost_ps
        p_complete[t] = 1.0 - math.exp(-delta / mean_session[t])

    n: Dict[int, float] = {t: 0.0 for t in active}
    queues: Dict[int, deque] = {t: deque([0.0] * (max_age + 1)) for t in active}
    qsum: Dict[int, float] = {t: 0.0 for t in active}
    occ_int: Dict[int, float] = {t: 0.0 for t in active}
    ceiling: Dict[int, float] = {t: float(ceilings[types[t]]) for t in active}

    immediate_mass = 0.0
    age_mass = [0.0] * (max_age + 2)
    reject_queue_full = 0.0
    reject_expired = 0.0
    queue_total = 0.0
    pending_push: Dict[int, float] = {}

    for bucket in range(n_buckets):
        pending_push.clear()
        for t in active:
            nt = n[t]
            if nt > 1e-12:
                nt -= nt * p_complete[t]
            arrivals = arr_counts[t][bucket]
            if qsum[t] <= 1e-12 and arrivals <= 0.0:
                n[t] = nt
                occ_int[t] += nt
                continue
            cap = ceiling[t]
            # Drain the FIFO queue (oldest age first) into hard headroom:
            # between departures the DES re-places queued work at every
            # drain, so within one bucket the queue sees the full mean
            # free capacity.
            if qsum[t] > 1e-12:
                take = min(qsum[t], max(0.0, cap - nt))
                if take > 1e-12:
                    queue = queues[t]
                    drained = take
                    for age in range(len(queue) - 1, -1, -1):
                        mass = queue[age]
                        if mass <= 0.0:
                            continue
                        grab = mass if mass <= take else take
                        queue[age] = mass - grab
                        age_mass[age] += grab
                        take -= grab
                        if take <= 1e-12:
                            break
                    placed = drained - max(0.0, take)
                    qsum[t] -= placed
                    queue_total -= placed
                    nt += placed
            if arrivals > 0.0:
                headroom = cap - nt
                if headroom <= 0.0:
                    admitted = 0.0
                else:
                    # Diffusion split: the fluid mean hides occupancy
                    # fluctuations; an arrival is blocked with P(N >=
                    # cap) under N ~ Normal(nt, var).  Variance is
                    # binomial, not Poisson — the ceiling regulates the
                    # process, so fluctuations shrink as nt approaches
                    # cap (floored so the split never fully vanishes).
                    var = nt * max(0.05, 1.0 - nt / cap)
                    sigma = math.sqrt(var) if var > 1.0 else 1.0
                    admitted = min(arrivals * _phi(headroom / sigma), headroom)
                immediate_mass += admitted
                nt += admitted
                leftover = arrivals - admitted
                if leftover > 1e-12:
                    pending_push[t] = leftover
            n[t] = nt
            occ_int[t] += nt
        if pending_push:
            wanted = sum(pending_push.values())
            room = max(0.0, config.queue_limit - queue_total)
            fraction = 1.0 if wanted <= room else room / wanted
            for t, mass in pending_push.items():
                queued = mass * fraction
                if queued > 0.0:
                    queues[t][0] += queued
                    qsum[t] += queued
                    queue_total += queued
                reject_queue_full += mass - queued
        if queue_total > 1e-12:
            for t in active:
                if qsum[t] <= 1e-12:
                    continue
                queue = queues[t]
                expired = queue.pop()
                queue.appendleft(0.0)
                if expired > 0.0:
                    reject_expired += expired
                    qsum[t] -= expired
                    queue_total -= expired

    cost = config.placement_cost_ps
    values: List[float] = [float(cost)]
    weights: List[float] = [immediate_mass]
    for age, mass in enumerate(age_mass):
        if mass > 0.0:
            # Drains run at the head of a bucket: mass at age k waited
            # between (k-1) and k buckets, so the midpoint is (k - 1/2).
            values.append(float(max(age - 0.5, 0.5) * delta + cost))
            weights.append(mass)
    return {
        "placements": immediate_mass + sum(age_mass),
        "rejections": {
            "queue_full": reject_queue_full,
            "retries_exhausted": reject_expired,
        },
        "latency_values": np.array(values, dtype=np.float64),
        "latency_weights": np.array(weights, dtype=np.float64),
        "occupancy_integral": {
            types[t]: occ_int[t] * delta for t in active
        },
        "span_ps": n_buckets * delta,
        "delta_ps": delta,
    }


def _calibrated_goodput(
    store: CalibrationStore,
    caps: Dict[str, int],
    utilization: Dict[str, float],
) -> Dict[str, float]:
    """Fleet goodput per type from calibrated per-slot throughput.

    A time-multiplexed slot delivers roughly one job's calibrated rate
    regardless of oversubscription depth (the hypervisor slices time,
    not bandwidth), so goodput = busy-slot fraction x slots x GB/s.
    Latency-kind benchmarks (LL) have no byte rate and are omitted.
    """
    out: Dict[str, float] = {}
    for accel_type, slots in sorted(caps.items()):
        if (
            accel_type not in SUPPORTED_BENCHMARKS
            or accel_type in LATENCY_BENCHMARKS
        ):
            continue
        stats = store.get_or_calibrate(
            CellSpec(
                benchmark=accel_type,
                working_set=16 * MB,
                contention=1,
                warmup_us=60,
                window_us=100,
            )
        )
        busy = min(1.0, utilization.get(accel_type, 0.0))
        out[accel_type] = busy * slots * stats.gbps_per_job
    return out


# -- the DES comparator --------------------------------------------------------------


class _CapacityProbe(FleetService):
    """A :class:`FleetService` that records per-class placement latency."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.latencies: List[int] = []
        self.class_latencies: Dict[str, List[int]] = {}

    def _on_placed(
        self, request: TenantRequest, now: int, latency_ps: int, replaced: bool
    ) -> None:
        if replaced:
            return
        self.latencies.append(latency_ps)
        self.class_latencies.setdefault(request.tenant_class, []).append(latency_ps)


def capacity_des(
    config: CapacityConfig,
    *,
    calibration: Optional[CalibrationStore] = None,
    goodput: bool = False,
) -> Dict[str, object]:
    """The reference answer: the real fleet DES on the identical traffic."""
    cluster = FleetCluster.build(config.nodes, max_oversub=config.max_oversub)
    generator = TrafficGenerator(
        config.profile(), fleet_slots=cluster.total_slots, seed=config.seed
    )
    requests = generator.generate(config.tenants)
    if config.horizon_ps:
        requests = [r for r in requests if r.arrival_ps <= config.horizon_ps]
    if not requests:
        raise ConfigurationError("horizon excludes every arrival")
    service = _CapacityProbe(
        cluster, make_policy(config.policy), admission=config.admission()
    )
    result = service.serve(requests)
    summary = result.summary()

    budgets = {
        name: cls.budget_ps for name, cls in capacity_classes().items()
        if name in config.class_mix
    }
    shares = _normalized_shares(config.class_mix)
    values = np.array(service.latencies, dtype=np.float64)
    weights = np.ones_like(values)
    latency, cis, _ = _latency_block(
        values, weights, bootstrap=config.bootstrap, seed=config.seed,
        budgets=budgets,
    )
    classes = {}
    for name in sorted(shares):
        samples = service.class_latencies.get(name, [])
        attained = (
            sum(1 for s in samples if s <= budgets[name]) / len(samples)
            if samples
            else 1.0
        )
        classes[name] = {
            "budget_ps": budgets[name],
            "share": shares[name],
            "attainment": attained,
            "attainment_ci95": (cis.get("attainment") or {}).get(name, []),
            "expected_placed": float(len(samples)),
        }

    caps = slot_capacity(config.nodes)
    store = calibration if calibration is not None else default_store()
    # FleetMetrics already reports tenant-time per physical slot-time,
    # the same normalization the analytic envelope uses.
    utilization = dict(summary["utilization_by_type"])
    goodput_by_type = (
        _calibrated_goodput(store, caps, utilization) if goodput else {}
    )
    return {
        "mode": "optimus",
        "engine": "des",
        "config": config.payload(),
        "requests": result.requests,
        "placements": float(summary["placements"]),
        "rejections": {
            "queue_full": float(summary["rejections_queue_full"]),
            "retries_exhausted": float(summary["rejections_retries_exhausted"]),
            "unsupported": float(summary["rejections_unsupported"]),
        },
        "rejection_rate": float(summary["rejection_rate"]),
        "latency_ps": latency,
        "latency_ci95_ps": {k: v for k, v in cis.items() if k != "attainment"},
        "classes": classes,
        "utilization_by_type": utilization,
        "goodput_gbps_by_type": goodput_by_type,
        "calibration_digest": store.digest(),
        "span_ps": result.span_ps,
        "horizon_ps": config.horizon_ps,
    }


def run_capacity(
    mode: str,
    config: CapacityConfig,
    *,
    calibration: Optional[CalibrationStore] = None,
    goodput: bool = False,
) -> Dict[str, object]:
    """Mode dispatch for the CLI and experiments (single-sourced modes)."""
    modes = capacity_modes()
    if mode == "analytic":
        return plan_capacity(config, calibration=calibration, goodput=goodput)
    if mode == "optimus":
        return capacity_des(config, calibration=calibration, goodput=goodput)
    raise ConfigurationError(
        f"capacity planning supports modes {modes}, got {mode!r}"
    )
