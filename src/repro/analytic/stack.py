"""The analytic fast-forward stack: ``make_stack("analytic", ...)``.

A third :class:`~repro.experiments.harness.Stack` implementation next to
OPTIMUS and pass-through.  Instead of simulating every packet it
**fast-forwards** steady-state phases: each launched job resolves to a
calibrated cell (:mod:`repro.analytic.calibration`) and, when the clock
advances,

* throughput jobs accrue bytes linearly at the calibrated GB/s, and
* latency jobs replay the calibrated service-time distribution by
  stratified inverse-CDF sampling (piecewise-linear CDF through the
  min/p50/p95/p99/max envelope, mean-corrected, seeded shuffle so the
  steady-state halves experiments read are unbiased).

The stack exposes the same surface experiments consume — ``params``,
``platform.engine.now``, ``jobs``, ``launch()``, ``run_for()`` — so
fig4/5/6-shaped code runs unchanged.  On a cold calibration cache the
first ``run_for`` pays one real DES run per distinct cell; warm runs are
pure arithmetic, which is what makes 10^6-tenant capacity sweeps
tractable (:mod:`repro.analytic.capacity`).

Transient effects inside one run are deliberately not modeled: replay is
stationary at the cell's steady state.  The cross-validation suite
(``tests/test_analytic_validation.py``) bounds the resulting error
against DES with a declared tolerance band.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analytic.calibration import (
    CellSpec,
    CellStats,
    LATENCY_BENCHMARKS,
    CalibrationStore,
    default_store,
)
from repro.errors import ConfigurationError
from repro.interconnect import VirtualChannel
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.stats import LatencyRecorder

#: Cap on replayed latency samples per ``run_for`` call: enough for any
#: steady-state mean/quantile readout, bounded so a week-long fast-forward
#: does not materialize a week of per-hop samples.
MAX_REPLAY_SAMPLES = 50_000

_REPLAY_SEED_MIX = 0x5EED_A11C


class AnalyticEngine:
    """The minimal engine surface measurement helpers touch."""

    def __init__(self) -> None:
        self.now = 0
        self.trace = None


class AnalyticPlatform:
    """A platform stand-in: parameters plus a fast-forwardable clock."""

    def __init__(self, params: PlatformParams) -> None:
        self.params = params
        self.engine = AnalyticEngine()

    def run_for(self, duration_ps: int) -> None:
        self.engine.now += duration_ps


class AnalyticJob:
    """One replayed job: calibrated rates instead of simulated packets."""

    def __init__(
        self,
        name: str,
        *,
        working_set: int,
        channel: VirtualChannel,
        variant: str,
        target_hops: Optional[int],
        replay_seed: int,
    ) -> None:
        self.name = name
        self.working_set = working_set
        self.channel = channel
        self.variant = variant
        self.target_hops = target_hops
        self.latency = LatencyRecorder(f"analytic.{name}.latency")
        self.bytes_done = 0
        self.started = False
        self.stats: Optional[CellStats] = None
        self._bytes_f = 0.0
        self._hops = 0
        self._rng = np.random.RandomState(replay_seed & 0xFFFFFFFF)

    # -- the AcceleratorJob surface experiments read ------------------------------

    def progress_units(self) -> int:
        if self.name in LATENCY_BENCHMARKS:
            return self._hops
        return self.bytes_done // 64

    def start(self) -> None:
        self.started = True

    # MMIO writes configure register files on real stacks; the analytic
    # job's configuration came through ``launch`` keywords already.
    def mmio_write(self, reg: int, value: int) -> None:  # pragma: no cover
        pass

    def alloc_buffer(self, size: int) -> int:  # pragma: no cover
        return 0

    # -- fast-forward -------------------------------------------------------------

    def advance(self, duration_ps: int) -> None:
        stats = self.stats
        if stats is None or not self.started:
            return
        if stats.kind == "throughput":
            # GB/s == bytes/ns: bytes = gbps * ps / 1e3.
            self._bytes_f += stats.gbps_per_job * duration_ps / 1e3
            self.bytes_done = int(self._bytes_f)
            return
        mean = max(1.0, stats.mean_ps)
        count = int(duration_ps / mean)
        if self.target_hops is not None:
            count = min(count, self.target_hops - self._hops)
        count = min(count, MAX_REPLAY_SAMPLES)
        if count <= 0:
            return
        for sample in _replay_samples(stats, count, self._rng):
            self.latency.record(sample)
        self._hops += count


def _replay_samples(stats: CellStats, count: int, rng) -> List[int]:
    """Stratified inverse-CDF replay of a calibrated latency envelope.

    The CDF is piecewise linear through (0, min) (0.5, p50) (0.95, p95)
    (0.99, p99) (1, max); stratified uniforms make the empirical
    quantiles land on the calibrated knots, and an additive correction
    re-centers the piecewise-linear mean on the calibrated mean (the
    linear-density assumption inside segments would otherwise bias it).
    A seeded shuffle destroys the sort order so windowed/halved readouts
    (``steady_samples_ps``) stay unbiased.
    """
    knots_u = (0.0, 0.5, 0.95, 0.99, 1.0)
    knots_v = (
        float(stats.min_ps),
        float(stats.p50_ps),
        float(stats.p95_ps),
        float(stats.p99_ps),
        float(stats.max_ps),
    )
    mean_pl = sum(
        (knots_u[i + 1] - knots_u[i]) * (knots_v[i] + knots_v[i + 1]) / 2.0
        for i in range(len(knots_u) - 1)
    )
    shift = stats.mean_ps - mean_pl
    u = (np.arange(count) + rng.random_sample(count)) / count
    values = np.interp(u, knots_u, knots_v) + shift
    np.maximum(values, 1.0, out=values)
    rng.shuffle(values)
    return [int(v) for v in values]


class AnalyticStack:
    """Calibrated fast-forward stack with the shared launch surface."""

    def __init__(
        self,
        params: Optional[PlatformParams] = None,
        *,
        n_accelerators: int = 8,
        calibration: Optional[CalibrationStore] = None,
        replay_seed: int = 0,
    ) -> None:
        self.params = params or PlatformParams()
        self.platform = AnalyticPlatform(self.params)
        self.n_accelerators = n_accelerators
        self.calibration = calibration if calibration is not None else default_store()
        self.replay_seed = replay_seed
        self.jobs: List = []
        self._analytic_jobs: List[AnalyticJob] = []
        self._resolved = False

    def launch(
        self,
        name: str,
        *,
        physical_index: int = 0,
        working_set: int = 64 * MB,
        stream_len: int = 1 << 40,
        channel: VirtualChannel = VirtualChannel.VA,
        graph=None,
        job_kwargs: Optional[dict] = None,
        start: bool = True,
    ):
        from repro.experiments.harness import LaunchedJob

        if physical_index >= self.n_accelerators:
            raise ConfigurationError(
                f"physical_index {physical_index} out of range "
                f"(stack has {self.n_accelerators} accelerators)"
            )
        kwargs = dict(job_kwargs or {})
        variant = ""
        if name == "MB":
            from repro.accel.membench import MODE_WRITE

            variant = "write" if kwargs.get("mode") == MODE_WRITE else "read"
        job = AnalyticJob(
            name,
            working_set=working_set,
            channel=channel,
            variant=variant,
            target_hops=kwargs.get("target_hops"),
            replay_seed=(
                self.replay_seed * _REPLAY_SEED_MIX
                + kwargs.get("seed", 0)
                + 7919 * len(self.jobs)
            ),
        )
        launched = LaunchedJob(
            name=name, job=job, handle=job, cache_line=self.params.cache_line
        )
        self.jobs.append(launched)
        self._analytic_jobs.append(job)
        self._resolved = False
        if start:
            job.start()
        return launched

    def _resolve(self) -> None:
        """Bind every job to its calibrated cell at the current contention."""
        contention = max(1, sum(1 for j in self._analytic_jobs if j.started))
        for job in self._analytic_jobs:
            spec = CellSpec(
                benchmark=job.name,
                working_set=job.working_set,
                contention=contention,
                page_size=self.params.page_size,
                channel=job.channel.value,
                variant=job.variant,
                speculative=self.params.speculative_region_opt,
            )
            job.stats = self.calibration.get_or_calibrate(spec)
        self._resolved = True

    def run_for(self, duration_ps: int) -> None:
        if not self._resolved:
            self._resolve()
        for job in self._analytic_jobs:
            job.advance(duration_ps)
        self.platform.engine.now += duration_ps
