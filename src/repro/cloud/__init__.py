"""Deployment altitude: accelerator library, configurations, placement."""

from repro.cloud.library import AcceleratorLibrary, FpgaConfiguration, LibraryEntry
from repro.cloud.provider import CloudProvider, Tenant

__all__ = [
    "AcceleratorLibrary",
    "CloudProvider",
    "FpgaConfiguration",
    "LibraryEntry",
    "Tenant",
]
