"""The provider's accelerator library (§1, §3, §8).

"Cloud providers such as Amazon and Microsoft configure their FPGAs into
popular accelerators, which the providers then make available for
customer use."  OPTIMUS targets exactly this model: the provider picks a
*configuration* — a mix of accelerators from its library — synthesizes it
once (validated by the synthesis model: at most eight instances, timing
closed at 400 MHz, resources fit), and schedules customer VMs onto it.

:class:`AcceleratorLibrary` wraps the Table 1 catalog with the metadata a
provider cares about; :class:`FpgaConfiguration` is one validated
bitstream-equivalent: an ordered list of accelerator types plus the
synthesis report proving it fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.accel.registry import CATALOG, make_job, profile_of
from repro.errors import ConfigurationError, SynthesisError
from repro.fpga.synthesis import SynthesisReport, synthesize


@dataclass(frozen=True)
class LibraryEntry:
    """One accelerator product in the provider's catalog."""

    name: str
    description: str
    preemptible: bool
    alm_pct: float
    bram_pct: float


class AcceleratorLibrary:
    """The catalog of accelerators a provider offers its customers."""

    def __init__(self, names: Optional[Sequence[str]] = None) -> None:
        names = list(names) if names is not None else list(CATALOG)
        unknown = [n for n in names if n not in CATALOG]
        if unknown:
            raise ConfigurationError(f"unknown accelerators: {unknown}")
        self._names = names

    def entries(self) -> List[LibraryEntry]:
        result = []
        for name in self._names:
            profile = profile_of(name)
            result.append(
                LibraryEntry(
                    name=name,
                    description=profile.description,
                    preemptible=profile.preemptible,
                    alm_pct=profile.footprint.alm_pct,
                    bram_pct=profile.footprint.bram_pct,
                )
            )
        return result

    def offers(self, name: str) -> bool:
        return name in self._names

    def make_job(self, name: str, **kwargs):
        if not self.offers(name):
            raise ConfigurationError(f"library does not offer {name!r}")
        return make_job(name, **kwargs)


@dataclass
class FpgaConfiguration:
    """A validated accelerator mix for one FPGA (a 'bitstream')."""

    slots: List[str]  # accelerator type per physical slot, in order
    report: SynthesisReport = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def synthesize(
        cls, slots: Sequence[str], *, library: Optional[AcceleratorLibrary] = None
    ) -> "FpgaConfiguration":
        """Validate a mix through the synthesis model; raises if infeasible."""
        library = library or AcceleratorLibrary()
        for name in slots:
            if not library.offers(name):
                raise ConfigurationError(f"library does not offer {name!r}")
        profiles = [profile_of(name) for name in slots]
        report = synthesize(
            [p.footprint for p in profiles],
            [p.character for p in profiles],
        )
        return cls(slots=list(slots), report=report)

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    def slots_of_type(self, name: str) -> List[int]:
        return [i for i, slot in enumerate(self.slots) if slot == name]

    def utilization_summary(self) -> Dict[str, float]:
        total = self.report.total
        return {"alm_pct": total.alm_pct, "bram_pct": total.bram_pct}
