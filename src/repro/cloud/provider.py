"""The cloud provider: placement of tenant jobs onto a configured FPGA.

Ties the whole reproduction together at the paper's deployment altitude
(§3): the provider synthesizes an :class:`FpgaConfiguration`, boots an
OPTIMUS platform for it, and serves tenant requests ("I want an AES
accelerator") by placing each on a physical slot of the right type —
spatially while free slots of that type exist, temporally (oversubscribing
the least-loaded slot) once they run out.  Tenants receive an ordinary
:class:`~repro.guest.api.GuestAccelerator` handle and never see placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.library import AcceleratorLibrary, FpgaConfiguration
from repro.errors import ConfigurationError, SchedulerError
from repro.guest.api import GuestAccelerator
from repro.hv.checkpoint import GuestCheckpoint, restore_guest
from repro.hv.hypervisor import OptimusHypervisor
from repro.hv.mdev import VirtualAccelerator
from repro.mem.address import GB, MB
from repro.platform.builder import Platform, build_platform
from repro.platform.params import PlatformParams


@dataclass
class Tenant:
    """One placed customer: their VM, handle, and placement facts."""

    name: str
    accel_type: str
    physical_index: int
    vaccel: VirtualAccelerator
    handle: GuestAccelerator

    @property
    def oversubscribed(self) -> bool:
        manager = self.handle.hypervisor.physical[self.physical_index]
        return len(manager.vaccels) > 1


class CloudProvider:
    """Runs one OPTIMUS FPGA and places tenants onto it."""

    def __init__(
        self,
        configuration: FpgaConfiguration,
        *,
        params: Optional[PlatformParams] = None,
        library: Optional[AcceleratorLibrary] = None,
    ) -> None:
        self.configuration = configuration
        self.library = library or AcceleratorLibrary()
        self.params = params or PlatformParams()
        self.platform: Platform = build_platform(
            self.params, n_accelerators=configuration.n_slots
        )
        self.hypervisor = OptimusHypervisor(self.platform)
        self.tenants: List[Tenant] = []

    # -- placement -----------------------------------------------------------------

    def _occupancy(self, physical_index: int) -> int:
        return len(self.hypervisor.physical[physical_index].vaccels)

    def place(
        self,
        tenant_name: str,
        accel_type: str,
        *,
        window_bytes: int = 64 * MB,
        vm_bytes: int = 10 * GB,
        job_kwargs: Optional[dict] = None,
    ) -> Tenant:
        """Admit a tenant requesting one accelerator of ``accel_type``.

        Spatial first: an empty slot of the right type.  Then temporal:
        the least-oversubscribed slot of that type.  Rejected only if the
        configuration carries no slot of the type at all.
        """
        candidates = self.configuration.slots_of_type(accel_type)
        if not candidates:
            raise SchedulerError(
                f"configuration has no {accel_type!r} slot; "
                f"available: {sorted(set(self.configuration.slots))}"
            )
        physical_index = min(candidates, key=self._occupancy)

        job = self.library.make_job(accel_type, **(job_kwargs or {}))
        vm = self.hypervisor.create_vm(tenant_name, mem_bytes=vm_bytes)
        vaccel = self.hypervisor.create_virtual_accelerator(
            vm, job, physical_index=physical_index
        )
        handle = GuestAccelerator(self.hypervisor, vm, vaccel, window_bytes=window_bytes)
        tenant = Tenant(
            name=tenant_name,
            accel_type=accel_type,
            physical_index=physical_index,
            vaccel=vaccel,
            handle=handle,
        )
        # A tenant who disconnects the handle themselves (e.g. by leaving
        # a ``with provider.connect(...)`` block) is forgotten here too.
        handle._on_disconnect = lambda: self._forget(tenant)
        self.tenants.append(tenant)
        return tenant

    def connect(
        self,
        tenant_name: str,
        accel_type: str,
        *,
        window_bytes: int = 64 * MB,
        vm_bytes: int = 10 * GB,
        job_kwargs: Optional[dict] = None,
    ) -> GuestAccelerator:
        """Place a tenant and return just the guest handle.

        The handle is a context manager; exiting the block disconnects it
        and drops the provider's tenant record.
        """
        return self.place(
            tenant_name,
            accel_type,
            window_bytes=window_bytes,
            vm_bytes=vm_bytes,
            job_kwargs=job_kwargs,
        ).handle

    def restore(
        self,
        checkpoint: GuestCheckpoint,
        *,
        physical_index: Optional[int] = None,
    ) -> Tenant:
        """Admit a migrated-in tenant from a :class:`GuestCheckpoint`.

        The placement rule matches :meth:`place` (least-occupied slot of
        the checkpoint's accelerator type), but the guest is rebuilt with
        :func:`repro.hv.checkpoint.restore_guest` instead of probed fresh:
        its pages land at the original GVAs and the shadow-paging
        hypercalls are replayed against the new IOVA slice.
        """
        candidates = self.configuration.slots_of_type(checkpoint.accel_type)
        if not candidates:
            raise SchedulerError(
                f"configuration has no {checkpoint.accel_type!r} slot; "
                f"available: {sorted(set(self.configuration.slots))}"
            )
        if physical_index is None:
            physical_index = min(candidates, key=self._occupancy)
        elif physical_index not in candidates:
            raise ConfigurationError(
                f"slot {physical_index} is not a {checkpoint.accel_type!r} slot"
            )
        job = self.library.make_job(checkpoint.accel_type)
        vm, vaccel = restore_guest(
            self.hypervisor, checkpoint, job, physical_index=physical_index
        )
        handle = GuestAccelerator.adopt(self.hypervisor, vm, vaccel)
        tenant = Tenant(
            name=checkpoint.vm_name,
            accel_type=checkpoint.accel_type,
            physical_index=physical_index,
            vaccel=vaccel,
            handle=handle,
        )
        handle._on_disconnect = lambda: self._forget(tenant)
        self.tenants.append(tenant)
        return tenant

    def _forget(self, tenant: Tenant) -> None:
        if tenant in self.tenants:
            self.tenants.remove(tenant)

    def evict(self, tenant: Tenant) -> None:
        """Remove a tenant, releasing its slot share and IOVA slice."""
        if tenant not in self.tenants:
            raise ConfigurationError(f"unknown tenant {tenant.name}")
        tenant.handle.disconnect()  # the disconnect hook forgets the tenant
        self._forget(tenant)

    def rebalance(self) -> int:
        """Spread oversubscribed slots onto empty same-type slots (§7.1).

        Uses live migration; returns how many tenants moved.
        """
        moved = 0
        for accel_type in set(self.configuration.slots):
            slots = self.configuration.slots_of_type(accel_type)
            while True:
                loads = {slot: self._occupancy(slot) for slot in slots}
                busiest = max(slots, key=lambda s: loads[s])
                idlest = min(slots, key=lambda s: loads[s])
                if loads[busiest] - loads[idlest] < 2:
                    break
                manager = self.hypervisor.physical[busiest]
                candidates = [va for va in manager.vaccels if va is not manager.current]
                mover = candidates[0] if candidates else manager.vaccels[0]
                done = self.hypervisor.migrate_virtual_accelerator(mover, idlest)
                self.platform.engine.run_until(
                    done, limit_ps=self.platform.engine.now + self.params.time_slice_ps * 4
                )
                moved += 1
        return moved

    # -- reporting ------------------------------------------------------------------

    def occupancy_report(self) -> Dict[int, Dict[str, object]]:
        report: Dict[int, Dict[str, object]] = {}
        for index, accel_type in enumerate(self.configuration.slots):
            manager = self.hypervisor.physical[index]
            report[index] = {
                "type": accel_type,
                "tenants": [va.name for va in manager.vaccels],
                "oversubscription": len(manager.vaccels),
            }
        return report
