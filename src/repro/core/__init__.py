"""OPTIMUS's core contribution: the hardware monitor and page table slicing."""

from repro.core.auditor import Auditor
from repro.core.monitor import HardwareMonitor
from repro.core.mux_tree import AsymmetricMuxTree, MuxNode, MuxTree
from repro.core.slicing import Slice, SliceLayout, default_layout
from repro.core.vcu import (
    ACCEL_PAGE_BYTES,
    MGMT_PAGE_BYTES,
    REG_ACCEL_SELECT,
    REG_DISABLE,
    REG_MAGIC,
    REG_NUM_ACCELS,
    REG_RESET,
    REG_SLICE_BASE,
    REG_WINDOW_BASE,
    REG_WINDOW_SIZE,
    VCU_MAGIC,
    VirtualizationControlUnit,
    accel_mmio_base,
)

__all__ = [
    "ACCEL_PAGE_BYTES",
    "AsymmetricMuxTree",
    "Auditor",
    "HardwareMonitor",
    "MGMT_PAGE_BYTES",
    "MuxNode",
    "MuxTree",
    "REG_ACCEL_SELECT",
    "REG_DISABLE",
    "REG_MAGIC",
    "REG_NUM_ACCELS",
    "REG_RESET",
    "REG_SLICE_BASE",
    "REG_WINDOW_BASE",
    "REG_WINDOW_SIZE",
    "Slice",
    "SliceLayout",
    "VCU_MAGIC",
    "VirtualizationControlUnit",
    "accel_mmio_base",
    "default_layout",
]
