"""Auditors: the per-accelerator gatekeepers of the hardware monitor (§4.1).

One auditor fronts each physical accelerator.  It owns three checks, all
performed with single-cycle circuitry:

* **Outbound DMA** — the request's GVA must fall inside the accelerator's
  permitted window ``[g, g + p)``; the auditor adds the offset-table value
  ``i - g`` to relocate the request into the accelerator's IOVA slice and
  tags it with the accelerator ID.  Out-of-window requests are *discarded*
  (and, for reads, completed with no data) — an accelerator can never name
  another guest's memory.

* **Inbound MMIO** — the packet's offset must fall inside the
  accelerator's 4 KB MMIO page; otherwise it is discarded.

* **Inbound DMA responses** — the response's accelerator-ID tag must match;
  foreign responses are discarded.  This is the "lazy packet routing" of
  §4.1: the multiplexer tree blindly propagates packets and the auditor
  decides at the edge.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.fpga.afu import AfuSocket
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.engine import Engine
from repro.sim.packet import AddressSpace, Packet
from repro.sim.stats import Counters

#: Signature for forwarding a request up the multiplexer tree.
TreeIngress = Callable[[Packet, VirtualChannel, Callable[[Optional[Packet]], None]], None]


class Auditor:
    """The isolation boundary for one physical accelerator."""

    def __init__(
        self,
        engine: Engine,
        accel_id: int,
        *,
        latency_ps: int,
        mmio_page_bytes: int = 4096,
    ) -> None:
        self.engine = engine
        self.accel_id = accel_id
        self.latency_ps = latency_ps
        self.mmio_page_bytes = mmio_page_bytes
        # Offset-table state, written by the VCU on (re)schedule.
        self.offset: int = 0
        self.window_base: int = 0  # g
        self.window_size: int = 0  # p
        self.enabled: bool = False
        self.tree_ingress: Optional[TreeIngress] = None
        self.socket: Optional[AfuSocket] = None
        self.counters = Counters()

    # -- VCU-facing configuration ------------------------------------------------

    def configure_window(self, gva_base: int, window_size: int, iova_base: int) -> None:
        """Install the page-table-slicing mapping for the scheduled guest."""
        self.window_base = gva_base
        self.window_size = window_size
        self.offset = iova_base - gva_base
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- outbound: accelerator -> memory ---------------------------------------------

    def dma_sink(
        self,
        packet: Packet,
        channel: VirtualChannel,
        on_response: Callable[[Optional[Packet]], None],
    ) -> None:
        """Entry point wired to the accelerator socket's DMA engine."""
        if not self.enabled:
            self.counters.bump("dma_dropped_disabled")
            self.engine.call_after(self.latency_ps, on_response, None)
            return
        if not self._in_window(packet.address, packet.size):
            self.counters.bump("dma_dropped_window")
            self.engine.call_after(self.latency_ps, on_response, None)
            return
        # Single-cycle GVA -> IOVA relocation + accelerator-ID tagging.
        packet.address += self.offset
        packet.space = AddressSpace.IOVA
        packet.accel_id = self.accel_id
        self.counters.bump("dma_forwarded")
        assert self.tree_ingress is not None, "auditor not wired to mux tree"
        self.engine.call_after(
            self.latency_ps,
            self.tree_ingress,
            packet,
            channel,
            lambda response: self.deliver_response(response, on_response),
        )

    def _in_window(self, gva: int, size: int) -> bool:
        return (
            self.window_base <= gva
            and gva + size <= self.window_base + self.window_size
        )

    # -- inbound: memory -> accelerator ---------------------------------------------

    def deliver_response(
        self,
        response: Optional[Packet],
        on_response: Callable[[Optional[Packet]], None],
    ) -> None:
        """Filter a DMA response by accelerator-ID tag and undo the offset."""
        if response is None:
            # Dropped at the IOMMU (fault) — nothing to deliver.
            self.counters.bump("dma_faulted")
            on_response(None)
            return
        if response.accel_id != self.accel_id:
            self.counters.bump("response_discarded_foreign")
            on_response(None)
            return
        response.address -= self.offset
        response.space = AddressSpace.GVA
        self.counters.bump("response_delivered")
        self.engine.call_after(self.latency_ps, on_response, response)

    # -- inbound: MMIO ------------------------------------------------------------------

    def mmio_write(self, offset: int, value: int) -> bool:
        """Forward an MMIO write if it targets this accelerator's page."""
        if not self._mmio_in_range(offset):
            self.counters.bump("mmio_discarded")
            return False
        assert self.socket is not None
        self.socket.mmio_write(offset, value)
        self.counters.bump("mmio_forwarded")
        return True

    def mmio_read(self, offset: int) -> Optional[int]:
        if not self._mmio_in_range(offset):
            self.counters.bump("mmio_discarded")
            return None
        assert self.socket is not None
        self.counters.bump("mmio_forwarded")
        return self.socket.mmio_read(offset)

    def _mmio_in_range(self, offset: int) -> bool:
        return 0 <= offset < self.mmio_page_bytes
