"""The assembled hardware monitor (Fig. 3).

``HardwareMonitor`` wires the gray boxes of the paper's Fig. 3 together:

    shell <-> VCU <-> multiplexer tree <-> auditors <-> accelerators

and reports its own resource footprint for Table 2.  It is the single
object the shell is configured with under OPTIMUS; the pass-through
baseline configures the shell with a bare accelerator socket instead.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.auditor import Auditor
from repro.core.mux_tree import AsymmetricMuxTree, MuxTree
from repro.core.vcu import VirtualizationControlUnit, accel_mmio_base
from repro.errors import ConfigurationError
from repro.fpga.afu import AfuSocket
from repro.fpga.resources import ResourceFootprint, monitor_footprint
from repro.fpga.shell import Shell
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.packet import Packet


class HardwareMonitor:
    """OPTIMUS's on-FPGA component: VCU + multiplexer tree + auditors."""

    def __init__(
        self,
        engine: Engine,
        shell: Shell,
        sockets: List[AfuSocket],
        *,
        mux_radix: int,
        mux_level_latency_ps: int,
        auditor_latency_ps: int,
        interconnect_clock: Clock,
        mux_topology=None,
        root_cost_per_line_cycles: float = 1.0,
    ) -> None:
        if not sockets:
            raise ConfigurationError("hardware monitor needs at least one socket")
        self.engine = engine
        self.shell = shell
        self.sockets = sockets

        self.auditors: List[Auditor] = []
        for socket in sockets:
            auditor = Auditor(
                engine,
                socket.accel_id,
                latency_ps=auditor_latency_ps,
            )
            auditor.socket = socket
            self.auditors.append(auditor)

        if mux_topology is not None:
            # Asymmetric arrangement (§4.1): fewer accelerators on a
            # favoured path receive a larger share of root bandwidth.
            self.tree = AsymmetricMuxTree(
                engine,
                mux_topology,
                clock=interconnect_clock,
                level_latency_ps=mux_level_latency_ps,
                root_egress=self._root_egress,
                root_cost_per_line_cycles=root_cost_per_line_cycles,
            )
        else:
            self.tree = MuxTree(
                engine,
                n_leaves=len(sockets),
                radix=mux_radix,
                clock=interconnect_clock,
                level_latency_ps=mux_level_latency_ps,
                root_egress=self._root_egress,
                root_cost_per_line_cycles=root_cost_per_line_cycles,
            )

        for index, (auditor, socket) in enumerate(zip(self.auditors, sockets)):
            auditor.tree_ingress = self.tree.leaf_ingress(index)
            socket.connect(auditor.dma_sink)

        self.vcu = VirtualizationControlUnit(self.auditors, sockets)

    # -- data plane ---------------------------------------------------------------

    def _root_egress(
        self,
        packet: Packet,
        channel: VirtualChannel,
        on_response: Callable[[Optional[Packet]], None],
    ) -> None:
        self.shell.dma_to_memory(packet, channel, on_response)

    # -- control plane (MmioTarget protocol for the shell) ---------------------------

    def mmio_write(self, offset: int, value: int) -> None:
        self.vcu.mmio_write(offset, value)

    def mmio_read(self, offset: int) -> int:
        return self.vcu.mmio_read(offset)

    # -- reporting -----------------------------------------------------------------------

    def violation_counts(self) -> dict:
        """Aggregate isolation-violation counters across all auditors.

        Sums every per-socket counter bag (fenced DMAs, discarded MMIO,
        watchdog quarantines, ...) into one sorted name -> count dict; the
        chaos experiments report this as the platform's violation surface.
        """
        totals: dict = {}
        for auditor in self.auditors:
            for name, value in auditor.counters.snapshot().items():
                totals[name] = totals.get(name, 0) + value
        return dict(sorted(totals.items()))

    @property
    def footprint(self) -> ResourceFootprint:
        return monitor_footprint(len(self.sockets), self.tree.node_count)

    def accel_mmio_base(self, accel_index: int) -> int:
        """MMIO offset of accelerator ``accel_index``, above the shell window."""
        if not 0 <= accel_index < len(self.sockets):
            raise ConfigurationError(f"accelerator {accel_index} out of range")
        return accel_mmio_base(accel_index)
