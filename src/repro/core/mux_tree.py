"""The multiplexer tree (§4.1, §5).

The tree carries packets between the shell and the physical accelerators.
Design properties taken from the paper:

* **Round-robin arbitration per node** — equal bandwidth for every
  accelerator on the same path, the mechanism behind §6.7's fairness.
* **No address-based routing** — the tree propagates blindly; auditors at
  the leaves decide (lazy packet routing).
* **~33 ns latency per level** — Fig. 4a's 100 ns adder for the
  three-level binary tree.
* **One packet per node per cycle** — together with the leaf-side issue
  throttle, this is why an OPTIMUS accelerator "can only transmit a memory
  request packet every two cycles" (§6.3).

Asymmetric trees are supported: "if cloud providers seek to provide
greater bandwidth to some accelerator A, the multiplexer tree can be
configured to place fewer accelerators under the multiplexers on A's
path" (§4.1) — build with an explicit topology list to do that.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.packet import CACHE_LINE_BYTES, Packet, PacketKind
from repro.sim.port import RoundRobinArbiter

#: What flows through the tree: the packet, its virtual channel, and the
#: response continuation that eventually reaches the issuing auditor.
TreeItem = Tuple[Packet, VirtualChannel, Callable[[Optional[Packet]], None]]

#: The tree's root output: delivers the item to the VCU/shell.
RootEgress = Callable[[Packet, VirtualChannel, Callable[[Optional[Packet]], None]], None]


def _item_cycles(item: TreeItem) -> int:
    packet = item[0]
    return max(1, (packet.size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES)


#: Root-pacing weight for write requests.  CCI-P carries writes on their
#: own Tx channel (C1) with separate credits; the root's *read* pacing
#: models downstream-link acceptance, so writes only pay a token slot.
WRITE_ROOT_WEIGHT = 0.2


class MuxNode:
    """One r-input multiplexer stage with round-robin arbitration.

    ``cost_per_line_cycles`` > 1 models a rate-paced node: the tree's root
    can only hand the shell requests as fast as the interconnect accepts
    them, which makes the root's round-robin the platform's bandwidth
    allocator — the property behind §6.7's fairness guarantees.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        radix: int,
        *,
        clock: Clock,
        level_latency_ps: int,
        forward: Callable[[TreeItem], None],
        cost_per_line_cycles: float = 1.0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.level_latency_ps = level_latency_ps
        self._forward = forward
        scale = cost_per_line_cycles

        # The cost function runs once per grant, across every node and
        # packet in the tree; specialize the unscaled (non-root) case.
        if scale == 1.0:
            def cost(item: TreeItem) -> float:
                size = item[0].size
                if size <= CACHE_LINE_BYTES:
                    return 1
                return (size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES
        elif scale > 1.0:
            def cost(item: TreeItem) -> float:
                packet = item[0]
                size = packet.size
                lines = (
                    1
                    if size <= CACHE_LINE_BYTES
                    else (size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES
                )
                if packet.kind is PacketKind.DMA_WRITE_REQ:
                    # Rate-paced root: writes ride the separate C1 channel.
                    paced = lines * scale * WRITE_ROOT_WEIGHT
                    return paced if paced > 1.0 else 1.0
                return lines * scale
        else:
            def cost(item: TreeItem) -> float:
                return _item_cycles(item) * scale

        self.arbiter = RoundRobinArbiter(
            engine,
            name,
            n_inputs=radix,
            period_ps=clock.period_ps,
            grant=self._on_grant,
            cost_cycles=cost,
        )

    def push(self, input_index: int, item: TreeItem) -> None:
        self.arbiter.push(input_index, item)

    def _on_grant(self, _input_index: int, item: TreeItem) -> None:
        # Each tree level adds its pipeline latency on the request path.
        self.engine.call_after(self.level_latency_ps, self._forward, item)


class MuxTree:
    """A complete multiplexer hierarchy with N leaf ports."""

    def __init__(
        self,
        engine: Engine,
        n_leaves: int,
        *,
        radix: int,
        clock: Clock,
        level_latency_ps: int,
        root_egress: RootEgress,
        root_cost_per_line_cycles: float = 1.0,
    ) -> None:
        if n_leaves < 1:
            raise ConfigurationError("mux tree needs at least one leaf")
        if radix < 2:
            raise ConfigurationError("mux radix must be >= 2")
        self.engine = engine
        self.n_leaves = n_leaves
        self.radix = radix
        self.levels = max(1, math.ceil(math.log(max(n_leaves, 2), radix)))
        self.root_egress = root_egress
        self._root_cost = root_cost_per_line_cycles

        # Build bottom-up.  Level 0 nodes take leaves; each higher level
        # multiplexes the nodes below; the single top node feeds the root.
        self._levels: List[List[MuxNode]] = []
        width = radix**self.levels  # leaf slots including unused ones
        below = width
        for level in range(self.levels):
            count = below // radix
            nodes: List[MuxNode] = []
            for node_index in range(count):
                nodes.append(self._make_node(level, node_index, clock, level_latency_ps))
            self._levels.append(nodes)
            below = count
        assert len(self._levels[-1]) == 1, "tree must converge to a single root"

    def _make_node(
        self, level: int, node_index: int, clock: Clock, level_latency_ps: int
    ) -> MuxNode:
        if level + 1 < self.levels:
            def forward(item: TreeItem, lvl: int = level, idx: int = node_index) -> None:
                parent = self._levels[lvl + 1][idx // self.radix]
                parent.push(idx % self.radix, item)
        else:
            def forward(item: TreeItem) -> None:
                packet, channel, on_response = item
                self.root_egress(packet, channel, on_response)

        is_root = level + 1 == self.levels
        return MuxNode(
            self.engine,
            f"mux.L{level}.{node_index}",
            self.radix,
            clock=clock,
            level_latency_ps=level_latency_ps,
            forward=forward,
            cost_per_line_cycles=self._root_cost if is_root else 1.0,
        )

    # -- leaf-side API -----------------------------------------------------------

    def leaf_ingress(self, leaf_index: int) -> Callable[..., None]:
        """The ingress function for one leaf (wired to an auditor)."""
        if not 0 <= leaf_index < self.n_leaves:
            raise ConfigurationError(f"leaf {leaf_index} out of range")
        node = self._levels[0][leaf_index // self.radix]
        input_index = leaf_index % self.radix

        def ingress(
            packet: Packet,
            channel: VirtualChannel,
            on_response: Callable[[Optional[Packet]], None],
        ) -> None:
            node.push(input_index, (packet, channel, on_response))

        return ingress

    @property
    def node_count(self) -> int:
        return sum(len(nodes) for nodes in self._levels)

    @property
    def request_path_latency_ps(self) -> int:
        """Pure pipeline latency from a leaf to the root (no queueing)."""
        return self.levels * self._levels[0][0].level_latency_ps


#: An asymmetric-topology spec: a (nested) list whose items are either leaf
#: indices (ints) or sub-lists (subtrees).  ``[0, [1, 2]]`` hangs leaf 0
#: directly off the root while leaves 1 and 2 share a child multiplexer —
#: leaf 0 then receives half the root bandwidth, 1 and 2 a quarter each.
TopologySpec = list


class AsymmetricMuxTree:
    """A multiplexer hierarchy with an explicit, possibly uneven topology.

    §4.1: "if cloud providers seek to provide greater bandwidth to some
    accelerator A, the multiplexer tree can be configured to place fewer
    accelerators under the multiplexers on A's path."  Each node still
    arbitrates round-robin among its direct children, so a leaf's share
    of root bandwidth is the product of 1/fan-in along its path.
    """

    def __init__(
        self,
        engine: Engine,
        topology: TopologySpec,
        *,
        clock: Clock,
        level_latency_ps: int,
        root_egress: RootEgress,
        root_cost_per_line_cycles: float = 1.0,
    ) -> None:
        if not isinstance(topology, list) or not topology:
            raise ConfigurationError("topology must be a non-empty list")
        self.engine = engine
        self.root_egress = root_egress
        self._clock = clock
        self._level_latency_ps = level_latency_ps
        self._root_cost = root_cost_per_line_cycles
        self._ingress: dict = {}
        self._node_count = 0
        self.nodes: List[MuxNode] = []

        def root_forward(item: TreeItem) -> None:
            packet, channel, on_response = item
            self.root_egress(packet, channel, on_response)

        self._build_node(topology, root_forward, depth=1)
        self.n_leaves = len(self._ingress)
        if self.n_leaves == 0:
            raise ConfigurationError("topology has no leaves")

    def _build_node(self, spec: TopologySpec, forward, depth: int) -> MuxNode:
        node = MuxNode(
            self.engine,
            f"amux.d{depth}.{self._node_count}",
            radix=len(spec),
            clock=self._clock,
            level_latency_ps=self._level_latency_ps,
            forward=forward,
            cost_per_line_cycles=self._root_cost if depth == 1 else 1.0,
        )
        self.nodes.append(node)
        self._node_count += 1
        for input_index, child in enumerate(spec):
            if isinstance(child, list):
                def child_forward(item: TreeItem, n=node, i=input_index) -> None:
                    n.push(i, item)

                self._build_node(child, child_forward, depth + 1)
            else:
                if child in self._ingress:
                    raise ConfigurationError(f"leaf {child} appears twice")
                self._leaf(node, input_index, int(child))
        return node

    def _leaf(self, node: MuxNode, input_index: int, leaf_id: int) -> None:
        def ingress(
            packet: Packet,
            channel: VirtualChannel,
            on_response: Callable[[Optional[Packet]], None],
        ) -> None:
            node.push(input_index, (packet, channel, on_response))

        self._ingress[leaf_id] = ingress

    def leaf_ingress(self, leaf_index: int) -> Callable[..., None]:
        try:
            return self._ingress[leaf_index]
        except KeyError:
            raise ConfigurationError(f"leaf {leaf_index} not in topology") from None

    @property
    def node_count(self) -> int:
        return self._node_count

    def depth_of(self, leaf_index: int, topology: TopologySpec) -> int:
        """Levels between a leaf and the root (for latency accounting)."""

        def search(spec: TopologySpec, depth: int) -> Optional[int]:
            for child in spec:
                if isinstance(child, list):
                    found = search(child, depth + 1)
                    if found is not None:
                        return found
                elif child == leaf_index:
                    return depth
            return None

        found = search(topology, 1)
        if found is None:
            raise ConfigurationError(f"leaf {leaf_index} not in topology")
        return found
