"""Page table slicing: partitioning one IO virtual address space (§4.1, §5).

Only a single hardware page table is available to the FPGA in the IOMMU,
so OPTIMUS divides the 48-bit IO virtual address space into per-virtual-
accelerator *slices*.  A virtual accelerator whose guest DMA window starts
at GVA ``g`` and whose slice starts at IOVA ``i`` gets the offset ``i - g``
installed in the hardware monitor's offset table; its auditor then adds
the offset to every outgoing DMA in a single cycle.

The layout also encodes the paper's **IOTLB conflict mitigation** (§5):
with contiguous 64 GB slices every slice base is congruent to IOTLB set 0
(64 GB is a multiple of 512 x 2 MB), so the hot bottoms of all slices
fight over the same sets.  Inserting a 128 MB gap (64 huge pages) between
slices skews accelerator *k* into sets ``[64k, 64k + 64)`` — eight
accelerators exactly tile the 512 sets, giving each a 128 MB conflict-free
working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.mem.address import IOVA_SPACE_SIZE, MB
from repro.mem.iommu import IOTLB_ENTRIES


@dataclass(frozen=True)
class Slice:
    """One virtual accelerator's reserved region of IOVA space."""

    index: int
    iova_base: int
    size: int

    @property
    def iova_end(self) -> int:
        return self.iova_base + self.size

    def contains(self, iova: int) -> bool:
        return self.iova_base <= iova < self.iova_end

    def offset_for(self, gva_base: int) -> int:
        """The offset-table entry mapping ``[gva_base, gva_base+size)`` here."""
        return self.iova_base - gva_base


class SliceLayout:
    """Computes and validates the slice plan for a platform configuration."""

    def __init__(
        self,
        *,
        slice_bytes: int,
        gap_bytes: int,
        page_size: int,
    ) -> None:
        if slice_bytes <= 0:
            raise ConfigurationError("slice size must be positive")
        if gap_bytes < 0:
            raise ConfigurationError("slice gap must be non-negative")
        if slice_bytes % page_size or gap_bytes % page_size:
            raise ConfigurationError("slice geometry must be page-aligned")
        self.slice_bytes = slice_bytes
        self.gap_bytes = gap_bytes
        self.page_size = page_size

    @property
    def stride(self) -> int:
        return self.slice_bytes + self.gap_bytes

    def slice_for(self, index: int) -> Slice:
        if index < 0:
            raise ConfigurationError("slice index must be non-negative")
        base = index * self.stride
        if base + self.slice_bytes > IOVA_SPACE_SIZE:
            raise ConfigurationError(
                f"slice {index} exceeds the 48-bit IO virtual address space"
            )
        return Slice(index=index, iova_base=base, size=self.slice_bytes)

    def slices(self, count: int) -> List[Slice]:
        return [self.slice_for(i) for i in range(count)]

    @property
    def max_slices(self) -> int:
        """How many virtual accelerators the IOVA space can host."""
        return (IOVA_SPACE_SIZE - self.slice_bytes) // self.stride + 1

    # -- IOTLB geometry ------------------------------------------------------

    def iotlb_set_skew(self, index: int) -> int:
        """First IOTLB set used by slice ``index`` (its base page's set)."""
        base_page = self.slice_for(index).iova_base // self.page_size
        return base_page % IOTLB_ENTRIES

    def conflict_free_bytes_per_slice(self, n_slices: int) -> int:
        """Working set each slice can hold before cross-slice IOTLB conflicts.

        With the 128 MB gap and 8 slices this is exactly 128 MB — "each
        virtual accelerator's working set must exceed 128 MB before IOTLB
        conflicts potentially occur among accelerators" (§5).
        """
        if n_slices <= 0:
            raise ConfigurationError("need at least one slice")
        if n_slices == 1:
            return IOTLB_ENTRIES * self.page_size
        skews = sorted(self.iotlb_set_skew(i) for i in range(n_slices))
        min_gap = IOTLB_ENTRIES  # wrap-around distance between skews
        for i, skew in enumerate(skews):
            nxt = skews[(i + 1) % n_slices]
            gap = (nxt - skew) % IOTLB_ENTRIES
            if gap == 0:
                return 0  # two slices share a skew: immediate conflicts
            min_gap = min(min_gap, gap)
        return min_gap * self.page_size


def default_layout(page_size: int, *, mitigated: bool = True) -> SliceLayout:
    """The paper's layout: 64 GB slices, 128 MB gaps when mitigation is on."""
    from repro.mem.address import DEFAULT_SLICE_BYTES, DEFAULT_SLICE_GAP_BYTES

    return SliceLayout(
        slice_bytes=DEFAULT_SLICE_BYTES,
        gap_bytes=DEFAULT_SLICE_GAP_BYTES if mitigated else 0,
        page_size=page_size,
    )
