"""The Virtualization Control Unit (§4.1).

The VCU is the hardware monitor's management core.  It exposes a 4 KB
accelerator-management MMIO page through which the hypervisor:

* reads the FPGA configuration (number of physical accelerators, an
  OPTIMUS-compatibility magic);
* programs the **offset table** — per-accelerator (window base, window
  size, IOVA slice base) triples implementing page table slicing;
* programs the **reset table** — pulsing an accelerator's reset line to
  clear state on a VM context switch.

MMIO packets falling inside the management window are intercepted by the
VCU; everything above it is forwarded toward the per-accelerator MMIO
pages, where the target accelerator's auditor enforces the 4 KB bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.auditor import Auditor
from repro.errors import MmioFault
from repro.fpga.afu import AfuSocket, RegisterFile

#: Size of the VCU management window and of each accelerator's MMIO page.
MGMT_PAGE_BYTES = 0x1000
ACCEL_PAGE_BYTES = 0x1000

# Management-register offsets (within the VCU page).
REG_MAGIC = 0x000
REG_NUM_ACCELS = 0x008
REG_ACCEL_SELECT = 0x010  # which accelerator the table registers address
REG_WINDOW_BASE = 0x018  # g   (guest DMA window base)
REG_WINDOW_SIZE = 0x020  # p   (window length)
REG_SLICE_BASE = 0x028  # i   (IOVA slice base); commits the offset entry
REG_RESET = 0x030  # write accel index: pulse its reset line
REG_DISABLE = 0x038  # write accel index: disable its auditor

VCU_MAGIC = 0x564355_2020


class VirtualizationControlUnit:
    """Management interface + MMIO router of the hardware monitor."""

    def __init__(self, auditors: List[Auditor], sockets: List[AfuSocket]) -> None:
        if len(auditors) != len(sockets):
            raise MmioFault("auditor/socket count mismatch")
        self.auditors = auditors
        self.sockets = sockets
        self.registers = RegisterFile("vcu")
        self._selected = 0
        self._pending: Dict[int, Dict[str, int]] = {}
        self._define_registers()

    def _define_registers(self) -> None:
        regs = self.registers
        regs.define(REG_MAGIC, on_read=lambda: VCU_MAGIC)
        regs.define(REG_NUM_ACCELS, on_read=lambda: len(self.auditors))
        regs.define(REG_ACCEL_SELECT, on_write=self._select)
        regs.define(REG_WINDOW_BASE, on_write=lambda v: self._stage("base", v))
        regs.define(REG_WINDOW_SIZE, on_write=lambda v: self._stage("size", v))
        regs.define(REG_SLICE_BASE, on_write=self._commit_offset_entry)
        regs.define(REG_RESET, on_write=self._pulse_reset)
        regs.define(REG_DISABLE, on_write=self._disable)

    # -- register semantics ---------------------------------------------------

    def _check_index(self, index: int) -> int:
        if not 0 <= index < len(self.auditors):
            raise MmioFault(f"accelerator index {index} out of range")
        return index

    def _select(self, value: int) -> None:
        self._selected = self._check_index(value)

    def _stage(self, field: str, value: int) -> None:
        self._pending.setdefault(self._selected, {})[field] = value

    def _commit_offset_entry(self, slice_base: int) -> None:
        staged = self._pending.pop(self._selected, {})
        auditor = self.auditors[self._selected]
        auditor.configure_window(
            gva_base=staged.get("base", 0),
            window_size=staged.get("size", 0),
            iova_base=slice_base,
        )

    def _pulse_reset(self, value: int) -> None:
        index = self._check_index(value)
        self.sockets[index].reset()

    def _disable(self, value: int) -> None:
        index = self._check_index(value)
        self.auditors[index].disable()

    # -- MMIO routing ----------------------------------------------------------------

    def mmio_write(self, offset: int, value: int) -> None:
        if offset < MGMT_PAGE_BYTES:
            self.registers.write(offset, value)
            return
        index, page_offset = self._route(offset)
        if index is None:
            return  # outside every accelerator page: silently discarded
        self.auditors[index].mmio_write(page_offset, value)

    def mmio_read(self, offset: int) -> int:
        if offset < MGMT_PAGE_BYTES:
            return self.registers.read(offset)
        index, page_offset = self._route(offset)
        if index is None:
            return 0  # reads of unmapped space return zeros, like real BARs
        value = self.auditors[index].mmio_read(page_offset)
        return 0 if value is None else value

    def _route(self, offset: int) -> tuple[Optional[int], int]:
        index = (offset - MGMT_PAGE_BYTES) // ACCEL_PAGE_BYTES
        page_offset = (offset - MGMT_PAGE_BYTES) % ACCEL_PAGE_BYTES
        if not 0 <= index < len(self.auditors):
            return None, 0
        return index, page_offset


def accel_mmio_base(accel_index: int) -> int:
    """Offset of an accelerator's MMIO page within the monitor's window."""
    return MGMT_PAGE_BYTES + accel_index * ACCEL_PAGE_BYTES
