"""The one JSON result envelope every CLI speaks.

Every ``--json`` mode of ``python -m repro`` — ``run``, ``fleet``,
``chaos``, ``serve``, ``capacity``, ``fuzz`` — prints exactly one object
to stdout::

    {"experiment": <name>, "params": {...}, "results": {...}}

rendered as canonical JSON (``indent=2, sort_keys=True``), with all human
narration diverted to stderr.  That byte shape is load-bearing: CI jobs
``cmp`` envelopes across runs, shard counts, and simulator modes, and the
experiment cache keys on the canonical form.  This module is the single
place the shape lives; ``tests/test_cli.py`` pins the legacy envelopes
byte-identical through it.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Mapping


def to_jsonable(value):
    """Strict-JSON form of experiment results (tables, dicts, scalars).

    ``to_dict()``-bearing objects (e.g. :class:`~repro.experiments
    .harness.ResultTable`) are expanded, mapping keys are stringified,
    and non-finite floats become ``null`` (NaN/inf cells such as
    infeasible grid points have no strict-JSON spelling).
    """
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def build_envelope(
    experiment: str, params: Mapping[str, object], results: object
) -> Dict[str, object]:
    """The canonical three-key envelope, fully JSON-able."""
    return {
        "experiment": experiment,
        "params": to_jsonable(dict(params)),
        "results": to_jsonable(results),
    }


def render_envelope(envelope: Mapping[str, object]) -> str:
    """Canonical text form — the exact bytes CI byte-compares."""
    return json.dumps(envelope, indent=2, sort_keys=True)


def emit_envelope(
    experiment: str, params: Mapping[str, object], results: object
) -> Dict[str, object]:
    """Build, print to stdout, and return the envelope."""
    envelope = build_envelope(experiment, params, results)
    print(render_envelope(envelope))
    return envelope


def canonical_json(value: object) -> str:
    """Compact canonical JSON (sorted keys, no whitespace drift) — the
    form digests and differential comparisons are computed over."""
    return json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))
