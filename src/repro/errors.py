"""Exception hierarchy for the OPTIMUS reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish simulation bugs (:class:`SimulationError`)
from modeled *architectural* faults (:class:`FaultError` subclasses), which
are legitimate, expected outcomes of some experiments (e.g. an accelerator
attempting a DMA outside its page-table slice).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The simulation itself was misused (scheduling in the past, etc.)."""


class ConfigurationError(ReproError):
    """A component was built or wired with invalid parameters."""


class SynthesisError(ConfigurationError):
    """The synthesis model rejected a configuration (timing/resources)."""


class FaultError(ReproError):
    """Base class for modeled architectural faults."""


class TranslationFault(FaultError):
    """An address could not be translated by the MMU or IOMMU."""

    def __init__(self, address: int, space: str, reason: str = "") -> None:
        detail = f" ({reason})" if reason else ""
        super().__init__(f"translation fault at {address:#x} in {space}{detail}")
        self.address = address
        self.space = space
        self.reason = reason


class ProtectionFault(FaultError):
    """An access violated page permissions."""

    def __init__(self, address: int, access: str, space: str) -> None:
        super().__init__(f"{access} access denied at {address:#x} in {space}")
        self.address = address
        self.access = access
        self.space = space


class MmioFault(FaultError):
    """An MMIO access targeted an unmapped or out-of-range register."""


class IsolationViolation(FaultError):
    """A packet crossed an isolation boundary it should not have.

    Raised only by *assertion-style* checks in tests; the hardware monitor
    itself silently discards such packets, exactly as the paper's auditors do.
    """


class PreemptionTimeout(FaultError):
    """An accelerator failed to cede control within the preemption timeout."""


class GuestError(ReproError):
    """The guest driver or userspace library was misused."""


class SchedulerError(ReproError):
    """A temporal-multiplexing scheduler was misconfigured."""


class UnknownTenantError(ConfigurationError):
    """An eviction (or lookup) named a tenant the fleet does not hold.

    Subclasses :class:`ConfigurationError` so pre-existing callers that
    catch the broad class keep working; new callers — notably the failover
    re-placement path — catch this precisely.
    """

    def __init__(self, tenant: str, where: str) -> None:
        super().__init__(f"no tenant {tenant!r} {where}")
        self.tenant = tenant
        self.where = where


class FaultPlanError(ConfigurationError):
    """A fault-injection plan is malformed (unknown kind, unsorted, ...)."""
