"""One module per paper table/figure, plus the shared harness.

Each module exposes ``run(...) -> ResultTable`` (or a dict of tables) and
a ``main()`` that prints paper-style output; ``python -m
repro.experiments.<module>`` regenerates the result from the terminal.
The pytest-benchmark targets under ``benchmarks/`` call the same ``run``
functions with trimmed parameters.
"""

from repro.experiments.harness import (
    ENDLESS,
    STACK_MODES,
    LaunchedJob,
    OptimusStack,
    PassthroughStack,
    ResultTable,
    Stack,
    make_stack,
    measure_progress,
)

__all__ = [
    "ENDLESS",
    "STACK_MODES",
    "LaunchedJob",
    "OptimusStack",
    "PassthroughStack",
    "ResultTable",
    "Stack",
    "make_stack",
    "measure_progress",
]
