"""Ablations of OPTIMUS's design decisions (DESIGN.md §3).

Three studies the paper motivates but scatters through §5 and §7.2:

* **Multiplexer tree vs flat mux** — a flat 8:1 multiplexer cannot close
  timing at the shell's 400 MHz (the AmorphOS approach works only at
  lower frequency); a binary tree can, costing 33 ns per level.
* **IOTLB conflict mitigation** — contiguous 64 GB slices alias every
  accelerator's hot pages onto IOTLB set 0; the 128 MB inter-slice gap
  gives each of 8 accelerators a private 64-set region.  Measured as
  8-job LinkedList latency with mitigation on vs off.
* **Speculative same-region pipelining** — §6.5's read anomaly, on vs off
  (see :func:`repro.experiments.fig6_throughput.read_anomaly`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SynthesisError
from repro.experiments.harness import OptimusStack, ResultTable
from repro.fpga.synthesis import MuxArrangement, flat_mux_fmax_mhz, plan_mux_tree
from repro.mem import MB, PAGE_SIZE_2M, parse_size
from repro.platform import PlatformParams
from repro.sim.clock import ms


def mux_tree_study(*, n_accelerators: int = 8, target_mhz: float = 400.0) -> ResultTable:
    """Which mux arrangements close timing, and what latency they cost."""
    table = ResultTable(
        f"Ablation — multiplexer arrangements for {n_accelerators} accelerators",
        ["radix", "levels", "fmax_mhz", f"closes_{target_mhz:.0f}MHz", "latency_ns"],
    )
    for radix in (2, 4, 8):
        fmax = flat_mux_fmax_mhz(radix)
        try:
            arrangement = plan_mux_tree(n_accelerators, radix, target_mhz)
            closes = "yes"
            levels = arrangement.levels
        except SynthesisError:
            closes = "no"
            import math

            levels = max(1, math.ceil(math.log(n_accelerators, radix)))
        table.add(radix, levels, fmax, closes, levels * 33.0)
    table.note("paper: only the 3-level binary tree closes timing at 400 MHz")
    return table


def conflict_mitigation_study(
    *,
    n_jobs: int = 8,
    per_job_working_set: str = "96M",
    hops_per_job: int = 1000,
) -> ResultTable:
    """8-job LinkedList latency: mitigated vs contiguous slice layouts.

    With each job's working set under 128 MB, the mitigated layout keeps
    every accelerator in its own IOTLB-set region (near-zero conflict
    misses); the contiguous layout aliases all slices onto the same sets
    and thrashes.
    """
    table = ResultTable(
        "Ablation — IOTLB conflict mitigation (8-job LinkedList)",
        ["layout", "mean_latency_ns", "iotlb_miss_ratio"],
    )
    working_set = parse_size(per_job_working_set)
    for mitigated in (True, False):
        params = PlatformParams(conflict_mitigation=mitigated)
        stack = OptimusStack(params, n_accelerators=8)
        jobs = []
        for index in range(n_jobs):
            jobs.append(
                stack.launch(
                    "LL",
                    physical_index=index,
                    working_set=working_set,
                    job_kwargs={
                        "functional": False,
                        "seed": 0xD15EA5E + 13 * index,
                        "target_hops": hops_per_job,
                    },
                )
            )
        stack.run_for(ms(60))
        samples: List[int] = []
        for launched in jobs:
            samples.extend(
                launched.job.latency.steady_samples_ps(
                    skip_fraction=0.2, max_skip=100
                )
            )
        mean_ns = sum(samples) / len(samples) / 1000 if samples else 0.0
        stats = stack.platform.iommu.iotlb.stats
        miss_ratio = stats.miss_ratio
        table.add("mitigated" if mitigated else "contiguous", mean_ns, miss_ratio)
    table.note("paper (§5): the 128 MB gap removes cross-accelerator conflicts")
    return table


def weighted_bandwidth_study(*, window_us: int = 200) -> ResultTable:
    """Asymmetric mux tree (§4.1): a favoured accelerator gets more bandwidth.

    Three saturating MemBench tenants under the topology ``[0, [1, 2]]``:
    accelerator 0 hangs directly off the root and receives half the
    bandwidth; accelerators 1 and 2 share the other half.
    """
    from repro.experiments.harness import measure_progress
    from repro.sim.clock import us as us_

    table = ResultTable(
        "Ablation — asymmetric mux tree [0, [1, 2]]: per-accelerator share",
        ["accelerator", "gbps", "share_%", "expected_%"],
    )
    stack = OptimusStack(PlatformParams(), n_accelerators=3, mux_topology=[0, [1, 2]])
    jobs = [
        stack.launch(
            "MB",
            physical_index=i,
            working_set=16 * MB,
            job_kwargs={"functional": False, "seed": 0xAAA + 17 * i},
        )
        for i in range(3)
    ]
    rates = measure_progress(stack, jobs, warmup_ps=us_(400), window_ps=us_(window_us))
    total = sum(rates) or 1.0
    expected = [50.0, 25.0, 25.0]
    for index, rate in enumerate(rates):
        table.add(index, rate, 100.0 * rate / total, expected[index])
    table.note("round-robin per node: share = product of 1/fan-in on the path")
    return table


def main():
    results = {
        "mux_tree": mux_tree_study(),
        "conflict_mitigation": conflict_mitigation_study(),
        "weighted_bandwidth": weighted_bandwidth_study(),
    }
    for table in results.values():
        table.show()
    return results


if __name__ == "__main__":
    main()
