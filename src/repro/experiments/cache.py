"""Content-addressed experiment result cache.

A sweep cell is a pure function of (experiment entry point, parameters,
simulator source).  The cache keys each result by exactly those three
ingredients:

* the **experiment name** (module-qualified entry point for sweep cells,
  registry key for whole CLI experiments),
* the **canonical JSON** of the parameters — ``sort_keys`` + tight
  separators, so two dicts with different insertion order hash the same
  (and two *different* values never collide on formatting),
* a **source-tree digest** of ``src/repro/**/*.py`` — editing any
  simulator source invalidates every cached result, so stale hits are
  impossible without tracking fine-grained dependencies.

Values are pickled (results carry ``ResultTable``/dataclass instances;
JSON round-trips would lose types).  Stores are atomic
(write-temp-then-rename), so a crashed or parallel run never leaves a
truncated entry behind.

The installed cache is ambient (like the tracer): the CLI installs one
around a run, :func:`repro.experiments.harness.parallel_map` consults
:func:`current_cache` per cell, and hit/miss counts surface at the end.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Cache format version; bump to invalidate every existing entry.
_FORMAT = 1

_REPRO_ROOT = Path(__file__).resolve().parent.parent


def canonical_json(value: Any) -> str:
    """The one JSON form used for hashing and envelopes: sorted keys,
    tight separators, non-finite floats forbidden (they would not
    round-trip through strict JSON)."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False, default=repr
    )


_TREE_DIGEST: Dict[Path, str] = {}


def source_tree_digest(root: Optional[Path] = None) -> str:
    """SHA-256 over every ``*.py`` under ``src/repro`` (path + content).

    Memoized per process — the tree cannot change mid-run in a way we
    should honor (imported modules are already loaded), and sweeps call
    this once per cell.
    """
    root = Path(root) if root is not None else _REPRO_ROOT
    cached = _TREE_DIGEST.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _TREE_DIGEST[root] = value
    return value


class ExperimentCache:
    """A directory of pickled results keyed by content-addressed hashes."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------------

    def key(self, experiment: str, params: Any) -> str:
        payload = canonical_json(
            {
                "format": _FORMAT,
                "experiment": experiment,
                "params": params,
                "tree": source_tree_digest(),
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- access --------------------------------------------------------------

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; a corrupt entry counts as a miss and is removed."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:  # truncated/corrupt entry: recompute
            path.unlink(missing_ok=True)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        self.stores += 1

    # -- telemetry -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "dir": str(self.directory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def render(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores ({self.directory})"
        )


# -- the installed cache (ambient, like the tracer) ---------------------------

_ACTIVE: Optional[ExperimentCache] = None


def current_cache() -> Optional[ExperimentCache]:
    """The installed cache, or ``None`` (caching off)."""
    return _ACTIVE


def install_cache(directory) -> ExperimentCache:
    global _ACTIVE
    _ACTIVE = ExperimentCache(directory)
    return _ACTIVE


def uninstall_cache() -> None:
    global _ACTIVE
    _ACTIVE = None
