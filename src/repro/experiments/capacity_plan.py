"""Capacity planning — analytic fast-forward vs the fleet DES.

Beyond the paper: the multi-fidelity sweep the analytic backend
(:mod:`repro.analytic`) exists for.  Every scenario is served twice where
the DES can keep up — ``mode="optimus"`` runs the real
:class:`~repro.fleet.admission.FleetService`, ``mode="analytic"`` the
capacity planner — and analytic-only at fleet scale (10^5..10^6 tenants,
multi-day horizons) where one DES run would take longer than this whole
sweep.  Side-by-side rows let the table itself show the fidelity
contract: identical seeds, identical traffic arrays, placements and
latency tails agreeing within the cross-validation band
(``tests/test_analytic_validation.py``).

Cache honesty: each sweep cell carries the backend **mode** and the
**calibration digest** in its cell tuple, so the content-addressed
experiment cache can never serve an analytic result where a DES result
was asked for, nor a result fitted from different calibration artifacts
(``tests/test_experiment_cache.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytic import CapacityConfig, default_store, run_capacity
from repro.experiments.harness import ResultTable, parallel_map
from repro.sim.clock import ms

#: (mode, tenants, nodes, load, mean_session_ms, horizon_s) scenarios.
#: ``optimus`` rows are the DES reference; scenarios above ~10^4 tenants
#: are analytic-only — that asymmetry is the experiment's point.
WEEK_S = 7 * 24 * 3600

MAIN_SCENARIOS: Tuple[Tuple[str, int, int, float, int, int], ...] = (
    ("optimus", 5_000, 8, 0.5, 20, 0),
    ("analytic", 5_000, 8, 0.5, 20, 0),
    ("optimus", 5_000, 8, 4.5, 20, 0),
    ("analytic", 5_000, 8, 4.5, 20, 0),
    ("optimus", 5_000, 8, 6.0, 20, 0),
    ("analytic", 5_000, 8, 6.0, 20, 0),
    ("analytic", 200_000, 8, 6.0, 20, 0),
    ("analytic", 1_000_000, 8, 6.0, 20, 0),
    # A week of simulated time: tenants hold accelerators for ~a minute,
    # the planning question is pure peak-occupancy headroom.
    ("analytic", 2_000_000, 64, 0.52, 60_000, WEEK_S),
)

QUICK_SCENARIOS: Tuple[Tuple[str, int, int, float, int, int], ...] = (
    ("optimus", 1_500, 4, 0.5, 20, 0),
    ("analytic", 1_500, 4, 0.5, 20, 0),
    ("optimus", 1_500, 4, 5.0, 20, 0),
    ("analytic", 1_500, 4, 5.0, 20, 0),
    ("analytic", 50_000, 4, 5.0, 20, 0),
)


def _capacity_cell(cell) -> Dict[str, object]:
    """One sweep cell; the tuple *is* the experiment-cache key payload."""
    mode, digest, tenants, nodes, load, session_ms, horizon_s, bootstrap, seed = cell
    config = CapacityConfig(
        tenants=tenants,
        nodes=nodes,
        load=load,
        mean_session_ps=ms(session_ms),
        horizon_ps=horizon_s * 10**12,
        bootstrap=bootstrap,
        seed=seed,
    )
    return run_capacity(mode, config)


def cells_for(
    scenarios: Sequence[Tuple[str, int, int, float, int, int]],
    *,
    bootstrap: int = 200,
    seed: int = 7,
) -> List[tuple]:
    """Cell tuples with the mode and calibration digest baked in."""
    digest = default_store().digest()
    return [
        (mode, digest, tenants, nodes, load, session_ms, horizon_s, bootstrap, seed)
        for mode, tenants, nodes, load, session_ms, horizon_s in scenarios
    ]


def run(
    *,
    scenarios: Optional[Sequence[Tuple[str, int, int, float, int, int]]] = None,
    bootstrap: int = 200,
    seed: int = 7,
    jobs: int = 1,
) -> ResultTable:
    scenarios = list(scenarios if scenarios is not None else MAIN_SCENARIOS)
    table = ResultTable(
        "Capacity planning — analytic fast-forward vs fleet DES",
        [
            "mode", "engine", "tenants", "nodes", "load", "session_ms",
            "horizon_s", "placed", "reject_rate", "mean_ms", "p99_ms",
            "gold_att", "bronze_att",
        ],
    )
    envelopes = parallel_map(
        _capacity_cell,
        cells_for(scenarios, bootstrap=bootstrap, seed=seed),
        jobs=jobs,
    )
    for scenario, envelope in zip(scenarios, envelopes):
        mode, tenants, nodes, load, session_ms, horizon_s = scenario
        latency = envelope["latency_ps"]
        classes = envelope["classes"]
        table.add(
            mode,
            envelope["engine"],
            tenants,
            nodes,
            load,
            session_ms,
            horizon_s,
            round(float(envelope["placements"]), 1),
            round(float(envelope["rejection_rate"]), 4),
            round(latency["mean"] / ms(1), 3),
            round(latency["p99"] / ms(1), 3),
            round(classes["gold"]["attainment"], 4),
            round(classes["bronze"]["attainment"], 4),
        )
    table.note("identical seeds and traffic arrays across modes per scenario")
    table.note(
        "analytic-only rows are the point: scales the DES cannot sweep"
    )
    table.note(f"calibration digest: {default_store().digest()}")
    return table


def main(jobs: int = 1):
    table = run(jobs=jobs)
    table.show()
    return table


def quick(jobs: int = 1):
    table = run(scenarios=QUICK_SCENARIOS, bootstrap=50, jobs=jobs)
    table.show()
    return table


if __name__ == "__main__":
    main()
