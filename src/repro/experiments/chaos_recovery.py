"""Chaos recovery: availability and placement tails vs crash rate.

Beyond-paper experiment for the fault-injection subsystem
(:mod:`repro.faults`): one fixed tenant trace is served against the same
fleet while a seeded :func:`~repro.faults.plan.build_crash_plan` injects
an increasing number of node crashes (each node recovering ``outage_ps``
later).  Reported per crash count:

* **availability** — accepted requests that completed (directly or after
  failover re-placement) over all accepted requests;
* **replaced / failed** — sessions displaced by a crash, split into those
  re-placed on surviving nodes and those that found no healthy slot;
* **p99 latencies** — admission wait (arrival -> placement) and failover
  re-placement cost tails, in microseconds.

Every cell is deterministic: the traffic seed, plan seed, and placement
policy fully determine the outcome, so the table is reproducible
byte-for-byte (and identical in fast-path and reference modes — the
serving loop is pure control plane).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.harness import ResultTable
from repro.faults import build_crash_plan
from repro.fleet import (
    AdmissionConfig,
    FleetCluster,
    FleetService,
    TrafficGenerator,
    TrafficProfile,
    make_policy,
)
from repro.sim.clock import ms


def _serve_cell(
    *,
    n_crashes: int,
    n_nodes: int,
    requests: int,
    load: float,
    traffic_seed: int,
    plan_seed: int,
    window_ps: int,
    outage_ps: int,
    policy: str,
):
    cluster = FleetCluster.build(n_nodes)
    generator = TrafficGenerator(
        TrafficProfile(load=load),
        fleet_slots=cluster.total_slots,
        seed=traffic_seed,
    )
    service = FleetService(
        cluster, make_policy(policy), admission=AdmissionConfig()
    )
    if n_crashes:
        service.install_faults(
            build_crash_plan(
                n_crashes=n_crashes,
                n_nodes=n_nodes,
                window_ps=window_ps,
                outage_ps=outage_ps,
                seed=plan_seed,
            )
        )
    return service.serve(generator.generate(requests))


def run(
    *,
    n_nodes: int = 4,
    requests: int = 160,
    load: float = 0.85,
    traffic_seed: int = 1,
    plan_seed: int = 3,
    crash_counts: Optional[List[int]] = None,
    window_ps: int = ms(40),
    outage_ps: int = ms(10),
    policy: str = "best-fit",
) -> ResultTable:
    crash_counts = crash_counts if crash_counts is not None else [0, 1, 2, 4, 8]
    table = ResultTable(
        f"Chaos recovery — {n_nodes} nodes, {requests} requests, load {load}",
        [
            "crashes",
            "availability",
            "completed",
            "replaced",
            "failed",
            "rejected",
            "p99_wait_us",
            "p99_replace_us",
        ],
    )
    for n_crashes in crash_counts:
        result = _serve_cell(
            n_crashes=n_crashes,
            n_nodes=n_nodes,
            requests=requests,
            load=load,
            traffic_seed=traffic_seed,
            plan_seed=plan_seed,
            window_ps=window_ps,
            outage_ps=outage_ps,
            policy=policy,
        )
        counts = result.outcome_counts()
        rejected = sum(
            count for outcome, count in counts.items()
            if outcome.startswith("rejected_")
        )
        metrics = result.metrics
        table.add(
            n_crashes,
            result.availability(),
            counts.get("completed", 0),
            counts.get("replaced_completed", 0),
            counts.get("failed_by_fault", 0),
            rejected,
            metrics.placement_latency.percentile_ns(99) / 1e3,
            metrics.replacement_latency.percentile_ns(99) / 1e3,
        )
    table.note(
        "availability = completed / accepted; crashes recover after "
        f"{outage_ps} ps; every accepted request ends in a typed outcome"
    )
    return table


def quick() -> ResultTable:
    """Trimmed grid for smoke runs and tracing."""
    return run(requests=60, crash_counts=[0, 1, 3])


def main():
    table = run()
    table.show()
    return table


if __name__ == "__main__":
    main()
