"""Fig. 1 — SSSP processing time: shared-memory vs host-centric models.

The motivating experiment of §2.1: single-source shortest path over
graphs with a fixed vertex count and growing edge counts, under six
configurations:

* shared-memory (the accelerator issues its own DMAs and pointer-chases),
* host-centric + Config (the CPU programs the DMA engine for every
  non-contiguous segment),
* host-centric + Copy (the CPU marshals segments into a contiguous
  staging buffer first),

each native and virtualized.  The paper measures shared-memory 17-60%
faster than host-centric natively, and 37-85% faster virtualized —
trap-and-emulate makes every host-centric DMA configuration dearer while
barely touching the shared-memory data plane.

The default graph is scaled down (the paper uses 800 K vertices and
3.2 M - 51.2 M edges; see EXPERIMENTS.md for full-scale runs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accel.hostcentric import HostCentricSsspRunner
from repro.experiments.harness import ResultTable, make_stack
from repro.kernels.graph import random_graph
from repro.platform import PlatformMode, PlatformParams, build_platform
from repro.sim.clock import to_ms


def _shared_memory_ms(graph, *, virtualized: bool) -> float:
    stack = make_stack("passthrough", PlatformParams(), virtualized=virtualized)
    start = stack.platform.engine.now
    launched = stack.launch("SSSP", graph=graph)
    completion = launched.job.completion
    stack.platform.engine.run_until(completion)
    return to_ms(stack.platform.engine.now - start)


def _host_centric_ms(graph, *, variant: str, virtualized: bool) -> float:
    platform = build_platform(PlatformParams(), mode=PlatformMode.PASSTHROUGH)
    runner = HostCentricSsspRunner(
        platform, graph, variant=variant, virtualized=virtualized
    )
    completion = runner.run(source=0)
    platform.engine.run_until(completion)
    return to_ms(runner.result.elapsed_ps)


def run(
    *,
    n_vertices: int = 20_000,
    edge_counts: Optional[List[int]] = None,
    seed: int = 17,
) -> ResultTable:
    edge_counts = edge_counts or [80_000, 160_000, 320_000, 640_000]
    table = ResultTable(
        f"Fig. 1 — SSSP processing time (ms), {n_vertices} vertices",
        [
            "edges",
            "shared",
            "hc_config",
            "hc_copy",
            "shared_virt",
            "hc_config_virt",
            "hc_copy_virt",
        ],
    )
    for n_edges in edge_counts:
        graph = random_graph(n_vertices, n_edges, seed=seed)
        table.add(
            n_edges,
            _shared_memory_ms(graph, virtualized=False),
            _host_centric_ms(graph, variant="config", virtualized=False),
            _host_centric_ms(graph, variant="copy", virtualized=False),
            _shared_memory_ms(graph, virtualized=True),
            _host_centric_ms(graph, variant="config", virtualized=True),
            _host_centric_ms(graph, variant="copy", virtualized=True),
        )
    table.note("paper: shared-memory 17-60% faster native, 37-85% virtualized")
    return table


def speedups(table: ResultTable) -> Dict[str, List[float]]:
    """Shared-memory advantage over the best host-centric variant."""
    native: List[float] = []
    virtual: List[float] = []
    for row in table.rows:
        _edges, shared, cfg, copy, shared_v, cfg_v, copy_v = row
        native.append(min(cfg, copy) / shared - 1.0)
        virtual.append(min(cfg_v, copy_v) / shared_v - 1.0)
    return {"native": native, "virtualized": virtual}


def main():
    table = run()
    table.show()
    gains = speedups(table)
    print("shared-memory advantage, native:     ",
          [f"{g:.0%}" for g in gains["native"]])
    print("shared-memory advantage, virtualized:",
          [f"{g:.0%}" for g in gains["virtualized"]])
    return table


if __name__ == "__main__":
    main()
