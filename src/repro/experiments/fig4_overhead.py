"""Fig. 4 — virtualization overhead of OPTIMUS versus pass-through.

* **Fig. 4a (latency):** LinkedList mean access latency under OPTIMUS,
  normalized to pass-through, on UPI-only and PCIe-only channels.  Paper:
  124.2% (UPI) and 111.1% (PCIe); the ~100 ns adder is the three-level
  multiplexer tree plus the auditor crossings.

* **Fig. 4b (throughput):** per-benchmark throughput under OPTIMUS
  normalized to pass-through.  Paper: MemBench 90.1% (the every-other-
  cycle issue limit), image filters 92.7-94.4%, compute-bound benchmarks
  ~100%.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.harness import (
    ENDLESS,
    ResultTable,
    make_stack,
    measure_progress,
)
from repro.interconnect import VirtualChannel
from repro.kernels.graph import random_graph
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import ms, us

#: Paper values for side-by-side reporting.
PAPER_LATENCY = {"UPI": 124.2, "PCIe": 111.1}
PAPER_THROUGHPUT = {
    "MB": 90.1, "MD5": 99.6, "SHA": 99.8, "AES": 99.8, "GRN": 95.9,
    "FIR": 99.9, "SW": 99.9, "RSD": 99.9, "GAU": 94.4, "GRS": 93.9,
    "SBL": 92.7, "SSSP": 99.4, "BTC": 100.0,
}

THROUGHPUT_BENCHMARKS = [
    "MB", "MD5", "SHA", "AES", "GRN", "FIR", "SW", "RSD", "GAU", "GRS", "SBL",
    "SSSP", "BTC",
]


def _stack(mode: str):
    """Both fig4 panels use default-parameter stacks of either mode."""
    params = PlatformParams()
    if mode == "optimus":
        return make_stack("optimus", params, n_accelerators=8)
    return make_stack("passthrough", params, virtualized=True)


def _ll_latency_ns(mode: str, channel: VirtualChannel, *, hops: int, working_set: int) -> float:
    stack = _stack(mode)
    launched = stack.launch(
        "LL", working_set=working_set, channel=channel,
        job_kwargs={"functional": False, "target_hops": hops},
    )
    stack.run_for(ms(50))
    steady = launched.job.latency.steady_samples_ps(skip_fraction=0.2, max_skip=200)
    return sum(steady) / len(steady) / 1000 if steady else 0.0


def _throughput(name: str, mode: str, *, window_us: int, graph=None) -> float:
    stack = _stack(mode)
    launched = stack.launch(name, working_set=128 * MB, graph=graph)
    in_bytes = name not in ("BTC",)
    rates = measure_progress(
        stack, [launched], warmup_ps=us(60), window_ps=us(window_us), in_bytes=in_bytes
    )
    return rates[0]


def run(*, hops: int = 1500, window_us: int = 100, graph_vertices: int = 30_000,
        graph_edges: int = 240_000) -> Dict[str, ResultTable]:
    """Regenerate both panels; returns {'latency': ..., 'throughput': ...}."""
    latency = ResultTable(
        "Fig. 4a — LinkedList latency, OPTIMUS normalized to pass-through",
        ["channel", "optimus_ns", "passthrough_ns", "normalized_%", "paper_%"],
    )
    for channel, label in ((VirtualChannel.VL0, "UPI"), (VirtualChannel.VH0, "PCIe")):
        opt_ns = _ll_latency_ns("optimus", channel, hops=hops, working_set=64 * MB)
        pt_ns = _ll_latency_ns("passthrough", channel, hops=hops, working_set=64 * MB)
        latency.add(label, opt_ns, pt_ns, 100.0 * opt_ns / pt_ns, PAPER_LATENCY[label])

    throughput = ResultTable(
        "Fig. 4b — throughput, OPTIMUS normalized to pass-through",
        ["benchmark", "optimus", "passthrough", "normalized_%", "paper_%"],
    )
    graph = random_graph(graph_vertices, graph_edges, seed=21)
    for name in THROUGHPUT_BENCHMARKS:
        g: Optional[object] = graph if name == "SSSP" else None
        opt = _throughput(name, "optimus", window_us=window_us, graph=g)
        pt = _throughput(name, "passthrough", window_us=window_us, graph=g)
        ratio = 100.0 * opt / pt if pt else 0.0
        throughput.add(name, opt, pt, ratio, PAPER_THROUGHPUT[name])
    throughput.note("optimus/passthrough columns: GB/s (BTC: hash attempts/us)")
    return {"latency": latency, "throughput": throughput}


def main():
    results = run()
    for table in results.values():
        table.show()
    return results


if __name__ == "__main__":
    main()
