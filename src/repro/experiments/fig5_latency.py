"""Fig. 5 — LinkedList average latency vs working set, jobs, and page size.

The latency microbenchmark walks randomly placed nodes while the total
working set (split evenly over 1/2/4/8 concurrent jobs) sweeps past the
IOTLB's reach:

* with 2 MB pages the IOTLB covers 512 x 2 MB = 1 GB: latency is flat up
  to 1 GB, rises slightly at 2 GB, and climbs steeply at 4-8 GB as misses
  pay page walks across the interconnect (Fig. 5a);
* with 4 KB pages the same knee appears 512x earlier, at 2 MB (Fig. 5b).

Both UPI-only and PCIe-only channels are measured, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import OptimusStack, ResultTable, parallel_map
from repro.interconnect import VirtualChannel
from repro.mem import GB, MB, PAGE_SIZE_2M, PAGE_SIZE_4K, format_size, parse_size
from repro.platform import PlatformParams
from repro.sim.clock import ms

#: The paper's x-axes.
WORKING_SETS_2M = ["16M", "32M", "64M", "128M", "256M", "512M", "1G", "2G", "4G", "8G"]
WORKING_SETS_4K = ["32K", "64K", "128K", "256K", "512K", "1M", "2M", "4M", "8M", "16M"]
JOB_COUNTS = [1, 2, 4, 8]


def _mean_latency_ns(
    channel: VirtualChannel,
    *,
    page_size: int,
    total_working_set: int,
    n_jobs: int,
    hops_per_job: int,
) -> float:
    params = PlatformParams(page_size=page_size)
    stack = OptimusStack(params, n_accelerators=8)
    per_job_ws = max(page_size, total_working_set // n_jobs)
    # Compulsory misses must not pollute the steady-state mean: walk at
    # least a few times the per-job page count and measure the second half.
    pages_per_job = max(1, per_job_ws // page_size)
    hops = max(hops_per_job, 4 * pages_per_job)
    jobs = []
    for index in range(n_jobs):
        jobs.append(
            stack.launch(
                "LL",
                physical_index=index,
                working_set=per_job_ws,
                channel=channel,
                job_kwargs={
                    "functional": False,
                    "seed": 0x51C0FFEE + 31 * index,
                    "target_hops": hops,
                },
            )
        )
    stack.run_for(ms(5 + 2 * hops // 1000))
    samples: List[int] = []
    for launched in jobs:
        # Public instrument surface: the second half of the samples is the
        # steady state (compulsory misses live in the first half).
        samples.extend(launched.job.latency.steady_samples_ps())
    return sum(samples) / len(samples) / 1000 if samples else 0.0


def _sweep_cell(cell) -> float:
    """One grid point, as a picklable top-level worker for ``--jobs``."""
    channel, page_size, total, n_jobs, hops_per_job = cell
    return _mean_latency_ns(
        channel,
        page_size=page_size,
        total_working_set=total,
        n_jobs=n_jobs,
        hops_per_job=hops_per_job,
    )


def run(
    *,
    page_size: int = PAGE_SIZE_2M,
    working_sets: Optional[List[str]] = None,
    job_counts: Optional[List[int]] = None,
    hops_per_job: int = 1200,
    jobs: int = 1,
) -> Dict[str, ResultTable]:
    """One table per channel (UPI, PCIe), rows = working sets x job counts.

    ``jobs`` fans the independent grid cells across processes; the merge
    is order-preserving, so results are identical to a serial run.
    """
    if working_sets is None:
        working_sets = WORKING_SETS_2M if page_size == PAGE_SIZE_2M else WORKING_SETS_4K
    job_counts = job_counts or JOB_COUNTS
    page_label = "2M" if page_size == PAGE_SIZE_2M else "4K"
    channels = ((VirtualChannel.VL0, "UPI"), (VirtualChannel.VH0, "PCIe"))
    cells = []
    for channel, _label in channels:
        for ws_label in working_sets:
            total = parse_size(ws_label)
            for n_jobs in job_counts:
                if total // n_jobs >= page_size:
                    cells.append((channel, page_size, total, n_jobs, hops_per_job))
    values = iter(parallel_map(_sweep_cell, cells, jobs=jobs))
    results: Dict[str, ResultTable] = {}
    for channel, label in channels:
        table = ResultTable(
            f"Fig. 5 ({page_label} pages, {label} channel) — LL average latency (ns)",
            ["working_set"] + [f"{n}_jobs" for n in job_counts],
        )
        for ws_label in working_sets:
            total = parse_size(ws_label)
            row: List[object] = [ws_label]
            for n_jobs in job_counts:
                if total // n_jobs < page_size:
                    row.append(float("nan"))
                    continue
                row.append(next(values))
            table.add(*row)
        results[label] = table
    return results


def quick(jobs: int = 1) -> Dict[str, ResultTable]:
    """A seconds-scale cell of the sweep (CI smoke and ``trace fig5``)."""
    results = run(
        page_size=PAGE_SIZE_2M,
        working_sets=["64M", "128M"],
        job_counts=[1, 2],
        hops_per_job=200,
        jobs=jobs,
    )
    for table in results.values():
        table.show()
    return results


def main(jobs: int = 1) -> Dict[str, ResultTable]:
    # A trimmed default grid keeps the module runnable in about a minute;
    # pass the full paper grids for the complete figure.
    results: Dict[str, ResultTable] = {}
    for page_size in (PAGE_SIZE_2M, PAGE_SIZE_4K):
        sets = (
            ["64M", "512M", "1G", "2G", "4G"]
            if page_size == PAGE_SIZE_2M
            else ["128K", "1M", "2M", "4M", "16M"]
        )
        page_label = "2M" if page_size == PAGE_SIZE_2M else "4K"
        for label, table in run(
            page_size=page_size, working_sets=sets, jobs=jobs
        ).items():
            table.show()
            results[f"{page_label}.{label}"] = table
    return results


if __name__ == "__main__":
    main()
