"""Fig. 6 — MemBench aggregate throughput vs working set, jobs, page size.

Random reads and random writes sweep the total working set past the
IOTLB's reach.  Expected shapes, from the paper:

* flat aggregate throughput up to 1 GB with 2 MB pages (the IOTLB's 512 x
  2 MB reach), then a collapse driven by page walks that consume both the
  walker and interconnect bandwidth;
* the same knee at 2 MB with 4 KB pages (Fig. 6b) — huge pages buy a 512x
  larger flat region;
* adding jobs never *reduces* aggregate throughput (scalability, §6.4);
* the 1-job, <=2 MB-working-set read anomaly: same-region speculative
  pipelining lifts throughput above the normal plateau (§6.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accel.membench import MODE_READ, MODE_WRITE
from repro.experiments.harness import (
    ResultTable,
    make_stack,
    measure_progress,
    parallel_map,
)
from repro.mem import PAGE_SIZE_2M, PAGE_SIZE_4K, parse_size
from repro.platform import PlatformParams
from repro.sim.clock import us

WORKING_SETS_2M = ["16M", "32M", "64M", "128M", "256M", "512M", "1G", "2G", "4G", "8G"]
WORKING_SETS_4K = ["32K", "64K", "128K", "256K", "512K", "1M", "2M", "4M", "8M", "16M"]
JOB_COUNTS = [1, 2, 4, 8]


def aggregate_throughput(
    *,
    page_size: int,
    total_working_set: int,
    n_jobs: int,
    mode: int,
    window_us_: int = 200,
    speculative: bool = True,
) -> float:
    params = PlatformParams(page_size=page_size, speculative_region_opt=speculative)
    stack = make_stack("optimus", params, n_accelerators=8)
    per_job = max(page_size, total_working_set // n_jobs)
    jobs = []
    for index in range(n_jobs):
        launched = stack.launch(
            "MB",
            physical_index=index,
            working_set=per_job,
            job_kwargs={
                "functional": False,
                "seed": 0xFEED_BEEF + 104729 * index,
                "mode": mode,
            },
        )
        jobs.append(launched)
    rates = measure_progress(stack, jobs, warmup_ps=us(400), window_ps=us(window_us_))
    return sum(rates)


def _sweep_cell(cell) -> float:
    """One grid point, as a picklable top-level worker for ``--jobs``."""
    page_size, total, n_jobs, mode = cell
    return aggregate_throughput(
        page_size=page_size, total_working_set=total, n_jobs=n_jobs, mode=mode
    )


def run(
    *,
    page_size: int = PAGE_SIZE_2M,
    working_sets: Optional[List[str]] = None,
    job_counts: Optional[List[int]] = None,
    mode: int = MODE_READ,
    jobs: int = 1,
) -> ResultTable:
    if working_sets is None:
        working_sets = WORKING_SETS_2M if page_size == PAGE_SIZE_2M else WORKING_SETS_4K
    job_counts = job_counts or JOB_COUNTS
    page_label = "2M" if page_size == PAGE_SIZE_2M else "4K"
    mode_label = "random read" if mode == MODE_READ else "random write"
    table = ResultTable(
        f"Fig. 6 ({page_label} pages, {mode_label}) — aggregate MemBench GB/s",
        ["working_set"] + [f"{n}_jobs" for n in job_counts],
    )
    cells = []
    for ws_label in working_sets:
        total = parse_size(ws_label)
        for n_jobs in job_counts:
            if total // n_jobs >= page_size:
                cells.append((page_size, total, n_jobs, mode))
    values = iter(parallel_map(_sweep_cell, cells, jobs=jobs))
    for ws_label in working_sets:
        total = parse_size(ws_label)
        row: List[object] = [ws_label]
        for n_jobs in job_counts:
            if total // n_jobs < page_size:
                row.append(float("nan"))
                continue
            row.append(next(values))
        table.add(*row)
    return table


def read_anomaly(*, page_size: int = PAGE_SIZE_4K) -> Dict[str, float]:
    """§6.5's unusually-high read throughput: 1 job inside one 2 MB region.

    A single accelerator whose accesses stay within one 2 MB region keeps
    the IOMMU's speculative pipeline streaking, which lifts read
    throughput above the normal issue-limited plateau.  Returned values:
    the anomaly, the same configuration with the optimization disabled
    (the ablation), and a large-working-set reference point.
    """
    small = 1 * 1024 * 1024  # stays within a single 2 MB region
    large = 64 * 1024 * 1024
    return {
        "anomaly_gbps": aggregate_throughput(
            page_size=page_size, total_working_set=small, n_jobs=1, mode=MODE_READ
        ),
        "large_ws_gbps": aggregate_throughput(
            page_size=page_size, total_working_set=large, n_jobs=1, mode=MODE_READ
        ),
        "anomaly_disabled_gbps": aggregate_throughput(
            page_size=page_size, total_working_set=small, n_jobs=1, mode=MODE_READ,
            speculative=False,
        ),
    }


def main(jobs: int = 1):
    from repro.experiments.plotting import show_chart

    trimmed_2m = ["64M", "512M", "1G", "2G", "8G"]
    trimmed_4k = ["128K", "1M", "2M", "4M", "16M"]
    table_2m = run(
        page_size=PAGE_SIZE_2M, working_sets=trimmed_2m, mode=MODE_READ, jobs=jobs
    )
    table_2m.show()
    show_chart(table_2m, y_label="GB/s")
    write_2m = run(
        page_size=PAGE_SIZE_2M, working_sets=trimmed_2m, mode=MODE_WRITE, jobs=jobs
    )
    write_2m.show()
    read_4k = run(
        page_size=PAGE_SIZE_4K, working_sets=trimmed_4k, mode=MODE_READ, jobs=jobs
    )
    read_4k.show()
    anomaly = read_anomaly()
    print("read anomaly (1 job, <=2M region):", anomaly)
    return {
        "read_2m": table_2m,
        "write_2m": write_2m,
        "read_4k": read_4k,
        "read_anomaly": anomaly,
    }


if __name__ == "__main__":
    main()
