"""Fig. 7 — scalability of spatial multiplexing for real-world benchmarks.

Eight instances of a benchmark occupy the FPGA; 1, 2, 4, then 8 of them
run concurrent jobs.  The metric is aggregate throughput normalized to a
single job.  Expected shape (paper §6.4): compute-light benchmarks scale
near-linearly to ~7-8x; the interconnect-hungry quartet GAU, GRS, SBL,
SSSP (and the parallel-lane MD5) saturate the links and plateau between
~2x and ~4x — the aggregate improvement across the twelve real-world
benchmarks spans 1.98x-7x.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accel.registry import REAL_WORLD
from repro.experiments.harness import OptimusStack, ResultTable, measure_progress
from repro.kernels.graph import random_graph
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import us

JOB_COUNTS = [1, 2, 4, 8]

#: Benchmarks the paper singles out as saturating the interconnect.
PAPER_SATURATING = ("GAU", "GRS", "SBL", "SSSP")


def aggregate_rate(
    name: str,
    n_jobs: int,
    *,
    working_set: int = 32 * MB,
    window_us_: int = 120,
) -> float:
    stack = OptimusStack(PlatformParams(), n_accelerators=8)
    jobs = []
    for index in range(n_jobs):
        job_kwargs = {"functional": False}
        graph = None
        if name == "SSSP":
            # A denser graph + deep vertex pipeline put SSSP in its
            # steady, bandwidth-hungry regime (the paper's SSSP working
            # sets are 2-32 GB and saturate the interconnect, Fig. 7).
            graph = random_graph(30_000, 480_000, seed=7 + index)
            job_kwargs["pipeline_depth"] = 32
        jobs.append(
            stack.launch(
                name,
                physical_index=index,
                working_set=working_set,
                graph=graph,
                job_kwargs=job_kwargs,
            )
        )
    # SSSP needs a longer warm-up: its frontier ramps over the first few
    # hundred microseconds before the edge engine reaches steady state.
    warmup = us(400) if name == "SSSP" else us(100)
    rates = measure_progress(
        stack, jobs, warmup_ps=warmup, window_ps=us(window_us_), in_bytes=False
    )
    return sum(rates)


def run(
    *,
    benchmarks: Optional[List[str]] = None,
    job_counts: Optional[List[int]] = None,
) -> ResultTable:
    benchmarks = benchmarks or REAL_WORLD
    job_counts = job_counts or JOB_COUNTS
    table = ResultTable(
        "Fig. 7 — aggregate throughput, normalized to 1 job",
        ["benchmark"] + [f"{n}_jobs" for n in job_counts],
    )
    for name in benchmarks:
        single = aggregate_rate(name, 1)
        row: List[object] = [name]
        for n_jobs in job_counts:
            if n_jobs == 1:
                row.append(1.0)
            else:
                row.append(aggregate_rate(name, n_jobs) / single if single else 0.0)
        table.add(*row)
    table.note("paper: GAU/GRS/SBL/SSSP saturate past 4 jobs; range 1.98x-7x at 8")
    return table


def speedup_range(table: ResultTable) -> Dict[str, float]:
    eight = {row[0]: float(row[-1]) for row in table.rows}
    return {"min": min(eight.values()), "max": max(eight.values())}


def main():
    from repro.experiments.plotting import show_chart

    table = run()
    table.show()
    show_chart(table, y_label="normalized throughput")
    print("speedup range at 8 jobs:", speedup_range(table))
    return table


if __name__ == "__main__":
    main()
