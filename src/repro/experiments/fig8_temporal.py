"""Fig. 8 — scalability of preemptive temporal multiplexing.

1 to 16 virtual accelerators share a *single* physical accelerator with
10 ms time slices.  Aggregate throughput is normalized against the 1-job
case (which never preempts).  Expected shape, from the paper:

* LinkedList loses ~0.5% and MemBench ~0.7% the moment preemption starts
  (2 jobs), because each context switch costs drain + handshake + a tiny
  state transfer;
* the overhead stays *flat* from 2 to 16 jobs — preemption happens at a
  fixed interval regardless of how many jobs rotate;
* the worst case, estimated with MD5's full resource footprint saved and
  restored every switch, is ~9%.

Long multi-slice runs use coarse (64-line) DMA requests to bound the
simulation's event count; per-line issue/serialization costs are
unchanged, so throughput is the same (see accel docstrings).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import ENDLESS, OptimusStack, ResultTable
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import ms, us

JOB_COUNTS = [1, 2, 4, 8, 16]

#: Worst-case state: all of MD5's BRAM footprint (23% of the Arria 10's
#: ~8.2 MB) must be saved on a context switch (§6.6's estimation).
MD5_WORST_CASE_STATE_BYTES = int(0.2301 * 8.2 * 1024 * 1024)

PAPER_OVERHEAD = {"LL": 0.5, "MB": 0.7, "MD5-worst": 9.0}


def _launch_one(stack: OptimusStack, name: str, index: int, *, state_bytes: Optional[int]):
    job_kwargs: Dict[str, object] = {"functional": False}
    if name == "MB":
        job_kwargs.update(seed=0xAB1_0000 + index * 6151, lines_per_request=64)
    if name == "LL":
        job_kwargs.update(seed=0xCD2_0000 + index * 7879, target_hops=1 << 40)
    if name == "MD5":
        job_kwargs.update()
    launched = stack.launch(
        name,
        physical_index=0,
        working_set=16 * MB,
        stream_len=ENDLESS,
        job_kwargs=job_kwargs,
    )
    if name == "MD5":
        launched.job.lines_per_request = 64
    if state_bytes is not None:
        # Override the architected state size (the MD5 worst-case study).
        launched.job.state_size = lambda: state_bytes  # type: ignore[assignment]
    return launched


def aggregate_progress_rate(
    name: str,
    n_jobs: int,
    *,
    time_slice_ms: float = 10.0,
    run_ms: float = 45.0,
    state_bytes: Optional[int] = None,
) -> float:
    params = PlatformParams(time_slice_ps=ms(time_slice_ms))
    stack = OptimusStack(params, n_accelerators=1)
    jobs = [_launch_one(stack, name, i, state_bytes=state_bytes) for i in range(n_jobs)]
    warm = ms(2)
    stack.run_for(warm)
    base = sum(j.progress() for j in jobs)
    stack.run_for(ms(run_ms))
    return (sum(j.progress() for j in jobs) - base) / run_ms


def run(
    *,
    benchmarks: Optional[List[str]] = None,
    job_counts: Optional[List[int]] = None,
    time_slice_ms: float = 10.0,
    run_ms: float = 45.0,
) -> ResultTable:
    benchmarks = benchmarks or ["LL", "MB", "MD5-worst"]
    job_counts = job_counts or JOB_COUNTS
    table = ResultTable(
        f"Fig. 8 — temporal multiplexing ({time_slice_ms:g} ms slices), "
        "aggregate throughput normalized to 1 job",
        ["benchmark"] + [f"{n}_jobs" for n in job_counts] + ["paper_overhead_%"],
    )
    for label in benchmarks:
        name = "MD5" if label == "MD5-worst" else label
        state = MD5_WORST_CASE_STATE_BYTES if label == "MD5-worst" else None
        single = aggregate_progress_rate(
            name, 1, time_slice_ms=time_slice_ms, run_ms=run_ms, state_bytes=state
        )
        row: List[object] = [label, 1.0]
        for n_jobs in job_counts[1:]:
            rate = aggregate_progress_rate(
                name, n_jobs, time_slice_ms=time_slice_ms, run_ms=run_ms,
                state_bytes=state,
            )
            row.append(rate / single if single else 0.0)
        row.append(PAPER_OVERHEAD[label])
        table.add(*row)
    table.note("overhead = 1 - normalized throughput; flat beyond 2 jobs")
    return table


def slice_length_sweep(
    *,
    name: str = "MB",
    slices_ms: Optional[List[float]] = None,
    n_jobs: int = 2,
) -> ResultTable:
    """Ablation (§6.6): longer slices amortize context-switch cost."""
    slices_ms = slices_ms or [1.0, 2.0, 5.0, 10.0]
    single = aggregate_progress_rate(name, 1, time_slice_ms=10.0, run_ms=25.0)
    table = ResultTable(
        f"Time-slice sweep — {name}, {n_jobs} jobs, normalized throughput",
        ["slice_ms", "normalized"],
    )
    for slice_ms in slices_ms:
        rate = aggregate_progress_rate(
            name, n_jobs, time_slice_ms=slice_ms, run_ms=max(25.0, 5 * slice_ms)
        )
        table.add(slice_ms, rate / single if single else 0.0)
    return table


def main():
    results = {"temporal": run(), "slice_sweep": slice_length_sweep()}
    for table in results.values():
        table.show()
    return results


if __name__ == "__main__":
    main()
