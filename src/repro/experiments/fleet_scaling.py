"""Fleet scaling — placed-tenant throughput vs node count x offered load.

Beyond the paper: the fleet layer (:mod:`repro.fleet`) serves open-loop
tenant traffic on N heterogeneous OPTIMUS nodes behind admission control.
This study fixes the *absolute* offered request rate (computed against a
reference fleet size) and sweeps the number of nodes actually deployed:

* under-provisioned fleets saturate — admission control queues, retries,
  and finally rejects the excess, but never throws ``SchedulerError``;
* adding nodes at the same offered rate raises aggregate placed-tenant
  throughput and drives the rejection rate toward zero.

Both effects are the fleet-level analogue of the paper's Fig. 7 scaling
story: spatial capacity first, graceful temporal sharing at the margin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ResultTable, parallel_map
from repro.fleet import (
    AdmissionConfig,
    FleetCluster,
    FleetService,
    TrafficGenerator,
    TrafficProfile,
    make_policy,
)
from repro.sim.clock import to_seconds

NODE_COUNTS = [1, 2, 4]
LOADS = [0.6, 1.5]
SLOTS_PER_NODE = 6  # every default template carries six slots


def serve_fleet(
    n_nodes: int,
    load: float,
    *,
    requests: int = 240,
    seed: int = 7,
    policy: str = "best-fit",
    reference_nodes: Optional[int] = None,
    max_oversub: int = 2,
    queue_limit: int = 16,
    shards: int = 1,
    lookahead: int = 0,
    codec: str = "binary",
    opstream_stats: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One cell of the sweep: serve the trace, return the fleet summary.

    The arrival process is generated against ``reference_nodes`` (default:
    the largest fleet in ``NODE_COUNTS``), so every node count faces the
    same absolute offered rate and the same request stream.  With
    ``shards > 1`` the nodes are partitioned across worker processes
    (:mod:`repro.parallel`); ``lookahead``/``codec`` tune the op-stream
    protocol; the summary is byte-identical either way.  A single node
    degenerates to the serial path (nothing to partition).  Pass a dict
    as ``opstream_stats`` to receive the run's op-stream ledger (bench
    side channel, never part of the summary).
    """
    reference_nodes = reference_nodes or max(NODE_COUNTS)
    sharded = shards > 1 and n_nodes > 1
    if sharded:
        from repro.parallel import ShardedFleetCluster, ShardedFleetService

        cluster = ShardedFleetCluster.build(
            n_nodes,
            shards=shards,
            max_oversub=max_oversub,
            lookahead=lookahead,
            codec=codec,
        )
        service_cls = ShardedFleetService
    else:
        cluster = FleetCluster.build(n_nodes, max_oversub=max_oversub)
        service_cls = FleetService
    try:
        generator = TrafficGenerator(
            TrafficProfile(load=load),
            fleet_slots=reference_nodes * SLOTS_PER_NODE,
            seed=seed,
        )
        service = service_cls(
            cluster,
            make_policy(policy),
            admission=AdmissionConfig(queue_limit=queue_limit),
        )
        result = service.serve(generator.generate(requests))
        if opstream_stats is not None and sharded:
            opstream_stats.update(cluster.opstream_stats())
    finally:
        if sharded:
            cluster.close()
    summary = result.summary()
    span_s = to_seconds(result.span_ps) or 1.0
    summary["throughput_per_s"] = summary["placements"] / span_s
    return summary


def _sweep_cell(cell) -> Dict[str, object]:
    """One grid point, as a picklable top-level worker for ``--jobs``."""
    n_nodes, load, requests, seed, policy, reference_nodes, shards = cell
    return serve_fleet(
        n_nodes,
        load,
        requests=requests,
        seed=seed,
        policy=policy,
        reference_nodes=reference_nodes,
        shards=shards,
    )


def run(
    *,
    node_counts: Optional[Sequence[int]] = None,
    loads: Optional[Sequence[float]] = None,
    requests: int = 240,
    seed: int = 7,
    policy: str = "best-fit",
    jobs: int = 1,
    shards: int = 1,
) -> ResultTable:
    node_counts = list(node_counts or NODE_COUNTS)
    loads = list(loads or LOADS)
    table = ResultTable(
        "Fleet scaling — placed throughput and rejections vs nodes x load",
        ["nodes", "load", "placed", "rejected", "reject_rate", "p95_us", "placed_per_s"],
    )
    cells = [
        (n_nodes, load, requests, seed, policy, max(node_counts), shards)
        for load in loads
        for n_nodes in node_counts
    ]
    summaries = iter(parallel_map(_sweep_cell, cells, jobs=jobs))
    for load in loads:
        for n_nodes in node_counts:
            summary = next(summaries)
            latency = summary["placement_latency"]
            table.add(
                n_nodes,
                load,
                summary["placements"],
                summary["rejections"],
                summary["rejection_rate"],
                (latency["p95_ns"] / 1e3) if latency else 0.0,
                summary["throughput_per_s"],
            )
    table.note("fixed absolute offered rate per load row (reference fleet size)")
    table.note("admission control bounds overload: rejections, never SchedulerError")
    return table


def throughput_by_nodes(table: ResultTable, load: float) -> List[float]:
    """Placed throughput across node counts, for one offered load."""
    return [
        float(row[table.columns.index("placed_per_s")])
        for row in table.rows
        if float(row[1]) == load
    ]


def main(jobs: int = 1):
    table = run(jobs=jobs)
    table.show()
    for load in sorted({float(row[1]) for row in table.rows}):
        series = throughput_by_nodes(table, load)
        print(f"load {load}: placed/s by node count = "
              + ", ".join(f"{v:.0f}" for v in series))
    return table


if __name__ == "__main__":
    main()
