"""Shared experiment plumbing: stack construction, launch, measurement.

Every table/figure module builds on the same three steps:

1. **build** an OPTIMUS stack (or a pass-through baseline),
2. **launch** benchmark jobs through the real guest stack (driver +
   userspace library + hypervisor), and
3. **measure** throughput or latency over a warm-up + window interval.

Working sets and window lengths default to scaled-down values so the
whole suite regenerates in minutes on a laptop; every experiment accepts
the paper-scale parameters for full runs (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.accel import make_job
from repro.accel.base import AcceleratorJob
from repro.accel.linkedlist import ADDR_MODE_PATTERN
from repro.accel.membench import MODE_READ
from repro.accel.streaming import REG_DST, REG_LEN, REG_PARAM0, REG_PARAM1, REG_SRC
from repro.errors import ConfigurationError
from repro.hv import OptimusHypervisor, PassthroughHypervisor
from repro.hv.mdev import VirtualAccelerator
from repro.interconnect import VirtualChannel
from repro.kernels.graph import CsrGraph
from repro.mem import GB, MB
from repro.platform import Platform, PlatformMode, PlatformParams, build_platform
from repro.sim.clock import us

#: A very long stream length: jobs never finish inside a measurement window.
ENDLESS = 1 << 40


@dataclass
class LaunchedJob:
    """One running benchmark instance plus its measurement hooks."""

    name: str
    job: AcceleratorJob
    handle: object  # GuestAccelerator or NativeAccelerator
    vaccel: Optional[VirtualAccelerator] = None
    cache_line: int = 64  # progress granularity, from PlatformParams.cache_line

    def progress(self) -> int:
        return self.job.progress_units()

    def progress_bytes(self) -> int:
        """Progress in bytes moved, for absolute-bandwidth experiments."""
        job = self.job
        if hasattr(job, "bytes_done"):
            return job.bytes_done
        if hasattr(job, "bytes_in") and getattr(job, "bytes_in"):
            return job.bytes_in
        if hasattr(job, "bytes_out"):
            return job.bytes_out
        return job.progress_units() * self.cache_line


def _configure_benchmark(
    name: str,
    job: AcceleratorJob,
    alloc: Callable[[int], int],
    *,
    working_set: int,
    stream_len: int,
    graph: Optional[CsrGraph],
    seedling: int,
) -> Dict[int, int]:
    """Allocate buffers and produce the register file for one benchmark."""
    if name == "MB":
        base = alloc(working_set)
        return {
            REG_SRC: base,
            REG_LEN: working_set,
            REG_PARAM0: getattr(job, "mb_mode", MODE_READ),
            REG_PARAM1: 0,
        }
    if name == "LL":
        base = alloc(working_set)
        return {
            REG_SRC: base,
            REG_LEN: working_set,
            REG_PARAM0: ADDR_MODE_PATTERN,
            REG_PARAM1: getattr(job, "target_hops", None) or (1 << 40),
        }
    if name == "GRN":
        dst = alloc(working_set)
        return {REG_DST: dst, REG_LEN: stream_len}
    if name == "BTC":
        hdr = alloc(4096)
        out = alloc(4096)
        # 60 leading-zero bits: effectively never found -> runs endlessly.
        return {REG_SRC: hdr, REG_DST: out, REG_PARAM0: 60, REG_PARAM1: 0}
    if name == "SSSP":
        if graph is None:
            raise ConfigurationError("SSSP launch needs a graph")
        image = alloc(graph.serialized_bytes)
        dist = alloc(4 * graph.n_vertices + 64)
        return {
            REG_SRC: image,
            REG_DST: dist,
            REG_PARAM0: graph.n_vertices,
            REG_PARAM1: 0,
        }
    # Streaming benchmarks: src + dst + (endless) length.
    src = alloc(working_set)
    dst = alloc(working_set)
    return {REG_SRC: src, REG_DST: dst, REG_LEN: stream_len}


def _window_bytes_for(name: str, working_set: int, graph: Optional[CsrGraph]) -> int:
    if name == "SSSP" and graph is not None:
        return graph.serialized_bytes + 4 * graph.n_vertices + 8 * MB
    if name in ("MB", "LL"):
        return working_set + 4 * MB
    return 2 * working_set + 8 * MB


@runtime_checkable
class Stack(Protocol):
    """The mode-agnostic experiment surface.

    Both :class:`OptimusStack` and :class:`PassthroughStack` satisfy this
    protocol, so experiments written against it (and built through
    :func:`make_stack`) never branch on the virtualization mode — the
    single ``if optimus: ... else: ...`` pair lives in the factory.
    """

    params: PlatformParams
    platform: Platform
    jobs: List[LaunchedJob]

    def launch(
        self,
        name: str,
        *,
        physical_index: int = ...,
        working_set: int = ...,
        stream_len: int = ...,
        channel: VirtualChannel = ...,
        graph: Optional[CsrGraph] = ...,
        job_kwargs: Optional[dict] = ...,
        start: bool = ...,
    ) -> LaunchedJob: ...

    def run_for(self, duration_ps: int) -> None: ...


class OptimusStack:
    """An OPTIMUS platform + hypervisor with launch helpers."""

    def __init__(
        self,
        params: Optional[PlatformParams] = None,
        *,
        n_accelerators: int = 8,
        mux_topology: Optional[list] = None,
    ) -> None:
        self.params = params or PlatformParams()
        self.platform = build_platform(
            self.params, n_accelerators=n_accelerators, mux_topology=mux_topology
        )
        self.hypervisor = OptimusHypervisor(self.platform)
        self.jobs: List[LaunchedJob] = []

    def launch(
        self,
        name: str,
        *,
        physical_index: int = 0,
        working_set: int = 64 * MB,
        stream_len: int = ENDLESS,
        channel: VirtualChannel = VirtualChannel.VA,
        graph: Optional[CsrGraph] = None,
        job_kwargs: Optional[dict] = None,
        start: bool = True,
    ) -> LaunchedJob:
        kwargs = dict(job_kwargs or {})
        kwargs.setdefault("functional", False)
        if name == "SSSP":
            kwargs.setdefault("graph", graph)
        job = make_job(name, **kwargs)
        vm = self.hypervisor.create_vm(f"vm{len(self.jobs)}", mem_bytes=16 * GB)
        handle = self.hypervisor.connect(
            vm,
            job,
            physical_index=physical_index,
            window_bytes=_window_bytes_for(name, working_set, graph),
        )
        vaccel = handle.vaccel
        self.hypervisor.physical[physical_index].default_channel = channel
        registers = _configure_benchmark(
            name, job, handle.alloc_buffer,
            working_set=working_set, stream_len=stream_len,
            graph=graph, seedling=len(self.jobs),
        )
        for reg, value in registers.items():
            handle.mmio_write(reg, value)
        launched = LaunchedJob(
            name=name,
            job=job,
            handle=handle,
            vaccel=vaccel,
            cache_line=self.params.cache_line,
        )
        self.jobs.append(launched)
        if start:
            handle.start()
        return launched

    def run_for(self, duration_ps: int) -> None:
        self.platform.run_for(duration_ps)


class PassthroughStack:
    """The pass-through baseline with the same launch surface."""

    def __init__(
        self,
        params: Optional[PlatformParams] = None,
        *,
        virtualized: bool = True,
    ) -> None:
        self.params = params or PlatformParams()
        self.platform = build_platform(self.params, mode=PlatformMode.PASSTHROUGH)
        self.hypervisor = PassthroughHypervisor(self.platform, virtualized=virtualized)
        self.jobs: List[LaunchedJob] = []

    def launch(
        self,
        name: str,
        *,
        physical_index: int = 0,
        working_set: int = 64 * MB,
        stream_len: int = ENDLESS,
        channel: VirtualChannel = VirtualChannel.VA,
        graph: Optional[CsrGraph] = None,
        job_kwargs: Optional[dict] = None,
        start: bool = True,
    ) -> LaunchedJob:
        if physical_index != 0:
            raise ConfigurationError(
                "the pass-through baseline owns exactly one accelerator "
                f"(physical_index 0, got {physical_index})"
            )
        kwargs = dict(job_kwargs or {})
        kwargs.setdefault("functional", False)
        if name == "SSSP":
            kwargs.setdefault("graph", graph)
        job = make_job(name, **kwargs)
        handle = self.hypervisor.connect(
            window_bytes=_window_bytes_for(name, working_set, graph)
        )
        registers = _configure_benchmark(
            name, job, handle.alloc_buffer,
            working_set=working_set, stream_len=stream_len,
            graph=graph, seedling=0,
        )
        job.configure(registers)
        if start:
            self.hypervisor.start_job(job, channel=channel)
        launched = LaunchedJob(
            name=name, job=job, handle=handle, cache_line=self.params.cache_line
        )
        self.jobs.append(launched)
        return launched

    def run_for(self, duration_ps: int) -> None:
        self.platform.run_for(duration_ps)


def _make_analytic_stack(params, **kwargs):
    # Imported lazily: repro.analytic imports experiment modules that in
    # turn import this harness, so a top-level import would be circular.
    from repro.analytic.stack import AnalyticStack

    return AnalyticStack(params, **kwargs)


#: Mode name -> stack factory.  This registry is the single source of
#: truth for the mode list: :data:`STACK_MODES`, CLI ``--mode`` choices,
#: and the unknown-mode error message all derive from it, so adding a
#: backend here is the whole job.
_STACK_FACTORIES: Dict[str, Callable[..., "Stack"]] = {
    "optimus": lambda params, **kwargs: OptimusStack(params, **kwargs),
    "passthrough": lambda params, **kwargs: PassthroughStack(params, **kwargs),
    "analytic": _make_analytic_stack,
}

#: Stack modes understood by :func:`make_stack`, in registry order.
STACK_MODES = tuple(_STACK_FACTORIES)


def make_stack(
    mode: str = "optimus",
    params: Optional[PlatformParams] = None,
    **kwargs,
) -> Stack:
    """Build an experiment stack by mode name — the one mode branch.

    ``mode`` is one of :data:`STACK_MODES` (a
    :class:`~repro.platform.PlatformMode` is also accepted).  Keyword
    arguments are forwarded to the stack constructor: ``n_accelerators``
    and ``mux_topology`` for OPTIMUS, ``virtualized`` for pass-through,
    ``calibration`` for the analytic fast-forward backend.  Experiments
    built on this (fig4, fig6, chaos, ...) stay mode-agnostic.
    """
    if isinstance(mode, PlatformMode):
        mode = mode.value
    factory = _STACK_FACTORIES.get(mode)
    if factory is None:
        raise ConfigurationError(
            f"unknown stack mode {mode!r}; expected one of {STACK_MODES}"
        )
    return factory(params, **kwargs)


# -- parallel sweeps ---------------------------------------------------------------


def parallel_map(fn: Callable, items: Sequence, *, jobs: int = 1) -> List:
    """Map ``fn`` over ``items``: cached, cost-aware, optionally parallel.

    Experiment sweeps are grids of *independent* cells — each cell builds
    its own engine, platform, and RNGs from explicit seeds — so they can
    run in any process without changing results.  Results always come back
    in ``items`` order regardless of worker scheduling, which makes the
    merge deterministic and seed-stable: ``jobs=N`` produces the exact
    table ``jobs=1`` does.

    Two layers sit in front of the actual compute:

    * an installed :class:`~repro.experiments.cache.ExperimentCache`
      (``--cache-dir``) is consulted per cell — key = the worker's
      qualified name + the canonicalized item + the source-tree digest —
      and only the misses are computed (then stored);
    * with ``jobs > 1`` the first miss is *probed* inline and the rest go
      to the persistent worker pool only when the measured cell time
      clears the dispatch-overhead heuristic
      (:func:`repro.parallel.pool.dispatch_plan`) — small grids stay
      serial instead of paying pool latency for nothing.

    ``fn`` must be a module-level callable and every item picklable.
    """
    from repro.experiments.cache import current_cache

    items = list(items)
    results: List = [None] * len(items)
    pending = list(range(len(items)))

    cache = current_cache()
    keys: Optional[List[str]] = None
    if cache is not None:
        tag = f"{fn.__module__}.{getattr(fn, '__qualname__', fn.__name__)}"
        keys = [cache.key(tag, item) for item in items]
        misses = []
        for index in pending:
            hit, value = cache.load(keys[index])
            if hit:
                results[index] = value
            else:
                misses.append(index)
        pending = misses

    if pending:
        if jobs <= 1 or len(pending) <= 1:
            for index in pending:
                results[index] = fn(items[index])
        else:
            import time as _time

            from repro.parallel.pool import dispatch_plan, shared_pool

            probe_index, rest = pending[0], pending[1:]
            started = _time.perf_counter()
            results[probe_index] = fn(items[probe_index])
            probe_s = _time.perf_counter() - started
            if dispatch_plan(probe_s, len(rest), jobs):
                pool = shared_pool(min(jobs, len(rest)))
                for index, value in zip(
                    rest, pool.map(fn, [items[index] for index in rest])
                ):
                    results[index] = value
            else:
                for index in rest:
                    results[index] = fn(items[index])

    if cache is not None and keys is not None:
        for index in pending:
            cache.store(keys[index], results[index])
    return results


# -- measurement -----------------------------------------------------------------


def measure_progress(
    platform_owner,
    jobs: Sequence[LaunchedJob],
    *,
    warmup_ps: int = us(60),
    window_ps: int = us(100),
    in_bytes: bool = True,
) -> List[float]:
    """Per-job progress rate over the window: GB/s (bytes) or units/us."""
    platform_owner.run_for(warmup_ps)
    base = [
        (job.progress_bytes() if in_bytes else job.progress()) for job in jobs
    ]
    engine = getattr(platform_owner, "platform", platform_owner).engine
    window_start_ps = engine.now
    platform_owner.run_for(window_ps)
    if engine.trace is not None:
        engine.trace.complete(
            "measure.window", window_start_ps, engine.now,
            tid=engine.trace.thread("measure"), cat="measure",
            args={"jobs": len(jobs)})
    rates = []
    for job, start in zip(jobs, base):
        current = job.progress_bytes() if in_bytes else job.progress()
        delta = current - start
        if in_bytes:
            rates.append(delta / window_ps * 1e3)  # bytes/ps -> GB/s
        else:
            rates.append(delta / (window_ps / 1e6))  # units per us
    return rates


# -- presentation ------------------------------------------------------------------


@dataclass
class ResultTable:
    """A printable experiment result: named columns, formatted rows."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError("row width does not match columns")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form used by ``python -m repro run --json``."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_string(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        table = [self.columns] + [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in table) for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in table[1:]:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.to_string() + "\n")

    def column(self, name: str) -> List[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
