"""Migration recovery: proactive evacuation vs reactive failover.

Beyond-paper experiment for the typed fleet-operations API (ISSUE 8):
one fixed tenant trace is served against the same physical fleet under
the same seeded :func:`~repro.faults.plan.build_degrade_crash_plan` —
every fault *announces itself* (link degrade), escalates to a node crash
``warning_ms`` later, and recovers after ``outage_ms``.  Two control
policies race the warning window:

Both rows run the identical fleet: ``n_nodes`` active plus ``n_standby``
parked (cordoned) reserve nodes, same traffic, same plan — the *only*
delta is ``AutoscaleConfig.proactive_evacuation``:

* **reactive** — the reserve exists but nothing taps it.  The crash
  displaces residents; the serving loop re-places what fits on the
  saturated active nodes and fails the rest (``failed_by_fault``).
* **proactive** — on seeing a DEGRADED node the autoscaler commissions a
  parked node and drains the sick one through
  :meth:`~repro.fleet.ops.FleetOps.drain` (cordon + live-migrate every
  resident).  Sessions keep running through the crash; the node is
  re-admitted when its health recovers.

The acceptance claim of ISSUE 8 is the ``failed`` column: the proactive
run must lose strictly fewer sessions than the reactive baseline on the
same plan.  Every cell is deterministic (traffic seed, plan seed, policy
fully determine the outcome).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.harness import ResultTable
from repro.faults import build_degrade_crash_plan
from repro.fleet import (
    AdmissionConfig,
    AutoscaleConfig,
    FleetCluster,
    FleetService,
    TrafficGenerator,
    TrafficProfile,
    make_policy,
)
from repro.sim.clock import ms, us


def _serve_cell(
    *,
    proactive: bool,
    n_nodes: int,
    n_standby: int,
    requests: int,
    load: float,
    traffic_seed: int,
    plan_seed: int,
    n_faults: int,
    window_ps: int,
    warning_ps: int,
    outage_ps: int,
    max_oversub: int,
    policy: str,
):
    total_nodes = n_nodes + n_standby
    cluster = FleetCluster.build(total_nodes, max_oversub=max_oversub)
    generator = TrafficGenerator(
        TrafficProfile(load=load),
        fleet_slots=cluster.total_slots,
        seed=traffic_seed,
    )
    service = FleetService(
        cluster, make_policy(policy), admission=AdmissionConfig()
    )
    # Faults target only the first n_nodes, so standbys are never the
    # victim in either run.
    service.install_faults(
        build_degrade_crash_plan(
            n_faults=n_faults,
            n_nodes=n_nodes,
            window_ps=window_ps,
            warning_ps=warning_ps,
            outage_ps=outage_ps,
            seed=plan_seed,
        )
    )
    standby = tuple(f"node{i}" for i in range(n_nodes, total_nodes))
    # Elastic scale-up is neutralized (unreachable watermark/queue
    # thresholds) so the parked capacity is spent on evacuation only and
    # the two rows differ in exactly one mechanism.
    service.install_autoscaler(
        AutoscaleConfig(
            interval_ps=us(100),
            high_watermark=1.0,
            queue_high=10**6,
            min_active_nodes=n_nodes,
            standby_nodes=standby,
            proactive_evacuation=proactive,
        )
    )
    result = service.serve(generator.generate(requests))
    return result, service


def run(
    *,
    n_nodes: int = 4,
    n_standby: int = 2,
    requests: int = 160,
    load: float = 0.95,
    traffic_seed: int = 1,
    plan_seed: int = 3,
    n_faults: int = 3,
    window_ps: int = ms(30),
    warning_ps: int = ms(4),
    outage_ps: int = ms(10),
    max_oversub: int = 1,
    policy: str = "best-fit",
) -> ResultTable:
    table = ResultTable(
        f"Migration recovery — {n_nodes}+{n_standby} nodes, "
        f"{n_faults} degrade->crash faults, load {load}",
        [
            "mode",
            "availability",
            "completed",
            "replaced",
            "migrated",
            "failed",
            "rejected",
            "evacuations",
            "live_migrations",
        ],
    )
    failures: Dict[str, int] = {}
    for proactive in (False, True):
        result, service = _serve_cell(
            proactive=proactive,
            n_nodes=n_nodes,
            n_standby=n_standby,
            requests=requests,
            load=load,
            traffic_seed=traffic_seed,
            plan_seed=plan_seed,
            n_faults=n_faults,
            window_ps=window_ps,
            warning_ps=warning_ps,
            outage_ps=outage_ps,
            max_oversub=max_oversub,
            policy=policy,
        )
        counts = result.outcome_counts()
        rejected = sum(
            count for outcome, count in counts.items()
            if outcome.startswith("rejected_")
        )
        mode = "proactive" if proactive else "reactive"
        failures[mode] = counts.get("failed_by_fault", 0)
        autoscaler = service.autoscaler
        by_action = (
            autoscaler.summary()["by_action"] if autoscaler is not None else {}
        )
        table.add(
            mode,
            result.availability(),
            counts.get("completed", 0),
            counts.get("replaced_completed", 0),
            counts.get("migrated_completed", 0),
            failures[mode],
            rejected,
            by_action.get("evacuate", 0),
            result.metrics.fault_counters.get("migrations"),
        )
    table.note(
        "same seeded degrade->crash plan both rows; proactive drains "
        f"DEGRADED nodes inside the {warning_ps // ms(1)} ms warning window "
        f"(reactive {failures.get('reactive')} vs proactive "
        f"{failures.get('proactive')} failed sessions)"
    )
    return table


def quick() -> ResultTable:
    """Trimmed cell for smoke runs and tracing."""
    return run(requests=80, n_faults=2, window_ps=ms(15))


def main():
    table = run()
    table.show()
    return table


if __name__ == "__main__":
    main()
