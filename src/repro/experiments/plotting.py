"""Terminal rendering of figure series (no plotting dependencies).

The paper's figures are line/bar charts; offline reproduction should not
require matplotlib, so :func:`ascii_chart` renders a
:class:`~repro.experiments.harness.ResultTable` whose first column is the
x-axis and whose remaining columns are series, as a fixed-height ASCII
chart.  Experiment ``main()``s print these after their tables.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.experiments.harness import ResultTable

#: Glyphs assigned to series, in column order.
SERIES_GLYPHS = "*o+x@#%&"


def _format_value(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.4g}"


def ascii_chart(
    table: ResultTable,
    *,
    height: int = 12,
    width_per_point: int = 7,
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render a ResultTable as an ASCII chart (rows = x, columns = series)."""
    x_labels = [str(row[0]) for row in table.rows]
    series_names = table.columns[1:]
    series: List[List[Optional[float]]] = []
    for column_index in range(1, len(table.columns)):
        values = []
        for row in table.rows:
            value = row[column_index]
            try:
                number = float(value)
                values.append(None if math.isnan(number) else number)
            except (TypeError, ValueError):
                values.append(None)
        series.append(values)

    flat = [v for s in series for v in s if v is not None]
    if not flat:
        return f"{table.title}\n(no numeric data)"
    lo, hi = min(flat), max(flat)
    if log_y:
        lo = max(lo, 1e-12)
        transform = lambda v: math.log10(max(v, 1e-12))
        lo_t, hi_t = transform(lo), transform(hi)
    else:
        transform = lambda v: v
        lo_t, hi_t = lo, hi
    if hi_t == lo_t:
        hi_t = lo_t + 1.0

    def row_of(value: float) -> int:
        fraction = (transform(value) - lo_t) / (hi_t - lo_t)
        return min(height - 1, max(0, round(fraction * (height - 1))))

    grid = [[" "] * (len(x_labels) * width_per_point) for _ in range(height)]
    for series_index, values in enumerate(series):
        glyph = SERIES_GLYPHS[series_index % len(SERIES_GLYPHS)]
        for point_index, value in enumerate(values):
            if value is None:
                continue
            column = point_index * width_per_point + width_per_point // 2
            grid[height - 1 - row_of(value)][column] = glyph

    lines = [table.title]
    top_label = _format_value(hi).rjust(9)
    bottom_label = _format_value(lo).rjust(9)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label + " |"
        elif row_index == height - 1:
            prefix = bottom_label + " |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    axis = " " * 9 + " +" + "-" * (len(x_labels) * width_per_point)
    lines.append(axis)
    labels = " " * 11 + "".join(label.center(width_per_point) for label in x_labels)
    lines.append(labels)
    legend = "  ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(series_names)
    )
    lines.append(" " * 11 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def show_chart(table: ResultTable, **kwargs) -> None:
    print("\n" + ascii_chart(table, **kwargs) + "\n")
