"""§6.8 — fairness of temporal multiplexing: scheduler policy enforcement.

OPTIMUS ships three software schedulers (unweighted round-robin, weighted
time slices, strict priority).  The experiment measures each virtual
accelerator's actual share of physical-accelerator time across varying
oversubscription factors and slice lengths, and compares it with the
share the policy promises.  The paper reports actual execution times
within 0.32% of expected on average, 1.42% worst case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import OptimusStack, ResultTable
from repro.hv.scheduler import (
    PriorityScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import ms


def _measure_shares(
    policy_name: str,
    n_jobs: int,
    *,
    slice_ms: float,
    run_ms: float,
    weights: Optional[Dict[int, float]] = None,
    priorities: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Returns (measured shares, expected shares) keyed by vaccel id."""
    params = PlatformParams(time_slice_ps=ms(slice_ms))
    stack = OptimusStack(params, n_accelerators=1)
    jobs = [
        stack.launch(
            "MB",
            physical_index=0,
            working_set=16 * MB,
            job_kwargs={
                "functional": False,
                "seed": 0x5EED + 97 * i,
                "lines_per_request": 64,
            },
        )
        for i in range(n_jobs)
    ]
    manager = stack.hypervisor.physical[0]
    slice_ps = ms(slice_ms)
    if policy_name == "round-robin":
        manager.scheduler = RoundRobinScheduler(slice_ps)
    elif policy_name == "weighted":
        manager.scheduler = WeightedScheduler(weights or {}, slice_ps)
    else:
        manager.scheduler = PriorityScheduler(priorities or {}, slice_ps)

    stack.run_for(ms(run_ms))
    vaccels = [j.vaccel for j in jobs]
    busy = {va.vaccel_id: va.utilization.current_busy_ps() for va in vaccels}
    total = sum(busy.values()) or 1
    measured = {vid: b / total for vid, b in busy.items()}
    expected = manager.scheduler.expected_shares(vaccels)
    return measured, expected


def run(
    *,
    oversubscription: Optional[List[int]] = None,
    slice_ms: float = 2.0,
    run_ms: float = 60.0,
) -> ResultTable:
    oversubscription = oversubscription or [2, 4]
    table = ResultTable(
        "§6.8 — scheduler policy enforcement (share of accelerator time)",
        ["policy", "jobs", "vaccel", "measured_%", "expected_%", "error_pp"],
    )
    worst = 0.0
    errors: List[float] = []
    for n_jobs in oversubscription:
        weights = {i: (3.0 if i == 0 else 1.0) for i in range(n_jobs)}
        priorities = {i: (5 if i < 2 else 0) for i in range(n_jobs)}
        for policy, kwargs in (
            ("round-robin", {}),
            ("weighted", {"weights": weights}),
            ("priority", {"priorities": priorities}),
        ):
            measured, expected = _measure_shares(
                policy, n_jobs, slice_ms=slice_ms, run_ms=run_ms, **kwargs
            )
            for vid in sorted(measured):
                error = abs(measured[vid] - expected[vid]) * 100
                errors.append(error)
                worst = max(worst, error)
                table.add(
                    policy, n_jobs, vid, measured[vid] * 100, expected[vid] * 100, error
                )
    table.note(
        f"mean error {sum(errors) / len(errors):.2f} pp, worst {worst:.2f} pp "
        "(paper: 0.32% mean, 1.42% worst)"
    )
    return table


def main():
    table = run()
    table.show()
    return table


if __name__ == "__main__":
    main()
