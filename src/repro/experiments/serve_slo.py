"""Serving SLOs — budget-based shedding vs queue-depth-only admission.

Beyond the paper: OPTIMUS evaluates under steady offered load; a real
FPGA *service* (SYNERGY's operating point) carries per-class latency
SLOs through overload.  This study offers the same closed-loop session
trace to the fleet twice at 2x overload:

* **queue-depth** — the legacy bounded-queue admission: every arrival is
  admitted until the queue overflows, so admitted requests ride the full
  retry ladder and every class's p99 admission latency lands at the top
  of the backoff schedule;
* **slo-budget** — :class:`repro.serve.SloBudgetPolicy`: per-class p99
  budgets enforced by streaming quantile estimators; arrivals are shed
  (or degraded) the moment a class's observed latency crosses budget.

The headline: at equal offered load, the SLO arm achieves *strictly
higher in-budget p99 attainment* in every class, and holds classes whose
budget tolerates at most one queue bounce inside budget where the
baseline blows through it — the cost being explicit, typed shedding
instead of silent tail inflation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import ResultTable, parallel_map
from repro.fleet import FleetCluster, make_policy
from repro.serve import (
    Gateway,
    GatewayFleetService,
    ServeProfile,
    SloBudgetPolicy,
    SloClass,
    synthesize,
)
from repro.serve.slo import AttainmentMonitor, capacity_classes
from repro.sim.clock import ms


def study_classes() -> Dict[str, SloClass]:
    """The study's class contract — shared with capacity planning so the
    serve-SLO figures and ``python -m repro capacity`` report attainment
    against the same budgets (see :func:`repro.serve.slo.capacity_classes`)."""
    return capacity_classes()


def serve_arm(
    admission: str,
    *,
    sessions: int = 4000,
    load: float = 2.0,
    nodes: int = 3,
    seed: int = 7,
    policy: str = "best-fit",
) -> Dict[str, object]:
    """One arm of the comparison: same trace, one admission policy."""
    cluster = FleetCluster.build(nodes)
    trace = synthesize(
        ServeProfile(load=load, followup_prob=0.3),
        sessions=sessions,
        fleet_slots=cluster.total_slots,
        seed=seed,
    )
    if admission == "slo-budget":
        admission_policy = SloBudgetPolicy(study_classes())
    else:
        admission_policy = AttainmentMonitor(study_classes())
    service = GatewayFleetService(
        cluster, make_policy(policy), admission_policy=admission_policy
    )
    return Gateway(service, trace).run().to_dict()


def _arm_cell(cell) -> Dict[str, object]:
    admission, sessions, load, nodes, seed = cell
    return serve_arm(
        admission, sessions=sessions, load=load, nodes=nodes, seed=seed
    )


def run(
    *,
    sessions: int = 4000,
    load: float = 2.0,
    nodes: int = 3,
    seed: int = 7,
    arms: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> ResultTable:
    arms = list(arms or ("queue-depth", "slo-budget"))
    table = ResultTable(
        "Serving SLOs — in-budget p99 attainment, budget shedding vs queue depth",
        [
            "admission",
            "class",
            "budget_ms",
            "admitted",
            "shed",
            "attainment",
            "p99_ms",
            "in_budget",
        ],
    )
    cells = [(arm, sessions, load, nodes, seed) for arm in arms]
    for arm, result in zip(arms, parallel_map(_arm_cell, cells, jobs=jobs)):
        slo = result["slo"]["classes"]
        classes = result["classes"]
        for name in sorted(slo):
            stats = slo[name]
            p99_ps = classes.get(name, {}).get("admit_p99_ps", 0)
            table.add(
                arm,
                name,
                stats["budget_ps"] / ms(1),
                stats["admitted"],
                stats["shed"],
                stats["attainment"],
                p99_ps / ms(1),
                p99_ps <= stats["budget_ps"],
            )
    table.note(f"same trace both arms: {sessions} sessions at load {load}, seed {seed}")
    table.note("attainment = fraction of admitted sessions placed within budget")
    table.note("shedding is typed (rejected_slo_shed), never a silent drop")
    return table


def attainment_by_arm(table: ResultTable) -> Dict[str, Dict[str, float]]:
    """``{admission: {class: attainment}}`` for downstream assertions."""
    out: Dict[str, Dict[str, float]] = {}
    arm_col = table.columns.index("admission")
    cls_col = table.columns.index("class")
    att_col = table.columns.index("attainment")
    for row in table.rows:
        out.setdefault(str(row[arm_col]), {})[str(row[cls_col])] = float(
            row[att_col]
        )
    return out


def quick(jobs: int = 1) -> ResultTable:
    return run(sessions=1200, jobs=jobs)


def main(jobs: int = 1):
    table = run(jobs=jobs)
    table.show()
    attainment = attainment_by_arm(table)
    for name in sorted(attainment.get("slo-budget", {})):
        baseline = attainment["queue-depth"][name]
        budgeted = attainment["slo-budget"][name]
        print(
            f"{name}: attainment {baseline:.4f} -> {budgeted:.4f} "
            f"({'+' if budgeted >= baseline else ''}{budgeted - baseline:.4f})"
        )
    return table


if __name__ == "__main__":
    main()
