"""Table 2 — FPGA resource utilization: pass-through vs 8x under OPTIMUS.

For every benchmark, synthesize (a) the pass-through configuration — the
shell plus one accelerator instance — and (b) the OPTIMUS configuration —
shell + hardware monitor + eight instances.  The monitor's own footprint
(6.16% ALM / 0.48% BRAM) and the shell's (23.44% / 6.57%) are fixed
platform components; the interesting outputs are the ~linear-with-routing-
overhead scaling of normal designs, MemBench's sub-linear packing, and
LinkedList's net-negative delta.
"""

from __future__ import annotations

from repro.accel.registry import CATALOG
from repro.experiments.harness import ResultTable
from repro.fpga.resources import SHELL_FOOTPRINT, monitor_footprint
from repro.fpga.synthesis import plan_mux_tree, synthesize


def run(*, n_accelerators: int = 8) -> ResultTable:
    table = ResultTable(
        f"Table 2 — resource utilization (%), PT vs OPTIMUS x{n_accelerators}",
        ["component", "alm_optimus", "alm_pt", "bram_optimus", "bram_pt"],
    )
    arrangement = plan_mux_tree(n_accelerators, radix=2, target_mhz=400.0)
    monitor = monitor_footprint(n_accelerators, arrangement.node_count)
    table.add("Shell", SHELL_FOOTPRINT.alm_pct, SHELL_FOOTPRINT.alm_pct,
              SHELL_FOOTPRINT.bram_pct, SHELL_FOOTPRINT.bram_pct)
    table.add("Hardware Monitor", monitor.alm_pct, 0.0, monitor.bram_pct, 0.0)

    for name, (profile, _factory) in CATALOG.items():
        pt_report = synthesize(
            [profile.footprint], [profile.character], with_monitor=False
        )
        optimus_report = synthesize(
            [profile.footprint] * n_accelerators,
            [profile.character] * n_accelerators,
        )
        table.add(
            name,
            optimus_report.accelerators.alm_pct,
            pt_report.accelerators.alm_pct,
            optimus_report.accelerators.bram_pct,
            pt_report.accelerators.bram_pct,
        )
    table.note("accelerator rows exclude shell+monitor, as in the paper's Table 2")
    return table


def utilization_gain(n_accelerators: int = 8) -> float:
    """Aggregate accelerator utilization gain from spatial multiplexing."""
    single = sum(p.footprint.alm_pct for p, _f in CATALOG.values()) / len(CATALOG)
    multi = 0.0
    for _name, (profile, _factory) in CATALOG.items():
        report = synthesize(
            [profile.footprint] * n_accelerators, [profile.character] * n_accelerators
        )
        multi += report.accelerators.alm_pct
    multi /= len(CATALOG)
    return multi / single


def main():
    table = run()
    table.show()
    print(f"mean accelerator-utilization gain at 8x: {utilization_gain():.2f}x")
    return table


if __name__ == "__main__":
    main()
