"""Table 3 — fairness of spatial multiplexing, homogeneous configurations.

Eight instances of the same accelerator run concurrently; the metric is
the *normalized throughput range*: (max - min) / mean per-accelerator
throughput.  The paper reports at most ~1% (reported in units of 1e-4),
i.e. every accelerator gets essentially exactly 1/8 of the aggregate —
the direct consequence of round-robin arbitration in the multiplexer
tree over closed-loop requesters.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import OptimusStack, ResultTable, measure_progress
from repro.kernels.graph import random_graph
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import us
from repro.sim.stats import normalized_range

PAPER_RANGE_1E4 = {
    "AES": 21.9, "MD5": 11.9, "SHA": 4.40, "FIR": 30.1, "GRN": 108,
    "RSD": 1.77, "SW": 3.79, "GAU": 63.1, "GRS": 1.60, "SBL": 147,
    "SSSP": 595, "BTC": 0.468, "MB": 1.83, "LL": 3.25,
}

DEFAULT_BENCHMARKS = list(PAPER_RANGE_1E4)


def run(
    *,
    benchmarks: Optional[List[str]] = None,
    working_set: int = 32 * MB,
    window_us: int = 600,
) -> ResultTable:
    table = ResultTable(
        "Table 3 — normalized throughput range among 8 homogeneous accelerators",
        ["benchmark", "range_1e-4", "paper_1e-4", "mean_rate"],
    )
    for name in benchmarks or DEFAULT_BENCHMARKS:
        stack = OptimusStack(PlatformParams(), n_accelerators=8)
        graph = random_graph(20_000, 160_000, seed=5) if name == "SSSP" else None
        jobs = []
        for index in range(8):
            job_kwargs: Dict[str, object] = {"functional": False}
            if name in ("MB", "LL"):
                job_kwargs["seed"] = 0x1234_5678 + index * 7919
            if name == "LL":
                job_kwargs["target_hops"] = 1 << 40
            jobs.append(
                stack.launch(
                    name,
                    physical_index=index,
                    working_set=working_set,
                    graph=graph,
                    job_kwargs=job_kwargs,
                )
            )
        rates = measure_progress(
            stack, jobs, warmup_ps=us(120), window_ps=us(window_us), in_bytes=False
        )
        spread = normalized_range([float(r) for r in rates])
        mean = sum(rates) / len(rates)
        table.add(name, spread * 1e4, PAPER_RANGE_1E4[name], mean)
    table.note("range = (max-min)/mean of per-accelerator throughput, x1e-4")
    return table


def main():
    table = run()
    table.show()
    return table


if __name__ == "__main__":
    main()
