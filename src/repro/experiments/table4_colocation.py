"""Table 4 — heterogeneous fairness: MemBench co-located with each benchmark.

MemBench saturates the platform alone, so its throughput when co-located
with a second active accelerator shows how much bandwidth the round-robin
multiplexer tree guarantees: **at least half** against another bandwidth-
hungry tenant (MD5, a second MemBench), and nearly all of it against
light tenants (GRN, BTC, LinkedList).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.harness import OptimusStack, ResultTable, measure_progress
from repro.kernels.graph import random_graph
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import us

PAPER_NORMALIZED = {
    "AES": 0.86, "MD5": 0.50, "SHA": 0.77, "FIR": 0.75, "GRN": 1.00,
    "RSD": 0.78, "SW": 0.78, "GAU": 0.80, "GRS": 0.80, "SBL": 0.79,
    "SSSP": 0.75, "BTC": 1.00, "MB": 0.50, "LL": 1.00,
}

DEFAULT_COLOCATED = list(PAPER_NORMALIZED)


def membench_standalone(*, working_set: int = 32 * MB, window_us: int = 120) -> float:
    stack = OptimusStack(PlatformParams(), n_accelerators=8)
    mb = stack.launch("MB", physical_index=0, working_set=working_set)
    return measure_progress(stack, [mb], warmup_ps=us(80), window_ps=us(window_us))[0]


def run(
    *,
    colocated: Optional[List[str]] = None,
    working_set: int = 32 * MB,
    window_us: int = 120,
) -> ResultTable:
    table = ResultTable(
        "Table 4 — MemBench throughput with one co-located accelerator",
        ["co-located", "mb_gbps", "normalized", "paper"],
    )
    baseline = membench_standalone(working_set=working_set, window_us=window_us)
    for name in colocated or DEFAULT_COLOCATED:
        stack = OptimusStack(PlatformParams(), n_accelerators=8)
        mb = stack.launch("MB", physical_index=0, working_set=working_set)
        graph = random_graph(30_000, 480_000, seed=6) if name == "SSSP" else None
        job_kwargs = {"functional": False}
        if name == "SSSP":
            job_kwargs["pipeline_depth"] = 32
        if name in ("MB", "LL"):
            job_kwargs["seed"] = 0xBEEF_1234
        if name == "LL":
            job_kwargs["target_hops"] = 1 << 40
        stack.launch(
            name, physical_index=1, working_set=working_set, graph=graph,
            job_kwargs=job_kwargs,
        )
        warm = us(400) if name == "SSSP" else us(80)
        mb_rate = measure_progress(
            stack, [mb], warmup_ps=warm, window_ps=us(window_us)
        )[0]
        table.add(name, mb_rate, mb_rate / baseline, PAPER_NORMALIZED[name])
    table.note(f"standalone MemBench baseline: {baseline:.2f} GB/s")
    return table


def main():
    table = run()
    table.show()
    return table


if __name__ == "__main__":
    main()
