"""repro.faults — deterministic chaos for the OPTIMUS stack (ISSUE 4).

A :class:`FaultPlan` is a seed plus timed :class:`FaultEvent` entries
(node crashes and recoveries, link degradation and flaps, guest hangs,
runaway DMA streams, IOTLB thrashers).  Installed on a
:class:`~repro.fleet.admission.FleetService` (via
:meth:`~repro.fleet.admission.FleetService.install_faults`) or replayed
against a single platform (:func:`run_single_chaos`), the plan executes
entirely in simulated time with one seeded RNG — the same (plan, seed)
pair always produces a byte-identical recovery trace, in both the
fast-path and reference simulator modes.

The interesting part is never the fault; it is the recovery the fault
forces: admission routing around dead nodes, displaced sessions re-placed
through the typed evict contract, hung guests quarantined by the
watchdog, rogue DMA fenced by the auditors.  ``python -m repro chaos``
exposes the whole loop from the command line.
"""

from repro.faults.guests import (
    HANG_PROFILE,
    RUNAWAY_PROFILE,
    HangJob,
    RunawayDmaJob,
)
from repro.faults.injector import FaultLog, FaultRecord, FleetFaultInjector
from repro.faults.plan import (
    FAULT_PLAN_PRESETS,
    PRESETS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PlanPreset,
    build_crash_plan,
    build_degrade_crash_plan,
    preset_names,
    register_preset,
    resolve_plan,
)
from repro.faults.single import SinglePlatformChaos, run_single_chaos

__all__ = [
    "FAULT_PLAN_PRESETS",
    "FaultEvent",
    "FaultKind",
    "FaultLog",
    "FaultPlan",
    "FaultRecord",
    "FleetFaultInjector",
    "HANG_PROFILE",
    "HangJob",
    "PRESETS",
    "PlanPreset",
    "RUNAWAY_PROFILE",
    "RunawayDmaJob",
    "SinglePlatformChaos",
    "build_crash_plan",
    "build_degrade_crash_plan",
    "preset_names",
    "register_preset",
    "resolve_plan",
    "run_single_chaos",
]
