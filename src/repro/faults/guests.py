"""Adversarial guest jobs for fault injection.

Two rogue tenants, each exercising a *different* defense layer:

* :class:`HangJob` — makes a little real progress, then burns cycles
  forever without advancing its progress counter.  The auditors see
  nothing wrong (it issues no illegal DMAs); only the per-guest
  **watchdog** (:mod:`repro.hv.watchdog`) catches it, because fabric time
  keeps accruing while ``progress_units()`` stands still.

* :class:`RunawayDmaJob` — endlessly probes far outside its registered
  DMA window (the existing ``ATTACK`` pattern from the isolation tests,
  §4.1).  The **auditor** fences every access (``dma_dropped_window``
  counts climb; reads resolve to ``None``), but the job keeps *issuing* —
  so its progress counter keeps moving and the watchdog correctly leaves
  it alone.  Fenced, not quarantined: the two defenses stay observable
  apart.

Both are preemptible at every iteration, so temporal multiplexing and the
forcible-reset path behave exactly as with honest guests.
"""

from __future__ import annotations

import struct
from typing import Generator

from repro.accel.base import AcceleratorJob, AcceleratorProfile, ExecutionContext
from repro.fpga.resources import ResourceFootprint

#: Register offsets (same layout as the isolation tests' probe job).
REG_TARGET = 0x00
REG_COUNT = 0x08

HANG_PROFILE = AcceleratorProfile(
    name="HANG",
    description="stalls forever after a short warm-up",
    loc_verilog=1,
    freq_mhz=400.0,
    footprint=ResourceFootprint(0.1, 0.0),
    max_outstanding=8,
    state_bytes=16,
)

RUNAWAY_PROFILE = AcceleratorProfile(
    name="RUNAWAY",
    description="issues DMAs far outside its registered window, forever",
    loc_verilog=1,
    freq_mhz=400.0,
    footprint=ResourceFootprint(0.1, 0.0),
    max_outstanding=8,
    state_bytes=16,
)


class HangJob(AcceleratorJob):
    """Reads a few lines, then spins without forward progress."""

    profile = HANG_PROFILE

    def __init__(self, *, warmup_reads: int = 4, spin_cycles: int = 256) -> None:
        super().__init__()
        self.warmup_reads = warmup_reads
        #: Short spin quantum: the job resumes often, so a watchdog
        #: interrupt (which lands at the next resume) takes effect fast.
        self.spin_cycles = spin_cycles
        self._progress = 0

    def body(self, ctx: ExecutionContext) -> Generator:
        base = self.reg(REG_TARGET)
        while self._progress < self.warmup_reads:
            yield ctx.read(base + 64 * self._progress)
            self._progress += 1
            if (yield from ctx.preempt_point()):
                return
        while True:  # the hang: cycles burn, progress never moves
            yield ctx.cycles(self.spin_cycles)
            if (yield from ctx.preempt_point()):
                return

    def progress_units(self) -> int:
        return self._progress

    def save_state(self) -> bytes:
        return struct.pack("<q", self._progress)

    def restore_state(self, data: bytes) -> None:
        if data:
            (self._progress,) = struct.unpack_from("<q", data)


class RunawayDmaJob(AcceleratorJob):
    """Endless out-of-window probe: every DMA is fenced by the auditor."""

    profile = RUNAWAY_PROFILE

    #: How far beyond the window the probe aims (well past any slice).
    OVERSHOOT = 64 << 20

    def __init__(self, *, stride: int = 4096) -> None:
        super().__init__()
        self.stride = stride
        self.issued = 0
        self.fenced = 0

    def body(self, ctx: ExecutionContext) -> Generator:
        base = self.reg(REG_TARGET) + self.OVERSHOOT
        while True:
            data = yield ctx.read(base + self.stride * (self.issued % 1024))
            self.issued += 1
            if data is None:
                self.fenced += 1  # the auditor dropped it, as designed
            if (yield from ctx.preempt_point()):
                return

    def progress_units(self) -> int:
        # Issuing counts as progress: the circuit is busy (and fenced),
        # not hung — the watchdog must NOT quarantine it.
        return self.issued

    def save_state(self) -> bytes:
        return struct.pack("<qq", self.issued, self.fenced)

    def restore_state(self, data: bytes) -> None:
        if data:
            self.issued, self.fenced = struct.unpack_from("<qq", data)
