"""Deterministic replay of a fault plan into a fleet serving loop.

The injector never runs on a wall clock or its own thread: plan events
are pushed into the :class:`~repro.fleet.admission.FleetService` heap and
applied inside the serving loop's simulated time, so a (plan, traffic)
pair replays byte-identically.  Target resolution for ``"auto"`` events
draws from one ``numpy.random.RandomState(plan.seed)`` in event order —
the only randomness in the whole chaos layer.

Every injected event produces one :class:`FaultRecord` pairing the event
with its **resolution**: what the fleet actually did about it (sessions
re-placed, guests quarantined, links degraded, or ``noop`` when the
target no longer exists).  The :class:`FaultLog` is the machine-readable
half of the chaos CLI's JSON envelope.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.fleet.node import NodeHealth
from repro.sim.clock import ms
from repro.telemetry import current_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.admission import FleetService


@dataclass
class FaultRecord:
    """One injected event and how the fleet resolved it."""

    at_ps: int
    kind: str
    target: str
    outcome: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "at_ps": self.at_ps,
            "kind": self.kind,
            "target": self.target,
            "outcome": self.outcome,
        }
        if self.details:
            payload["details"] = {k: self.details[k] for k in sorted(self.details)}
        return payload


class FaultLog:
    """Ordered record of injected events vs. recovery outcomes."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.records: List[FaultRecord] = []

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def digest(self) -> str:
        payload = json.dumps(
            [record.to_dict() for record in self.records], sort_keys=True
        ).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def summary(self) -> Dict[str, object]:
        return {
            "plan": self.plan.name,
            "plan_seed": self.plan.seed,
            "plan_digest": self.plan.digest(),
            "events": [record.to_dict() for record in self.records],
            "digest": self.digest(),
        }


class FleetFaultInjector:
    """Applies a :class:`FaultPlan` inside a fleet serving loop."""

    def __init__(self, service: "FleetService", plan: FaultPlan) -> None:
        self.service = service
        self.plan = plan
        self.log = FaultLog(plan)
        self.rng = np.random.RandomState(plan.seed)
        self._tracer = current_tracer()
        self._scope = (
            self._tracer.scope("faults") if self._tracer is not None else None
        )
        self._tid = self._scope.thread("injector") if self._scope is not None else None

    # -- scheduling --------------------------------------------------------------

    def schedule(self) -> None:
        """Push every plan event into the service heap (called by serve)."""
        for event in self.plan.events:
            self.service._push(event.at_ps, "fault", event)

    # -- application -------------------------------------------------------------

    def apply(self, event: FaultEvent, now: int) -> FaultRecord:
        handler = {
            FaultKind.NODE_CRASH: self._node_crash,
            FaultKind.NODE_RECOVER: self._node_recover,
            FaultKind.LINK_DEGRADE: self._link_degrade,
            FaultKind.LINK_RESTORE: self._link_restore,
            FaultKind.GUEST_HANG: self._guest_hang,
            FaultKind.GUEST_RUNAWAY_DMA: self._guest_runaway_dma,
            FaultKind.IOTLB_THRASH: self._iotlb_thrash,
        }[event.kind]
        target, outcome, details = handler(event, now)
        record = FaultRecord(
            at_ps=now,
            kind=event.kind.value,
            target=target,
            outcome=outcome,
            details=details,
        )
        self.log.add(record)
        self.service.metrics.record_fault(
            now_ps=now, kind=record.kind, target=target, outcome=outcome
        )
        if self._scope is not None:
            self._scope.instant(
                f"fault.{record.kind}", now, tid=self._tid, cat="fault",
                args={"target": target, "outcome": outcome})
        return record

    # -- target resolution --------------------------------------------------------

    def _pick(self, pool: List[str]) -> Optional[str]:
        """One seeded draw from a deterministic (sorted) pool."""
        if not pool:
            return None
        return pool[int(self.rng.randint(len(pool)))]

    def _resolve_node(self, event: FaultEvent, *, alive_only: bool) -> Optional[str]:
        cluster = self.service.cluster
        if event.target != "auto":
            return event.target
        pool = sorted(
            node.name
            for node in cluster.nodes
            if not alive_only or node.health is not NodeHealth.DEAD
        )
        return self._pick(pool)

    def _resolve_tenant(self, event: FaultEvent) -> Optional[str]:
        if event.target != "auto":
            return event.target
        return self._pick(self.service.active_tenants())

    # -- handlers ------------------------------------------------------------------

    def _node_crash(self, event: FaultEvent, now: int):
        name = self._resolve_node(event, alive_only=True)
        if name is None:
            return event.target, "noop", {"reason": "no alive node"}
        node = self.service.cluster.node(name)
        if node.health is NodeHealth.DEAD:
            return name, "noop", {"reason": "already dead"}
        report = self.service.ops.crash(name, now=now)
        return name, "crashed", {
            "displaced": report.displaced,
            "replaced": report.replaced,
            "failed_by_fault": report.failed,
        }

    def _node_recover(self, event: FaultEvent, now: int):
        name = self._resolve_node(event, alive_only=False)
        if name is None:
            return event.target, "noop", {"reason": "no node"}
        node = self.service.cluster.node(name)
        if node.health is not NodeHealth.DEAD:
            return name, "noop", {"reason": "not dead"}
        self.service.ops.recover(name, now=now)
        return name, "recovered", {}

    def _link_degrade(self, event: FaultEvent, now: int):
        name = self._resolve_node(event, alive_only=True)
        if name is None:
            return event.target, "noop", {"reason": "no alive node"}
        node = self.service.cluster.node(name)
        if node.health is NodeHealth.DEAD:
            return name, "noop", {"reason": "dead"}
        factor = event.param("factor", 4.0)
        node.degrade(factor)
        return name, "degraded", {"factor": factor}

    def _link_restore(self, event: FaultEvent, now: int):
        name = self._resolve_node(event, alive_only=True)
        if name is None:
            return event.target, "noop", {"reason": "no alive node"}
        node = self.service.cluster.node(name)
        if node.health is NodeHealth.DEAD:
            return name, "noop", {"reason": "dead"}
        node.restore()
        return name, "restored", {}

    def _guest_hang(self, event: FaultEvent, now: int):
        tenant = self._resolve_tenant(event)
        if tenant is None:
            return event.target, "noop", {"reason": "no active session"}
        if not self.service.arm_watchdog(tenant, now):
            return tenant, "noop", {"reason": "no such session"}
        deadline = now + self.service.admission.watchdog_deadline_ps
        return tenant, "hang_armed", {"quarantine_at_ps": deadline}

    def _guest_runaway_dma(self, event: FaultEvent, now: int):
        tenant = self._resolve_tenant(event)
        if tenant is None:
            return event.target, "noop", {"reason": "no active session"}
        placement = self.service.session_placement(tenant)
        if placement is None:
            return tenant, "noop", {"reason": "no such session"}
        node_name, physical_index = placement
        dmas = int(event.param("dmas", 64))
        # The auditor fences every out-of-window access: surface the storm
        # in the same per-socket counters a real ATTACK run produces.  The
        # cluster mediates the bump so sharded execution can forward it.
        self.service.cluster.bump_auditor(
            node_name, physical_index, "dma_dropped_window", dmas
        )
        return tenant, "fenced", {
            "node": node_name, "slot": physical_index, "dmas": dmas,
        }

    def _iotlb_thrash(self, event: FaultEvent, now: int):
        name = self._resolve_node(event, alive_only=True)
        if name is None:
            return event.target, "noop", {"reason": "no alive node"}
        node = self.service.cluster.node(name)
        if node.health is NodeHealth.DEAD:
            return name, "noop", {"reason": "dead"}
        factor = event.param("factor", 2.0)
        span_ps = int(event.param("span_ps", ms(5)))
        node.degrade(factor)
        # The thrasher's effect decays once its working set stops churning:
        # schedule the restore as a synthetic plan event.
        self.service._push(
            now + span_ps,
            "fault",
            FaultEvent(
                at_ps=now + span_ps, kind=FaultKind.LINK_RESTORE, target=name
            ),
        )
        return name, "thrashing", {"factor": factor, "span_ps": span_ps}
