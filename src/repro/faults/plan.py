"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the whole chaos contract: a seed plus a list of
timed :class:`FaultEvent` entries.  Replaying the same plan against the
same stack (same traffic seed, same cluster shape, same simulator mode)
produces a byte-identical recovery trace — the injector draws every
"auto" target from one ``numpy.random.RandomState(plan.seed)`` in event
order and touches nothing else stochastic.

Plans come from three places, all normalized here:

* **presets** (:data:`FAULT_PLAN_PRESETS`) — a typed registry of named
  scenarios used by tests, CI, the scenario fuzzer, and
  ``python -m repro chaos --plan <preset>``; fixed shapes and
  parameterized builders (:func:`build_crash_plan`,
  :func:`build_degrade_crash_plan`) register through the same
  :func:`register_preset` door, so the CLI choices and the fuzzer's
  enumeration derive from one table (mirroring ``STACK_MODES``);
* **JSON files** (:meth:`FaultPlan.from_file`) — the CLI accepts a path
  wherever it accepts a preset name;
* **builders** (:func:`build_crash_plan`) — callable directly with
  explicit parameters for sweeps such as
  ``experiments/chaos_recovery.py``.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.errors import FaultPlanError
from repro.sim.clock import ms


class FaultKind(enum.Enum):
    """The fault taxonomy (DESIGN.md §8)."""

    NODE_CRASH = "node_crash"
    NODE_RECOVER = "node_recover"
    LINK_DEGRADE = "link_degrade"
    LINK_RESTORE = "link_restore"
    GUEST_HANG = "guest_hang"
    GUEST_RUNAWAY_DMA = "guest_runaway_dma"
    IOTLB_THRASH = "iotlb_thrash"


_KINDS_BY_VALUE = {kind.value: kind for kind in FaultKind}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.  ``target`` names a node or tenant; ``"auto"``
    defers the choice to the injector's seeded RNG at apply time."""

    at_ps: int
    kind: FaultKind
    target: str = "auto"
    params: Mapping[str, float] = field(default_factory=dict)

    def param(self, key: str, default: float) -> float:
        return float(self.params.get(key, default))

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "at_ps": self.at_ps,
            "kind": self.kind.value,
            "target": self.target,
        }
        if self.params:
            payload["params"] = {k: self.params[k] for k in sorted(self.params)}
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultEvent":
        try:
            kind = _KINDS_BY_VALUE[str(payload["kind"])]
        except KeyError:
            raise FaultPlanError(
                f"unknown fault kind {payload.get('kind')!r}; "
                f"expected one of {sorted(_KINDS_BY_VALUE)}"
            )
        if "at_ps" not in payload:
            raise FaultPlanError("fault event needs an at_ps")
        return cls(
            at_ps=int(payload["at_ps"]),
            kind=kind,
            target=str(payload.get("target", "auto")),
            params=dict(payload.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of timed fault events."""

    seed: int
    events: Tuple[FaultEvent, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        for event in self.events:
            if event.at_ps < 0:
                raise FaultPlanError(f"fault event at negative time: {event}")
        times = [event.at_ps for event in self.events]
        if times != sorted(times):
            raise FaultPlanError("fault events must be sorted by at_ps")

    @classmethod
    def of(cls, events, *, seed: int = 0, name: str = "custom") -> "FaultPlan":
        """Build a plan, sorting events stably by time."""
        ordered = tuple(sorted(events, key=lambda e: e.at_ps))
        return cls(seed=seed, events=ordered, name=name)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultPlan":
        events = payload.get("events")
        if not isinstance(events, list):
            raise FaultPlanError("fault plan needs an 'events' list")
        return cls.of(
            [FaultEvent.from_dict(entry) for entry in events],
            seed=int(payload.get("seed", 0)),
            name=str(payload.get("name", "custom")),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(f"cannot load fault plan {path!r}: {exc}")
        return cls.from_dict(payload)

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def digest(self) -> str:
        """Stable fingerprint of the full plan (seed included)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()[:16]


# -- presets ---------------------------------------------------------------------


def _single_node_crash() -> FaultPlan:
    """The acceptance-criteria scenario: node0 dies mid-serve, comes back."""
    return FaultPlan.of(
        [
            FaultEvent(at_ps=ms(10), kind=FaultKind.NODE_CRASH, target="node0"),
            FaultEvent(at_ps=ms(40), kind=FaultKind.NODE_RECOVER, target="node0"),
        ],
        seed=0,
        name="single-node-crash",
    )


def _crash_quick() -> FaultPlan:
    """CI smoke: the same shape, compressed to a few milliseconds.

    ``ms(5)`` lands after the first session wave of the default traffic
    profile, so the crash actually displaces live work.
    """
    return FaultPlan.of(
        [
            FaultEvent(at_ps=ms(5), kind=FaultKind.NODE_CRASH, target="node0"),
            FaultEvent(at_ps=ms(10), kind=FaultKind.NODE_RECOVER, target="node0"),
        ],
        seed=0,
        name="crash-quick",
    )


def _link_flap() -> FaultPlan:
    return FaultPlan.of(
        [
            FaultEvent(at_ps=ms(5), kind=FaultKind.LINK_DEGRADE, target="node0",
                       params={"factor": 8.0}),
            FaultEvent(at_ps=ms(10), kind=FaultKind.LINK_RESTORE, target="node0"),
            FaultEvent(at_ps=ms(15), kind=FaultKind.LINK_DEGRADE, target="node0",
                       params={"factor": 8.0}),
            FaultEvent(at_ps=ms(20), kind=FaultKind.LINK_RESTORE, target="node0"),
        ],
        seed=0,
        name="link-flap",
    )


def _rogue_guest() -> FaultPlan:
    return FaultPlan.of(
        [
            FaultEvent(at_ps=ms(6), kind=FaultKind.GUEST_HANG, target="auto"),
            FaultEvent(at_ps=ms(9), kind=FaultKind.GUEST_RUNAWAY_DMA, target="auto",
                       params={"dmas": 64}),
        ],
        seed=7,
        name="rogue-guest",
    )


def _mixed() -> FaultPlan:
    return FaultPlan.of(
        [
            FaultEvent(at_ps=ms(3), kind=FaultKind.LINK_DEGRADE, target="node0",
                       params={"factor": 4.0}),
            FaultEvent(at_ps=ms(5), kind=FaultKind.GUEST_HANG, target="auto"),
            FaultEvent(at_ps=ms(8), kind=FaultKind.NODE_CRASH, target="node1"),
            FaultEvent(at_ps=ms(12), kind=FaultKind.LINK_RESTORE, target="node0"),
            FaultEvent(at_ps=ms(18), kind=FaultKind.GUEST_RUNAWAY_DMA, target="auto"),
            FaultEvent(at_ps=ms(25), kind=FaultKind.NODE_RECOVER, target="node1"),
            FaultEvent(at_ps=ms(30), kind=FaultKind.IOTLB_THRASH, target="node0",
                       params={"span_ps": ms(5), "factor": 2.0}),
        ],
        seed=11,
        name="mixed",
    )


@dataclass(frozen=True)
class PlanPreset:
    """One registered fault-plan preset.

    ``build()`` returns the plan; parameterized presets (registered
    builders) accept keyword overrides on top of their defaults, fixed
    presets accept none.  ``scopes`` says where the plan is meaningful —
    ``"fleet"`` (node crashes need a cluster) and/or ``"single"`` (guest
    and link faults against one hypervisor) — which is what the scenario
    fuzzer enumerates when drawing a plan for a given scenario kind.
    """

    name: str
    factory: Callable[..., FaultPlan]
    description: str
    scopes: Tuple[str, ...] = ("fleet", "single")
    defaults: Mapping[str, object] = field(default_factory=dict)

    def build(self, **overrides: object) -> FaultPlan:
        if overrides and not self.defaults:
            raise FaultPlanError(
                f"preset {self.name!r} is a fixed plan and takes no "
                f"parameters (got {sorted(overrides)})"
            )
        if self.defaults:
            kwargs = {**self.defaults, **overrides}
            return self.factory(**kwargs)
        return self.factory()


#: The single source of truth for named fault plans.  CLI ``--plan``
#: choices, ``resolve_plan`` error messages, and the scenario fuzzer's
#: plan enumeration all derive from this registry.
FAULT_PLAN_PRESETS: Dict[str, PlanPreset] = {}


def register_preset(preset: PlanPreset) -> PlanPreset:
    """Register a preset; the name must be new (no silent shadowing)."""
    if preset.name in FAULT_PLAN_PRESETS:
        raise FaultPlanError(f"fault-plan preset {preset.name!r} already registered")
    FAULT_PLAN_PRESETS[preset.name] = preset
    return preset


def preset_names(scope: str = "") -> List[str]:
    """Registered preset names, optionally filtered to one scope."""
    return [
        name
        for name, preset in sorted(FAULT_PLAN_PRESETS.items())
        if not scope or scope in preset.scopes
    ]


def resolve_plan(spec: str, **overrides: object) -> FaultPlan:
    """A preset name (with optional builder overrides), or a path to a
    JSON plan file."""
    preset = FAULT_PLAN_PRESETS.get(spec)
    if preset is not None:
        return preset.build(**overrides)
    if overrides:
        raise FaultPlanError(
            f"plan files take no parameter overrides (got {sorted(overrides)})"
        )
    if os.path.exists(spec):
        return FaultPlan.from_file(spec)
    raise FaultPlanError(
        f"no fault-plan preset or file {spec!r}; "
        f"presets: {sorted(FAULT_PLAN_PRESETS)}"
    )


# -- builders --------------------------------------------------------------------


def build_crash_plan(
    *,
    n_crashes: int,
    n_nodes: int,
    window_ps: int,
    outage_ps: int,
    seed: int = 0,
) -> FaultPlan:
    """``n_crashes`` node crashes at seeded times inside ``window_ps``,
    each recovering ``outage_ps`` later — the chaos_recovery sweep axis."""
    if n_crashes < 0 or n_nodes < 1 or window_ps <= 0 or outage_ps <= 0:
        raise FaultPlanError("invalid crash-plan parameters")
    rng = np.random.RandomState(seed)
    events: List[FaultEvent] = []
    for _ in range(n_crashes):
        at = int(rng.randint(1, window_ps))
        node = f"node{int(rng.randint(n_nodes))}"
        events.append(FaultEvent(at_ps=at, kind=FaultKind.NODE_CRASH, target=node))
        events.append(
            FaultEvent(at_ps=at + outage_ps, kind=FaultKind.NODE_RECOVER, target=node)
        )
    return FaultPlan.of(events, seed=seed, name=f"crash-sweep-{n_crashes}")


def build_degrade_crash_plan(
    *,
    n_faults: int,
    n_nodes: int,
    window_ps: int,
    warning_ps: int,
    outage_ps: int,
    seed: int = 0,
) -> FaultPlan:
    """``n_faults`` failures that *announce themselves*: each target node
    degrades at a seeded time, crashes ``warning_ps`` later, and recovers
    ``outage_ps`` after the crash.

    The degrade→crash gap is the window a proactive control loop (the
    autoscaler's evacuation pass) has to live-migrate residents off the
    sick node before the crash displaces them — the migration_recovery
    experiment measures exactly that race.  A reactive-only baseline run
    of the same plan eats the crash instead.
    """
    if n_faults < 0 or n_nodes < 1 or window_ps <= 0:
        raise FaultPlanError("invalid degrade-crash-plan parameters")
    if warning_ps <= 0 or outage_ps <= 0:
        raise FaultPlanError("warning_ps and outage_ps must be positive")
    rng = np.random.RandomState(seed)
    events: List[FaultEvent] = []
    for _ in range(n_faults):
        at = int(rng.randint(1, window_ps))
        node = f"node{int(rng.randint(n_nodes))}"
        events.append(
            FaultEvent(at_ps=at, kind=FaultKind.LINK_DEGRADE, target=node,
                       params={"factor": 4.0})
        )
        events.append(
            FaultEvent(at_ps=at + warning_ps, kind=FaultKind.NODE_CRASH,
                       target=node)
        )
        events.append(
            FaultEvent(at_ps=at + warning_ps + outage_ps,
                       kind=FaultKind.NODE_RECOVER, target=node)
        )
    return FaultPlan.of(events, seed=seed, name=f"degrade-crash-{n_faults}")


# -- registration ----------------------------------------------------------------
#
# Fixed shapes and parameterized builders go through the same door; the
# chaos CLI and the scenario fuzzer enumerate this table, never a
# hand-maintained list.

register_preset(PlanPreset(
    name="single-node-crash",
    factory=_single_node_crash,
    description="node0 dies mid-serve, comes back 30 ms later",
    scopes=("fleet",),
))
register_preset(PlanPreset(
    name="crash-quick",
    factory=_crash_quick,
    description="the same crash shape compressed for CI smoke runs",
    scopes=("fleet",),
))
register_preset(PlanPreset(
    name="link-flap",
    factory=_link_flap,
    description="two degrade/restore cycles on the CPU-FPGA links",
))
register_preset(PlanPreset(
    name="rogue-guest",
    factory=_rogue_guest,
    description="a hung guest plus a runaway-DMA guest on seeded slots",
))
register_preset(PlanPreset(
    name="mixed",
    factory=_mixed,
    description="links, rogues, a crash, and an IOTLB thrash interleaved",
))
register_preset(PlanPreset(
    name="crash-sweep",
    factory=build_crash_plan,
    description="seeded node crashes inside a window (build_crash_plan)",
    scopes=("fleet",),
    defaults={
        "n_crashes": 2,
        "n_nodes": 3,
        "window_ps": ms(20),
        "outage_ps": ms(8),
        "seed": 0,
    },
))
register_preset(PlanPreset(
    name="degrade-crash",
    factory=build_degrade_crash_plan,
    description="degrade-then-crash failures that announce themselves "
    "(build_degrade_crash_plan)",
    scopes=("fleet",),
    defaults={
        "n_faults": 1,
        "n_nodes": 3,
        "window_ps": ms(10),
        "warning_ps": ms(4),
        "outage_ps": ms(8),
        "seed": 0,
    },
))

#: Back-compat alias (pre-registry shape): name -> zero-argument maker.
#: New code should read :data:`FAULT_PLAN_PRESETS` instead.
PRESETS: Dict[str, Callable[[], FaultPlan]] = {
    name: preset.build for name, preset in FAULT_PLAN_PRESETS.items()
}
