"""Single-platform chaos: a fault plan against one OPTIMUS stack.

The fleet injector (:mod:`repro.faults.injector`) exercises the
*cluster*'s self-healing; this module drives the same declarative plans
into one hypervisor so the **device-level** defenses are observable in
isolation:

* ``guest_hang``   -> a :class:`~repro.faults.guests.HangJob` tenant; the
  per-guest watchdog (:mod:`repro.hv.watchdog`) quarantines it and the
  victim reclaims the fabric;
* ``guest_runaway_dma`` -> a :class:`~repro.faults.guests.RunawayDmaJob`
  tenant; the auditor fences every access (``dma_dropped_window``);
* ``link_degrade`` / ``link_restore`` / ``iotlb_thrash`` -> bandwidth
  faults on the platform's CPU-FPGA links;
* ``node_crash`` / ``node_recover`` -> fleet-scope, recorded as ``noop``.

Everything runs in simulated time with one seeded RNG, so a (plan, seed)
pair produces a byte-identical report in both the fast-path and reference
simulator modes — the chaos CLI byte-compares exactly this dict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.harness import make_stack
from repro.faults.guests import REG_TARGET, HangJob, RunawayDmaJob
from repro.faults.injector import FaultLog, FaultRecord
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.mem import MB
from repro.platform import PlatformParams
from repro.sim.clock import ms


class SinglePlatformChaos:
    """Replays a :class:`FaultPlan` against one OPTIMUS stack."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        params: Optional[PlatformParams] = None,
        n_accelerators: int = 2,
        watchdog_deadline_ps: int = ms(2),
        working_set: int = 8 * MB,
        victim: str = "MB",
    ) -> None:
        self.plan = plan
        self.stack = make_stack(
            "optimus", params, n_accelerators=n_accelerators
        )
        self.hypervisor = self.stack.hypervisor
        self.engine = self.stack.platform.engine
        self.n_accelerators = n_accelerators
        self.watchdog = self.hypervisor.enable_watchdog(watchdog_deadline_ps)
        # "MB" saturates the link (bandwidth victim); "LL" is latency-bound
        # with ~20x fewer simulated packets — the choice for quick runs.
        self.victim = self.stack.launch(
            victim, physical_index=0, working_set=working_set
        )
        self.log = FaultLog(plan)
        self.rng = np.random.RandomState(plan.seed)
        self.rogues: List[Tuple[str, object, object]] = []

    # -- rogue tenants -----------------------------------------------------------

    def _slot_for(self, event: FaultEvent) -> int:
        """``"auto"`` draws a seeded slot; ``"slotN"`` pins one."""
        if event.target == "auto":
            return int(self.rng.randint(self.n_accelerators))
        if event.target.startswith("slot"):
            return int(event.target[len("slot"):]) % self.n_accelerators
        return 0

    def _launch_rogue(self, job, slot: int, label: str):
        vm = self.hypervisor.create_vm(f"{label}{len(self.rogues)}")
        handle = self.hypervisor.connect(
            vm, job, physical_index=slot, window_bytes=16 * MB
        )
        handle.alloc_buffer(4096)
        handle.mmio_write(REG_TARGET, handle.vaccel.window_base_gva or 0)
        handle.start()
        self.rogues.append((label, job, handle))
        return handle

    # -- per-event application ----------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        now = self.engine.now
        kind = event.kind
        if kind is FaultKind.GUEST_HANG:
            slot = self._slot_for(event)
            self._launch_rogue(HangJob(), slot, "hang")
            target, outcome, details = f"slot{slot}", "hang_launched", {}
        elif kind is FaultKind.GUEST_RUNAWAY_DMA:
            slot = self._slot_for(event)
            self._launch_rogue(RunawayDmaJob(), slot, "runaway")
            target, outcome, details = f"slot{slot}", "runaway_launched", {}
        elif kind is FaultKind.LINK_DEGRADE:
            factor = event.param("factor", 4.0)
            for link in self.stack.platform.links:
                link.degrade(factor)
            target, outcome, details = "links", "degraded", {"factor": factor}
        elif kind is FaultKind.LINK_RESTORE:
            for link in self.stack.platform.links:
                link.restore()
            target, outcome, details = "links", "restored", {}
        elif kind is FaultKind.IOTLB_THRASH:
            factor = event.param("factor", 2.0)
            span_ps = int(event.param("span_ps", ms(5)))
            for link in self.stack.platform.links:
                link.degrade(factor)
            restore = FaultEvent(
                at_ps=now + span_ps, kind=FaultKind.LINK_RESTORE, target="links"
            )
            self.engine.call_at(restore.at_ps, lambda: self._apply(restore))
            target, outcome = "links", "thrashing"
            details = {"factor": factor, "span_ps": span_ps}
        else:  # node crash/recover only mean something to a fleet
            target, outcome = event.target, "noop"
            details = {"reason": "fleet-scope fault"}
        self.log.add(FaultRecord(
            at_ps=now,
            kind=kind.value,
            target=target,
            outcome=outcome,
            details=details,
        ))

    # -- the run -------------------------------------------------------------------

    def run(self, window_ps: int = ms(30)) -> Dict[str, object]:
        for event in self.plan.events:
            self.engine.call_at(
                event.at_ps, lambda event=event: self._apply(event)
            )
        self.stack.run_for(window_ps)
        return self.report(window_ps)

    def report(self, window_ps: int) -> Dict[str, object]:
        rogue_rows = []
        for label, job, handle in self.rogues:
            rogue_rows.append({
                "label": label,
                "vaccel": handle.vaccel.name,
                "slot": handle.vaccel.physical_index,
                "progress_units": job.progress_units(),
                "quarantined": handle.vaccel.quarantined,
            })
        return {
            "plan": self.plan.name,
            "plan_seed": self.plan.seed,
            "plan_digest": self.plan.digest(),
            "window_ps": window_ps,
            "victim_progress_units": self.victim.progress(),
            "violations": self.stack.platform.monitor.violation_counts(),
            "watchdog": {
                "deadline_ps": self.watchdog.deadline_ps,
                "quarantined": [va.name for va in self.watchdog.quarantined],
                "events": list(self.watchdog.events),
            },
            "rogues": rogue_rows,
            "fault_log": self.log.summary(),
        }


def run_single_chaos(
    plan: FaultPlan,
    *,
    params: Optional[PlatformParams] = None,
    n_accelerators: int = 2,
    window_ps: int = ms(30),
    watchdog_deadline_ps: int = ms(2),
    working_set: int = 8 * MB,
    victim: str = "MB",
) -> Dict[str, object]:
    """One-shot convenience wrapper used by the chaos CLI and tests."""
    chaos = SinglePlatformChaos(
        plan,
        params=params,
        n_accelerators=n_accelerators,
        watchdog_deadline_ps=watchdog_deadline_ps,
        working_set=working_set,
        victim=victim,
    )
    return chaos.run(window_ps)
