"""Fleet layer: many OPTIMUS FPGAs served as one request-driven cluster.

The paper stops at one FPGA: :class:`repro.cloud.CloudProvider` places
tenants onto a single configured device.  Real providers run *fleets* of
heterogeneous FPGAs behind one admission point (SYNERGY, arXiv:2109.02484,
virtualizes FPGAs cluster-wide; EMiX, arXiv:2604.27012, partitions work
beyond single-device capacity).  This package adds that altitude without
touching the single-node model:

* :mod:`repro.fleet.node` — one ``CloudProvider`` + ``Platform`` wrapped as
  a schedulable node with capacity and utilization accounting;
* :mod:`repro.fleet.cluster` — N heterogeneous nodes behind one API;
* :mod:`repro.fleet.placement` — pluggable policies (first-fit, best-fit,
  config-affinity) reusing the paper's spatial-then-temporal logic;
* :mod:`repro.fleet.admission` — bounded admission queue, rejection, and
  retry-with-backoff, plus the event-driven serving loop;
* :mod:`repro.fleet.traffic` — deterministic open-loop tenant request
  streams (seeded arrivals, mixed accelerator types, session lifetimes);
* :mod:`repro.fleet.metrics` — fleet-wide counters, placement-latency
  percentiles, and time-weighted per-type utilization.

Fault tolerance (ISSUE 4): nodes carry a :class:`NodeHealth` state
machine, eviction is a typed contract (:class:`EvictedPlacement` /
:class:`repro.errors.UnknownTenantError`), and the serving loop re-places
or cleanly fails sessions displaced by crashes injected through
:mod:`repro.faults`.

Everything is driven in *fleet simulated time* (integer picoseconds, the
same unit as :mod:`repro.sim.clock`): placement is a control-plane
operation, so the per-node packet simulators stay idle while the fleet
loop advances through arrivals, departures, and retries.
"""

from repro.fleet.admission import (
    ADMIT,
    AdmissionConfig,
    AdmissionDecision,
    AdmissionPolicy,
    FleetService,
    ServeResult,
    request_jitter_rng,
)
from repro.fleet.autoscale import AutoscaleConfig, Autoscaler
from repro.fleet.cluster import DEFAULT_TEMPLATES, FleetCluster
from repro.fleet.metrics import FleetMetrics
from repro.fleet.node import EvictedPlacement, FleetNode, NodeHealth, NodeSpec
from repro.fleet.ops import (
    CrashReport,
    DrainReport,
    FleetOps,
    MigrationOutcome,
    RebalanceReport,
)
from repro.fleet.outcomes import (
    ACCEPTED_OUTCOMES,
    SERVED_OUTCOMES,
    Outcome,
    Resolution,
    rejected,
)
from repro.fleet.placement import (
    POLICIES,
    BestFit,
    ConfigAffinity,
    FirstFit,
    PlacementPolicy,
    make_policy,
)
from repro.fleet.traffic import TenantRequest, TrafficGenerator, TrafficProfile

__all__ = [
    "ACCEPTED_OUTCOMES",
    "ADMIT",
    "AdmissionConfig",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AutoscaleConfig",
    "Autoscaler",
    "BestFit",
    "ConfigAffinity",
    "CrashReport",
    "DEFAULT_TEMPLATES",
    "DrainReport",
    "EvictedPlacement",
    "FirstFit",
    "FleetCluster",
    "FleetMetrics",
    "FleetNode",
    "FleetOps",
    "FleetService",
    "MigrationOutcome",
    "NodeHealth",
    "NodeSpec",
    "Outcome",
    "POLICIES",
    "PlacementPolicy",
    "RebalanceReport",
    "Resolution",
    "SERVED_OUTCOMES",
    "ServeResult",
    "TenantRequest",
    "TrafficGenerator",
    "TrafficProfile",
    "make_policy",
    "rejected",
    "request_jitter_rng",
]
