"""Admission control and the fleet's event-driven serving loop.

Single-node placement (:meth:`repro.cloud.provider.CloudProvider.place`)
throws ``SchedulerError`` the moment a request cannot be honored.  A fleet
serving open-loop traffic cannot afford that: overload must degrade
*gracefully*.  :class:`FleetService` therefore fronts the cluster with:

* a **bounded queue** — requests that find no headroom wait, up to
  ``queue_limit`` of them; arrivals beyond that are rejected outright;
* **retry with exponential backoff** — each queued request re-attempts
  placement after ``backoff_ps``, doubling per attempt, and is rejected
  once ``max_retries`` attempts fail;
* **departure-driven draining** — when a session ends and frees capacity,
  the queue is scanned FIFO and every request that now fits is placed
  immediately (no head-of-line blocking across accelerator types).

The loop runs in fleet simulated time over a heap of arrival, retry, and
departure events.  Ties break on insertion order, so a request trace is a
pure function of (traffic seed, cluster shape, policy, admission config).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.cluster import FleetCluster
from repro.fleet.metrics import FleetMetrics
from repro.fleet.placement import PlacementPolicy
from repro.fleet.traffic import TenantRequest
from repro.sim.clock import ms, us

#: Control-plane cost of one placement, in simulated time: VM boot,
#: mediated-device creation, window probe — dominated by trap-and-emulate
#: MMIO (~1.5 us each, §2.1); a few dozen round trips.
DEFAULT_PLACEMENT_COST_PS = us(50)


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller."""

    queue_limit: int = 32
    max_retries: int = 3
    backoff_ps: int = ms(2)
    backoff_factor: float = 2.0
    placement_cost_ps: int = DEFAULT_PLACEMENT_COST_PS

    def __post_init__(self) -> None:
        if self.queue_limit < 0 or self.max_retries < 0:
            raise ConfigurationError("queue limit and retries must be >= 0")
        if self.backoff_ps <= 0 or self.backoff_factor < 1.0:
            raise ConfigurationError("invalid backoff parameters")

    def backoff_for(self, attempt: int) -> int:
        """Delay before retry ``attempt`` (1-based)."""
        return int(self.backoff_ps * self.backoff_factor ** (attempt - 1))


@dataclass
class ServeResult:
    """Outcome of one serving run."""

    metrics: FleetMetrics
    requests: int
    span_ps: int

    def summary(self) -> Dict[str, object]:
        result = dict(self.metrics.summary())
        result["requests"] = self.requests
        result["span_ps"] = self.span_ps
        return result


@dataclass
class _Pending:
    request: TenantRequest
    attempts: int = 0


class FleetService:
    """Serves a request trace against a cluster under admission control."""

    def __init__(
        self,
        cluster: FleetCluster,
        policy: PlacementPolicy,
        *,
        admission: Optional[AdmissionConfig] = None,
        metrics: Optional[FleetMetrics] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.admission = admission or AdmissionConfig()
        self.metrics = metrics or FleetMetrics()
        self._heap: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        self._pending: Dict[int, _Pending] = {}  # insertion order == FIFO

    # -- event plumbing ---------------------------------------------------------------

    def _push(self, time_ps: int, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time_ps, self._seq, kind, payload))
        self._seq += 1

    # -- the serving loop -------------------------------------------------------------

    def serve(self, requests: Sequence[TenantRequest]) -> ServeResult:
        """Run the full trace to quiescence; never raises ``SchedulerError``."""
        for request in requests:
            self._push(request.arrival_ps, "arrival", request)
        now = 0
        while self._heap:
            now, _seq, kind, payload = heapq.heappop(self._heap)
            self.metrics.sample_utilization(now, self.cluster)
            if kind == "arrival":
                self._on_arrival(payload, now)
            elif kind == "retry":
                self._on_retry(payload, now)
            else:  # departure
                self._on_departure(payload, now)
        return ServeResult(metrics=self.metrics, requests=len(requests), span_ps=now)

    # -- event handlers ---------------------------------------------------------------

    def _on_arrival(self, request: TenantRequest, now: int) -> None:
        if self.cluster.capacity(request.accel_type) == 0:
            self.metrics.record_rejection(
                now_ps=now, request=request, reason="unsupported"
            )
            return
        if self._try_place(request, now):
            return
        if len(self._pending) >= self.admission.queue_limit:
            self.metrics.record_rejection(
                now_ps=now, request=request, reason="queue_full"
            )
            return
        self._pending[request.request_id] = _Pending(request)
        self.metrics.record_queued(
            now_ps=now, request=request, depth=len(self._pending)
        )
        self._push(now + self.admission.backoff_for(1), "retry", request.request_id)

    def _on_retry(self, request_id: int, now: int) -> None:
        entry = self._pending.get(request_id)
        if entry is None:  # already placed by a departure drain
            return
        entry.attempts += 1
        self.metrics.record_retry(
            now_ps=now, request=entry.request, attempt=entry.attempts
        )
        if self._try_place(entry.request, now):
            del self._pending[request_id]
            return
        if entry.attempts >= self.admission.max_retries:
            del self._pending[request_id]
            self.metrics.record_rejection(
                now_ps=now, request=entry.request, reason="retries_exhausted"
            )
            return
        self._push(
            now + self.admission.backoff_for(entry.attempts + 1), "retry", request_id
        )

    def _on_departure(self, tenant_name: str, now: int) -> None:
        self.cluster.evict(tenant_name)
        self.metrics.record_departure(now_ps=now, tenant=tenant_name)
        # FIFO drain: place every waiting request that now fits.  Requests
        # for still-saturated types stay queued without blocking others.
        for request_id in list(self._pending):
            entry = self._pending[request_id]
            if self._try_place(entry.request, now):
                del self._pending[request_id]

    # -- placement --------------------------------------------------------------------

    def _try_place(self, request: TenantRequest, now: int) -> bool:
        placed = self.cluster.place(request.tenant, request.accel_type, self.policy)
        if placed is None:
            return False
        node, tenant = placed
        done = now + self.admission.placement_cost_ps
        self.metrics.record_placement(
            now_ps=now,
            request=request,
            node_name=node.name,
            physical_index=tenant.physical_index,
            temporal=tenant.oversubscribed,
            latency_ps=done - request.arrival_ps,
        )
        self._push(done + request.session_ps, "departure", request.tenant)
        return True
