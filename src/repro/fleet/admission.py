"""Admission control and the fleet's event-driven serving loop.

Single-node placement (:meth:`repro.cloud.provider.CloudProvider.place`)
throws ``SchedulerError`` the moment a request cannot be honored.  A fleet
serving open-loop traffic cannot afford that: overload must degrade
*gracefully*.  :class:`FleetService` therefore fronts the cluster with:

* a **bounded queue** — requests that find no headroom wait, up to
  ``queue_limit`` of them; arrivals beyond that are rejected outright;
* **retry with exponential backoff** — each queued request re-attempts
  placement after ``backoff_ps``, doubling per attempt, and is rejected
  once ``max_retries`` attempts fail;
* **departure-driven draining** — when a session ends and frees capacity,
  the queue is scanned FIFO and every request that now fits is placed
  immediately (no head-of-line blocking across accelerator types).

The loop runs in fleet simulated time over a heap of arrival, retry, and
departure events.  Ties break on insertion order, so a request trace is a
pure function of (traffic seed, cluster shape, policy, admission config).

Fault tolerance (ISSUE 4) extends the loop with two invariants:

* **Typed outcomes** — every request terminates in exactly one outcome:
  ``completed``, ``replaced_completed`` (displaced by a node crash and
  finished elsewhere), ``failed_by_fault``, or ``rejected_*``.  Nothing
  is ever silently dropped or left hung: live sessions carry an *epoch*
  so a crash or quarantine invalidates the stale departure event instead
  of racing it.
* **Quarantine is one-way** — a tenant benched by the fleet watchdog
  (no forward progress within ``watchdog_deadline_ps``) never regains a
  slot within the serving window.

Faults enter through :meth:`FleetService.install_faults` (a
:class:`~repro.faults.plan.FaultPlan`); the injector replays the plan's
events inside this loop's simulated time, so recovery is byte-for-byte
deterministic for a given (plan, seed, traffic seed) triple.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.cluster import FleetCluster
from repro.fleet.metrics import FleetMetrics
from repro.fleet.node import NodeHealth
from repro.fleet.placement import PlacementPolicy
from repro.fleet.traffic import TenantRequest
from repro.sim.clock import ms, us

#: Control-plane cost of one placement, in simulated time: VM boot,
#: mediated-device creation, window probe — dominated by trap-and-emulate
#: MMIO (~1.5 us each, §2.1); a few dozen round trips.
DEFAULT_PLACEMENT_COST_PS = us(50)

#: Failover re-placement costs more than a fresh placement: the fleet must
#: notice the crash, tear down bookkeeping, and re-drive the full placement
#: protocol on the destination node.
DEFAULT_REPLACEMENT_COST_PS = us(100)


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller."""

    queue_limit: int = 32
    max_retries: int = 3
    backoff_ps: int = ms(2)
    backoff_factor: float = 2.0
    placement_cost_ps: int = DEFAULT_PLACEMENT_COST_PS
    replacement_cost_ps: int = DEFAULT_REPLACEMENT_COST_PS
    #: Fleet watchdog: a hung guest is quarantined this long after the hang
    #: is injected (mirrors the hv-level GuestWatchdog deadline).
    watchdog_deadline_ps: int = ms(5)
    #: Sessions placed on a DEGRADED node run this much longer (1.0 = the
    #: default, keeps fault-free traces byte-identical to older versions).
    degraded_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_limit < 0 or self.max_retries < 0:
            raise ConfigurationError("queue limit and retries must be >= 0")
        if self.backoff_ps <= 0 or self.backoff_factor < 1.0:
            raise ConfigurationError("invalid backoff parameters")
        if self.watchdog_deadline_ps <= 0:
            raise ConfigurationError("watchdog deadline must be positive")
        if self.degraded_slowdown < 1.0:
            raise ConfigurationError("degraded slowdown must be >= 1")

    def backoff_for(self, attempt: int) -> int:
        """Delay before retry ``attempt`` (1-based)."""
        return int(self.backoff_ps * self.backoff_factor ** (attempt - 1))


@dataclass
class ServeResult:
    """Outcome of one serving run."""

    metrics: FleetMetrics
    requests: int
    span_ps: int
    #: request_id -> typed outcome (completed / replaced_completed /
    #: failed_by_fault / rejected_<reason>).  Every request that entered
    #: the loop appears exactly once.
    outcomes: Dict[int, str] = field(default_factory=dict)
    #: Populated when a fault plan was installed (repro.faults).
    fault_log: Optional[object] = None

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes.values():
            counts[outcome] = counts.get(outcome, 0) + 1
        return dict(sorted(counts.items()))

    def availability(self) -> float:
        """Fraction of *accepted* requests that eventually completed."""
        accepted = completed = 0
        for outcome in self.outcomes.values():
            if outcome in ("completed", "replaced_completed", "failed_by_fault"):
                accepted += 1
                if outcome != "failed_by_fault":
                    completed += 1
        return completed / accepted if accepted else 1.0

    def summary(self) -> Dict[str, object]:
        result = dict(self.metrics.summary())
        result["requests"] = self.requests
        result["span_ps"] = self.span_ps
        result["outcomes"] = self.outcome_counts()
        result["availability"] = self.availability()
        if self.fault_log is not None:
            result["fault_log"] = self.fault_log.summary()
        return result


@dataclass
class _Pending:
    request: TenantRequest
    attempts: int = 0


@dataclass
class _Session:
    """One live placement.  ``epoch`` invalidates stale heap events."""

    request: TenantRequest
    node_name: str
    physical_index: int
    epoch: int
    depart_ps: int
    replaced: bool = False


class FleetService:
    """Serves a request trace against a cluster under admission control."""

    def __init__(
        self,
        cluster: FleetCluster,
        policy: PlacementPolicy,
        *,
        admission: Optional[AdmissionConfig] = None,
        metrics: Optional[FleetMetrics] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.admission = admission or AdmissionConfig()
        self.metrics = metrics or FleetMetrics()
        self._heap: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        self._pending: Dict[int, _Pending] = {}  # insertion order == FIFO
        self._sessions: Dict[str, _Session] = {}
        self._epoch = 0
        self._quarantined: set = set()
        self.outcomes: Dict[int, str] = {}
        self._injector = None

    # -- fault installation -----------------------------------------------------------

    def install_faults(self, plan) -> object:
        """Attach a :class:`~repro.faults.plan.FaultPlan`; returns the
        injector (whose log ends up on the :class:`ServeResult`)."""
        from repro.faults.injector import FleetFaultInjector

        self._injector = FleetFaultInjector(self, plan)
        return self._injector

    # -- event plumbing ---------------------------------------------------------------

    def _push(self, time_ps: int, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time_ps, self._seq, kind, payload))
        self._seq += 1

    def _advance_epoch(self, now: int) -> None:
        """Hook called as the serving clock reaches each event time.

        The serial loop needs nothing here; the sharded executor
        (:class:`repro.parallel.ShardedFleetService`) overrides it to
        flush completed epochs' operation batches to the shard workers.
        """

    # -- the serving loop -------------------------------------------------------------

    def serve(self, requests: Sequence[TenantRequest]) -> ServeResult:
        """Run the full trace to quiescence; never raises ``SchedulerError``."""
        if self._injector is not None:
            # Faults enter the heap first so that, at equal timestamps, an
            # injected event lands before the request arriving that instant.
            self._injector.schedule()
        for request in requests:
            self._push(request.arrival_ps, "arrival", request)
        now = 0
        while self._heap:
            now, _seq, kind, payload = heapq.heappop(self._heap)
            self._advance_epoch(now)
            self.metrics.sample_utilization(now, self.cluster)
            if kind == "arrival":
                self._on_arrival(payload, now)
            elif kind == "retry":
                self._on_retry(payload, now)
            elif kind == "departure":
                self._on_departure(payload, now)
            elif kind == "fault":
                self._injector.apply(payload, now)
            else:  # watchdog
                self._on_watchdog(payload, now)
        return ServeResult(
            metrics=self.metrics,
            requests=len(requests),
            span_ps=now,
            outcomes=dict(self.outcomes),
            fault_log=self._injector.log if self._injector is not None else None,
        )

    # -- event handlers ---------------------------------------------------------------

    def _on_arrival(self, request: TenantRequest, now: int) -> None:
        if self.cluster.capacity(request.accel_type) == 0:
            self._reject(request, now, "unsupported")
            return
        if self._try_place(request, now):
            return
        if len(self._pending) >= self.admission.queue_limit:
            self._reject(request, now, "queue_full")
            return
        self._pending[request.request_id] = _Pending(request)
        self.metrics.record_queued(
            now_ps=now, request=request, depth=len(self._pending)
        )
        self._push(now + self.admission.backoff_for(1), "retry", request.request_id)

    def _on_retry(self, request_id: int, now: int) -> None:
        entry = self._pending.get(request_id)
        if entry is None:  # already placed by a departure drain
            return
        entry.attempts += 1
        self.metrics.record_retry(
            now_ps=now, request=entry.request, attempt=entry.attempts
        )
        if self._try_place(entry.request, now):
            del self._pending[request_id]
            return
        if entry.attempts >= self.admission.max_retries:
            del self._pending[request_id]
            self._reject(entry.request, now, "retries_exhausted")
            return
        self._push(
            now + self.admission.backoff_for(entry.attempts + 1), "retry", request_id
        )

    def _on_departure(self, payload, now: int) -> None:
        tenant_name, epoch = payload
        session = self._sessions.get(tenant_name)
        if session is None or session.epoch != epoch:
            return  # stale: the session was crashed away or quarantined
        del self._sessions[tenant_name]
        self.cluster.evict(tenant_name)
        self.metrics.record_departure(now_ps=now, tenant=tenant_name)
        self.outcomes[session.request.request_id] = (
            "replaced_completed" if session.replaced else "completed"
        )
        self._drain(now)

    def _on_watchdog(self, payload, now: int) -> None:
        """The fleet watchdog fires: quarantine a hung guest, free its slot."""
        tenant_name, epoch = payload
        session = self._sessions.get(tenant_name)
        if session is None or session.epoch != epoch:
            return
        del self._sessions[tenant_name]
        self.cluster.evict(tenant_name)
        self._quarantined.add(tenant_name)
        self.outcomes[session.request.request_id] = "failed_by_fault"
        self.metrics.record_quarantine(now_ps=now, tenant=tenant_name)
        self._drain(now)

    def _drain(self, now: int) -> None:
        # FIFO drain: place every waiting request that now fits.  Requests
        # for still-saturated types stay queued without blocking others.
        for request_id in list(self._pending):
            entry = self._pending[request_id]
            if self._try_place(entry.request, now):
                del self._pending[request_id]

    def _reject(self, request: TenantRequest, now: int, reason: str) -> None:
        self.metrics.record_rejection(now_ps=now, request=request, reason=reason)
        self.outcomes[request.request_id] = f"rejected_{reason}"

    # -- fault-side entry points (called by the injector) ------------------------------

    def active_tenants(self) -> List[str]:
        """Live sessions in deterministic order (injector target pool)."""
        return sorted(self._sessions)

    def session_node(self, tenant_name: str) -> Optional[str]:
        session = self._sessions.get(tenant_name)
        return session.node_name if session is not None else None

    def session_placement(self, tenant_name: str) -> Optional[Tuple[str, int]]:
        """(node name, physical slot) of a live session, or ``None``."""
        session = self._sessions.get(tenant_name)
        if session is None:
            return None
        return session.node_name, session.physical_index

    def apply_node_crash(self, name: str, now: int) -> List[Tuple[str, str]]:
        """Crash a node; re-place or cleanly fail every displaced session.

        Returns ``(tenant, resolution)`` pairs, resolution in
        ``{"replaced", "failed_by_fault"}``.  Re-placement rides the same
        typed evict/place contract as normal serving — no occupancy is
        mutated directly.
        """
        displaced = self.cluster.crash_node(name)
        resolutions: List[Tuple[str, str]] = []
        for placement in displaced:
            session = self._sessions.pop(placement.tenant, None)
            if session is None:  # not ours (defensive; cannot happen today)
                continue
            remaining = max(0, session.depart_ps - now)
            request = session.request
            if self._try_place(
                request, now, remaining_ps=remaining, replaced=True
            ):
                resolutions.append((placement.tenant, "replaced"))
            else:
                self.outcomes[request.request_id] = "failed_by_fault"
                self.metrics.record_fault_failure(
                    now_ps=now, tenant=placement.tenant, reason="node_crash"
                )
                resolutions.append((placement.tenant, "failed_by_fault"))
        return resolutions

    def apply_node_recover(self, name: str, now: int) -> None:
        self.cluster.recover_node(name)
        self._drain(now)  # recovered capacity unblocks the queue immediately

    def arm_watchdog(self, tenant_name: str, now: int) -> bool:
        """A guest-hang fault landed on ``tenant_name``: its session will
        never finish on its own.  Cancel the scheduled departure (epoch
        bump) and let the watchdog reclaim the slot after the deadline."""
        session = self._sessions.get(tenant_name)
        if session is None:
            return False
        self._epoch += 1
        session.epoch = self._epoch  # the old departure event is now stale
        self._push(
            now + self.admission.watchdog_deadline_ps,
            "watchdog",
            (tenant_name, session.epoch),
        )
        return True

    # -- placement --------------------------------------------------------------------

    def _try_place(
        self,
        request: TenantRequest,
        now: int,
        *,
        remaining_ps: Optional[int] = None,
        replaced: bool = False,
    ) -> bool:
        if request.tenant in self._quarantined:
            return False  # quarantined guests never regain a slot
        placed = self.cluster.place(request.tenant, request.accel_type, self.policy)
        if placed is None:
            return False
        node, tenant = placed
        cost = (
            self.admission.replacement_cost_ps
            if replaced
            else self.admission.placement_cost_ps
        )
        done = now + cost
        session_ps = request.session_ps if remaining_ps is None else remaining_ps
        if node.health is NodeHealth.DEGRADED:
            session_ps = int(session_ps * self.admission.degraded_slowdown)
        self._epoch += 1
        self._sessions[request.tenant] = _Session(
            request=request,
            node_name=node.name,
            physical_index=tenant.physical_index,
            epoch=self._epoch,
            depart_ps=done + session_ps,
            replaced=replaced,
        )
        if replaced:
            self.metrics.record_replacement(
                now_ps=now,
                request=request,
                node_name=node.name,
                physical_index=tenant.physical_index,
                latency_ps=cost,
            )
        else:
            self.metrics.record_placement(
                now_ps=now,
                request=request,
                node_name=node.name,
                physical_index=tenant.physical_index,
                temporal=tenant.oversubscribed,
                latency_ps=done - request.arrival_ps,
            )
        self._push(done + session_ps, "departure", (request.tenant, self._epoch))
        return True
