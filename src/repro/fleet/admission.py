"""Admission control and the fleet's event-driven serving loop.

Single-node placement (:meth:`repro.cloud.provider.CloudProvider.place`)
throws ``SchedulerError`` the moment a request cannot be honored.  A fleet
serving open-loop traffic cannot afford that: overload must degrade
*gracefully*.  :class:`FleetService` therefore fronts the cluster with:

* a **bounded queue** — requests that find no headroom wait, up to
  ``queue_limit`` of them; arrivals beyond that are rejected outright;
* **retry with exponential backoff** — each queued request re-attempts
  placement after ``backoff_ps``, doubling per attempt, and is rejected
  once ``max_retries`` attempts fail;
* **departure-driven draining** — when a session ends and frees capacity,
  the queue is scanned FIFO and every request that now fits is placed
  immediately (no head-of-line blocking across accelerator types).

The loop runs in fleet simulated time over a heap of arrival, retry, and
departure events.  Ties break on insertion order, so a request trace is a
pure function of (traffic seed, cluster shape, policy, admission config).

Fault tolerance (ISSUE 4) extends the loop with two invariants:

* **Typed outcomes** — every request terminates in exactly one outcome:
  ``completed``, ``replaced_completed`` (displaced by a node crash and
  finished elsewhere), ``failed_by_fault``, or ``rejected_*``.  Nothing
  is ever silently dropped or left hung: live sessions carry an *epoch*
  so a crash or quarantine invalidates the stale departure event instead
  of racing it.
* **Quarantine is one-way** — a tenant benched by the fleet watchdog
  (no forward progress within ``watchdog_deadline_ps``) never regains a
  slot within the serving window.

Faults enter through :meth:`FleetService.install_faults` (a
:class:`~repro.faults.plan.FaultPlan`); the injector replays the plan's
events inside this loop's simulated time, so recovery is byte-for-byte
deterministic for a given (plan, seed, traffic seed) triple.
"""

from __future__ import annotations

import dataclasses
import heapq
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.cluster import FleetCluster
from repro.fleet.metrics import FleetMetrics
from repro.fleet.node import NodeHealth
from repro.fleet.outcomes import ACCEPTED_OUTCOMES, Outcome, SERVED_OUTCOMES, rejected
from repro.fleet.placement import PlacementPolicy
from repro.fleet.traffic import TenantRequest
from repro.sim.clock import ms, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.autoscale import AutoscaleConfig, Autoscaler
    from repro.fleet.ops import FleetOps

#: Control-plane cost of one placement, in simulated time: VM boot,
#: mediated-device creation, window probe — dominated by trap-and-emulate
#: MMIO (~1.5 us each, §2.1); a few dozen round trips.
DEFAULT_PLACEMENT_COST_PS = us(50)

#: Failover re-placement costs more than a fresh placement: the fleet must
#: notice the crash, tear down bookkeeping, and re-drive the full placement
#: protocol on the destination node.
DEFAULT_REPLACEMENT_COST_PS = us(100)


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller."""

    queue_limit: int = 32
    max_retries: int = 3
    backoff_ps: int = ms(2)
    backoff_factor: float = 2.0
    placement_cost_ps: int = DEFAULT_PLACEMENT_COST_PS
    replacement_cost_ps: int = DEFAULT_REPLACEMENT_COST_PS
    #: Fleet watchdog: a hung guest is quarantined this long after the hang
    #: is injected (mirrors the hv-level GuestWatchdog deadline).
    watchdog_deadline_ps: int = ms(5)
    #: Sessions placed on a DEGRADED node run this much longer (1.0 = the
    #: default, keeps fault-free traces byte-identical to older versions).
    degraded_slowdown: float = 1.0
    #: Retry backoff jitter: each retry delay is scaled by a factor drawn
    #: uniformly from ``[1 - retry_jitter, 1 + retry_jitter]``.  ``0.0``
    #: (the default) draws nothing at all, keeping legacy traces
    #: byte-identical.  Draws come from a *per-request* RNG stream keyed
    #: on ``(jitter_seed, request_id)`` — never from a shared generator —
    #: so layering the serving gateway (or any other consumer of
    #: randomness) on top cannot perturb another request's delays.
    retry_jitter: float = 0.0
    jitter_seed: int = 0
    #: Blackout window of one live migration: quiesce at a slice boundary,
    #: checkpoint transfer, restore + shadow-table re-patch on the
    #: destination.  Charged to the migrated session's departure schedule.
    migration_cost_ps: int = us(150)

    def __post_init__(self) -> None:
        if self.queue_limit < 0 or self.max_retries < 0:
            raise ConfigurationError("queue limit and retries must be >= 0")
        if self.backoff_ps <= 0 or self.backoff_factor < 1.0:
            raise ConfigurationError("invalid backoff parameters")
        if self.watchdog_deadline_ps <= 0:
            raise ConfigurationError("watchdog deadline must be positive")
        if self.degraded_slowdown < 1.0:
            raise ConfigurationError("degraded slowdown must be >= 1")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ConfigurationError("retry jitter must be in [0, 1)")
        if self.migration_cost_ps < 0:
            raise ConfigurationError("migration cost must be >= 0")

    def backoff_for(self, attempt: int) -> int:
        """Delay before retry ``attempt`` (1-based), before jitter."""
        return int(self.backoff_ps * self.backoff_factor ** (attempt - 1))


#: Mixing constant for per-request jitter streams (golden-ratio hash).
_JITTER_MIX = 0x9E3779B1


def request_jitter_rng(jitter_seed: int, request_id: int) -> np.random.RandomState:
    """The seeded RNG stream owned by one request's retry jitter.

    Each request gets an independent ``RandomState`` keyed on
    ``(jitter_seed, request_id)``, so the sequence of factors a request
    sees depends only on its own identity — adding or removing *other*
    stochastic consumers (the serve gateway, chaos injection, more
    requests) can never shift it.
    """
    return np.random.RandomState((jitter_seed * _JITTER_MIX + request_id) & 0xFFFFFFFF)


@dataclass(frozen=True)
class AdmissionDecision:
    """A typed admission verdict for one arriving request.

    ``action`` is one of ``"admit"`` (place or queue as usual),
    ``"degrade"`` (admit, but scale the session by ``session_scale`` —
    the tenant gets a trimmed slice of service), or ``"shed"`` (reject
    immediately with ``reason``, before the request touches the queue).
    """

    action: str
    reason: str = ""
    session_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in ("admit", "degrade", "shed"):
            raise ConfigurationError(f"unknown admission action {self.action!r}")
        if not 0.0 < self.session_scale <= 1.0:
            raise ConfigurationError("session scale must be in (0, 1]")


#: The default verdict — shared so the hot path allocates nothing.
ADMIT = AdmissionDecision("admit")


class AdmissionPolicy:
    """Pluggable admission decision, consulted before queueing.

    The base class is the **queue-depth-only** policy the fleet has
    always run: every request is admitted, and the bounded queue plus
    the retry budget are the only backpressure.  Subclasses (e.g.
    :class:`repro.serve.slo.SloBudgetPolicy`) shed or degrade based on
    observed latency instead.  :meth:`observe` is called once per fresh
    placement with the request's admission latency, in simulated-time
    order, so online estimators stay deterministic.
    """

    name = "queue-depth"

    def decide(
        self, request: TenantRequest, now: int, service: "FleetService"
    ) -> AdmissionDecision:
        return ADMIT

    def observe(self, request: TenantRequest, latency_ps: int, now: int) -> None:
        """A fresh placement completed admission with ``latency_ps``."""

    def observe_queued(
        self, request: TenantRequest, pessimistic_ps: int, now: int
    ) -> None:
        """``request`` just queued (or re-queued after a failed retry).

        ``pessimistic_ps`` is a *lower bound* on the admission latency it
        will eventually pay: elapsed wait so far, plus the backoff just
        scheduled, plus the placement cost.  Latency-feedback policies
        should fold this in immediately — waiting for the placement to
        observe the real number means reacting one full queue-wait late.
        """


@dataclass
class ServeResult:
    """Outcome of one serving run."""

    metrics: FleetMetrics
    requests: int
    span_ps: int
    #: request_id -> typed outcome (completed / replaced_completed /
    #: failed_by_fault / rejected_<reason>).  Every request that entered
    #: the loop appears exactly once.
    outcomes: Dict[int, str] = field(default_factory=dict)
    #: Populated when a fault plan was installed (repro.faults).
    fault_log: Optional[object] = None

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes.values():
            counts[outcome] = counts.get(outcome, 0) + 1
        return dict(sorted(counts.items()))

    def availability(self) -> float:
        """Fraction of *accepted* requests that eventually completed."""
        accepted = completed = 0
        for outcome in self.outcomes.values():
            if outcome in ACCEPTED_OUTCOMES:
                accepted += 1
                if outcome in SERVED_OUTCOMES:
                    completed += 1
        return completed / accepted if accepted else 1.0

    def summary(self) -> Dict[str, object]:
        result = dict(self.metrics.summary())
        result["requests"] = self.requests
        result["span_ps"] = self.span_ps
        result["outcomes"] = self.outcome_counts()
        result["availability"] = self.availability()
        if self.fault_log is not None:
            result["fault_log"] = self.fault_log.summary()
        return result


@dataclass
class _Pending:
    request: TenantRequest
    attempts: int = 0


@dataclass
class _Session:
    """One live placement.  ``epoch`` invalidates stale heap events."""

    request: TenantRequest
    node_name: str
    physical_index: int
    epoch: int
    depart_ps: int
    replaced: bool = False
    migrated: bool = False


class FleetService:
    """Serves a request trace against a cluster under admission control."""

    def __init__(
        self,
        cluster: FleetCluster,
        policy: PlacementPolicy,
        *,
        admission: Optional[AdmissionConfig] = None,
        metrics: Optional[FleetMetrics] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.admission = admission or AdmissionConfig()
        self.metrics = metrics or FleetMetrics()
        #: ``None`` keeps the historical queue-depth-only behavior with
        #: zero per-arrival overhead; anything else is consulted first.
        self.admission_policy = admission_policy
        self._heap: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        self._pending: Dict[int, _Pending] = {}  # insertion order == FIFO
        self._sessions: Dict[str, _Session] = {}
        self._epoch = 0
        self._quarantined: set = set()
        self.outcomes: Dict[int, str] = {}
        self._injector = None
        self._retry_rngs: Dict[int, np.random.RandomState] = {}
        self._arrivals = 0
        self._now = 0
        #: The popped-but-not-yet-handled event, visible to the
        #: speculation-window scan (the heap no longer contains it).
        self._dispatching: Optional[Tuple[int, str, object]] = None
        self._ops: Optional["FleetOps"] = None
        self.autoscaler: Optional["Autoscaler"] = None
        #: Optional ``(verb, report, now_ps)`` callback invoked after every
        #: *scheduled* :class:`FleetOps` verb with the typed report the verb
        #: returned.  The serving loop otherwise discards these reports
        #: (nothing in the loop consumes them), so this is the supported way
        #: to observe e.g. a mid-serve drain's ``DrainReport`` — the fuzz
        #: oracle records migration checkpoint digests through it.
        self.op_observer: Optional[Callable[[str, object, int], None]] = None

    # -- fault installation -----------------------------------------------------------

    def install_faults(self, plan) -> object:
        """Attach a :class:`~repro.faults.plan.FaultPlan`; returns the
        injector (whose log ends up on the :class:`ServeResult`)."""
        from repro.faults.injector import FleetFaultInjector

        self._injector = FleetFaultInjector(self, plan)
        return self._injector

    # -- fleet operations (ISSUE 8) ---------------------------------------------------

    @property
    def ops(self) -> "FleetOps":
        """The typed fleet-operations API bound to this service."""
        # Lazy: repro.fleet.ops imports nothing from here at module scope,
        # but constructing eagerly in __init__ would still couple every
        # serving test to the ops module; bind on first use instead.
        if self._ops is None:
            from repro.fleet.ops import FleetOps

            self._ops = FleetOps(self)
        return self._ops

    def install_autoscaler(
        self, config: Optional["AutoscaleConfig"] = None
    ) -> "Autoscaler":
        """Attach an elastic-autoscaling control loop to the serving loop."""
        from repro.fleet.autoscale import AutoscaleConfig, Autoscaler

        self.autoscaler = Autoscaler(self, config or AutoscaleConfig())
        return self.autoscaler

    def schedule_op(self, at_ps: int, verb: str, **kwargs) -> None:
        """Schedule a :class:`FleetOps` verb at ``at_ps`` simulated time.

        The verb dispatches inside the serving loop exactly like any other
        event, so e.g. ``schedule_op(ms(3), "drain", node_name="node1")``
        is deterministic relative to arrivals and departures.
        """
        self._push(at_ps, "ops", (verb, kwargs))

    def _on_ops(self, payload, now: int) -> None:
        verb, kwargs = payload
        report = getattr(self.ops, verb)(now=now, **kwargs)
        if self.op_observer is not None:
            self.op_observer(verb, report, now)

    # -- event plumbing ---------------------------------------------------------------

    def _push(self, time_ps: int, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time_ps, self._seq, kind, payload))
        self._seq += 1
        if kind == "arrival":
            self._arrivals += 1

    def _advance_epoch(self, now: int) -> None:
        """Hook called as the serving clock reaches each event time.

        The serial loop needs nothing here; the sharded executor
        (:class:`repro.parallel.ShardedFleetService`) overrides it to
        flush completed epochs' operation batches to the shard workers,
        and the serving gateway (:mod:`repro.serve.gateway`) uses it as
        the pacing point that pumps session coroutines.
        """

    # -- speculation contract (read by the sharded executor) --------------------------

    def queue_depth(self) -> int:
        """Admission-queue length (pending placements waiting for a drain)."""
        return len(self._pending)

    def speculation_window(self, max_epochs: int) -> List[Tuple[str, int, int]]:
        """The certain-departure prefix of the event sequence.

        Returns ``[(tenant, session_epoch, depart_ps), ...]`` covering at
        most ``max_epochs`` distinct event times of *consecutive*
        currently-valid departures, starting with the event being
        dispatched right now (it was already popped off the heap, but
        its ops have not been emitted yet — the epoch hook that triggers
        the grant scan runs before the event handler) and continuing
        into the heap.  The events listed are exactly those guaranteed
        to evict exactly those tenants at exactly those times.  Anything
        else is a speculation barrier and stops the scan:

        * a non-departure event (arrival, retry, fault, watchdog,
          scheduled op) — its dispatch mutates arbitrary nodes; as the
          *current* event this is an empty window, since its emissions
          would conflict with any grant made this instant;
        * a stale departure (its session epoch was bumped by a watchdog
          re-arm or migration) — except as the current event, where its
          dispatch provably emits nothing and the scan continues;
        * a non-empty admission queue — a committed departure would
          drain queued placements onto the freed slot.

        Events pushed *after* a grant (gateway follow-ups, autoscaler
        actions taken at dispatch time) are not this method's problem:
        the executor catches those at emission time and rolls back.
        """
        if max_epochs <= 0 or self._pending:
            return []
        window: List[Tuple[str, int, int]] = []
        times: set = set()

        def admit(time_ps: int, tenant: str, epoch: int) -> bool:
            if time_ps not in times:
                if len(times) >= max_epochs:
                    return False
                times.add(time_ps)
            window.append((tenant, epoch, time_ps))
            return True

        current = self._dispatching
        if current is not None:
            time_ps, kind, payload = current
            if kind != "departure":
                return []
            tenant, epoch = payload
            session = self._sessions.get(tenant)
            if session is not None and session.epoch == epoch:
                if not admit(time_ps, tenant, epoch):
                    return window
            # A stale current departure emits nothing: scan on.
        # A bounded sorted prefix of the heap: stopping early is always
        # safe (fewer grants), so don't pay a full sort on a deep heap.
        limit = min(len(self._heap), max_epochs * 4 + 8)
        for time_ps, _seq, kind, payload in heapq.nsmallest(limit, self._heap):
            if kind != "departure":
                break
            tenant, epoch = payload
            session = self._sessions.get(tenant)
            if session is None or session.epoch != epoch:
                break
            if not admit(time_ps, tenant, epoch):
                break
        return window

    # -- the serving loop -------------------------------------------------------------

    def serve(self, requests: Sequence[TenantRequest]) -> ServeResult:
        """Run the full trace to quiescence; never raises ``SchedulerError``."""
        if self._injector is not None:
            # Faults enter the heap first so that, at equal timestamps, an
            # injected event lands before the request arriving that instant.
            self._injector.schedule()
        for request in requests:
            self._push(request.arrival_ps, "arrival", request)
        self._run_loop()
        # Closed-loop consumers (the serve gateway) may inject follow-up
        # arrivals while draining terminal notifications; keep looping
        # until nothing new enters the heap.
        while self._post_drain():
            self._run_loop()
        return ServeResult(
            metrics=self.metrics,
            requests=self._arrivals,
            span_ps=self._now,
            outcomes=dict(self.outcomes),
            fault_log=self._injector.log if self._injector is not None else None,
        )

    def _run_loop(self) -> None:
        """Drain the event heap; the clock is ``self._now`` throughout."""
        while self._heap:
            now, _seq, kind, payload = heapq.heappop(self._heap)
            self._now = now
            self._dispatching = (now, kind, payload)
            self.cluster.note_event(kind, now)
            self._advance_epoch(now)
            # Utilization integrates occupancy *before* this event's state
            # changes; the autoscaler reads the same pre-event snapshot.
            self.metrics.sample_utilization(now, self.cluster)
            if self.autoscaler is not None:
                self.autoscaler.maybe_tick(now)
            if kind == "arrival":
                self._on_arrival(payload, now)
            elif kind == "retry":
                self._on_retry(payload, now)
            elif kind == "departure":
                self._on_departure(payload, now)
            elif kind == "fault":
                self._injector.apply(payload, now)
            elif kind == "watchdog":
                self._on_watchdog(payload, now)
            else:  # "ops": a scheduled FleetOps verb
                self._on_ops(payload, now)

    def _post_drain(self) -> bool:
        """Hook after the heap empties; return ``True`` to keep serving.

        The base loop has nothing left to do.  The gateway overrides this
        to deliver final session notifications (which may schedule
        closed-loop follow-up arrivals) and reports whether they did.
        """
        return False

    # -- event handlers ---------------------------------------------------------------

    def _on_arrival(self, request: TenantRequest, now: int) -> None:
        if self.cluster.capacity(request.accel_type) == 0:
            self._reject(request, now, "unsupported")
            return
        if self.admission_policy is not None:
            decision = self.admission_policy.decide(request, now, self)
            self._on_decision(request, decision, now)
            if decision.action == "shed":
                self._reject(request, now, decision.reason or "shed")
                return
            if decision.action == "degrade":
                request = dataclasses.replace(
                    request,
                    session_ps=max(
                        1, int(request.session_ps * decision.session_scale)
                    ),
                )
                self.metrics.record_degrade(
                    now_ps=now, request=request, scale=decision.session_scale
                )
        if self._try_place(request, now):
            return
        if len(self._pending) >= self.admission.queue_limit:
            self._reject(request, now, "queue_full")
            return
        self._pending[request.request_id] = _Pending(request)
        self.metrics.record_queued(
            now_ps=now, request=request, depth=len(self._pending)
        )
        delay = self._retry_delay(request, 1)
        if self.admission_policy is not None:
            self.admission_policy.observe_queued(
                request,
                (now - request.arrival_ps)
                + delay
                + self.admission.placement_cost_ps,
                now,
            )
        self._push(now + delay, "retry", request.request_id)

    def _on_retry(self, request_id: int, now: int) -> None:
        entry = self._pending.get(request_id)
        if entry is None:  # already placed by a departure drain
            return
        entry.attempts += 1
        self.metrics.record_retry(
            now_ps=now, request=entry.request, attempt=entry.attempts
        )
        if self._try_place(entry.request, now):
            del self._pending[request_id]
            return
        if entry.attempts >= self.admission.max_retries:
            del self._pending[request_id]
            self._reject(entry.request, now, "retries_exhausted")
            return
        delay = self._retry_delay(entry.request, entry.attempts + 1)
        if self.admission_policy is not None:
            self.admission_policy.observe_queued(
                entry.request,
                (now - entry.request.arrival_ps)
                + delay
                + self.admission.placement_cost_ps,
                now,
            )
        self._push(now + delay, "retry", request_id)

    def _retry_delay(self, request: TenantRequest, attempt: int) -> int:
        """Backoff before retry ``attempt``, jittered from the request's
        own seeded stream (``retry_jitter == 0`` draws nothing at all)."""
        delay = self.admission.backoff_for(attempt)
        jitter = self.admission.retry_jitter
        if jitter:
            rng = self._retry_rngs.get(request.request_id)
            if rng is None:
                rng = request_jitter_rng(
                    self.admission.jitter_seed, request.request_id
                )
                self._retry_rngs[request.request_id] = rng
            delay = max(
                1, int(delay * (1.0 + jitter * (2.0 * rng.random_sample() - 1.0)))
            )
        return delay

    def _on_departure(self, payload, now: int) -> None:
        tenant_name, epoch = payload
        session = self._sessions.get(tenant_name)
        if session is None or session.epoch != epoch:
            return  # stale: the session was crashed away or quarantined
        del self._sessions[tenant_name]
        self.cluster.evict(tenant_name)
        self.metrics.record_departure(now_ps=now, tenant=tenant_name)
        # Priority: replaced > migrated > completed — a session that was
        # both crash-displaced and migrated reports the rarer event.
        if session.replaced:
            outcome = Outcome.REPLACED_COMPLETED.value
        elif session.migrated:
            outcome = Outcome.MIGRATED_COMPLETED.value
        else:
            outcome = Outcome.COMPLETED.value
        self._finish(session.request, outcome, now)
        self._drain(now)

    def _on_watchdog(self, payload, now: int) -> None:
        """The fleet watchdog fires: quarantine a hung guest, free its slot."""
        tenant_name, epoch = payload
        session = self._sessions.get(tenant_name)
        if session is None or session.epoch != epoch:
            return
        del self._sessions[tenant_name]
        self.cluster.evict(tenant_name)
        self._quarantined.add(tenant_name)
        self._finish(session.request, Outcome.FAILED_BY_FAULT.value, now)
        self.metrics.record_quarantine(now_ps=now, tenant=tenant_name)
        self._drain(now)

    def _drain(self, now: int) -> None:
        # FIFO drain: place every waiting request that now fits.  Requests
        # for still-saturated types stay queued without blocking others.
        for request_id in list(self._pending):
            entry = self._pending[request_id]
            if self._try_place(entry.request, now):
                del self._pending[request_id]

    def _reject(self, request: TenantRequest, now: int, reason: str) -> None:
        self.metrics.record_rejection(now_ps=now, request=request, reason=reason)
        self._finish(request, rejected(reason), now)

    # -- terminal funnel and gateway hooks ---------------------------------------------

    def _finish(self, request: TenantRequest, outcome: str, now: int) -> None:
        """Every request terminates exactly once, through here."""
        self.outcomes[request.request_id] = outcome
        self._retry_rngs.pop(request.request_id, None)
        self._on_outcome(request, outcome, now)

    def _on_outcome(self, request: TenantRequest, outcome: str, now: int) -> None:
        """Hook: a request reached its typed terminal outcome."""

    def _on_placed(
        self, request: TenantRequest, now: int, latency_ps: int, replaced: bool
    ) -> None:
        """Hook: a session went live on a node (fresh or failover)."""

    def _on_decision(
        self, request: TenantRequest, decision: AdmissionDecision, now: int
    ) -> None:
        """Hook: the admission policy ruled on an arrival."""

    # -- fault-side entry points (called by the injector) ------------------------------

    def active_tenants(self) -> List[str]:
        """Live sessions in deterministic order (injector target pool)."""
        return sorted(self._sessions)

    def session_node(self, tenant_name: str) -> Optional[str]:
        session = self._sessions.get(tenant_name)
        return session.node_name if session is not None else None

    def session_placement(self, tenant_name: str) -> Optional[Tuple[str, int]]:
        """(node name, physical slot) of a live session, or ``None``."""
        session = self._sessions.get(tenant_name)
        if session is None:
            return None
        return session.node_name, session.physical_index

    def apply_node_crash(self, name: str, now: int) -> List[Tuple[str, str]]:
        """Deprecated shim — route through :meth:`FleetOps.crash` instead.

        The typed verb (``service.ops.crash(name, now=now)``) returns a
        :class:`~repro.fleet.ops.CrashReport`; this wrapper flattens it
        back into the legacy ``(tenant, resolution)`` pairs.
        """
        warnings.warn(
            "FleetService.apply_node_crash is deprecated; use "
            "service.ops.crash(name, now=now) which returns a typed "
            "CrashReport",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.ops.crash(name, now=now).resolutions)

    def apply_node_recover(self, name: str, now: int) -> None:
        self.ops.recover(name, now=now)

    def arm_watchdog(self, tenant_name: str, now: int) -> bool:
        """A guest-hang fault landed on ``tenant_name``: its session will
        never finish on its own.  Cancel the scheduled departure (epoch
        bump) and let the watchdog reclaim the slot after the deadline."""
        session = self._sessions.get(tenant_name)
        if session is None:
            return False
        self._epoch += 1
        session.epoch = self._epoch  # the old departure event is now stale
        self._push(
            now + self.admission.watchdog_deadline_ps,
            "watchdog",
            (tenant_name, session.epoch),
        )
        return True

    # -- placement --------------------------------------------------------------------

    def _try_place(
        self,
        request: TenantRequest,
        now: int,
        *,
        remaining_ps: Optional[int] = None,
        replaced: bool = False,
    ) -> bool:
        if request.tenant in self._quarantined:
            return False  # quarantined guests never regain a slot
        placed = self.cluster.place(request.tenant, request.accel_type, self.policy)
        if placed is None:
            return False
        node, tenant = placed
        cost = (
            self.admission.replacement_cost_ps
            if replaced
            else self.admission.placement_cost_ps
        )
        done = now + cost
        session_ps = request.session_ps if remaining_ps is None else remaining_ps
        if node.health is NodeHealth.DEGRADED:
            session_ps = int(session_ps * self.admission.degraded_slowdown)
        self._epoch += 1
        self._sessions[request.tenant] = _Session(
            request=request,
            node_name=node.name,
            physical_index=tenant.physical_index,
            epoch=self._epoch,
            depart_ps=done + session_ps,
            replaced=replaced,
        )
        if replaced:
            self.metrics.record_replacement(
                now_ps=now,
                request=request,
                node_name=node.name,
                physical_index=tenant.physical_index,
                latency_ps=cost,
            )
            self._on_placed(request, now, cost, True)
        else:
            latency_ps = done - request.arrival_ps
            self.metrics.record_placement(
                now_ps=now,
                request=request,
                node_name=node.name,
                physical_index=tenant.physical_index,
                temporal=tenant.oversubscribed,
                latency_ps=latency_ps,
            )
            if self.admission_policy is not None:
                self.admission_policy.observe(request, latency_ps, now)
            self._on_placed(request, now, latency_ps, False)
        self._push(done + session_ps, "departure", (request.tenant, self._epoch))
        return True
