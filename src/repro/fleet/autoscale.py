"""Elastic autoscaling over the typed fleet-operations API (ISSUE 8).

The control loop rides the serving loop's event clock: every heap event,
:meth:`Autoscaler.maybe_tick` fires if at least ``interval_ps`` of
simulated time passed since the last tick, reads utilization/queue
signals, and acts through :class:`~repro.fleet.ops.FleetOps` verbs only —
the autoscaler never mutates cluster state directly, so every action is
typed, counted, and traced like an operator-issued command.

Three decisions per tick, in priority order:

1. **Proactive evacuation** — a ``DEGRADED`` node is drained (cordon +
   live-migrate every resident) *before* the chaos injector escalates the
   degradation to a crash.  Sessions that would have been displaced or
   failed by the crash instead keep running elsewhere; the node is
   re-admitted once its health returns to ``HEALTHY``.  This is what
   turns chaos experiments from "measure the damage" into "measure the
   recovery".
2. **Scale-up** — utilization at/above ``high_watermark`` or admission
   queue depth at/above ``queue_high`` commissions one parked node
   (uncordon) per tick.
3. **Scale-down** — utilization at/below ``low_watermark`` drains the
   emptiest active node and parks it, provided more than
   ``min_active_nodes`` remain.

Hysteresis comes from the watermark gap plus ``cooldown_ps`` between
scaling actions.  Every decision is a pure function of the serving loop's
deterministic event sequence — ticks happen at event timestamps, signals
are read from cluster state, and nothing draws randomness — so serial and
sharded runs produce byte-identical envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.fleet.node import NodeHealth
from repro.sim.clock import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.admission import FleetService


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the elastic-autoscaling control loop."""

    #: Minimum simulated time between control ticks.
    interval_ps: int = ms(1)
    #: Scale up at/above this fleet utilization (resident over maximum
    #: oversubscribed capacity of the active nodes).
    high_watermark: float = 0.75
    #: Scale down at/below this fleet utilization.
    low_watermark: float = 0.25
    #: Scale up when the admission queue reaches this depth, regardless
    #: of utilization (queue pressure is the earlier signal).
    queue_high: int = 1
    #: Minimum simulated time between two scaling actions (hysteresis).
    cooldown_ps: int = ms(2)
    #: Never scale below this many active (non-cordoned, alive) nodes.
    min_active_nodes: int = 1
    #: Drain DEGRADED nodes ahead of a possible crash.
    proactive_evacuation: bool = True
    #: Nodes parked (cordoned) at install time and commissioned on
    #: scale-up.  Names must exist in the cluster.
    standby_nodes: Tuple[str, ...] = ()
    #: Tags the configuration in envelopes.  The control loop itself is
    #: deterministic by construction and draws no randomness.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval_ps <= 0 or self.cooldown_ps < 0:
            raise ConfigurationError("autoscale interval/cooldown invalid")
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low < high <= 1"
            )
        if self.queue_high < 1 or self.min_active_nodes < 1:
            raise ConfigurationError("queue_high and min_active_nodes must be >= 1")


class Autoscaler:
    """The control loop; installed via ``service.install_autoscaler()``."""

    def __init__(self, service: "FleetService", config: AutoscaleConfig) -> None:
        self.service = service
        self.config = config
        #: Parked nodes: cordoned capacity held in reserve.
        self._parked: List[str] = []
        #: Nodes we drained for health reasons, to re-admit when HEALTHY.
        self._evacuating: Set[str] = set()
        self._last_tick_ps = 0
        self._last_action_ps: Optional[int] = None
        self.actions: List[Dict[str, object]] = []
        for name in config.standby_nodes:
            service.cluster.node(name)  # fail fast on unknown names
            self._park(name, now=service._now, reason="standby", record=False)

    # -- bookkeeping ------------------------------------------------------------------

    def _park(self, name: str, *, now: int, reason: str, record: bool) -> None:
        self.service.ops.cordon(name, now=now)
        if name not in self._parked:
            self._parked.append(name)
        if record:
            self._record(now, "scale_down", name, reason)

    def _record(self, now: int, action: str, node: str, reason: str) -> None:
        self.actions.append(
            {"t_ps": now, "action": action, "node": node, "reason": reason}
        )
        self.service.metrics.record_autoscale(
            now_ps=now, action=action, node=node, reason=reason
        )
        self._last_action_ps = now

    def _cooled_down(self, now: int) -> bool:
        return (
            self._last_action_ps is None
            or now - self._last_action_ps >= self.config.cooldown_ps
        )

    # -- signals ----------------------------------------------------------------------

    def _active_nodes(self):
        return [
            n
            for n in self.service.cluster.nodes
            if n.health is not NodeHealth.DEAD and not n.cordoned
        ]

    def utilization(self) -> float:
        """Residents over maximum admissible capacity of active nodes."""
        active = self._active_nodes()
        capacity = sum(n.total_slots * n.max_oversub for n in active)
        if not capacity:
            return 1.0
        return sum(n.resident for n in active) / capacity

    # -- the control loop -------------------------------------------------------------

    def maybe_tick(self, now: int) -> None:
        """Tick if at least ``interval_ps`` passed; called per loop event."""
        if now - self._last_tick_ps < self.config.interval_ps:
            return
        self._last_tick_ps = now
        # Conflict-class attribution: everything a tick emits runs under
        # the "autoscale" label (a tick-driven migration then refines it
        # to "migration"); restore the dispatching event's label after.
        cluster = self.service.cluster
        previous_label = cluster.note_event("autoscale", now)
        try:
            self._tick(now)
        finally:
            cluster.note_event(previous_label, now)

    def _tick(self, now: int) -> None:
        service = self.service
        cluster = service.cluster

        # 1. Proactive evacuation of DEGRADED nodes (no cooldown: health
        #    beats hysteresis — waiting out a cooldown risks the crash).
        if self.config.proactive_evacuation:
            for node in cluster.nodes:
                if (
                    node.health is not NodeHealth.DEGRADED
                    or node.cordoned
                    or node.name in self._evacuating
                ):
                    continue
                # Commission a parked node first so the evacuees have
                # somewhere to land.
                if self._parked:
                    commissioned = self._parked.pop(0)
                    service.ops.uncordon(commissioned, now=now)
                    self._record(now, "scale_up", commissioned, "evacuation_capacity")
                report = service.ops.drain(node.name, now=now)
                self._evacuating.add(node.name)
                self._record(
                    now,
                    "evacuate",
                    node.name,
                    f"degraded migrated={len(report.migrated)} "
                    f"remaining={len(report.remaining)}",
                )

        # 2. Re-admit evacuated nodes whose health recovered.
        for name in sorted(self._evacuating):
            node = cluster.node(name)
            if node.health is NodeHealth.HEALTHY:
                self._evacuating.discard(name)
                service.ops.uncordon(name, now=now)
                self._record(now, "readmit", name, "health_recovered")

        # 3. Elastic scaling with hysteresis.
        if not self._cooled_down(now):
            return
        util = self.utilization()
        queue_depth = len(service._pending)
        if (
            util >= self.config.high_watermark
            or queue_depth >= self.config.queue_high
        ) and self._parked:
            commissioned = self._parked.pop(0)
            service.ops.uncordon(commissioned, now=now)
            self._record(
                now,
                "scale_up",
                commissioned,
                f"util={util:.3f} queue={queue_depth}",
            )
            return
        if util <= self.config.low_watermark:
            active = self._active_nodes()
            if len(active) <= self.config.min_active_nodes:
                return
            emptiest = min(active, key=lambda n: (n.resident, n.name))
            report = service.ops.drain(emptiest.name, now=now)
            if report.remaining:
                # Residents could not all move; abort the park so the
                # stragglers' capacity stays admissible.
                service.ops.uncordon(emptiest.name, now=now)
                self._record(now, "scale_down_abort", emptiest.name, "drain_incomplete")
                return
            if emptiest.name not in self._parked:
                self._parked.append(emptiest.name)
            self._record(
                now, "scale_down", emptiest.name, f"util={util:.3f}"
            )

    # -- reporting --------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for action in self.actions:
            key = str(action["action"])
            counts[key] = counts.get(key, 0) + 1
        return {
            "actions": len(self.actions),
            "by_action": dict(sorted(counts.items())),
            "parked": sorted(self._parked),
            "evacuating": sorted(self._evacuating),
        }
