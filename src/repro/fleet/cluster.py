"""The fleet cluster: N heterogeneous OPTIMUS nodes behind one API.

A cluster owns an ordered list of :class:`~repro.fleet.node.FleetNode`
(heterogeneous ``FpgaConfiguration`` mixes are the normal case — a
provider synthesizes different bitstreams for different demand profiles)
and exposes fleet-level placement: a policy picks the node, the node's
provider picks the slot with the paper's spatial-then-temporal logic.
Tenant names are unique fleet-wide so eviction needs no node handle.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.provider import Tenant
from repro.errors import ConfigurationError, UnknownTenantError
from repro.hv.checkpoint import GuestCheckpoint
from repro.fleet.node import (
    DEFAULT_MAX_OVERSUB,
    EvictedPlacement,
    FleetNode,
    NodeHealth,
    NodeSpec,
)
from repro.fleet.placement import PlacementPolicy
from repro.platform.params import PlatformParams
from repro.telemetry import MetricRegistry

#: Default heterogeneous node templates, cycled when building a cluster.
#: Each is a synthesizable six-slot mix (Table 2 closes timing for eight
#: instances, so six mixed slots are comfortably feasible) biased toward a
#: different slice of the default traffic mix.
DEFAULT_TEMPLATES: Tuple[Tuple[str, ...], ...] = (
    ("AES", "AES", "SHA", "MD5", "MB", "LL"),
    ("SHA", "SHA", "AES", "FIR", "MB", "MB"),
    ("MD5", "MD5", "FIR", "AES", "LL", "LL"),
    ("FIR", "FIR", "SHA", "MD5", "MB", "AES"),
)


class FleetCluster:
    """An ordered fleet of nodes with fleet-wide tenant bookkeeping."""

    def __init__(self, nodes: Sequence[FleetNode]) -> None:
        if not nodes:
            raise ConfigurationError("a fleet needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self.nodes: List[FleetNode] = list(nodes)
        self.tenant_nodes: Dict[str, FleetNode] = {}
        self._registry: Optional[MetricRegistry] = None

    @classmethod
    def build(
        cls,
        n_nodes: int,
        *,
        templates: Optional[Sequence[Sequence[str]]] = None,
        params: Optional[PlatformParams] = None,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
    ) -> "FleetCluster":
        """A cluster of ``n_nodes`` cycling through heterogeneous templates."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        templates = [tuple(t) for t in (templates or DEFAULT_TEMPLATES)]
        nodes = [
            FleetNode(
                NodeSpec.of(f"node{i}", templates[i % len(templates)]),
                params=params,
                max_oversub=max_oversub,
            )
            for i in range(n_nodes)
        ]
        return cls(nodes)

    # -- fleet-wide capacity ----------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.nodes)

    def offered_types(self) -> List[str]:
        types = set()
        for node in self.nodes:
            types.update(node.spec.slots)
        return sorted(types)

    def capacity(self, accel_type: str) -> int:
        return sum(node.capacity(accel_type) for node in self.nodes)

    def occupancy(self, accel_type: str) -> int:
        return sum(node.occupancy(accel_type) for node in self.nodes)

    @property
    def resident(self) -> int:
        return len(self.tenant_nodes)

    def can_place(self, accel_type: str) -> bool:
        return any(node.can_place(accel_type) for node in self.nodes)

    # -- placement --------------------------------------------------------------------

    def place(
        self, tenant_name: str, accel_type: str, policy: PlacementPolicy
    ) -> Optional[Tuple[FleetNode, Tenant]]:
        """Place a tenant via ``policy``; ``None`` when the fleet is full.

        DEAD nodes are invisible to the policy — admission never routes
        to a crashed node — and so are cordoned nodes (the ops-level
        admission gate: draining or parked-standby nodes take no new
        work while their residents keep serving).
        """
        if tenant_name in self.tenant_nodes:
            raise ConfigurationError(f"tenant {tenant_name!r} already placed")
        alive = [
            n
            for n in self.nodes
            if n.health is not NodeHealth.DEAD and not n.cordoned
        ]
        if not alive:
            return None
        node = policy.choose(alive, accel_type)
        if node is None:
            return None
        tenant = node.place(tenant_name, accel_type)
        self.tenant_nodes[tenant_name] = node
        return node, tenant

    def evict(self, tenant_name: str) -> EvictedPlacement:
        """Evict fleet-wide; returns the undone placement (typed contract).

        Raises :class:`~repro.errors.UnknownTenantError` when the tenant
        is nowhere in the fleet.
        """
        node = self.tenant_nodes.pop(tenant_name, None)
        if node is None:
            raise UnknownTenantError(tenant_name, "in the fleet")
        return node.evict(tenant_name)

    # -- checkpoint/restore (live migration) -------------------------------------------

    def checkpoint_tenant(self, tenant_name: str) -> GuestCheckpoint:
        """Quiesce and serialize one tenant wherever it lives in the fleet."""
        node = self.tenant_nodes.get(tenant_name)
        if node is None:
            raise UnknownTenantError(tenant_name, "in the fleet")
        return node.checkpoint_tenant(tenant_name)

    def restore_tenant(self, node_name: str, checkpoint: GuestCheckpoint) -> Tenant:
        """Restore a checkpointed tenant onto the named node."""
        if checkpoint.vm_name in self.tenant_nodes:
            raise ConfigurationError(
                f"tenant {checkpoint.vm_name!r} already placed"
            )
        node = self.node(node_name)
        tenant = node.restore_tenant(checkpoint)
        self.tenant_nodes[tenant.name] = node
        return tenant

    # -- node health ------------------------------------------------------------------

    def node(self, name: str) -> FleetNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigurationError(f"no node {name!r} in the fleet")

    def cordon(self, name: str) -> FleetNode:
        """Exclude a node from new placements; residents keep serving."""
        node = self.node(name)
        node.cordon()
        return node

    def uncordon(self, name: str) -> FleetNode:
        node = self.node(name)
        node.uncordon()
        return node

    def _crash_node(self, name: str) -> List[EvictedPlacement]:
        """Kill a node; every resident is displaced through the typed
        evict contract (deterministic name order) and returned so the
        serving layer can re-place or cleanly fail each one."""
        node = self.node(name)
        displaced = []
        # The node's resident set is authoritative (tenants placed directly
        # on the node are displaced too); the fleet index is cleaned along
        # the way for those the cluster placed itself.
        for tenant in sorted(node.tenants):
            self.tenant_nodes.pop(tenant, None)
            displaced.append(node.evict(tenant))
        node.crash()
        return displaced

    def crash_node(self, name: str) -> List[EvictedPlacement]:
        """Deprecated direct mutation path — route through
        :meth:`repro.fleet.ops.FleetOps.crash` instead, which returns a
        typed :class:`~repro.fleet.ops.CrashReport` and keeps the serving
        layer's session state consistent."""
        warnings.warn(
            "FleetCluster.crash_node is deprecated; use FleetOps.crash "
            "(service.ops.crash) for typed, session-aware node failure",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._crash_node(name)

    def recover_node(self, name: str) -> FleetNode:
        node = self.node(name)
        node.recover()
        # Re-register the node's metrics with any held cluster registry:
        # recovery may hand the node a fresh provider/platform stack, and
        # a registry built before the crash would keep reading the dead
        # platform's instruments.
        if self._registry is not None:
            self._registry.unmount(f"{node.name}.")
            self._registry.mount(f"{node.name}.", node.provider.platform.metrics)
        return node

    def health_report(self) -> Dict[str, str]:
        return {node.name: node.health.value for node in self.nodes}

    def note_event(self, kind: str, now: int) -> str:
        """Label the event context subsequent mutations run under.

        Returns the previous label so nested contexts (an autoscaler tick
        inside a departure dispatch, a migration inside a drain) can
        restore it.  The serial cluster needs nothing here; the sharded
        executor uses the label to attribute speculation rollbacks to a
        conflict class (DESIGN.md §9).
        """
        return ""

    # -- fault-side plumbing ----------------------------------------------------------

    def bump_auditor(
        self, name: str, physical_index: int, key: str, count: int
    ) -> None:
        """Bump an auditor counter on one node's monitor (fault surface).

        The injector goes through this — rather than reaching into
        ``node.provider.platform.monitor`` directly — so the sharded
        executor can forward the same op to the worker owning the node.
        """
        monitor = self.node(name).provider.platform.monitor
        if monitor is not None:
            monitor.auditors[physical_index].counters.bump(key, count)

    # -- reporting --------------------------------------------------------------------

    def metrics_registry(self) -> MetricRegistry:
        """One registry over every node's platform instruments.

        Names are prefixed with the node, so one :meth:`snapshot` covers
        the whole fleet (``node0.iommu.iotlb``, ``node1.upi0.bw.to_mem``,
        ...).  The registry is built once and cached; crash/recover cycles
        keep it pointed at each node's *live* platform (see
        :meth:`recover_node`), so holding a reference stays correct.
        """
        if self._registry is None:
            self._registry = MetricRegistry("cluster")
            for node in self.nodes:
                self._registry.mount(f"{node.name}.", node.provider.platform.metrics)
        return self._registry

    def occupancy_report(self) -> Dict[str, Dict[int, Dict[str, object]]]:
        return {node.name: node.provider.occupancy_report() for node in self.nodes}

    def simulated_report(self) -> Dict[str, Dict[str, object]]:
        """Per-node simulated time (``engine.now``), keyed by node name.

        Shape-identical to :meth:`repro.parallel.ShardedFleetCluster
        .simulated_report`, so serial and sharded envelopes byte-compare.
        """
        return {
            node.name: {"simulated_ps": node.provider.platform.engine.now}
            for node in self.nodes
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """One flat fleet-wide metric snapshot (``node<i>.<metric>``)."""
        return self.metrics_registry().snapshot()

    def utilization_by_type(self) -> Dict[str, float]:
        """Instantaneous fleet occupancy over capacity, per type."""
        report: Dict[str, float] = {}
        for accel_type in self.offered_types():
            capacity = self.capacity(accel_type)
            if capacity:
                report[accel_type] = self.occupancy(accel_type) / capacity
        return report
