"""Fleet-wide measurement: counters, latency percentiles, utilization.

Aggregates the same :mod:`repro.sim.stats` instruments the single-node
experiments use — a :class:`~repro.sim.stats.Counters` bag for admission
events and a :class:`~repro.sim.stats.LatencyRecorder` for placement
latency (queueing delay + control-plane placement cost, in simulated
time) — and adds two fleet-only figures:

* **time-weighted per-type utilization**, integrated over the serving run
  (occupancy x time over capacity x time, so 1.0 means every physical
  slot of the type held exactly one tenant the whole run; values above
  1.0 mean temporal oversubscription);
* a **placement trace**: one line per admission decision, identical
  across runs with the same seed and policy, with a digest for quick
  reproducibility checks.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.stats import Counters, LatencyRecorder
from repro.telemetry import MetricRegistry, current_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.cluster import FleetCluster


class FleetMetrics:
    """One serving run's worth of fleet-wide measurements."""

    def __init__(self, *, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry("fleet")
        self.counters = Counters(
            name="fleet.admission", registry=self.registry
        )
        self.placement_latency = LatencyRecorder(
            "fleet.placement", registry=self.registry
        )
        # The ``faults.*`` subtree: injected events, recovery actions, and
        # their outcomes, all visible through the fleet registry snapshot.
        self.fault_counters = Counters(name="faults.fleet", registry=self.registry)
        self.replacement_latency = LatencyRecorder(
            "faults.replacement", registry=self.registry
        )
        self.placed_by_type: Dict[str, int] = {}
        self.trace: List[str] = []
        self._util_integral_ps: Dict[str, float] = {}
        self._capacity: Dict[str, int] = {}
        self._last_sample_ps = 0
        self._span_ps = 0
        # Fleet admission/placement events live in their own trace scope;
        # the serving loop is deterministic control plane, so these are
        # identical across simulator modes by construction.
        tracer = current_tracer()
        self._trace_scope = tracer.scope("fleet") if tracer is not None else None
        if self._trace_scope is not None:
            self._trace_tid_admission = self._trace_scope.thread("admission")
            self._trace_tid_queue = self._trace_scope.thread("queue")

    # -- event recording --------------------------------------------------------------

    def record_placement(
        self,
        *,
        now_ps: int,
        request,
        node_name: str,
        physical_index: int,
        temporal: bool,
        latency_ps: int,
    ) -> None:
        self.counters.bump("placements")
        self.counters.bump("placements_temporal" if temporal else "placements_spatial")
        self.placed_by_type[request.accel_type] = (
            self.placed_by_type.get(request.accel_type, 0) + 1
        )
        self.placement_latency.record(latency_ps)
        mode = "temporal" if temporal else "spatial"
        self.trace.append(
            f"{now_ps} {request.tenant} {request.accel_type} -> "
            f"{node_name}/slot{physical_index} {mode} wait={latency_ps}"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.place", now_ps, tid=self._trace_tid_admission, cat="fleet",
                args={"tenant": request.tenant, "type": request.accel_type,
                      "node": node_name, "slot": physical_index,
                      "mode": mode, "wait_ps": latency_ps})

    def record_queued(self, *, now_ps: int, request, depth: int) -> None:
        self.counters.bump("queued")
        self.trace.append(
            f"{now_ps} {request.tenant} {request.accel_type} -> queued depth={depth}"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.queue", now_ps, tid=self._trace_tid_queue, cat="fleet",
                args={"tenant": request.tenant, "depth": depth})
            self._trace_scope.counter(
                "queue_depth", now_ps, {"depth": float(depth)},
                tid=self._trace_tid_queue, cat="fleet")

    def record_degrade(self, *, now_ps: int, request, scale: float) -> None:
        """The admission policy admitted a request with trimmed service."""
        self.counters.bump("degraded")
        self.trace.append(
            f"{now_ps} {request.tenant} {request.accel_type} -> "
            f"degraded x{scale:.2f}"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.degrade", now_ps, tid=self._trace_tid_admission, cat="fleet",
                args={"tenant": request.tenant, "scale": scale})

    def record_retry(self, *, now_ps: int, request, attempt: int) -> None:
        self.counters.bump("retries")
        self.trace.append(
            f"{now_ps} {request.tenant} {request.accel_type} -> retry#{attempt}"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.retry", now_ps, tid=self._trace_tid_queue, cat="fleet",
                args={"tenant": request.tenant, "attempt": attempt})

    def record_rejection(self, *, now_ps: int, request, reason: str) -> None:
        self.counters.bump("rejections")
        self.counters.bump(f"rejections_{reason}")
        self.trace.append(
            f"{now_ps} {request.tenant} {request.accel_type} -> rejected ({reason})"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.reject", now_ps, tid=self._trace_tid_admission, cat="fleet",
                args={"tenant": request.tenant, "reason": reason})

    def record_fault(self, *, now_ps: int, kind: str, target: str, outcome: str) -> None:
        """One injected fault event and how the fleet resolved it."""
        self.fault_counters.bump("injected")
        self.fault_counters.bump(f"injected_{kind}")
        self.fault_counters.bump(f"outcome_{outcome}")
        self.trace.append(f"{now_ps} fault {kind} {target} -> {outcome}")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.fault", now_ps, tid=self._trace_tid_admission, cat="fault",
                args={"kind": kind, "target": target, "outcome": outcome})

    def record_replacement(
        self,
        *,
        now_ps: int,
        request,
        node_name: str,
        physical_index: int,
        latency_ps: int,
    ) -> None:
        """A displaced session re-placed on a healthy node (failover)."""
        self.fault_counters.bump("replacements")
        self.replacement_latency.record(latency_ps)
        self.trace.append(
            f"{now_ps} {request.tenant} {request.accel_type} ~> "
            f"{node_name}/slot{physical_index} replaced"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.replace", now_ps, tid=self._trace_tid_admission, cat="fault",
                args={"tenant": request.tenant, "node": node_name,
                      "slot": physical_index})

    def record_migration(
        self,
        *,
        now_ps: int,
        tenant: str,
        source: str,
        destination: str,
        blackout_ps: int,
        digest: str,
    ) -> None:
        """One successful live migration, with its bounded blackout span."""
        self.fault_counters.bump("migrations")
        self.trace.append(
            f"{now_ps} {tenant} ~> {source}->{destination} migrated "
            f"blackout={blackout_ps} ckpt={digest}"
        )
        if self._trace_scope is not None:
            # A complete ("X") span so trace consumers can measure the
            # blackout window; the category is the CI smoke contract.
            self._trace_scope.complete(
                "hv.migrate", now_ps, now_ps + blackout_ps,
                tid=self._trace_tid_admission, cat="hv.migration",
                args={"tenant": tenant, "source": source,
                      "destination": destination, "ckpt": digest})

    def record_migration_failure(
        self, *, now_ps: int, tenant: str, reason: str
    ) -> None:
        """A migration attempt found no destination; the session stayed put."""
        self.fault_counters.bump("migration_failures")
        self.trace.append(f"{now_ps} {tenant} ~> migration failed ({reason})")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.migrate_fail", now_ps, tid=self._trace_tid_admission,
                cat="fault", args={"tenant": tenant, "reason": reason})

    def record_cordon(self, *, now_ps: int, node: str, cordoned: bool) -> None:
        """A node entered (or left) the cordoned admission gate."""
        self.fault_counters.bump("cordons" if cordoned else "uncordons")
        verb = "cordoned" if cordoned else "uncordoned"
        self.trace.append(f"{now_ps} node {node} -> {verb}")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.cordon", now_ps, tid=self._trace_tid_admission,
                cat="fleet", args={"node": node, "cordoned": cordoned})

    def record_drain(
        self, *, now_ps: int, node: str, migrated: int, remaining: int
    ) -> None:
        """One drain verb finished over a node."""
        self.fault_counters.bump("drains")
        self.trace.append(
            f"{now_ps} node {node} -> drained migrated={migrated} "
            f"remaining={remaining}"
        )
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.drain", now_ps, tid=self._trace_tid_admission,
                cat="fleet", args={"node": node, "migrated": migrated,
                                   "remaining": remaining})

    def record_autoscale(
        self, *, now_ps: int, action: str, node: str, reason: str
    ) -> None:
        """The autoscaler took one action (scale_up/scale_down/evacuate)."""
        self.fault_counters.bump(f"autoscale_{action}")
        self.trace.append(f"{now_ps} autoscale {action} {node} ({reason})")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.autoscale", now_ps, tid=self._trace_tid_admission,
                cat="fleet", args={"action": action, "node": node,
                                   "reason": reason})

    def record_quarantine(self, *, now_ps: int, tenant: str) -> None:
        """The fleet watchdog benched a guest making no forward progress."""
        self.fault_counters.bump("quarantines")
        self.trace.append(f"{now_ps} {tenant} -> quarantined")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.quarantine", now_ps, tid=self._trace_tid_admission,
                cat="fault", args={"tenant": tenant})

    def record_fault_failure(self, *, now_ps: int, tenant: str, reason: str) -> None:
        """An accepted request terminated because of an injected fault."""
        self.fault_counters.bump("failed_by_fault")
        self.trace.append(f"{now_ps} {tenant} -> failed_by_fault ({reason})")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.fault_failure", now_ps, tid=self._trace_tid_admission,
                cat="fault", args={"tenant": tenant, "reason": reason})

    def record_departure(self, *, now_ps: int, tenant: str) -> None:
        self.counters.bump("departures")
        if self._trace_scope is not None:
            self._trace_scope.instant(
                "fleet.depart", now_ps, tid=self._trace_tid_admission, cat="fleet",
                args={"tenant": tenant})

    # -- utilization integration --------------------------------------------------------

    def sample_utilization(self, now_ps: int, cluster: "FleetCluster") -> None:
        """Integrate occupancy up to ``now_ps``; call *before* state changes."""
        if not self._capacity:
            self._capacity = {t: cluster.capacity(t) for t in cluster.offered_types()}
        elapsed = now_ps - self._last_sample_ps
        if elapsed > 0:
            for accel_type in self._capacity:
                self._util_integral_ps[accel_type] = (
                    self._util_integral_ps.get(accel_type, 0.0)
                    + cluster.occupancy(accel_type) * elapsed
                )
            self._span_ps += elapsed
        self._last_sample_ps = now_ps

    def utilization_by_type(self) -> Dict[str, float]:
        """Time-weighted tenants-per-slot per type over the whole run."""
        if not self._span_ps:
            return {t: 0.0 for t in self._capacity}
        return {
            accel_type: self._util_integral_ps.get(accel_type, 0.0)
            / (self._span_ps * capacity)
            for accel_type, capacity in sorted(self._capacity.items())
            if capacity
        }

    # -- reporting ---------------------------------------------------------------------

    def oversubscription_ratio(self) -> float:
        """Share of placements that had to share a slot temporally."""
        placed = self.counters.get("placements")
        if not placed:
            return 0.0
        return self.counters.get("placements_temporal") / placed

    def rejection_rate(self) -> float:
        total = self.counters.get("placements") + self.counters.get("rejections")
        if not total:
            return 0.0
        return self.counters.get("rejections") / total

    def trace_digest(self) -> str:
        """A stable fingerprint of the placement trace (reproducibility)."""
        payload = "\n".join(self.trace).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def summary(self) -> Dict[str, object]:
        latency: Optional[Dict[str, float]] = self.placement_latency.summary()
        return {
            "placements": self.counters.get("placements"),
            "placements_spatial": self.counters.get("placements_spatial"),
            "placements_temporal": self.counters.get("placements_temporal"),
            "rejections": self.counters.get("rejections"),
            "rejections_queue_full": self.counters.get("rejections_queue_full"),
            "rejections_retries_exhausted": self.counters.get(
                "rejections_retries_exhausted"
            ),
            "rejections_unsupported": self.counters.get("rejections_unsupported"),
            "rejections_slo_shed": self.counters.get("rejections_slo_shed"),
            "degraded": self.counters.get("degraded"),
            "queued": self.counters.get("queued"),
            "retries": self.counters.get("retries"),
            "departures": self.counters.get("departures"),
            "rejection_rate": self.rejection_rate(),
            "oversubscription_ratio": self.oversubscription_ratio(),
            "placement_latency": latency,  # None when nothing was placed
            "placed_by_type": dict(sorted(self.placed_by_type.items())),
            "utilization_by_type": self.utilization_by_type(),
            "faults": dict(sorted(self.fault_counters.snapshot().items())),
            "trace_digest": self.trace_digest(),
        }

    def render(self) -> str:
        summary = self.summary()
        lines = ["fleet serving summary", "=" * 21]
        lines.append(
            f"placements: {summary['placements']} "
            f"(spatial {summary['placements_spatial']}, "
            f"temporal {summary['placements_temporal']})"
        )
        lines.append(
            f"rejections: {summary['rejections']} "
            f"(queue-full {summary['rejections_queue_full']}, "
            f"retries-exhausted {summary['rejections_retries_exhausted']}, "
            f"unsupported {summary['rejections_unsupported']}) "
            f"rate {summary['rejection_rate']:.1%}"
        )
        lines.append(
            f"queued: {summary['queued']}  retries: {summary['retries']}  "
            f"departures: {summary['departures']}"
        )
        lines.append(f"oversubscription ratio: {summary['oversubscription_ratio']:.2f}")
        latency = summary["placement_latency"]
        if latency is None:
            lines.append("placement latency: no placements")
        else:
            lines.append(
                "placement latency: "
                f"p50 {latency['p50_ns'] / 1e3:.1f} us  "
                f"p95 {latency['p95_ns'] / 1e3:.1f} us  "
                f"p99 {latency['p99_ns'] / 1e3:.1f} us"
            )
        util = summary["utilization_by_type"]
        if util:
            cells = "  ".join(f"{t}={u:.2f}" for t, u in util.items())
            lines.append(f"per-type utilization (tenants/slot): {cells}")
        placed = summary["placed_by_type"]
        if placed:
            cells = "  ".join(f"{t}={n}" for t, n in placed.items())
            lines.append(f"placements by type: {cells}")
        lines.append(f"trace: {len(self.trace)} events, digest {summary['trace_digest']}")
        return "\n".join(lines)
