"""One schedulable fleet node: a ``CloudProvider`` with capacity accounting.

A node owns a complete OPTIMUS stack — an :class:`FpgaConfiguration`, the
platform built for it, and the hypervisor — exactly as the single-node
paper reproduction does.  What the fleet layer adds here is *bookkeeping*:
per-type capacity, spatial/temporal occupancy, an oversubscription cap,
and a load figure the placement policies can compare across nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cloud.library import AcceleratorLibrary, FpgaConfiguration
from repro.cloud.provider import CloudProvider, Tenant
from repro.errors import ConfigurationError, SchedulerError, UnknownTenantError
from repro.hv.checkpoint import GuestCheckpoint, checkpoint_guest
from repro.mem.address import GB, MB
from repro.platform.params import PlatformParams

#: Default ceiling on tenants sharing one physical slot.  The paper's
#: temporal experiments run up to 16 virtual accelerators per physical
#: (Fig. 8); a provider keeps the depth lower so every tenant retains a
#: useful share of slot time.
DEFAULT_MAX_OVERSUB = 4


class NodeHealth(enum.Enum):
    """The fleet-level health state machine of one node.

    ``HEALTHY -> DEGRADED`` (link degradation, IOTLB thrash) and back via
    :meth:`FleetNode.restore`; ``* -> DEAD`` on :meth:`FleetNode.crash`
    and ``DEAD -> HEALTHY`` on :meth:`FleetNode.recover`.  Admission never
    routes to a DEAD node; DEGRADED nodes keep serving (optionally with a
    session slowdown, see :class:`~repro.fleet.admission.AdmissionConfig`).
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


@dataclass(frozen=True)
class EvictedPlacement:
    """What :meth:`FleetNode.evict` returns: the placement that was undone.

    The failover re-placement path consumes these — everything needed to
    re-admit the displaced tenant elsewhere is here, with no reference to
    the (possibly dead) node's live objects.
    """

    tenant: str
    accel_type: str
    node_name: str
    physical_index: int
    oversubscribed: bool


@dataclass(frozen=True)
class NodeSpec:
    """A node's identity and accelerator mix, before synthesis."""

    name: str
    slots: Tuple[str, ...]

    @classmethod
    def of(cls, name: str, slots: Sequence[str]) -> "NodeSpec":
        return cls(name=name, slots=tuple(slots))


class FleetNode:
    """One FPGA node of the fleet, wrapping a single-device provider."""

    def __init__(
        self,
        spec: NodeSpec,
        *,
        params: Optional[PlatformParams] = None,
        library: Optional[AcceleratorLibrary] = None,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
    ) -> None:
        if max_oversub < 1:
            raise ConfigurationError("max_oversub must be >= 1")
        self.spec = spec
        self.configuration = FpgaConfiguration.synthesize(spec.slots, library=library)
        self.provider = CloudProvider(self.configuration, params=params, library=library)
        self.max_oversub = max_oversub
        self.tenants: Dict[str, Tenant] = {}
        self.health = NodeHealth.HEALTHY
        #: Cordoned nodes take no *new* placements (admission skips them)
        #: but keep serving their residents.  Ops verbs flip this; health
        #: is orthogonal (a HEALTHY standby node parks cordoned).
        self.cordoned = False

    # -- identity -------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetNode({self.name!r}, slots={list(self.spec.slots)})"

    # -- capacity accounting ---------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.configuration.n_slots

    def capacity(self, accel_type: str) -> int:
        """Physical slots of ``accel_type`` this node carries."""
        return len(self.configuration.slots_of_type(accel_type))

    def occupancy(self, accel_type: str) -> int:
        """Virtual accelerators currently resident on ``accel_type`` slots."""
        return sum(
            len(self.provider.hypervisor.physical[i].vaccels)
            for i in self.configuration.slots_of_type(accel_type)
        )

    def free_slots(self, accel_type: str) -> int:
        """Empty physical slots of ``accel_type`` (spatial headroom)."""
        return sum(
            1
            for i in self.configuration.slots_of_type(accel_type)
            if not self.provider.hypervisor.physical[i].vaccels
        )

    def headroom(self, accel_type: str) -> int:
        """Placements still admissible for ``accel_type`` (incl. temporal)."""
        return self.max_oversub * self.capacity(accel_type) - self.occupancy(accel_type)

    @property
    def resident(self) -> int:
        return len(self.tenants)

    @property
    def load(self) -> float:
        """Mean tenants per slot — the policies' least-loaded figure."""
        if not self.total_slots:
            return 0.0
        return self.resident / self.total_slots

    def affinity(self, accel_type: str) -> float:
        """How specialized this node is for ``accel_type`` (slot share)."""
        if not self.total_slots:
            return 0.0
        return self.capacity(accel_type) / self.total_slots

    def can_place(self, accel_type: str, *, oversubscribe: bool = True) -> bool:
        if self.health is NodeHealth.DEAD:
            return False
        if self.capacity(accel_type) == 0:
            return False
        if self.free_slots(accel_type) > 0:
            return True
        return oversubscribe and self.headroom(accel_type) > 0

    def utilization_by_type(self) -> Dict[str, float]:
        """Occupancy over capacity per offered type (can exceed 1.0)."""
        report: Dict[str, float] = {}
        for accel_type in sorted(set(self.configuration.slots)):
            report[accel_type] = self.occupancy(accel_type) / self.capacity(accel_type)
        return report

    # -- placement lifecycle -----------------------------------------------------------

    def place(
        self,
        tenant_name: str,
        accel_type: str,
        *,
        window_bytes: int = 4 * MB,
        vm_bytes: int = 1 * GB,
    ) -> Tenant:
        """Admit one tenant through the node's real provider stack."""
        if tenant_name in self.tenants:
            raise ConfigurationError(f"tenant {tenant_name!r} already on {self.name}")
        if not self.can_place(accel_type):
            raise SchedulerError(
                f"node {self.name} has no headroom for {accel_type!r}"
            )
        tenant = self.provider.place(
            tenant_name, accel_type, window_bytes=window_bytes, vm_bytes=vm_bytes
        )
        self.tenants[tenant_name] = tenant
        return tenant

    def evict(self, tenant_name: str) -> EvictedPlacement:
        """Remove one tenant; return the placement that was undone.

        Raises :class:`~repro.errors.UnknownTenantError` (a
        ``ConfigurationError`` subclass) when the tenant is not resident —
        the defined contract every caller, including failover re-placement,
        goes through.  No other path mutates occupancy.
        """
        tenant = self.tenants.pop(tenant_name, None)
        if tenant is None:
            raise UnknownTenantError(tenant_name, f"on node {self.name}")
        placement = EvictedPlacement(
            tenant=tenant.name,
            accel_type=tenant.accel_type,
            node_name=self.name,
            physical_index=tenant.physical_index,
            oversubscribed=tenant.oversubscribed,
        )
        self.provider.evict(tenant)
        return placement

    # -- checkpoint/restore (live migration) -------------------------------------------

    def checkpoint_tenant(self, tenant_name: str) -> GuestCheckpoint:
        """Quiesce one resident tenant and serialize it for migration.

        The tenant stays resident — pair with :meth:`evict` once the
        destination has the checkpoint (copy-then-switch, never
        destroy-then-hope).
        """
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            raise UnknownTenantError(tenant_name, f"on node {self.name}")
        return checkpoint_guest(
            self.provider.hypervisor, tenant.vaccel, accel_type=tenant.accel_type
        )

    def restore_tenant(self, checkpoint: GuestCheckpoint) -> Tenant:
        """Admit a migrated-in tenant from its checkpoint."""
        if checkpoint.vm_name in self.tenants:
            raise ConfigurationError(
                f"tenant {checkpoint.vm_name!r} already on {self.name}"
            )
        if not self.can_place(checkpoint.accel_type):
            raise SchedulerError(
                f"node {self.name} has no headroom for {checkpoint.accel_type!r}"
            )
        tenant = self.provider.restore(checkpoint)
        self.tenants[tenant.name] = tenant
        return tenant

    # -- health transitions ------------------------------------------------------------

    def cordon(self) -> None:
        """Stop accepting new placements; residents keep serving."""
        self.cordoned = True

    def uncordon(self) -> None:
        """Resume accepting placements."""
        self.cordoned = False

    def crash(self) -> None:
        """Mark the node DEAD.  The cluster evicts residents first (typed
        contract), so by the time the health flips, occupancy is empty."""
        self.health = NodeHealth.DEAD

    def recover(self) -> None:
        """A crashed node rejoins empty (reprovisioned from scratch)."""
        self.restore()
        self.health = NodeHealth.HEALTHY

    def degrade(self, factor: float) -> None:
        """Degrade every CPU-FPGA link by ``factor`` and mark DEGRADED."""
        if self.health is NodeHealth.DEAD:
            raise ConfigurationError(f"cannot degrade dead node {self.name}")
        for link in self.provider.platform.links:
            link.degrade(factor)
        self.health = NodeHealth.DEGRADED

    def restore(self) -> None:
        """Links back to nominal; DEGRADED -> HEALTHY (DEAD stays DEAD)."""
        for link in self.provider.platform.links:
            link.restore()
        if self.health is NodeHealth.DEGRADED:
            self.health = NodeHealth.HEALTHY

    def rebalance(self) -> int:
        """Spread oversubscribed slots via live migration (§7.1 machinery)."""
        return self.provider.rebalance()
