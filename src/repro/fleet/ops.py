"""The typed fleet-operations API (ISSUE 8).

Every fleet mutation the control plane performs — cordoning a node,
live-migrating a tenant, draining, rebalancing, crashing, recovering —
goes through :class:`FleetOps` and returns a typed result
(:class:`MigrationOutcome`, :class:`DrainReport`, :class:`CrashReport`).
The verbs route through the owning :class:`~repro.fleet.admission
.FleetService` so in-flight *sessions* survive the operation: a migrated
session keeps its identity and its departure schedule (shifted by the
bounded blackout window, ``AdmissionConfig.migration_cost_ps``), and every
move is traced and counted through :class:`~repro.fleet.metrics
.FleetMetrics`.

This replaces the ad-hoc mutation paths of earlier releases:
``FleetCluster.crash_node`` and ``FleetService.apply_node_crash`` are now
deprecated thin wrappers over :meth:`FleetOps.crash`.

Verbs can be invoked directly (``service.ops.drain("node1")``) or
scheduled inside the serving loop's simulated time
(``service.schedule_op(at_ps, "drain", node_name="node1")``) — the loop
dispatches them exactly like any other event, so an operation at a fixed
timestamp is deterministic relative to arrivals and departures.

Live migration itself is copy-then-switch over the hv checkpoint
machinery (:mod:`repro.hv.checkpoint`): quiesce at a slice boundary →
snapshot (pages, registers, DMA window, saved state) → restore on the
destination with the shadow IO page table re-patched → evict the source
copy.  The checkpoint digest travels in the outcome so callers can verify
determinism end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import UnknownTenantError
from repro.fleet.node import FleetNode, NodeHealth
from repro.fleet.outcomes import Outcome, Resolution

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.admission import FleetService


@dataclass(frozen=True)
class MigrationOutcome:
    """What one :meth:`FleetOps.migrate` call did."""

    tenant: str
    source: str
    #: ``None`` when no eligible destination existed.
    destination: Optional[str]
    #: A :class:`~repro.fleet.outcomes.Resolution` value:
    #: ``migrated`` or ``failed_no_destination``.
    outcome: str
    #: Simulated time the session was dark (checkpoint + transfer +
    #: restore), charged to its departure schedule.
    blackout_ps: int
    #: Deterministic digest of the shipped checkpoint (``None`` when the
    #: migration never produced one).
    checkpoint_digest: Optional[str]

    @property
    def ok(self) -> bool:
        return self.outcome == Resolution.MIGRATED.value


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`FleetOps.drain` did to one node."""

    node: str
    #: Successful moves, in deterministic (tenant name) order.
    migrated: Tuple[MigrationOutcome, ...]
    #: Tenants that found no destination and stayed resident.
    remaining: Tuple[str, ...]
    #: Whether the node is left cordoned (always true today; recorded so
    #: callers can assert the admission gate without re-reading the node).
    cordoned: bool

    @property
    def clean(self) -> bool:
        return not self.remaining


@dataclass(frozen=True)
class CrashReport:
    """What :meth:`FleetOps.crash` did to one node's residents."""

    node: str
    #: ``(tenant, resolution)`` per displaced session, in eviction order;
    #: resolution is ``replaced`` or ``failed_by_fault``.
    resolutions: Tuple[Tuple[str, str], ...]

    @property
    def displaced(self) -> int:
        return len(self.resolutions)

    @property
    def replaced(self) -> int:
        return sum(1 for _t, r in self.resolutions if r == Resolution.REPLACED.value)

    @property
    def failed(self) -> int:
        return sum(
            1 for _t, r in self.resolutions if r == Resolution.FAILED_BY_FAULT.value
        )


@dataclass(frozen=True)
class RebalanceReport:
    """The moves :meth:`FleetOps.rebalance` performed."""

    moves: Tuple[MigrationOutcome, ...]

    @property
    def moved(self) -> int:
        return len(self.moves)


class FleetOps:
    """Typed fleet-operations verbs over one :class:`FleetService`."""

    def __init__(self, service: "FleetService") -> None:
        self.service = service

    # -- helpers ----------------------------------------------------------------------

    def _now(self, now: Optional[int]) -> int:
        return self.service._now if now is None else now

    # -- admission gating -------------------------------------------------------------

    def cordon(self, node_name: str, *, now: Optional[int] = None) -> FleetNode:
        """Exclude a node from new placements; residents keep serving."""
        now = self._now(now)
        node = self.service.cluster.cordon(node_name)
        self.service.metrics.record_cordon(now_ps=now, node=node_name, cordoned=True)
        return node

    def uncordon(self, node_name: str, *, now: Optional[int] = None) -> FleetNode:
        """Readmit a node to the placement pool."""
        now = self._now(now)
        node = self.service.cluster.uncordon(node_name)
        self.service.metrics.record_cordon(now_ps=now, node=node_name, cordoned=False)
        return node

    # -- live migration ---------------------------------------------------------------

    def migrate(
        self,
        tenant_name: str,
        *,
        now: Optional[int] = None,
        destination: Optional[str] = None,
    ) -> MigrationOutcome:
        """Live-migrate one tenant off its current node.

        Destination defaults to the service's placement policy over every
        alive, non-cordoned node other than the source.  On success the
        session survives: same request identity, node/slot updated, the
        departure shifted by the blackout window, outcome eventually
        ``migrated_completed``.  With no eligible destination the session
        is left untouched (``failed_no_destination``) — migration never
        destroys the only good copy.
        """
        service = self.service
        now = self._now(now)
        cluster = service.cluster
        # Conflict-class attribution: everything this verb emits (the
        # checkpoint, the source eviction, the destination placement) runs
        # under the "migration" label, then the enclosing context — e.g.
        # the "autoscale" of an autoscaler-driven drain — is restored.
        previous_label = cluster.note_event("migration", now)
        try:
            return self._migrate(
                tenant_name, now=now, destination=destination
            )
        finally:
            cluster.note_event(previous_label, now)

    def _migrate(
        self,
        tenant_name: str,
        *,
        now: int,
        destination: Optional[str],
    ) -> MigrationOutcome:
        service = self.service
        cluster = service.cluster
        source = cluster.tenant_nodes.get(tenant_name)
        if source is None:
            raise UnknownTenantError(tenant_name, "in the fleet")
        accel_type = source.tenants[tenant_name].accel_type

        dest: Optional[FleetNode]
        if destination is not None:
            dest = cluster.node(destination)
            if (
                dest is source
                or dest.health is NodeHealth.DEAD
                or not dest.can_place(accel_type)
            ):
                dest = None
        else:
            candidates = [
                n
                for n in cluster.nodes
                if n is not source
                and n.health is not NodeHealth.DEAD
                and not n.cordoned
            ]
            dest = (
                service.policy.choose(candidates, accel_type) if candidates else None
            )
        if dest is None:
            service.metrics.record_migration_failure(
                now_ps=now, tenant=tenant_name, reason="no_destination"
            )
            return MigrationOutcome(
                tenant=tenant_name,
                source=source.name,
                destination=None,
                outcome=Resolution.FAILED_NO_DESTINATION.value,
                blackout_ps=0,
                checkpoint_digest=None,
            )

        # Copy-then-switch: quiesce + snapshot, restore on the destination,
        # only then tear down the source copy.
        checkpoint = cluster.checkpoint_tenant(tenant_name)
        cluster.evict(tenant_name)
        tenant = cluster.restore_tenant(dest.name, checkpoint)
        blackout_ps = service.admission.migration_cost_ps
        digest = checkpoint.digest()

        session = service._sessions.get(tenant_name)
        if session is not None:
            service._epoch += 1
            session.epoch = service._epoch  # stale departure events die here
            session.node_name = dest.name
            session.physical_index = tenant.physical_index
            session.migrated = True
            session.depart_ps = max(session.depart_ps, now) + blackout_ps
            service._push(
                session.depart_ps, "departure", (tenant_name, session.epoch)
            )
        service.metrics.record_migration(
            now_ps=now,
            tenant=tenant_name,
            source=source.name,
            destination=dest.name,
            blackout_ps=blackout_ps,
            digest=digest,
        )
        return MigrationOutcome(
            tenant=tenant_name,
            source=source.name,
            destination=dest.name,
            outcome=Resolution.MIGRATED.value,
            blackout_ps=blackout_ps,
            checkpoint_digest=digest,
        )

    def drain(self, node_name: str, *, now: Optional[int] = None) -> DrainReport:
        """Cordon a node and migrate every resident off it.

        Tenants that find no destination stay resident (and reported in
        ``remaining``) — drain sheds load without ever destroying work.
        """
        service = self.service
        now = self._now(now)
        node = service.cluster.node(node_name)
        if not node.cordoned:
            self.cordon(node_name, now=now)
        migrated: List[MigrationOutcome] = []
        remaining: List[str] = []
        for tenant_name in sorted(node.tenants):
            outcome = self.migrate(tenant_name, now=now)
            if outcome.ok:
                migrated.append(outcome)
            else:
                remaining.append(tenant_name)
        service.metrics.record_drain(
            now_ps=now,
            node=node_name,
            migrated=len(migrated),
            remaining=len(remaining),
        )
        return DrainReport(
            node=node_name,
            migrated=tuple(migrated),
            remaining=tuple(remaining),
            cordoned=node.cordoned,
        )

    def rebalance(
        self, *, now: Optional[int] = None, max_moves: Optional[int] = None
    ) -> RebalanceReport:
        """Move tenants from the busiest to the idlest node until the
        resident gap closes below 2 (the §7.1 criterion, fleet-level)."""
        service = self.service
        now = self._now(now)
        moves: List[MigrationOutcome] = []
        while max_moves is None or len(moves) < max_moves:
            active = [
                n
                for n in service.cluster.nodes
                if n.health is not NodeHealth.DEAD and not n.cordoned
            ]
            if len(active) < 2:
                break
            busiest = max(active, key=lambda n: (n.load, n.name))
            idlest = min(active, key=lambda n: (n.load, n.name))
            if busiest.resident - idlest.resident < 2:
                break
            moved = None
            for tenant_name in sorted(busiest.tenants):
                accel_type = busiest.tenants[tenant_name].accel_type
                if idlest.can_place(accel_type):
                    moved = self.migrate(
                        tenant_name, now=now, destination=idlest.name
                    )
                    break
            if moved is None or not moved.ok:
                break
            moves.append(moved)
        return RebalanceReport(moves=tuple(moves))

    # -- node failure and recovery ----------------------------------------------------

    def crash(self, node_name: str, *, now: Optional[int] = None) -> CrashReport:
        """Crash a node; re-place or cleanly fail every displaced session.

        The relocated body of the old ``FleetService.apply_node_crash``:
        displacement rides the typed evict/place contract, and every
        resolution is a :class:`~repro.fleet.outcomes.Resolution` value.
        """
        service = self.service
        now = self._now(now)
        displaced = service.cluster._crash_node(node_name)
        resolutions: List[Tuple[str, str]] = []
        for placement in displaced:
            session = service._sessions.pop(placement.tenant, None)
            if session is None:  # not ours (defensive; cannot happen today)
                continue
            remaining = max(0, session.depart_ps - now)
            request = session.request
            if service._try_place(request, now, remaining_ps=remaining, replaced=True):
                resolutions.append((placement.tenant, Resolution.REPLACED.value))
            else:
                service._finish(request, Outcome.FAILED_BY_FAULT.value, now)
                service.metrics.record_fault_failure(
                    now_ps=now, tenant=placement.tenant, reason="node_crash"
                )
                resolutions.append(
                    (placement.tenant, Resolution.FAILED_BY_FAULT.value)
                )
        return CrashReport(node=node_name, resolutions=tuple(resolutions))

    def recover(self, node_name: str, *, now: Optional[int] = None) -> FleetNode:
        """Recover a crashed node and immediately drain the wait queue
        into the restored capacity."""
        service = self.service
        now = self._now(now)
        node = service.cluster.recover_node(node_name)
        service._drain(now)
        return node
