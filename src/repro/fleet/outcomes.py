"""One vocabulary for every terminal outcome in the fleet (ISSUE 8).

Before this module, the outcome strings lived as scattered literals:
``ServeResult.outcome_counts`` keys, the fault injector's resolution
tuples, the serve gateway's continue-chain test, and the chaos CLI's JSON
envelopes each spelled their own subset.  Adding live migration (which
introduces ``migrated_completed`` and the per-move resolutions
``migrated`` / ``failed_no_destination``) is exactly the moment the
vocabularies drift apart, so they are now defined once, here, and
imported everywhere.

Two small enums:

* :class:`Outcome` — the *request-terminal* vocabulary: every request that
  enters the serving loop ends in exactly one of these (or a
  ``rejected_<reason>`` string built by :func:`rejected`).
* :class:`Resolution` — the *per-session event* vocabulary used by fleet
  operations (crash displacement, migration) to describe what happened to
  one live session during the operation.

Both subclass ``str`` so existing envelope/JSON comparisons — which pin
byte-identical output across releases — keep seeing the exact same plain
strings.  Dict keys built from these enums serialize unchanged.
"""

from __future__ import annotations

import enum


class Outcome(str, enum.Enum):
    """Terminal outcome of one request through the serving loop."""

    #: Session ran to its scheduled departure on its original node.
    COMPLETED = "completed"
    #: Session was displaced by a node crash, re-placed, and finished.
    REPLACED_COMPLETED = "replaced_completed"
    #: Session was live-migrated at least once and finished.
    MIGRATED_COMPLETED = "migrated_completed"
    #: An accepted session was terminated by an injected fault.
    FAILED_BY_FAULT = "failed_by_fault"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


def rejected(reason: str) -> str:
    """The ``rejected_<reason>`` outcome string for a shed/reject."""
    return f"rejected_{reason}"


#: Outcomes that mean the fleet actually served the session to completion.
#: Priority when several apply: replaced > migrated > completed (a session
#: that was both crashed-off and migrated reports the rarer event).
SERVED_OUTCOMES = (
    Outcome.COMPLETED.value,
    Outcome.REPLACED_COMPLETED.value,
    Outcome.MIGRATED_COMPLETED.value,
)

#: Outcomes of *accepted* requests (the availability denominator).
ACCEPTED_OUTCOMES = SERVED_OUTCOMES + (Outcome.FAILED_BY_FAULT.value,)


class Resolution(str, enum.Enum):
    """What a fleet operation did with one live session."""

    #: Crash displacement: the session found a slot on another node.
    REPLACED = "replaced"
    #: Crash displacement: no headroom anywhere; the session failed.
    FAILED_BY_FAULT = "failed_by_fault"
    #: Live migration: checkpointed, restored elsewhere, still running.
    MIGRATED = "migrated"
    #: Live migration: no eligible destination; the session stayed put.
    FAILED_NO_DESTINATION = "failed_no_destination"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value
