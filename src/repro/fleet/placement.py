"""Pluggable fleet placement policies.

Each policy answers one question: *which node takes this request?*  Slot
selection inside the chosen node then reuses the paper's logic verbatim
(:meth:`repro.cloud.provider.CloudProvider.place`): spatial while an empty
slot of the type exists, temporal onto the least-loaded slot once they run
out.  All policies spill to temporal oversubscription only after every
node's spatial capacity for the type is exhausted, and break ties by node
order so placement is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.errors import ConfigurationError
from repro.fleet.node import FleetNode


class PlacementPolicy:
    """Chooses the node for one request; ``None`` means fleet-saturated."""

    name = "base"

    def choose(self, nodes: Sequence[FleetNode], accel_type: str) -> Optional[FleetNode]:
        raise NotImplementedError

    # -- shared candidate filters ----------------------------------------------------

    @staticmethod
    def spatial(nodes: Sequence[FleetNode], accel_type: str) -> List[FleetNode]:
        """Nodes with an empty physical slot of the type."""
        return [n for n in nodes if n.free_slots(accel_type) > 0]

    @staticmethod
    def temporal(nodes: Sequence[FleetNode], accel_type: str) -> List[FleetNode]:
        """Nodes that can still oversubscribe a slot of the type."""
        return [n for n in nodes if n.can_place(accel_type, oversubscribe=True)]


class FirstFit(PlacementPolicy):
    """The first node (in fleet order) that fits; spatial before temporal."""

    name = "first-fit"

    def choose(self, nodes: Sequence[FleetNode], accel_type: str) -> Optional[FleetNode]:
        spatial = self.spatial(nodes, accel_type)
        if spatial:
            return spatial[0]
        temporal = self.temporal(nodes, accel_type)
        return temporal[0] if temporal else None


class BestFit(PlacementPolicy):
    """The least-loaded node that fits; spatial before temporal."""

    name = "best-fit"

    def choose(self, nodes: Sequence[FleetNode], accel_type: str) -> Optional[FleetNode]:
        spatial = self.spatial(nodes, accel_type)
        if spatial:
            return min(spatial, key=lambda n: n.load)
        temporal = self.temporal(nodes, accel_type)
        if temporal:
            return min(temporal, key=lambda n: n.load)
        return None


class ConfigAffinity(PlacementPolicy):
    """Prefer nodes specialized for the type, spilling to temporal.

    Affinity is the type's share of a node's slots: a node synthesized with
    four AES slots out of six is a better home for AES tenants than one
    carrying a single AES slot, because its same-type pool gives the
    paper's least-loaded temporal spill more room before any tenant's
    share degrades.  Spatial placements go to the highest-affinity node
    with an empty slot; once spatial capacity for the type is gone
    fleet-wide, the spill goes to the highest-affinity node with temporal
    headroom (load breaks affinity ties).
    """

    name = "affinity"

    def choose(self, nodes: Sequence[FleetNode], accel_type: str) -> Optional[FleetNode]:
        spatial = self.spatial(nodes, accel_type)
        if spatial:
            return max(spatial, key=lambda n: (n.affinity(accel_type), -n.load))
        temporal = self.temporal(nodes, accel_type)
        if temporal:
            return max(temporal, key=lambda n: (n.affinity(accel_type), -n.load))
        return None


POLICIES: Dict[str, Type[PlacementPolicy]] = {
    FirstFit.name: FirstFit,
    BestFit.name: BestFit,
    ConfigAffinity.name: ConfigAffinity,
}


def make_policy(name: str) -> PlacementPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown placement policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
