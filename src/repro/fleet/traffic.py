"""Deterministic open-loop tenant traffic for the fleet.

Requests arrive according to a seeded Poisson process whose rate is
expressed as *offered load*: the fraction of the fleet's sustainable
spatial placement rate.  With ``S`` physical slots and a mean session of
``T`` seconds, the fleet can hold ``S`` concurrent tenants, i.e. sustain
``S / T`` placements per second at full spatial occupancy; ``load=0.9``
offers 90% of that, ``load=2.0`` is a 2x overload that admission control
must absorb.  Accelerator types are drawn from a weighted mix and session
lifetimes from an exponential distribution.

Everything is driven by one ``numpy.random.RandomState(seed)`` in a single
pass (the same discipline as :mod:`repro.workloads.datagen`), so a seed
fully determines the request stream — and therefore, policies being
deterministic, the fleet's entire placement trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.clock import ms

#: Default accelerator mix: streaming crypto/DSP heavy, with a tail of
#: microbenchmark tenants — all types the default node templates offer.
DEFAULT_MIX: Dict[str, float] = {
    "AES": 0.25,
    "SHA": 0.2,
    "MD5": 0.15,
    "FIR": 0.15,
    "MB": 0.15,
    "LL": 0.1,
}


@dataclass(frozen=True)
class TenantRequest:
    """One tenant asking for one accelerator for one session.

    ``tenant_class`` names the SLO class the tenant belongs to (see
    :mod:`repro.serve.slo`); the default keeps batch traffic classless.
    """

    request_id: int
    tenant: str
    accel_type: str
    arrival_ps: int
    session_ps: int
    tenant_class: str = "default"


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of the offered traffic, independent of fleet size."""

    load: float = 0.9  # fraction of the fleet's sustainable placement rate
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    mean_session_ps: int = ms(20)
    min_session_ps: int = ms(1)
    #: Optional SLO-class mix (e.g. ``{"gold": .2, "silver": .3,
    #: "bronze": .5}``).  ``None`` keeps every request in the classless
    #: ``"default"`` class AND keeps the RNG stream byte-identical to
    #: profiles that predate this field: class picks are drawn *after*
    #: the gap/type/session draws, so enabling classes never perturbs
    #: arrival times, accelerator types, or session lengths.
    class_mix: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ConfigurationError("offered load must be positive")
        if not self.mix or any(w <= 0 for w in self.mix.values()):
            raise ConfigurationError("traffic mix needs positive weights")
        if self.min_session_ps <= 0 or self.mean_session_ps < self.min_session_ps:
            raise ConfigurationError("invalid session lifetime parameters")
        if self.class_mix is not None and (
            not self.class_mix or any(w <= 0 for w in self.class_mix.values())
        ):
            raise ConfigurationError("class mix needs positive weights")


class TrafficGenerator:
    """Seeded generator of open-loop request streams."""

    def __init__(
        self,
        profile: TrafficProfile,
        *,
        fleet_slots: int,
        seed: int = 0,
    ) -> None:
        if fleet_slots < 1:
            raise ConfigurationError("fleet must have at least one slot")
        self.profile = profile
        self.fleet_slots = fleet_slots
        self.seed = seed

    @property
    def mean_interarrival_ps(self) -> float:
        """Open-loop spacing for the profile's offered load."""
        sustainable_rate = self.fleet_slots / self.profile.mean_session_ps
        return 1.0 / (sustainable_rate * self.profile.load)

    def generate(self, count: int) -> List[TenantRequest]:
        """``count`` requests, bit-for-bit stable for a given seed."""
        if count < 1:
            raise ConfigurationError("request count must be positive")
        rng = np.random.RandomState(self.seed)
        types, weights = self._normalized_mix()
        gaps = rng.exponential(self.mean_interarrival_ps, size=count)
        picks = rng.choice(len(types), size=count, p=weights)
        sessions = rng.exponential(self.profile.mean_session_ps, size=count)
        classes, class_picks = self._class_picks(rng, count)

        requests: List[TenantRequest] = []
        now = 0
        for index in range(count):
            now += max(1, int(round(gaps[index])))
            session = max(self.profile.min_session_ps, int(round(sessions[index])))
            requests.append(
                TenantRequest(
                    request_id=index,
                    tenant=f"t{index:05d}",
                    accel_type=types[int(picks[index])],
                    arrival_ps=now,
                    session_ps=session,
                    tenant_class=(
                        classes[int(class_picks[index])]
                        if class_picks is not None
                        else "default"
                    ),
                )
            )
        return requests

    def generate_arrays(self, count: int) -> Dict[str, object]:
        """The same request stream as :meth:`generate`, as numpy arrays.

        The analytic capacity model (:mod:`repro.analytic.capacity`)
        consumes the raw arrays instead of 10^6 ``TenantRequest``
        objects.  Draw order and rounding match :meth:`generate` exactly
        — ``numpy.rint`` and Python's ``round`` both round half to even
        — so ``generate(n)[i]`` equals row ``i`` of these arrays (a
        property ``tests/test_capacity.py`` asserts).

        Returns ``{"arrival_ps", "type_index", "session_ps",
        "class_index", "types", "classes"}``; ``class_index`` is all
        zeros and ``classes == ["default"]`` when the profile carries no
        class mix.
        """
        if count < 1:
            raise ConfigurationError("request count must be positive")
        rng = np.random.RandomState(self.seed)
        types, weights = self._normalized_mix()
        gaps = rng.exponential(self.mean_interarrival_ps, size=count)
        picks = rng.choice(len(types), size=count, p=weights)
        sessions = rng.exponential(self.profile.mean_session_ps, size=count)
        classes, class_picks = self._class_picks(rng, count)
        arrival = np.cumsum(
            np.maximum(1, np.rint(gaps).astype(np.int64)), dtype=np.int64
        )
        session = np.maximum(
            self.profile.min_session_ps, np.rint(sessions).astype(np.int64)
        )
        if class_picks is None:
            classes = ["default"]
            class_picks = np.zeros(count, dtype=np.int64)
        return {
            "arrival_ps": arrival,
            "type_index": picks.astype(np.int64),
            "session_ps": session,
            "class_index": class_picks.astype(np.int64),
            "types": list(types),
            "classes": list(classes),
        }

    def _class_picks(
        self, rng: np.random.RandomState, count: int
    ) -> Tuple[Optional[List[str]], Optional[np.ndarray]]:
        """Class assignment draws, strictly *after* the legacy draws."""
        if self.profile.class_mix is None:
            return None, None
        names = sorted(self.profile.class_mix)
        weights = np.array([self.profile.class_mix[c] for c in names], dtype=float)
        picks = rng.choice(len(names), size=count, p=weights / weights.sum())
        return names, picks

    def _normalized_mix(self) -> Tuple[List[str], np.ndarray]:
        types = sorted(self.profile.mix)
        weights = np.array([self.profile.mix[t] for t in types], dtype=float)
        return types, weights / weights.sum()
