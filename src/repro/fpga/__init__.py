"""FPGA substrate: shell, AFU sockets, resource and synthesis models."""

from repro.fpga.afu import AfuSocket, DmaEngine, RegisterFile
from repro.fpga.resources import (
    AUDITOR_FOOTPRINT,
    MUX_NODE_FOOTPRINT,
    SHELL_FOOTPRINT,
    VCU_FOOTPRINT,
    ResourceBudget,
    ResourceFootprint,
    SynthesisCharacter,
    monitor_footprint,
)
from repro.fpga.shell import OPTIMUS_MAGIC, SHELL_MMIO_BYTES, Shell
from repro.fpga.synthesis import (
    MuxArrangement,
    SynthesisReport,
    flat_mux_fmax_mhz,
    plan_mux_tree,
    replicated_footprint,
    synthesize,
)

__all__ = [
    "AUDITOR_FOOTPRINT",
    "AfuSocket",
    "DmaEngine",
    "MUX_NODE_FOOTPRINT",
    "MuxArrangement",
    "OPTIMUS_MAGIC",
    "RegisterFile",
    "ResourceBudget",
    "ResourceFootprint",
    "SHELL_FOOTPRINT",
    "SHELL_MMIO_BYTES",
    "Shell",
    "SynthesisCharacter",
    "SynthesisReport",
    "VCU_FOOTPRINT",
    "flat_mux_fmax_mhz",
    "monitor_footprint",
    "plan_mux_tree",
    "replicated_footprint",
    "synthesize",
]
