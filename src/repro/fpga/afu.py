"""Accelerator Functional Unit (AFU) plumbing.

An AFU socket is one *physical accelerator* slot on the FPGA: a register
file reachable over MMIO, a DMA engine that issues CCI-P requests, a reset
line, and a clock domain.  Behavioral accelerator models from
:mod:`repro.accel` run *in* a socket; the hardware monitor (or, for the
pass-through baseline, the shell directly) sits between the socket's DMA
engine and system memory.

The DMA engine models the two properties that shape every throughput
number in the paper:

* **closed-loop issue** — a real CCI-P master has a bounded number of
  outstanding requests; fairness between accelerators emerges from this
  plus round-robin arbitration, not from any explicit bandwidth reservation;
* **issue throttling** — under OPTIMUS the multiplexer tree accepts one
  request every two cycles from each accelerator (§6.3), under pass-through
  one per cycle.  When the IOMMU reports a speculative same-region streak
  the throttle relaxes to back-to-back issue, reproducing §6.5's anomaly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError, MmioFault
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import Clock
from repro.sim.engine import Engine, Future
from repro.sim.packet import (
    CACHE_LINE_BYTES,
    AddressSpace,
    Packet,
    PacketKind,
)
from repro.sim.stats import BandwidthMeter, LatencyRecorder

#: A DMA sink accepts ``(packet, channel, on_response)`` — the auditor under
#: OPTIMUS, the shell under pass-through.
DmaSink = Callable[[Packet, VirtualChannel, Callable[[Optional[Packet]], None]], None]


class RegisterFile:
    """A 4 KB MMIO page of 64-bit registers, keyed by byte offset.

    Registers may carry side-effect hooks (``on_write``); registers without
    hooks are idempotent "application registers" in the paper's taxonomy
    (§4.2), which the hypervisor may cache and replay during scheduling.
    """

    PAGE_BYTES = 4096

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[int, int] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}

    def _check(self, offset: int) -> None:
        if offset < 0 or offset >= self.PAGE_BYTES or offset % 8:
            raise MmioFault(f"{self.name}: bad register offset {offset:#x}")

    def define(self, offset: int, *, on_write: Optional[Callable[[int], None]] = None,
               on_read: Optional[Callable[[], int]] = None, initial: int = 0) -> None:
        self._check(offset)
        self._values[offset] = initial
        if on_write is not None:
            self._write_hooks[offset] = on_write
        if on_read is not None:
            self._read_hooks[offset] = on_read

    def write(self, offset: int, value: int) -> None:
        self._check(offset)
        self._values[offset] = value & (2**64 - 1)
        hook = self._write_hooks.get(offset)
        if hook is not None:
            hook(value)

    def read(self, offset: int) -> int:
        self._check(offset)
        hook = self._read_hooks.get(offset)
        if hook is not None:
            value = hook() & (2**64 - 1)
            self._values[offset] = value
            return value
        return self._values.get(offset, 0)

    def snapshot(self) -> Dict[int, int]:
        """All raw values — used when caching application registers."""
        return dict(self._values)

    def restore(self, values: Dict[int, int]) -> None:
        for offset, value in values.items():
            self._values[offset] = value

    def clear(self) -> None:
        self._values = {offset: 0 for offset in self._values}


class DmaEngine:
    """Closed-loop CCI-P request source for one physical accelerator."""

    def __init__(
        self,
        engine: Engine,
        accel_id: int,
        *,
        clock: Clock,
        issue_interval_cycles: int,
        max_outstanding: int = 64,
        spec_probe: Optional[Callable[[], bool]] = None,
    ) -> None:
        if issue_interval_cycles < 1:
            raise ConfigurationError("issue interval must be >= 1 cycle")
        if max_outstanding < 1:
            raise ConfigurationError("need at least one outstanding slot")
        self.engine = engine
        self.accel_id = accel_id
        self.clock = clock
        self.issue_interval_cycles = issue_interval_cycles
        self.max_outstanding = max_outstanding
        self.spec_probe = spec_probe
        self.sink: Optional[DmaSink] = None
        self._outstanding = 0
        self._next_issue_ps = 0
        self._wakeup_pending = False
        self._waiting: Deque[Tuple[Packet, VirtualChannel, Future]] = deque()
        self.read_meter = BandwidthMeter(engine, f"afu{accel_id}.read")
        self.write_meter = BandwidthMeter(engine, f"afu{accel_id}.write")
        self.latency = LatencyRecorder(f"afu{accel_id}.latency")
        self.dropped = 0

    # -- accelerator-facing API ------------------------------------------------

    def read(
        self,
        address: int,
        size: int = CACHE_LINE_BYTES,
        *,
        channel: VirtualChannel = VirtualChannel.VA,
    ) -> Future:
        """Issue a DMA read; the future resolves to bytes (or None if dropped)."""
        packet = Packet(
            kind=PacketKind.DMA_READ_REQ,
            address=address,
            size=size,
            space=AddressSpace.GVA,
            accel_id=self.accel_id,
        )
        return self._enqueue(packet, channel)

    def write(
        self,
        address: int,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        *,
        channel: VirtualChannel = VirtualChannel.VA,
    ) -> Future:
        """Issue a DMA write; the future resolves to True (False if dropped)."""
        if size is None:
            size = len(data) if data is not None else CACHE_LINE_BYTES
        packet = Packet(
            kind=PacketKind.DMA_WRITE_REQ,
            address=address,
            size=size,
            data=data,
            space=AddressSpace.GVA,
            accel_id=self.accel_id,
        )
        return self._enqueue(packet, channel)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    # -- issue machinery -----------------------------------------------------------

    def _enqueue(self, packet: Packet, channel: VirtualChannel) -> Future:
        if self.sink is None:
            raise ConfigurationError("DMA engine is not connected to a datapath")
        future = self.engine.future()
        self._waiting.append((packet, channel, future))
        self._try_issue()
        return future

    def _issue_interval_ps(self, packet: Packet) -> int:
        interval = self.issue_interval_cycles
        if interval > 1 and self.spec_probe is not None and self.spec_probe():
            interval = 1  # speculative streak: back-to-back issue (§6.5)
        # Multi-line requests occupy the issue port once per cache line, so
        # aggregation cannot cheat the per-line throttle of §6.3.
        lines = max(1, (packet.size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES)
        return self.clock.cycles(interval * lines)

    def _schedule_wakeup(self, at_ps: int) -> None:
        # At most one pending wakeup: enqueues while the throttle is armed
        # must not pile O(queue-depth) timers onto the event queue.
        if self._wakeup_pending:
            return
        self._wakeup_pending = True
        self.engine.call_at(max(at_ps, self.engine.now), self._wakeup)

    def _wakeup(self) -> None:
        self._wakeup_pending = False
        self._try_issue()

    def _try_issue(self) -> None:
        while self._waiting and self._outstanding < self.max_outstanding:
            now = self.engine.now
            if now < self._next_issue_ps:
                self._schedule_wakeup(self._next_issue_ps)
                return
            packet, channel, future = self._waiting.popleft()
            self._outstanding += 1
            self._next_issue_ps = now + self._issue_interval_ps(packet)
            packet.issued_at_ps = now
            assert self.sink is not None
            self.sink(packet, channel, lambda resp, p=packet, f=future: self._complete(p, f, resp))

    def _complete(self, request: Packet, future: Future, response: Optional[Packet]) -> None:
        self._outstanding -= 1
        self.latency.record(self.engine.now - request.issued_at_ps)
        if response is None:
            self.dropped += 1
            future.set_result(None if request.kind is PacketKind.DMA_READ_REQ else False)
        elif request.kind is PacketKind.DMA_READ_REQ:
            self.read_meter.record(request.size)
            future.set_result(response.data)
        else:
            self.write_meter.record(request.size)
            future.set_result(True)
        self._try_issue()

    def drain(self) -> Future:
        """A future that completes when no requests are in flight or queued.

        The preemption protocol waits on this: "once all in-flight
        transactions have been processed, the accelerator notifies OPTIMUS
        that context has been successfully saved" (§4.2).
        """
        future = self.engine.future()

        def poll() -> None:
            if self._outstanding == 0 and not self._waiting:
                future.set_result(None)
            else:
                self.engine.call_after(self.clock.cycles(8), poll)

        poll()
        return future

    def abandon_queued(self) -> int:
        """Drop not-yet-issued requests (used on forcible reset)."""
        dropped = len(self._waiting)
        for _packet, _channel, future in self._waiting:
            if not future.done():
                future.set_result(None)
        self._waiting.clear()
        return dropped

    def reset_meters(self) -> None:
        self.read_meter.reset()
        self.write_meter.reset()
        self.latency.reset()


class AfuSocket:
    """One physical accelerator slot: registers + DMA engine + reset line."""

    def __init__(
        self,
        engine: Engine,
        accel_id: int,
        *,
        clock: Clock,
        issue_interval_cycles: int,
        max_outstanding: int = 64,
        spec_probe: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.engine = engine
        self.accel_id = accel_id
        self.clock = clock
        self.registers = RegisterFile(f"afu{accel_id}.regs")
        self.dma = DmaEngine(
            engine,
            accel_id,
            clock=clock,
            issue_interval_cycles=issue_interval_cycles,
            max_outstanding=max_outstanding,
            spec_probe=spec_probe,
        )
        self.reset_count = 0

    def connect(self, sink: DmaSink) -> None:
        self.dma.sink = sink

    def reset(self) -> None:
        """Pull the reset line: clear registers and queued DMAs.

        The VCU's reset table drives this on VM context switches to clear
        state for isolation (§4.1).
        """
        self.reset_count += 1
        self.registers.clear()
        self.dma.abandon_queued()

    def mmio_write(self, offset: int, value: int) -> None:
        self.registers.write(offset, value)

    def mmio_read(self, offset: int) -> int:
        return self.registers.read(offset)
