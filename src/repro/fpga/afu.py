"""Accelerator Functional Unit (AFU) plumbing.

An AFU socket is one *physical accelerator* slot on the FPGA: a register
file reachable over MMIO, a DMA engine that issues CCI-P requests, a reset
line, and a clock domain.  Behavioral accelerator models from
:mod:`repro.accel` run *in* a socket; the hardware monitor (or, for the
pass-through baseline, the shell directly) sits between the socket's DMA
engine and system memory.

The DMA engine models the two properties that shape every throughput
number in the paper:

* **closed-loop issue** — a real CCI-P master has a bounded number of
  outstanding requests; fairness between accelerators emerges from this
  plus round-robin arbitration, not from any explicit bandwidth reservation;
* **issue throttling** — under OPTIMUS the multiplexer tree accepts one
  request every two cycles from each accelerator (§6.3), under pass-through
  one per cycle.  When the IOMMU reports a speculative same-region streak
  the throttle relaxes to back-to-back issue, reproducing §6.5's anomaly.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, MmioFault
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import Clock
from repro.sim.engine import Engine, Future
from repro.sim.packet import (
    CACHE_LINE_BYTES,
    AddressSpace,
    Packet,
    PacketKind,
    make_dma_request,
)
from repro.sim.stats import BandwidthMeter, LatencyRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.fastpath import FastPath

#: A DMA sink accepts ``(packet, channel, on_response)`` — the auditor under
#: OPTIMUS, the shell under pass-through.
DmaSink = Callable[[Packet, VirtualChannel, Callable[[Optional[Packet]], None]], None]


class RegisterFile:
    """A 4 KB MMIO page of 64-bit registers, keyed by byte offset.

    Registers may carry side-effect hooks (``on_write``); registers without
    hooks are idempotent "application registers" in the paper's taxonomy
    (§4.2), which the hypervisor may cache and replay during scheduling.
    """

    PAGE_BYTES = 4096

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[int, int] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}

    def _check(self, offset: int) -> None:
        if offset < 0 or offset >= self.PAGE_BYTES or offset % 8:
            raise MmioFault(f"{self.name}: bad register offset {offset:#x}")

    def define(self, offset: int, *, on_write: Optional[Callable[[int], None]] = None,
               on_read: Optional[Callable[[], int]] = None, initial: int = 0) -> None:
        self._check(offset)
        self._values[offset] = initial
        if on_write is not None:
            self._write_hooks[offset] = on_write
        if on_read is not None:
            self._read_hooks[offset] = on_read

    def write(self, offset: int, value: int) -> None:
        self._check(offset)
        self._values[offset] = value & (2**64 - 1)
        hook = self._write_hooks.get(offset)
        if hook is not None:
            hook(value)

    def read(self, offset: int) -> int:
        self._check(offset)
        hook = self._read_hooks.get(offset)
        if hook is not None:
            value = hook() & (2**64 - 1)
            self._values[offset] = value
            return value
        return self._values.get(offset, 0)

    def snapshot(self) -> Dict[int, int]:
        """All raw values — used when caching application registers."""
        return dict(self._values)

    def restore(self, values: Dict[int, int]) -> None:
        for offset, value in values.items():
            self._values[offset] = value

    def clear(self) -> None:
        self._values = {offset: 0 for offset in self._values}


class DmaEngine:
    """Closed-loop CCI-P request source for one physical accelerator."""

    def __init__(
        self,
        engine: Engine,
        accel_id: int,
        *,
        clock: Clock,
        issue_interval_cycles: int,
        max_outstanding: int = 64,
        spec_probe: Optional[Callable[[], bool]] = None,
    ) -> None:
        if issue_interval_cycles < 1:
            raise ConfigurationError("issue interval must be >= 1 cycle")
        if max_outstanding < 1:
            raise ConfigurationError("need at least one outstanding slot")
        self.engine = engine
        self.accel_id = accel_id
        self.clock = clock
        self.issue_interval_cycles = issue_interval_cycles
        self.max_outstanding = max_outstanding
        self.spec_probe = spec_probe
        # Precomputed throttle delays for the dominant single-line case.
        self._interval_ps = clock.cycles(issue_interval_cycles)
        self._spec_interval_ps = clock.cycles(1)
        self.sink: Optional[DmaSink] = None
        self._outstanding = 0
        self._next_issue_ps = 0
        self._wakeup_pending = False
        self._waiting: Deque[Tuple[Packet, VirtualChannel, Future]] = deque()
        #: The simulator fast path, attached by the platform builder on the
        #: pass-through datapath when ``params.fast_path`` is on.  ``None``
        #: means every request takes the reference per-line path.
        self.fastpath: Optional["FastPath"] = None
        #: Completion times (a min-heap) of committed burst lines that hold
        #: window slots but have no per-line completion events; slots free
        #: as simulated time passes them (:meth:`_reap_virtual`).
        self._virtual_completions: List[int] = []
        self.read_meter = BandwidthMeter(engine, f"afu{accel_id}.read")
        self.write_meter = BandwidthMeter(engine, f"afu{accel_id}.write")
        self.latency = LatencyRecorder(f"afu{accel_id}.latency")
        self.dropped = 0

    # -- accelerator-facing API ------------------------------------------------

    def read(
        self,
        address: int,
        size: int = CACHE_LINE_BYTES,
        *,
        channel: VirtualChannel = VirtualChannel.VA,
        coalesced: bool = False,
    ) -> Future:
        """Issue a DMA read; the future resolves to bytes (or None if dropped).

        With ``coalesced=True`` a multi-line request is a *burst*: eligible
        bursts commit on the simulator fast path, the rest are split into
        the exact per-line packets the reference path would issue.
        """
        packet = make_dma_request(
            PacketKind.DMA_READ_REQ, address, size, self.accel_id, coalesced=coalesced
        )
        return self._enqueue(packet, channel)

    def write(
        self,
        address: int,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        *,
        channel: VirtualChannel = VirtualChannel.VA,
        coalesced: bool = False,
    ) -> Future:
        """Issue a DMA write; the future resolves to True (False if dropped).

        Write bursts are always split (never committed): posted-write
        pipelines drain per line, and the fast path must not change that
        granularity.
        """
        if size is None:
            size = len(data) if data is not None else CACHE_LINE_BYTES
        packet = make_dma_request(
            PacketKind.DMA_WRITE_REQ,
            address,
            size,
            self.accel_id,
            data=data,
            coalesced=coalesced,
        )
        return self._enqueue(packet, channel)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    # -- issue machinery -----------------------------------------------------------

    def _enqueue(self, packet: Packet, channel: VirtualChannel) -> Future:
        if self.sink is None:
            raise ConfigurationError("DMA engine is not connected to a datapath")
        if packet.coalesced:
            packet.coalesced = False
            if self.fastpath is not None and not self._waiting:
                committed = self.fastpath.try_commit(self, packet, channel)
                if committed is not None:
                    return committed
            if packet.size > CACHE_LINE_BYTES:
                return self._split_burst(packet, channel)
            # A single-line burst that could not commit is just an ordinary
            # request; fall through to the reference path.
        future = self.engine.future()
        self._waiting.append((packet, channel, future))
        self._try_issue()
        return future

    def _split_burst(self, packet: Packet, channel: VirtualChannel) -> Future:
        """Decompose a burst into the reference path's per-line packets.

        The sub-requests are enqueued in order at the current instant —
        exactly what a non-coalescing caller would have done — and the
        returned future resolves when the last of them does: the joined
        payload for reads (dropped lines zero-filled, matching the
        streaming pipeline's tolerance), all-acknowledged for writes.
        """
        parts: List[Future] = []
        for offset in range(0, packet.size, CACHE_LINE_BYTES):
            sub_size = min(CACHE_LINE_BYTES, packet.size - offset)
            sub = make_dma_request(
                packet.kind,
                packet.address + offset,
                sub_size,
                packet.accel_id,
                data=(
                    packet.data[offset : offset + sub_size]
                    if packet.data is not None
                    else None
                ),
            )
            parts.append(self._enqueue(sub, channel))
        aggregate = self.engine.future()
        remaining = [len(parts)]
        is_read = packet.kind is PacketKind.DMA_READ_REQ

        def on_part(_done: Future) -> None:
            remaining[0] -= 1
            if remaining[0]:
                return
            if is_read:
                aggregate.set_result(
                    b"".join(
                        part.result()
                        if part.result() is not None
                        else bytes(min(CACHE_LINE_BYTES, packet.size - i * CACHE_LINE_BYTES))
                        for i, part in enumerate(parts)
                    )
                )
            else:
                aggregate.set_result(all(part.result() for part in parts))

        for part in parts:
            part.add_done_callback(on_part)
        return aggregate

    def _issue_interval_ps(self, packet: Packet) -> int:
        interval = self.issue_interval_cycles
        if interval > 1 and self.spec_probe is not None and self.spec_probe():
            interval = 1  # speculative streak: back-to-back issue (§6.5)
            single = self._spec_interval_ps
        else:
            single = self._interval_ps
        if packet.size <= CACHE_LINE_BYTES:
            return single
        # Multi-line requests occupy the issue port once per cache line, so
        # aggregation cannot cheat the per-line throttle of §6.3.
        lines = (packet.size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES
        return self.clock.cycles(interval * lines)

    def _schedule_wakeup(self, at_ps: int) -> None:
        # At most one pending wakeup: enqueues while the throttle is armed
        # must not pile O(queue-depth) timers onto the event queue.
        if self._wakeup_pending:
            return
        self._wakeup_pending = True
        now = self.engine.now
        self.engine.call_at(at_ps if at_ps > now else now, self._wakeup)

    def _wakeup(self) -> None:
        self._wakeup_pending = False
        self._try_issue()

    def _reap_virtual(self) -> None:
        """Release window slots of committed burst lines whose completion
        time has passed.  Idempotent; callers may invoke it freely."""
        vq = self._virtual_completions
        now = self.engine.now
        while vq and vq[0] <= now:
            heapq.heappop(vq)
            self._outstanding -= 1

    def _try_issue(self) -> None:
        if self._virtual_completions:
            self._reap_virtual()
        waiting = self._waiting
        max_outstanding = self.max_outstanding
        sink = self.sink
        engine = self.engine
        while waiting and self._outstanding < max_outstanding:
            now = engine.now
            if now < self._next_issue_ps:
                self._schedule_wakeup(self._next_issue_ps)
                return
            packet, channel, future = waiting.popleft()
            self._outstanding += 1
            self._next_issue_ps = now + self._issue_interval_ps(packet)
            packet.issued_at_ps = now
            sink(packet, channel, lambda resp, p=packet, f=future: self._complete(p, f, resp))
        if (
            waiting
            and self._outstanding >= max_outstanding
            and self._virtual_completions
        ):
            # Window full with virtual lines in flight: no completion event
            # will re-kick us for those, so arm a wakeup at the first slot
            # release (a real completion arriving earlier re-kicks anyway).
            self._schedule_wakeup(self._virtual_completions[0])

    def _complete(self, request: Packet, future: Future, response: Optional[Packet]) -> None:
        self._outstanding -= 1
        self.latency.record(self.engine.now - request.issued_at_ps)
        if response is None:
            self.dropped += 1
            future.set_result(None if request.kind is PacketKind.DMA_READ_REQ else False)
        elif request.kind is PacketKind.DMA_READ_REQ:
            self.read_meter.record(request.size)
            future.set_result(response.data)
        else:
            self.write_meter.record(request.size)
            future.set_result(True)
        self._try_issue()

    def drain(self) -> Future:
        """A future that completes when no requests are in flight or queued.

        The preemption protocol waits on this: "once all in-flight
        transactions have been processed, the accelerator notifies OPTIMUS
        that context has been successfully saved" (§4.2).
        """
        future = self.engine.future()

        def poll() -> None:
            self._reap_virtual()
            if self._outstanding == 0 and not self._waiting:
                future.set_result(None)
            else:
                self.engine.call_after(self.clock.cycles(8), poll)

        poll()
        return future

    def abandon_queued(self) -> int:
        """Drop not-yet-issued requests (used on forcible reset)."""
        dropped = len(self._waiting)
        for _packet, _channel, future in self._waiting:
            if not future.done():
                future.set_result(None)
        self._waiting.clear()
        return dropped

    def reset_meters(self) -> None:
        self.read_meter.reset()
        self.write_meter.reset()
        self.latency.reset()


class AfuSocket:
    """One physical accelerator slot: registers + DMA engine + reset line."""

    def __init__(
        self,
        engine: Engine,
        accel_id: int,
        *,
        clock: Clock,
        issue_interval_cycles: int,
        max_outstanding: int = 64,
        spec_probe: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.engine = engine
        self.accel_id = accel_id
        self.clock = clock
        self.registers = RegisterFile(f"afu{accel_id}.regs")
        self.dma = DmaEngine(
            engine,
            accel_id,
            clock=clock,
            issue_interval_cycles=issue_interval_cycles,
            max_outstanding=max_outstanding,
            spec_probe=spec_probe,
        )
        self.reset_count = 0

    def connect(self, sink: DmaSink) -> None:
        self.dma.sink = sink

    def reset(self) -> None:
        """Pull the reset line: clear registers and queued DMAs.

        The VCU's reset table drives this on VM context switches to clear
        state for isolation (§4.1).
        """
        self.reset_count += 1
        self.registers.clear()
        self.dma.abandon_queued()

    def mmio_write(self, offset: int, value: int) -> None:
        self.registers.write(offset, value)

    def mmio_read(self, offset: int) -> int:
        return self.registers.read(offset)
