"""FPGA resource accounting (ALMs and BRAM).

Table 2 of the paper reports utilization as a percentage of the Arria 10's
total Adaptive Logic Modules and Block RAM, so this model works directly
in percentage points.  A :class:`ResourceFootprint` is attached to the
shell, to each hardware-monitor component, and to each benchmark
accelerator (single-instance, pass-through column of Table 2); the
synthesis model (:mod:`repro.fpga.synthesis`) scales instance counts and
adds routing effects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResourceFootprint:
    """Utilization of one component, in percent of device totals."""

    alm_pct: float
    bram_pct: float

    def __add__(self, other: "ResourceFootprint") -> "ResourceFootprint":
        return ResourceFootprint(self.alm_pct + other.alm_pct, self.bram_pct + other.bram_pct)

    def __mul__(self, factor: float) -> "ResourceFootprint":
        return ResourceFootprint(self.alm_pct * factor, self.bram_pct * factor)

    __rmul__ = __mul__

    def fits_with(self, *others: "ResourceFootprint") -> bool:
        total = self
        for other in others:
            total = total + other
        return total.alm_pct <= 100.0 and total.bram_pct <= 100.0


class SynthesisCharacter(enum.Enum):
    """How a design behaves when replicated, per Table 2's three regimes.

    * NORMAL  — replication costs slightly more than N x (routing pressure:
      "the synthesizer must consume extra resources in order to route
      signals ... under timing requirements").
    * SIMPLE  — small designs the optimizer packs efficiently (MemBench
      "only uses 6x the number of ALMs" at 8 instances).
    * TRIVIAL — designs so small that replicating them lets the synthesizer
      optimize *shared shell logic*, yielding a net decrease (LinkedList's
      negative ALM delta in Table 2).
    """

    NORMAL = "normal"
    SIMPLE = "simple"
    TRIVIAL = "trivial"


# Fixed platform components (Table 2, identical in PT and OPTIMUS columns).
SHELL_FOOTPRINT = ResourceFootprint(alm_pct=23.44, bram_pct=6.57)

# Hardware-monitor decomposition.  Table 2 reports the assembled monitor for
# 8 accelerators at 6.16% ALM / 0.48% BRAM; we split that among the VCU,
# 8 auditors, and the 7 nodes of a 3-level binary tree so that differently
# sized monitors (ablations) are costed consistently.
VCU_FOOTPRINT = ResourceFootprint(alm_pct=1.00, bram_pct=0.30)
AUDITOR_FOOTPRINT = ResourceFootprint(alm_pct=0.40, bram_pct=0.0225)
MUX_NODE_FOOTPRINT = ResourceFootprint(alm_pct=0.28, bram_pct=0.0)


def monitor_footprint(n_accelerators: int, mux_nodes: int) -> ResourceFootprint:
    """Total hardware-monitor footprint for a given configuration."""
    if n_accelerators < 1 or mux_nodes < 0:
        raise ConfigurationError("invalid monitor configuration")
    return (
        VCU_FOOTPRINT
        + n_accelerators * AUDITOR_FOOTPRINT
        + mux_nodes * MUX_NODE_FOOTPRINT
    )


class ResourceBudget:
    """Tracks allocated resources on one FPGA and rejects over-subscription."""

    def __init__(self) -> None:
        self._components: list[tuple[str, ResourceFootprint]] = []

    def allocate(self, name: str, footprint: ResourceFootprint) -> None:
        if not self.remaining_after(footprint):
            raise ConfigurationError(
                f"component {name!r} does not fit: "
                f"ALM {self.alm_pct + footprint.alm_pct:.2f}%, "
                f"BRAM {self.bram_pct + footprint.bram_pct:.2f}%"
            )
        self._components.append((name, footprint))

    def remaining_after(self, footprint: ResourceFootprint) -> bool:
        return (
            self.alm_pct + footprint.alm_pct <= 100.0
            and self.bram_pct + footprint.bram_pct <= 100.0
        )

    @property
    def alm_pct(self) -> float:
        return sum(fp.alm_pct for _name, fp in self._components)

    @property
    def bram_pct(self) -> float:
        return sum(fp.bram_pct for _name, fp in self._components)

    def breakdown(self) -> dict[str, ResourceFootprint]:
        result: dict[str, ResourceFootprint] = {}
        for name, footprint in self._components:
            if name in result:
                result[name] = result[name] + footprint
            else:
                result[name] = footprint
        return result
