"""The FPGA shell: the manufacturer-provided IO interface (§2.1).

The shell terminates CCI-P on the FPGA side.  Host MMIO arrives here and
is dispatched either to the shell's own feature registers, or — for
everything above the shell window — to whatever the FPGA was configured
with: the OPTIMUS hardware monitor, or a single accelerator in the
pass-through baseline.

On the data plane the shell forwards accelerator DMA requests to the
memory system, adding its (small) pipeline latency.  Under OPTIMUS the
packets it sees have already been offset into IOVA space by an auditor;
under pass-through the shell relabels GVA as IOVA unchanged, modeling a
vIOMMU-backed identity between the guest process address space and the IO
virtual space (§6.1 Baseline).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.errors import MmioFault
from repro.interconnect.channel_selector import VirtualChannel
from repro.interconnect.topology import MemorySystem
from repro.sim.engine import Engine
from repro.sim.packet import AddressSpace, Packet

#: Size of the shell's own MMIO window at the base of the BAR (§5).
SHELL_MMIO_BYTES = 0x1000

#: Shell feature registers (offsets within the shell window).
REG_DEVICE_ID = 0x000
REG_NUM_ACCELERATORS = 0x008
REG_OPTIMUS_MAGIC = 0x010

#: Value of REG_OPTIMUS_MAGIC when an OPTIMUS-compatible monitor is loaded.
OPTIMUS_MAGIC = 0x4F5054494D5553  # "OPTIMUS"


class MmioTarget(Protocol):
    """Anything that can terminate MMIO above the shell window."""

    def mmio_write(self, offset: int, value: int) -> None: ...

    def mmio_read(self, offset: int) -> int: ...


class Shell:
    """The CCI-P shell for one FPGA."""

    def __init__(
        self,
        engine: Engine,
        memory: MemorySystem,
        *,
        latency_ps: int,
        device_id: int = 0xA10,
    ) -> None:
        self.engine = engine
        self.memory = memory
        self.latency_ps = latency_ps
        self.device_id = device_id
        self._target: Optional[MmioTarget] = None
        self._num_accelerators = 0

    # -- configuration ("loading a bitstream") -----------------------------------

    def configure(self, target: MmioTarget, num_accelerators: int) -> None:
        """Load a configuration: the monitor (OPTIMUS) or one AFU (PT)."""
        self._target = target
        self._num_accelerators = num_accelerators

    @property
    def configured(self) -> bool:
        return self._target is not None

    # -- MMIO control plane --------------------------------------------------------

    def mmio_write(self, address: int, value: int) -> None:
        if address < SHELL_MMIO_BYTES:
            raise MmioFault(f"shell registers are read-only (write to {address:#x})")
        if self._target is None:
            raise MmioFault("FPGA is not configured")
        self._target.mmio_write(address - SHELL_MMIO_BYTES, value)

    def mmio_read(self, address: int) -> int:
        if address < SHELL_MMIO_BYTES:
            return self._read_shell_register(address)
        if self._target is None:
            raise MmioFault("FPGA is not configured")
        return self._target.mmio_read(address - SHELL_MMIO_BYTES)

    def _read_shell_register(self, offset: int) -> int:
        if offset == REG_DEVICE_ID:
            return self.device_id
        if offset == REG_NUM_ACCELERATORS:
            return self._num_accelerators
        if offset == REG_OPTIMUS_MAGIC:
            from repro.core.monitor import HardwareMonitor  # local: avoid cycle

            if isinstance(self._target, HardwareMonitor):
                return OPTIMUS_MAGIC
            return 0
        raise MmioFault(f"unknown shell register {offset:#x}")

    # -- DMA data plane ----------------------------------------------------------------

    def dma_to_memory(
        self,
        packet: Packet,
        channel: VirtualChannel,
        on_response: Callable[[Optional[Packet]], None],
    ) -> None:
        """Forward an IOVA-space DMA request into the memory system."""
        self.engine.call_after(
            self.latency_ps, self.memory.dma, packet, channel, on_response
        )

    def passthrough_dma_sink(
        self,
        packet: Packet,
        channel: VirtualChannel,
        on_response: Callable[[Optional[Packet]], None],
    ) -> None:
        """DMA sink for the pass-through baseline: GVA == IOVA (vIOMMU)."""
        if packet.space is AddressSpace.GVA:
            packet.space = AddressSpace.IOVA
        self.dma_to_memory(packet, channel, on_response)
