"""The synthesis model: replication scaling, timing feasibility, placement.

Two questions from the paper are answered here:

1. **Table 2 / §6.2** — what does a design cost when replicated N times?
   Routing pressure makes normal designs slightly super-linear; very simple
   designs go sub-linear (MemBench: ~6x at 8 instances) or even *negative*
   (LinkedList: replication lets the optimizer shrink shared shell logic).

2. **§5 "Multiplexer Tree Hierarchy" / §7.2** — which multiplexer
   arrangements close timing at 400 MHz?  A flat 8-way multiplexer cannot
   (AmorphOS used one, but at lower frequency); a binary tree can, at the
   cost of ~33 ns per level.  The model exposes the same trade-off and is
   exercised by the mux-tree ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import SynthesisError
from repro.fpga.resources import (
    MUX_NODE_FOOTPRINT,
    SHELL_FOOTPRINT,
    ResourceFootprint,
    SynthesisCharacter,
    monitor_footprint,
)

#: Routing-congestion coefficient for NORMAL designs: each extra replica adds
#: this fraction of the base cost again (calibrated to Table 2's AES/SHA rows,
#: which land within a few percent of 8x the pass-through number).
CONGESTION_PER_REPLICA = 0.004

#: SIMPLE designs pack at this fraction of linear cost when replicated
#: (Table 2: MemBench uses "6x the number of ALMs" at 8 instances).
SIMPLE_PACKING = 0.75

#: TRIVIAL designs shrink shared logic: net ALM credit per extra replica
#: (Table 2's LinkedList row reports -0.24% total at 8 instances vs 0.15%
#: for one: 8 x 0.15 - 7 x 0.206 = -0.24).
TRIVIAL_CREDIT_PCT = 0.206

#: Highest frequency a flat multiplexer of given radix can close, in MHz.
#: A flat 8:1 mux tops out well below the 400 MHz the shell requires — the
#: reason OPTIMUS "must provide a multiplexer tree by default" (§3).
def flat_mux_fmax_mhz(radix: int) -> float:
    if radix < 2:
        raise SynthesisError("a multiplexer needs at least two inputs")
    # Empirical shape: each doubling of fan-in costs ~30% of achievable fmax.
    return 550.0 / (1.0 + 0.45 * (math.log2(radix) - 1.0))


def replicated_footprint(
    base: ResourceFootprint,
    instances: int,
    character: SynthesisCharacter,
) -> ResourceFootprint:
    """Cost of ``instances`` copies of a design, per its synthesis regime."""
    if instances < 1:
        raise SynthesisError("need at least one instance")
    if instances == 1:
        return base
    if character is SynthesisCharacter.NORMAL:
        factor = instances * (1.0 + CONGESTION_PER_REPLICA * (instances - 1))
        return base * factor
    if character is SynthesisCharacter.SIMPLE:
        return base * (instances * SIMPLE_PACKING)
    # TRIVIAL: linear replication minus a shared-logic optimization credit
    # that can push the *delta* negative, as Table 2 shows for LinkedList.
    linear = base * instances
    credit = TRIVIAL_CREDIT_PCT * (instances - 1)
    return ResourceFootprint(alm_pct=linear.alm_pct - credit, bram_pct=linear.bram_pct)


@dataclass(frozen=True)
class MuxArrangement:
    """A multiplexer hierarchy: ``levels`` layers of radix-``radix`` nodes."""

    radix: int
    levels: int

    @property
    def leaf_capacity(self) -> int:
        return self.radix**self.levels

    @property
    def node_count(self) -> int:
        # A full r-ary tree with r^levels leaves has (r^levels - 1)/(r - 1) nodes.
        return (self.radix**self.levels - 1) // (self.radix - 1)

    def fmax_mhz(self) -> float:
        """Achievable frequency: governed by the widest (single-node) fan-in."""
        return flat_mux_fmax_mhz(self.radix)


def plan_mux_tree(n_accelerators: int, radix: int, target_mhz: float) -> MuxArrangement:
    """Choose the shallowest arrangement that fits N accelerators at fmax.

    Raises :class:`SynthesisError` if no arrangement of this radix closes
    timing — e.g. a flat (single-level) radix-8 mux at 400 MHz.
    """
    if n_accelerators < 1:
        raise SynthesisError("need at least one accelerator")
    levels = max(1, math.ceil(math.log(max(n_accelerators, 2), radix)))
    arrangement = MuxArrangement(radix=radix, levels=levels)
    if arrangement.fmax_mhz() < target_mhz:
        raise SynthesisError(
            f"radix-{radix} multiplexer cannot close timing at {target_mhz:.0f} MHz "
            f"(fmax {arrangement.fmax_mhz():.0f} MHz); use a deeper, narrower tree"
        )
    return arrangement


@dataclass
class SynthesisReport:
    """The outcome of placing a full OPTIMUS configuration on the FPGA."""

    shell: ResourceFootprint
    monitor: ResourceFootprint
    accelerators: ResourceFootprint
    arrangement: MuxArrangement

    @property
    def total(self) -> ResourceFootprint:
        return self.shell + self.monitor + self.accelerators

    @property
    def fits(self) -> bool:
        return self.total.alm_pct <= 100.0 and self.total.bram_pct <= 100.0


def synthesize(
    accel_footprints: Sequence[ResourceFootprint],
    accel_characters: Sequence[SynthesisCharacter],
    *,
    mux_radix: int = 2,
    target_mhz: float = 400.0,
    max_accelerators: int = 8,
    with_monitor: bool = True,
) -> SynthesisReport:
    """Synthesize shell + (optionally) monitor + accelerators; check fit.

    ``accel_footprints`` lists the single-instance footprint of each slot;
    homogeneous configurations pass the same footprint N times and benefit
    from the replication model.
    """
    n = len(accel_footprints)
    if n < 1:
        raise SynthesisError("no accelerators to synthesize")
    if n > max_accelerators:
        raise SynthesisError(
            f"{n} accelerators exceed the platform limit of {max_accelerators} "
            "at 400 MHz (the synthesizer cannot place more without lowering "
            "the multiplexer tree frequency, §5)"
        )

    if with_monitor:
        arrangement = plan_mux_tree(n, mux_radix, target_mhz)
        monitor = monitor_footprint(n, arrangement.node_count)
    else:
        if n != 1:
            raise SynthesisError("pass-through supports exactly one accelerator")
        arrangement = MuxArrangement(radix=2, levels=0)
        monitor = ResourceFootprint(0.0, 0.0)

    # Group identical designs so replication effects apply.
    groups: List[tuple[ResourceFootprint, SynthesisCharacter, int]] = []
    for footprint, character in zip(accel_footprints, accel_characters):
        for index, (g_fp, g_ch, count) in enumerate(groups):
            if g_fp == footprint and g_ch == character:
                groups[index] = (g_fp, g_ch, count + 1)
                break
        else:
            groups.append((footprint, character, 1))

    accel_total = ResourceFootprint(0.0, 0.0)
    for footprint, character, count in groups:
        accel_total = accel_total + replicated_footprint(footprint, count, character)

    report = SynthesisReport(
        shell=SHELL_FOOTPRINT,
        monitor=monitor,
        accelerators=accel_total,
        arrangement=arrangement,
    )
    if not report.fits:
        raise SynthesisError(
            f"design does not fit: ALM {report.total.alm_pct:.2f}%, "
            f"BRAM {report.total.bram_pct:.2f}%"
        )
    return report
