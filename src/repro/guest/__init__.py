"""Guest-side stack: FPGA driver and userspace library."""

from repro.guest.api import GuestAccelerator, NativeAccelerator
from repro.guest.driver import GuestFpgaDriver

__all__ = ["GuestAccelerator", "GuestFpgaDriver", "NativeAccelerator"]
