"""The guest userspace library (§4.3).

"OPTIMUS offers a customized driver and a userspace library that work in
tandem to allow for application-level programming of accelerators."  The
library lets a guest application:

* connect to / disconnect from a virtual accelerator,
* reset it,
* program it through its MMIO region (application registers),
* manage DMA memory: allocate buffers inside the reserved window, move
  data in and out, and start/await acceleration jobs.

:class:`GuestAccelerator` is the OPTIMUS-virtualized flavour;
:class:`NativeAccelerator` provides the same surface over the
pass-through/native platform so benchmarks run unchanged on both — which
is exactly how the paper's overhead experiments are constructed.

Both handles share one lifecycle surface: ``connected``, ``disconnect()``
(idempotent), ``reset()``, and the context-manager protocol, so

    with hypervisor.connect(vm, job) as accel:
        ...

releases the accelerator on exit even when the body raises.  Explicit
construction plus an explicit ``disconnect()`` keeps working unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.accel.base import CMD_START, CTRL_CMD, CTRL_STATUS
from repro.errors import GuestError
from repro.guest.driver import GuestFpgaDriver
from repro.hv.mdev import VirtualAccelerator
from repro.mem.address import MB, PAGE_SIZE_4K, align_up
from repro.mem.allocator import RegionAllocator
from repro.sim.engine import Future

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor
    from repro.hv.passthrough import PassthroughHypervisor
    from repro.hv.vm import VirtualMachine


class GuestAccelerator:
    """Application-level handle to one OPTIMUS virtual accelerator."""

    def __init__(
        self,
        hypervisor: "OptimusHypervisor",
        vm: "VirtualMachine",
        vaccel: VirtualAccelerator,
        *,
        window_bytes: int = 512 * MB,
    ) -> None:
        self.hypervisor = hypervisor
        self.vm = vm
        self.vaccel = vaccel
        self.driver = GuestFpgaDriver(hypervisor, vm, vaccel)
        base = self.driver.probe(window_bytes)
        # Buffer placement inside the window varies per tenant (allocator
        # history, ASLR): model it with a per-vaccel page stagger.  The
        # slicing offset maps window offsets 1:1 into the IOVA slice, so
        # this is what spreads different tenants' pages across IOTLB sets
        # when 4 KB pages are in use.
        stagger = 0
        if vm.page_size == PAGE_SIZE_4K:
            # 64 pages (256 KB) per tenant: the same set-skew idea as the
            # 2 MB-mode slice gaps, applied at 4 KB granularity.
            stagger = (vaccel.vaccel_id % 8) * 64 * PAGE_SIZE_4K
        self._buffers = RegionAllocator(base + stagger, window_bytes - stagger, granule=64)
        self.connected = True
        #: Called once after a successful disconnect (the cloud provider
        #: uses this to drop its tenant bookkeeping when a guest releases
        #: the handle itself).
        self._on_disconnect: Optional[Callable[[], None]] = None

    @classmethod
    def adopt(
        cls,
        hypervisor: "OptimusHypervisor",
        vm: "VirtualMachine",
        vaccel: VirtualAccelerator,
    ) -> "GuestAccelerator":
        """Wrap an already-restored virtual accelerator in a fresh handle.

        Used after :func:`repro.hv.checkpoint.restore_guest`: the window is
        registered and the shadow mappings are replayed, so probing again
        (which reserves a new window and reprograms BAR2) would be wrong.
        Buffer-allocator history does not survive migration — pages the
        source guest registered stay mapped, but the destination handle
        starts with an empty allocation book.
        """
        handle = cls.__new__(cls)
        handle.hypervisor = hypervisor
        handle.vm = vm
        handle.vaccel = vaccel
        handle.driver = GuestFpgaDriver(hypervisor, vm, vaccel)
        base = vaccel.window_base_gva or 0
        stagger = 0
        if vm.page_size == PAGE_SIZE_4K:
            stagger = (vaccel.vaccel_id % 8) * 64 * PAGE_SIZE_4K
        handle._buffers = RegionAllocator(
            base + stagger, max(vaccel.window_size - stagger, 64), granule=64
        )
        handle.connected = True
        handle._on_disconnect = None
        return handle

    # -- connection lifecycle ---------------------------------------------------

    def __enter__(self) -> "GuestAccelerator":
        self._check()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disconnect()

    def disconnect(self) -> None:
        """Release the virtual accelerator; safe to call more than once."""
        if not self.connected:
            return
        self.connected = False
        self.hypervisor.destroy_virtual_accelerator(self.vaccel)
        if self._on_disconnect is not None:
            self._on_disconnect()

    def _check(self) -> None:
        if not self.connected:
            raise GuestError("accelerator handle is disconnected")

    # -- DMA memory management -----------------------------------------------------

    def alloc_buffer(self, size: int) -> int:
        """Allocate an FPGA-accessible buffer; returns its GVA.

        Pages are faulted in and registered via the shadow-paging
        hypercall, page-aligned so partially covered pages never leak
        another allocation's data to the device.
        """
        self._check()
        page = self.vm.page_size
        gva = self._buffers.alloc(align_up(size, page), alignment=page)
        self.driver.make_region_accessible(gva, size)
        return gva

    def free_buffer(self, gva: int) -> None:
        self._check()
        self._buffers.free(gva)

    def write_buffer(self, gva: int, data: bytes) -> None:
        """CPU store into shared memory (visible to the accelerator)."""
        self._check()
        self.vm.write_memory(gva, data)

    def read_buffer(self, gva: int, size: int) -> bytes:
        """CPU load from shared memory (sees accelerator writes)."""
        self._check()
        return self.vm.read_memory(gva, size)

    # -- MMIO programming ----------------------------------------------------------------

    def mmio_write(self, offset: int, value: int) -> Future:
        self._check()
        return self.hypervisor.guest_mmio_write(self.vaccel, offset, value)

    def mmio_read(self, offset: int) -> Future:
        self._check()
        return self.hypervisor.guest_mmio_read(self.vaccel, offset)

    def reset(self) -> None:
        """Reset the virtual accelerator's (cached) register state."""
        self._check()
        self.vaccel.reg_cache.clear()

    # -- job control -----------------------------------------------------------------------

    def setup_preemption(self) -> int:
        """Allocate and register the state buffer for a preemptible job."""
        self._check()
        size = max(self.vm.page_size, self.vaccel.job.state_size())
        buffer_gva = self.alloc_buffer(size)
        self.driver.register_state_buffer(buffer_gva)
        return buffer_gva

    def start(self) -> Future:
        """Issue CMD_START; returns the job's completion future."""
        self._check()
        if self.vaccel.job.profile.preemptible and self.vaccel.state_buffer_gva is None:
            self.setup_preemption()
        self.mmio_write(CTRL_CMD, CMD_START)
        completion = self.vaccel.job.completion
        assert completion is not None
        return completion

    def status(self) -> Future:
        return self.mmio_read(CTRL_STATUS)


class NativeAccelerator:
    """The same application surface over pass-through / native hardware."""

    def __init__(
        self,
        hypervisor: "PassthroughHypervisor",
        *,
        window_bytes: int = 512 * MB,
    ) -> None:
        self.hypervisor = hypervisor
        vm = hypervisor.vm or hypervisor.create_vm()
        self.vm = vm
        base = vm.reserve_va(window_bytes, alignment=vm.page_size)
        self._buffers = RegionAllocator(base, window_bytes, granule=64)
        self.connected = True
        self._on_disconnect: Optional[Callable[[], None]] = None

    # -- connection lifecycle ---------------------------------------------------

    def __enter__(self) -> "NativeAccelerator":
        self._check()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.disconnect()

    def disconnect(self) -> None:
        """Release the directly assigned accelerator; idempotent."""
        if not self.connected:
            return
        self.connected = False
        if self._on_disconnect is not None:
            self._on_disconnect()

    def _check(self) -> None:
        if not self.connected:
            raise GuestError("accelerator handle is disconnected")

    def reset(self) -> None:
        """Clear the physical accelerator's application registers."""
        self._check()
        self.hypervisor.platform.sockets[0].registers.clear()

    # -- DMA memory management -----------------------------------------------------

    def alloc_buffer(self, size: int) -> int:
        self._check()
        page = self.vm.page_size
        gva = self._buffers.alloc(align_up(size, page), alignment=page)
        current = gva
        while current < gva + size:
            self.vm.back_reserved_page(current)
            current += page
        # vIOMMU (virtualized) or IOMMU (native): identity GVA -> IOVA.
        self.hypervisor.viommu_map_region(gva, size)
        return gva

    def free_buffer(self, gva: int) -> None:
        self._check()
        self._buffers.free(gva)

    def write_buffer(self, gva: int, data: bytes) -> None:
        self._check()
        self.vm.write_memory(gva, data)

    def read_buffer(self, gva: int, size: int) -> bytes:
        self._check()
        return self.vm.read_memory(gva, size)

    # -- MMIO programming ----------------------------------------------------------------

    def mmio_write(self, offset: int, value: int) -> Future:
        self._check()
        return self.hypervisor.mmio_write(offset, value)

    def mmio_read(self, offset: int) -> Future:
        self._check()
        return self.hypervisor.mmio_read(offset)

    # -- job control -----------------------------------------------------------------------

    def start(self, job, **kwargs) -> Future:
        self._check()
        return self.hypervisor.start_job(job, **kwargs)
