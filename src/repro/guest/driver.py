"""The guest FPGA driver (§4.3, §5).

Inside each VM a small driver prepares a virtual accelerator for
userspace: it discovers the mediated device's BARs, reserves the 64 GB
DMA region with ``mmap(MAP_NORESERVE)`` (no physical memory committed),
publishes the region's base through BAR2 so the hypervisor can compute
the slicing offset, and services the userspace library's requests to make
individual pages FPGA-accessible via the shadow-paging hypercall.

The driver is deliberately thin — policy lives in the userspace library
(:mod:`repro.guest.api`), mirroring the paper's split between the guest
driver (2,033 lines of C together with the library) and application code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import GuestError
from repro.hv.mdev import (
    BAR2_MAP_GPA,
    BAR2_MAP_GVA,
    BAR2_SLICE_BASE,
    BAR2_STATE_BUF,
    BAR2_WINDOW_SIZE,
    VirtualAccelerator,
)
from repro.mem.address import align_up

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor
    from repro.hv.vm import VirtualMachine


class GuestFpgaDriver:
    """Kernel-side plumbing for one virtual accelerator inside a guest."""

    def __init__(
        self,
        hypervisor: "OptimusHypervisor",
        vm: "VirtualMachine",
        vaccel: VirtualAccelerator,
    ) -> None:
        if vaccel.vm is not vm:
            raise GuestError("virtual accelerator belongs to a different VM")
        self.hypervisor = hypervisor
        self.vm = vm
        self.vaccel = vaccel
        self.window_base: int = 0
        self.window_size: int = 0

    # -- initialization ------------------------------------------------------------

    def probe(self, window_size: int) -> int:
        """Initialize the device: reserve the DMA window and tell the HV.

        Returns the window's base GVA.  ``window_size`` defaults to the
        full slice in the userspace library; smaller windows keep the
        dummy-page backing cheap for small experiments.
        """
        page = self.vm.page_size
        window_size = align_up(window_size, page)
        if window_size <= 0 or window_size > self.vaccel.slice.size:
            raise GuestError("window size must be within the 64 GB slice")
        # mmap(MAP_NORESERVE): address space only, no physical backing.
        self.window_base = self.vm.reserve_va(window_size, alignment=page)
        self.window_size = window_size
        self.hypervisor.guest_bar2_write(self.vaccel, BAR2_SLICE_BASE, self.window_base)
        self.hypervisor.guest_bar2_write(self.vaccel, BAR2_WINDOW_SIZE, window_size)
        return self.window_base

    # -- page registration (the shadow-paging hypercall) ------------------------------

    def make_page_accessible(self, gva: int) -> None:
        """Fault in one window page and register it with the hypervisor."""
        page = self.vm.page_size
        if gva % page:
            raise GuestError("page address must be aligned")
        self.vm.back_reserved_page(gva)
        gpa = self.vm.mmu.gva_to_gpa(gva)
        self.hypervisor.guest_bar2_write(self.vaccel, BAR2_MAP_GVA, gva)
        self.hypervisor.guest_bar2_write(self.vaccel, BAR2_MAP_GPA, gpa)

    def make_region_accessible(self, gva: int, size: int) -> int:
        """Register every page of a region; returns the page count."""
        page = self.vm.page_size
        first = gva - (gva % page)
        count = 0
        current = first
        while current < gva + size:
            self.make_page_accessible(current)
            count += 1
            current += page
        return count

    # -- preemption support -----------------------------------------------------------

    def register_state_buffer(self, gva: int) -> None:
        """Tell the hypervisor where to spill accelerator state (§4.2)."""
        self.hypervisor.guest_bar2_write(self.vaccel, BAR2_STATE_BUF, gva)
