"""The OPTIMUS hypervisor and its baselines."""

from repro.hv.checkpoint import (
    GuestCheckpoint,
    checkpoint_guest,
    guest_memory_digest,
    quiesce_guest,
    restore_guest,
)
from repro.hv.hypervisor import OptimusHypervisor
from repro.hv.mdev import (
    BAR2_MAP_GPA,
    BAR2_MAP_GVA,
    BAR2_SLICE_BASE,
    BAR2_STATE_BUF,
    BAR2_WINDOW_SIZE,
    VAccelState,
    VirtualAccelerator,
)
from repro.hv.migration import migrate
from repro.hv.passthrough import PassthroughHypervisor
from repro.hv.preemption import PhysicalAccelerator
from repro.hv.scheduler import (
    PriorityScheduler,
    RoundRobinScheduler,
    SchedulingPolicy,
    WeightedScheduler,
)
from repro.hv.shadow import ShadowPager
from repro.hv.vm import VirtualMachine

__all__ = [
    "BAR2_MAP_GPA",
    "BAR2_MAP_GVA",
    "BAR2_SLICE_BASE",
    "BAR2_STATE_BUF",
    "BAR2_WINDOW_SIZE",
    "GuestCheckpoint",
    "OptimusHypervisor",
    "PassthroughHypervisor",
    "checkpoint_guest",
    "guest_memory_digest",
    "migrate",
    "quiesce_guest",
    "restore_guest",
    "PhysicalAccelerator",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "SchedulingPolicy",
    "ShadowPager",
    "VAccelState",
    "VirtualAccelerator",
    "VirtualMachine",
    "WeightedScheduler",
]
