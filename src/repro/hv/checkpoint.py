"""Guest checkpoint/restore: the hv half of live migration (ISSUE 8).

OPTIMUS's own mechanisms already contain everything a migration protocol
needs (ROADMAP, §4/§5 of the paper):

* **quiesce** — preemptive temporal multiplexing stops a guest at a slice
  boundary and serializes its minimal architected state into the guest's
  own DRAM state buffer (§4.2);
* **snapshot** — the guest's address space is a plain page table walk
  (every backed page is readable through host DRAM), and the vaccel
  carries the register cache, the DMA window geometry, and the saved
  state blob;
* **restore** — ``back_reserved_page`` materializes pages at *fixed* GVAs
  on a fresh VM, so the destination guest sees the identical address
  space, and replaying the shadow-paging hypercall re-patches the sliced
  IO page table against the destination's IOVA slice (§4.1, §5);
* **resume** — the destination scheduler's ordinary ``_switch_in`` path
  replays cached registers, programs the auditor's offset table for the
  *new* slice, and restores the saved state — restore is literally one
  context-switch-in on another hypervisor.

:func:`checkpoint_guest` produces a :class:`GuestCheckpoint`: a frozen,
picklable, deterministically digestible value object — the unit the fleet
ships between nodes (and, in sharded execution, between worker
processes).  :func:`restore_guest` rebuilds the guest on any hypervisor
with the same page size.

The state buffer page is hypervisor scratch: a migrated run spills the
preemption state into it while a never-preempted run leaves it zeroed, so
application-level digest comparisons (:func:`guest_memory_digest`) accept
explicit regions to scope the comparison to application buffers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SchedulerError
from repro.hv.mdev import VAccelState, VirtualAccelerator
from repro.hv.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor


@dataclass(frozen=True)
class GuestCheckpoint:
    """Everything needed to rebuild one guest on another hypervisor.

    Plain ints/strings/bytes/tuples only: the object pickles across the
    sharded executor's process boundary and digests deterministically.
    """

    #: Guest identity and sizing.
    vm_name: str
    mem_bytes: int
    page_size: int
    #: The accelerator-library catalog key (``Tenant.accel_type``); the
    #: restoring provider uses it to instantiate the destination job.
    accel_type: str
    #: DMA window geometry (BAR2-programmed, slice-relative on restore).
    window_base_gva: Optional[int]
    window_size: int
    state_buffer_gva: Optional[int]
    #: GVAs registered through the shadow-paging hypercall, sorted.
    mapped_gvas: Tuple[int, ...]
    #: Every backed guest page: ``(gva, page bytes)``, sorted by GVA.
    pages: Tuple[Tuple[int, bytes], ...]
    #: Application registers cached at quiesce time, sorted by offset.
    reg_cache: Tuple[Tuple[int, int], ...]
    #: The job's minimal architected state (§4.2), or None if never saved.
    saved_state: Optional[bytes]
    #: Runtime flags.
    started: bool
    done: bool
    quarantined: bool
    watchdog_armed: bool

    def digest(self) -> str:
        """Deterministic fingerprint of the full checkpoint contents."""
        h = hashlib.sha256()

        def put(tag: str, data: bytes) -> None:
            h.update(tag.encode())
            h.update(len(data).to_bytes(4, "little"))
            h.update(data)

        put("vm", self.vm_name.encode())
        put("type", self.accel_type.encode())
        for label, value in (
            ("mem", self.mem_bytes),
            ("psz", self.page_size),
            ("wbase", -1 if self.window_base_gva is None else self.window_base_gva),
            ("wsize", self.window_size),
            ("sbuf", -1 if self.state_buffer_gva is None else self.state_buffer_gva),
        ):
            put(label, str(value).encode())
        for gva in self.mapped_gvas:
            put("gva", str(gva).encode())
        for gva, data in self.pages:
            put(f"page{gva}", data)
        for offset, value in self.reg_cache:
            put(f"reg{offset}", str(value).encode())
        put("state", self.saved_state if self.saved_state is not None else b"\xff")
        flags = (self.started, self.done, self.quarantined, self.watchdog_armed)
        put("flags", "".join("1" if f else "0" for f in flags).encode())
        return h.hexdigest()[:16]

    @property
    def n_pages(self) -> int:
        return len(self.pages)


def quiesce_guest(
    hypervisor: "OptimusHypervisor",
    vaccel: VirtualAccelerator,
    *,
    limit_ps: Optional[int] = None,
) -> None:
    """Stop ``vaccel`` at the next slice boundary via standard preemption.

    Withdraws the vaccel from its manager's run queue — the scheduling
    loop, which owns the socket, then context-switches it out through the
    ordinary protocol (drain in-flight DMAs, serialize state, cache
    registers, reset for isolation) — waits for the switch-out, and
    re-appends the vaccel so occupancy accounting is unchanged.  A vaccel
    that is merely QUEUED (or was never started) quiesces immediately.

    Raises :class:`~repro.errors.SchedulerError` if the guest fails to
    cede the fabric within ``limit_ps`` (default: four slice+timeout
    rounds), mirroring the forcible-reset deadline of §4.2.
    """
    manager = hypervisor.physical[vaccel.physical_index]
    removed = vaccel in manager.vaccels
    if removed:
        manager.vaccels.remove(vaccel)
    try:
        if vaccel.state is VAccelState.SCHEDULED:
            engine = hypervisor.engine
            params = hypervisor.platform.params
            if limit_ps is None:
                limit_ps = engine.now + 4 * (
                    params.time_slice_ps + params.preemption_timeout_ps
                )
            done = engine.future()

            def _poll() -> Generator:
                while vaccel.state is VAccelState.SCHEDULED:
                    yield 50_000_000  # poll every 50 us for the switch-out
                done.set_result(True)

            engine.spawn(_poll(), name=f"quiesce.{vaccel.name}")
            engine.run_until(done, limit_ps=limit_ps)
            if vaccel.state is VAccelState.SCHEDULED:
                raise SchedulerError(
                    f"{vaccel.name}: did not cede the fabric by {limit_ps} ps"
                )
    finally:
        if removed and vaccel not in manager.vaccels:
            manager.vaccels.append(vaccel)


def checkpoint_guest(
    hypervisor: "OptimusHypervisor",
    vaccel: VirtualAccelerator,
    *,
    accel_type: Optional[str] = None,
) -> GuestCheckpoint:
    """Quiesce ``vaccel`` and serialize the guest into a checkpoint.

    ``accel_type`` is the library catalog key the restoring side will use
    to build the destination job; it defaults to the job profile's name
    (which matches the catalog for every shipped accelerator).
    """
    quiesce_guest(hypervisor, vaccel)
    vm = vaccel.vm
    pages: List[Tuple[int, bytes]] = [
        (gva, vm.read_memory(gva, vm.page_size))
        for gva, _entry in vm.mmu.guest_table.mappings()
    ]
    watchdog = hypervisor.watchdog
    return GuestCheckpoint(
        vm_name=vm.name,
        mem_bytes=vm.mem_bytes,
        page_size=vm.page_size,
        accel_type=accel_type or vaccel.job.profile.name,
        window_base_gva=vaccel.window_base_gva,
        window_size=vaccel.window_size,
        state_buffer_gva=vaccel.state_buffer_gva,
        mapped_gvas=tuple(sorted(vaccel.mapped_gvas)),
        pages=tuple(pages),
        reg_cache=tuple(sorted(vaccel.reg_cache.items())),
        saved_state=vaccel.saved_state,
        started=bool(hypervisor._started.get(vaccel.vaccel_id, vaccel.started)),
        done=vaccel.job.done,
        quarantined=vaccel.quarantined,
        watchdog_armed=(
            watchdog is not None and vaccel.vaccel_id in watchdog._watched
        ),
    )


def restore_guest(
    hypervisor: "OptimusHypervisor",
    checkpoint: GuestCheckpoint,
    job,
    *,
    physical_index: int = 0,
) -> Tuple[VirtualMachine, VirtualAccelerator]:
    """Rebuild a checkpointed guest on ``hypervisor``.

    Creates a fresh VM, materializes every checkpointed page at its
    original GVA, creates a mediated device on ``physical_index`` (which
    allocates a *new* IOVA slice), and replays the shadow-paging
    hypercall for every registered GVA — re-patching the sliced IO page
    table for the new slice.  If the guest was running, the destination
    scheduler resumes it through the ordinary context-switch-in path
    (cached registers + saved state travel on the vaccel).
    """
    if checkpoint.page_size != hypervisor.page_size:
        raise ConfigurationError(
            f"checkpoint page size {checkpoint.page_size} != destination "
            f"hypervisor page size {hypervisor.page_size}"
        )
    vm = hypervisor.create_vm(checkpoint.vm_name, mem_bytes=checkpoint.mem_bytes)
    for gva, data in checkpoint.pages:
        vm.back_reserved_page(gva)
        vm.write_memory(gva, data)
    vaccel = hypervisor.create_virtual_accelerator(
        vm, job, physical_index=physical_index
    )
    vaccel.window_base_gva = checkpoint.window_base_gva
    vaccel.window_size = checkpoint.window_size
    if checkpoint.window_base_gva is not None and checkpoint.window_size:
        hypervisor.shadow.install_window(vaccel)
    for gva in checkpoint.mapped_gvas:
        hypervisor.shadow.map_page(vaccel, gva, vm.mmu.gva_to_gpa(gva))
    vaccel.reg_cache.update(dict(checkpoint.reg_cache))
    job.configure(vaccel.cached_registers())
    vaccel.state_buffer_gva = checkpoint.state_buffer_gva
    vaccel.saved_state = checkpoint.saved_state
    vaccel.quarantined = checkpoint.quarantined
    if checkpoint.done:
        job.done = True
        vaccel.state = VAccelState.DONE
    elif checkpoint.started and not checkpoint.quarantined:
        # Resume: mark runnable and kick the destination scheduler; its
        # _switch_in replays registers, programs the new slice's offset
        # table, and restores the saved state (§4.2 — migration is one
        # preemption plus one switch-in elsewhere).
        hypervisor._started[vaccel.vaccel_id] = True
        vaccel.started = True
        hypervisor.physical[physical_index].start()
    return vm, vaccel


class IncrementalCheckpointer:
    """Cheap per-guest checkpoint reuse for the speculation path.

    A full :func:`checkpoint_guest` reads every backed page; a fleet
    guest that has not changed since the last snapshot produces the
    identical checkpoint.  This cache keys each guest's checkpoint on a
    cheap *validity token* — every structural input to the checkpoint
    that can change without a page read — and recomputes only when the
    token moves.

    Scope: the sharded executor's **worker speculation path only**.  The
    serial/migration path keeps calling :func:`checkpoint_guest`
    directly, so envelope-visible digests can never come out of a cache.
    The token deliberately includes ``vaccel_id`` (never reused) rather
    than ``vm_name`` (reused across migrations of the same tenant).
    """

    def __init__(self) -> None:
        self._cache: dict = {}

    @staticmethod
    def _token(hypervisor: "OptimusHypervisor", vaccel: VirtualAccelerator):
        return (
            vaccel.vaccel_id,
            vaccel.state,
            bool(hypervisor._started.get(vaccel.vaccel_id, vaccel.started)),
            vaccel.saved_state is None,
            len(vaccel.mapped_gvas),
            vaccel.window_base_gva,
            vaccel.window_size,
            vaccel.state_buffer_gva,
            len(vaccel.reg_cache),
            vaccel.job.done,
            vaccel.vm.mmu.guest_table.version,
        )

    def checkpoint(
        self,
        hypervisor: "OptimusHypervisor",
        vaccel: VirtualAccelerator,
        *,
        accel_type: Optional[str] = None,
        fresh: bool = False,
    ) -> GuestCheckpoint:
        """A checkpoint of ``vaccel``, reused while its token holds.

        ``fresh=True`` bypasses and refreshes the cache — rollback
        verification uses it so a stale entry can never mask real
        divergence.
        """
        token = self._token(hypervisor, vaccel)
        if not fresh:
            hit = self._cache.get(vaccel.vaccel_id)
            if hit is not None and hit[0] == token:
                return hit[1]
        checkpoint = checkpoint_guest(hypervisor, vaccel, accel_type=accel_type)
        self._cache[vaccel.vaccel_id] = (token, checkpoint)
        return checkpoint

    def forget(self, vaccel_id: int) -> None:
        self._cache.pop(vaccel_id, None)


def guest_memory_digest(
    vm: VirtualMachine,
    regions: Optional[Sequence[Tuple[int, int]]] = None,
) -> str:
    """Digest of guest memory contents, keyed by GVA.

    With ``regions`` (a list of ``(gva, size)``), digests exactly those
    byte ranges — the application-visible comparison, excluding
    hypervisor scratch such as the preemption state buffer.  Without, it
    digests every backed page (includes the state buffer, so a migrated
    and a never-migrated run will legitimately differ there).
    """
    h = hashlib.sha256()
    if regions is None:
        for gva, _entry in vm.mmu.guest_table.mappings():
            h.update(gva.to_bytes(8, "little"))
            h.update(vm.read_memory(gva, vm.page_size))
    else:
        for gva, size in regions:
            h.update(gva.to_bytes(8, "little"))
            h.update(vm.read_memory(gva, size))
    return h.hexdigest()
