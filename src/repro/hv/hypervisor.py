"""The OPTIMUS hypervisor (§4, §5).

``OptimusHypervisor`` is the software half of the co-design.  It follows
the mediated pass-through architecture: every control-plane operation
(MMIO, hypercalls) traps here; the data plane (accelerator DMAs) flows
through the hardware monitor without hypervisor involvement.

Responsibilities, mapped to the paper:

* **VM and mediated-device lifecycle** — ``create_vm`` /
  ``create_virtual_accelerator`` (vfio-mdev in the paper's prototype);
* **MMIO trap-and-emulate** — BAR0 accesses are validated and forwarded
  to the physical accelerator when the virtual accelerator is scheduled,
  or postponed to the register cache when it is queued (§4.2); control
  registers are always emulated and never reach hardware from a guest;
* **Page table slicing management** — allocating a 64 GB (+128 MB gap)
  IOVA slice per virtual accelerator and programming offset-table entries
  through the VCU;
* **Shadow paging** — servicing the BAR2 hypercall that maps guest pages
  into the sliced IO page table (§5);
* **Preemptive temporal multiplexing** — one
  :class:`~repro.hv.preemption.PhysicalAccelerator` manager per socket.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.accel.base import (
    CMD_PREEMPT,
    CMD_START,
    CTRL_CMD,
    CTRL_STATE_ADDR,
    CTRL_STATE_SIZE,
    CTRL_STATUS,
    STATUS_DONE,
    STATUS_IDLE,
    STATUS_RUNNING,
    AcceleratorJob,
)
from repro.core.slicing import SliceLayout
from repro.errors import ConfigurationError, GuestError
from repro.hv.mdev import (
    BAR2_MAP_GPA,
    BAR2_MAP_GVA,
    BAR2_SLICE_BASE,
    BAR2_STATE_BUF,
    BAR2_WINDOW_SIZE,
    VAccelState,
    VirtualAccelerator,
)
from repro.hv.preemption import PhysicalAccelerator
from repro.hv.shadow import ShadowPager
from repro.hv.vm import VirtualMachine
from repro.mem.address import GB, MB, align_up
from repro.mem.allocator import FrameAllocator
from repro.platform.builder import Platform, PlatformMode
from repro.sim.engine import Future

#: Host physical memory below this is considered host-reserved.
HOST_RESERVED_BYTES = 4 * GB


class OptimusHypervisor:
    """The hypervisor for an OPTIMUS-configured platform."""

    def __init__(self, platform: Platform) -> None:
        if platform.mode is not PlatformMode.OPTIMUS:
            raise ConfigurationError(
                "OptimusHypervisor requires an OPTIMUS-mode platform "
                "(use PassthroughHypervisor for direct assignment)"
            )
        self.platform = platform
        self.engine = platform.engine
        params = platform.params
        self.page_size = params.page_size
        self.layout = SliceLayout(
            slice_bytes=params.slice_bytes,
            gap_bytes=params.slice_gap_bytes if params.conflict_mitigation else 0,
            page_size=self.page_size,
        )
        self.frames = FrameAllocator(
            align_up(HOST_RESERVED_BYTES, self.page_size),
            platform.dram.size_bytes - align_up(HOST_RESERVED_BYTES, self.page_size),
            self.page_size,
        )
        self.shadow = ShadowPager(self, platform.iommu)
        self.vms: List[VirtualMachine] = []
        self.vaccels: List[VirtualAccelerator] = []
        self.physical: List[PhysicalAccelerator] = [
            PhysicalAccelerator(self, i) for i in range(platform.n_sockets)
        ]
        self._dummy_frame: Optional[int] = None
        self._started: Dict[int, bool] = {}
        #: Monotonic vaccel id source, plus the IOVA slice free list —
        #: slices are recycled on teardown (lowest base first, so the
        #: allocation order is deterministic), which is what lets a
        #: long-lived serving fleet churn through far more sessions than
        #: the 48-bit space has slices.  Ids are never reused: watchdog
        #: bookkeeping and scheduler tie-breaks key on them.
        self._next_vaccel_id = 0
        self._next_slice = 0
        self._free_slices: List[int] = []
        self.mmio_traps = 0
        # Optional per-guest forward-progress watchdog (repro.hv.watchdog);
        # enabled explicitly because it spawns one process per vaccel.
        self.watchdog = None

    # -- host memory services -----------------------------------------------------

    def back_guest_page(self, _vm: VirtualMachine) -> int:
        """Allocate one host frame to back a guest-physical page."""
        return self.frames.alloc_frame()

    def dummy_frame(self) -> int:
        """The shared scratch frame backing unregistered window pages (§5)."""
        if self._dummy_frame is None:
            self._dummy_frame = self.frames.alloc_frame()
        return self._dummy_frame

    # -- lifecycle ----------------------------------------------------------------------

    def create_vm(self, name: str, mem_bytes: int = 10 * GB) -> VirtualMachine:
        """Boot a guest; the paper allocates 10 GB per guest (§6.1)."""
        vm = VirtualMachine(
            name,
            self,
            mem_bytes=mem_bytes,
            page_size=self.page_size,
            gva_stagger=len(self.vms) * 37 * 4096,  # ASLR-style spread
        )
        self.vms.append(vm)
        return vm

    def create_virtual_accelerator(
        self,
        vm: VirtualMachine,
        job: AcceleratorJob,
        *,
        physical_index: int = 0,
    ) -> VirtualAccelerator:
        """Create a mediated device for ``vm`` on one physical accelerator."""
        if not 0 <= physical_index < len(self.physical):
            raise ConfigurationError(f"no physical accelerator {physical_index}")
        if self._free_slices:
            slice_index = heapq.heappop(self._free_slices)
        else:
            slice_index = self._next_slice
            if slice_index >= self.layout.max_slices:
                raise ConfigurationError("IO virtual address space exhausted")
            self._next_slice += 1
        vaccel = VirtualAccelerator(
            vaccel_id=self._next_vaccel_id,
            vm=vm,
            job=job,
            slice_=self.layout.slice_for(slice_index),
            physical_index=physical_index,
        )
        self._next_vaccel_id += 1
        self.vaccels.append(vaccel)
        self.physical[physical_index].attach(vaccel)
        self._started[vaccel.vaccel_id] = False
        if self.watchdog is not None:
            self.watchdog.watch(vaccel)
        return vaccel

    def connect(
        self,
        vm: VirtualMachine,
        job: AcceleratorJob,
        *,
        physical_index: int = 0,
        window_bytes: int = 512 * MB,
    ):
        """Create a vaccel and hand back a connected guest handle.

        Returns a :class:`~repro.guest.api.GuestAccelerator` usable as a
        context manager: ``with hv.connect(vm, job) as accel: ...``
        releases the virtual accelerator on exit.
        """
        from repro.guest.api import GuestAccelerator

        vaccel = self.create_virtual_accelerator(
            vm, job, physical_index=physical_index
        )
        return GuestAccelerator(self, vm, vaccel, window_bytes=window_bytes)

    def enable_watchdog(self, deadline_ps: int):
        """Turn on the per-guest forward-progress watchdog.

        Existing vaccels are adopted immediately; future ones are watched
        from :meth:`create_virtual_accelerator`.  Returns the watchdog so
        callers can read its quarantine log.
        """
        from repro.hv.watchdog import GuestWatchdog

        if self.watchdog is None:
            self.watchdog = GuestWatchdog(self, deadline_ps)
        else:
            self.watchdog.deadline_ps = deadline_ps
        for vaccel in self.vaccels:
            self.watchdog.watch(vaccel)
        return self.watchdog

    def migrate_virtual_accelerator(
        self, vaccel: VirtualAccelerator, destination_index: int
    ) -> Future:
        """Move a virtual accelerator to another physical slot (§7.1).

        Uses the standard preemption protocol; the IOVA slice and every
        IO-page-table entry stay put.  See :mod:`repro.hv.migration`.
        """
        from repro.hv.migration import migrate

        return migrate(self, vaccel, destination_index)

    def destroy_virtual_accelerator(self, vaccel: VirtualAccelerator) -> None:
        """Tear down a mediated device, unmapping and recycling its slice."""
        self.shadow.teardown_window(vaccel)
        manager = self.physical[vaccel.physical_index]
        if vaccel in manager.vaccels:
            manager.vaccels.remove(vaccel)
        vaccel.state = VAccelState.DETACHED
        # Reclaim everything keyed on the torn-down device: its IOVA
        # slice (reused lowest-base-first by the next create), its
        # started flag, and the hypervisor's own reference.  Without
        # this, a serving fleet churning through sessions exhausts the
        # 48-bit IOVA space after ``layout.max_slices`` placements.
        if vaccel in self.vaccels:
            self.vaccels.remove(vaccel)
            heapq.heappush(self._free_slices, vaccel.slice.index)
        self._started.pop(vaccel.vaccel_id, None)

    # -- guest control plane: BAR0 (trap-and-emulate, §4.2) ----------------------------------

    def guest_mmio_write(self, vaccel: VirtualAccelerator, offset: int, value: int) -> Future:
        """A guest store to BAR0; returns a future for the trap's completion."""
        self.mmio_traps += 1
        if offset in (CTRL_CMD, CTRL_STATUS, CTRL_STATE_ADDR, CTRL_STATE_SIZE):
            self._emulate_control_write(vaccel, offset, value)
        else:
            # Application register: postpone if queued, forward if scheduled.
            vaccel.cache_register(offset, value)
            if vaccel.scheduled:
                manager = self.physical[vaccel.physical_index]
                manager.socket.mmio_write(offset, value)
            if vaccel.job is not None:
                vaccel.job.configure({offset: value})
        return self.engine.timer(self.platform.params.mmio_trap_ps)

    def guest_mmio_read(self, vaccel: VirtualAccelerator, offset: int) -> Future:
        """A guest load from BAR0; resolves to the (emulated) value."""
        self.mmio_traps += 1
        if offset == CTRL_STATUS:
            value = self._emulated_status(vaccel)
        elif offset == CTRL_STATE_SIZE:
            value = vaccel.job.state_size()
        elif vaccel.scheduled:
            value = self.physical[vaccel.physical_index].socket.mmio_read(offset)
        else:
            value = vaccel.reg_cache.get(offset, 0)
        return self.engine.timer(self.platform.params.mmio_trap_ps, value)

    def _emulate_control_write(
        self, vaccel: VirtualAccelerator, offset: int, value: int
    ) -> None:
        if offset == CTRL_CMD and value == CMD_START:
            self.start_job(vaccel)
        elif offset == CTRL_CMD and value == CMD_PREEMPT:
            raise GuestError("guests may not drive the preemption interface")
        elif offset == CTRL_STATE_ADDR:
            vaccel.state_buffer_gva = value

    def _emulated_status(self, vaccel: VirtualAccelerator) -> int:
        # The hypervisor hides the *physical* accelerator's status: a queued
        # virtual accelerator still reads RUNNING for its own job (§4.2).
        if vaccel.job.done:
            return STATUS_DONE
        if self._started.get(vaccel.vaccel_id):
            return STATUS_RUNNING
        return STATUS_IDLE

    # -- guest control plane: BAR2 (hypervisor page) ----------------------------------------------

    def guest_bar2_write(self, vaccel: VirtualAccelerator, offset: int, value: int) -> Future:
        self.mmio_traps += 1
        if offset == BAR2_SLICE_BASE:
            vaccel.window_base_gva = value
        elif offset == BAR2_WINDOW_SIZE:
            vaccel.window_size = value
            self.shadow.install_window(vaccel)
        elif offset == BAR2_MAP_GVA:
            vaccel._staged_map_gva = value
        elif offset == BAR2_MAP_GPA:
            gva = vaccel._staged_map_gva
            if gva is None:
                raise GuestError("hypercall: write the GVA register first")
            self.shadow.map_page(vaccel, gva, value)
            vaccel._staged_map_gva = None
        elif offset == BAR2_STATE_BUF:
            vaccel.state_buffer_gva = value
        else:
            raise GuestError(f"unknown BAR2 register {offset:#x}")
        return self.engine.timer(self.platform.params.mmio_trap_ps)

    # -- job control -----------------------------------------------------------------------------------

    def start_job(self, vaccel: VirtualAccelerator) -> None:
        """Mark the job runnable and kick the physical scheduler."""
        if vaccel.window_base_gva is None:
            raise GuestError(f"{vaccel.name}: register a DMA window before starting")
        self._started[vaccel.vaccel_id] = True
        vaccel.started = True
        manager = self.physical[vaccel.physical_index]
        manager.start()

    def run_until_done(self, vaccels: Optional[List[VirtualAccelerator]] = None,
                       limit_ps: Optional[int] = None) -> None:
        """Drive the simulation until every given job completes."""
        targets = vaccels if vaccels is not None else self.vaccels
        for vaccel in targets:
            future = vaccel.job.completion
            assert future is not None, "job was never attached"
            if not future.done():
                self.engine.run_until(future, limit_ps=limit_ps)
