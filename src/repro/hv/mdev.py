"""Mediated devices: the virtual accelerators guests see.

The paper implements OPTIMUS with the Linux vfio-mdev framework: each
virtual accelerator is a *mediated device* — from the guest's perspective
a small PCIe function with two BARs (§5, "Guest-MMIO Layout"):

* **BAR0** — the accelerator's 4 KB MMIO page (application + control
  registers; control registers are trapped and emulated, never reaching
  hardware directly);
* **BAR2** — the hypervisor communication page (slice-base register and
  the shadow-paging hypercall registers).

:class:`VirtualAccelerator` carries everything the hypervisor needs to
schedule the guest's job onto a physical accelerator: the IOVA slice, the
registered DMA window, the cached application registers while queued, the
state buffer for preemption, and runtime accounting.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.accel.base import AcceleratorJob
from repro.core.slicing import Slice
from repro.sim.stats import UtilizationTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.vm import VirtualMachine

# BAR2 (hypervisor page) register offsets.
BAR2_SLICE_BASE = 0x00  # guest writes its reserved DMA window base GVA
BAR2_MAP_GVA = 0x08  # shadow-paging hypercall: stage the GVA
BAR2_MAP_GPA = 0x10  # shadow-paging hypercall: write GPA -> commit mapping
BAR2_STATE_BUF = 0x18  # guest writes its preemption state buffer GVA
BAR2_WINDOW_SIZE = 0x20  # guest writes its DMA window size


class VAccelState(enum.Enum):
    DETACHED = "detached"  # created, not yet attached to a physical accel
    QUEUED = "queued"  # waiting for a time slice
    SCHEDULED = "scheduled"  # currently occupying the physical accelerator
    DONE = "done"  # job finished


class VirtualAccelerator:
    """One guest's virtual accelerator (a mediated device instance)."""

    def __init__(
        self,
        vaccel_id: int,
        vm: "VirtualMachine",
        job: AcceleratorJob,
        slice_: Slice,
        physical_index: int,
    ) -> None:
        self.vaccel_id = vaccel_id
        self.vm = vm
        self.job = job
        self.slice = slice_
        self.physical_index = physical_index
        self.state = VAccelState.DETACHED
        self.started = False  # set when the guest issues CMD_START

        # Guest-programmed via BAR2.
        self.window_base_gva: Optional[int] = None
        self.window_size: int = 0
        self.state_buffer_gva: Optional[int] = None
        self._staged_map_gva: Optional[int] = None
        # GVAs the guest registered through the shadow-paging hypercall.
        # The checkpoint/restore protocol replays these on the destination
        # hypervisor to re-patch the sliced IO page table (§4.1 machinery,
        # repro.hv.checkpoint).
        self.mapped_gvas: set = set()

        # Application registers written while queued are postponed here and
        # replayed when the virtual accelerator is scheduled (§4.2).
        self.reg_cache: Dict[int, int] = {}

        # Last successfully saved architected state (None = never saved).
        self.saved_state: Optional[bytes] = None

        # Accounting for the fairness experiments (§6.8).
        self.utilization: Optional[UtilizationTracker] = None
        self.schedule_count = 0
        self.preempt_count = 0
        self.forced_resets = 0

        # Set by the guest watchdog when the job stops making forward
        # progress: a quarantined vaccel never re-enters the runnable set.
        self.quarantined = False

    # -- identity -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.vm.name}/va{self.vaccel_id}"

    @property
    def scheduled(self) -> bool:
        return self.state is VAccelState.SCHEDULED

    # -- guest-side register window ---------------------------------------------------

    def offset_value(self) -> int:
        """The offset-table entry for this vaccel: slice base minus window base."""
        base = self.window_base_gva or 0
        return self.slice.iova_base - base

    def cache_register(self, offset: int, value: int) -> None:
        self.reg_cache[offset] = value

    def cached_registers(self) -> Dict[int, int]:
        return dict(self.reg_cache)
