"""Virtual-accelerator migration (§7.1).

The paper notes that, because OPTIMUS supports acceleration preemption,
"OPTIMUS's virtual accelerators can theoretically be migrated in the
event that a cloud provider wishes to alter an FPGA configuration."
This module makes that concrete: :func:`migrate` moves a virtual
accelerator between physical accelerators *of the same circuit type*
using nothing but the existing preemption machinery.

The key enabler is page table slicing itself: a virtual accelerator's
IOVA slice — and therefore every IO-page-table entry backing its DMA
window — is independent of which physical accelerator it runs on.  A
migration is exactly one preemption plus one offset-table programming on
the destination:

1. preempt the job on the source (drain, save minimal state to the
   guest's buffer, reset for isolation);
2. detach from the source manager, attach to the destination;
3. the destination's scheduler restores the cached application registers,
   programs its auditor with the *same* window/slice values, reloads the
   saved state, and resumes.

No IO page table entries move, no guest memory is copied, and the guest
never observes more than a scheduling gap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import ConfigurationError, SchedulerError
from repro.hv.mdev import VAccelState, VirtualAccelerator
from repro.sim.engine import Future

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor


def migrate(
    hypervisor: "OptimusHypervisor",
    vaccel: VirtualAccelerator,
    destination_index: int,
) -> Future:
    """Move ``vaccel`` to another physical accelerator; returns a future.

    The future resolves once the virtual accelerator is attached (and, if
    it was running, queued for scheduling) at the destination.  Raises
    immediately on invalid destinations; same-type checking uses the job's
    profile name, mirroring the provider constraint that a physical slot
    must carry the right circuit.
    """
    if not 0 <= destination_index < len(hypervisor.physical):
        raise ConfigurationError(f"no physical accelerator {destination_index}")
    if destination_index == vaccel.physical_index:
        raise ConfigurationError("vaccel already lives on that physical accelerator")
    source = hypervisor.physical[vaccel.physical_index]
    destination = hypervisor.physical[destination_index]
    for resident in destination.vaccels:
        if resident.job.profile.name != vaccel.job.profile.name:
            raise SchedulerError(
                "destination accelerator carries a different circuit "
                f"({resident.job.profile.name} != {vaccel.job.profile.name})"
            )

    done = hypervisor.engine.future()
    process = hypervisor.engine.spawn(
        _migration_body(hypervisor, vaccel, source, destination, done),
        name=f"migrate.{vaccel.name}",
    )
    del process
    return done


def _migration_body(
    hypervisor: "OptimusHypervisor",
    vaccel: VirtualAccelerator,
    source,
    destination,
    done: Future,
) -> Generator:
    # 1. Withdraw the vaccel from the source's run queue.  If it is
    #    currently scheduled, the source's scheduling loop preempts it via
    #    the standard protocol at the next slice boundary (the loop owns
    #    the socket; migrating around it would race the state machine).
    if vaccel in source.vaccels:
        source.vaccels.remove(vaccel)
    while vaccel.state is VAccelState.SCHEDULED:
        yield 50_000_000  # poll every 50 us for the switch-out

    # 2. Reattach at the destination.  The slice, the IOPT entries, the
    #    cached registers, and the saved state all travel with the vaccel
    #    object — nothing else moves.
    vaccel.physical_index = destination.socket_index
    was_started = vaccel.started
    destination.vaccels.append(vaccel)
    vaccel.state = VAccelState.QUEUED if not vaccel.job.done else VAccelState.DONE
    vaccel.migrations = getattr(vaccel, "migrations", 0) + 1
    if was_started and not vaccel.job.done:
        destination.start()
    done.set_result(True)
