"""Nested virtualization by sub-slicing (§4.1).

The paper positions page table slicing as complementary to SR-IOV: "a
cloud provider could use SR-IOV to provide a 'vFPGA' to a VM acting as a
nested hypervisor.  The nested hypervisor could then use page table
slicing to share this vFPGA among its own guests."

This module demonstrates the address arithmetic of that nesting on top of
the existing stack.  An L1 tenant that owns one OPTIMUS virtual
accelerator (its "vFPGA") partitions its DMA window into *sub-slices* and
hands each to an L2 guest.  The translation chain composes exactly as the
paper sketches:

    L2 GVA --(+ sub-slice offset, L1's slicing)--> L1 GVA
           --(+ offset table, L0's slicing)-----> IOVA
           --(IO page table)--------------------> HPA

The L1 "auditor" is paravirtual: without a second hardware auditor per
sub-guest, L1 rebases and bounds-checks every register value an L2 guest
programs (the same software-only isolation the paper cites from gVirt /
Virtual WiFi as page table slicing's ancestors).  Data isolation between
L2 guests holds for well-formed jobs; the demonstration's point is the
composability of the slicing arithmetic, not hardware-grade containment.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import GuestError
from repro.guest.api import GuestAccelerator
from repro.mem.address import align_up
from repro.mem.allocator import RegionAllocator
from repro.sim.engine import Future


class SubGuest:
    """An L2 guest's view of its sub-slice of the L1 vFPGA window."""

    def __init__(self, parent: "NestedHypervisor", index: int, base: int, size: int) -> None:
        self._parent = parent
        self.index = index
        self.base = base  # L1 GVA where this sub-slice starts
        self.size = size
        self._alloc = RegionAllocator(0, size, granule=64)  # L2-local addresses

    # -- address arithmetic (the nested slicing) --------------------------------

    def l2_to_l1(self, l2_address: int, length: int = 0) -> int:
        """The L1 'auditor': rebase an L2 GVA, enforcing the sub-window."""
        if l2_address < 0 or l2_address >= self.size or l2_address + length > self.size:
            raise GuestError(
                f"sub-guest {self.index}: address {l2_address:#x} outside its sub-slice"
            )
        return self.base + l2_address

    # -- guest-facing surface --------------------------------------------------------

    def alloc_buffer(self, size: int) -> int:
        page = self._parent.page_size
        l2_address = self._alloc.alloc(align_up(size, page), alignment=page)
        # Registration flows through L1's handle, i.e. through L0's real
        # shadow-paging hypercalls for the rebased L1 addresses.
        self._parent.register_region(self.l2_to_l1(l2_address, size), size)
        return l2_address

    def write_buffer(self, l2_address: int, data: bytes) -> None:
        self._parent.handle.write_buffer(self.l2_to_l1(l2_address, len(data)), data)

    def read_buffer(self, l2_address: int, size: int) -> bytes:
        return self._parent.handle.read_buffer(self.l2_to_l1(l2_address, size), size)

    def mmio_write(self, offset: int, value: int, *, is_address: bool = False) -> Future:
        """Program the accelerator; address-carrying registers are rebased."""
        if is_address:
            value = self.l2_to_l1(value)
        return self._parent.handle.mmio_write(offset, value)


class NestedHypervisor:
    """An L1 hypervisor sub-slicing one OPTIMUS virtual accelerator."""

    def __init__(self, handle: GuestAccelerator, *, sub_slice_bytes: int) -> None:
        self.handle = handle
        self.page_size = handle.vm.page_size
        self.sub_slice_bytes = align_up(sub_slice_bytes, self.page_size)
        self.sub_guests: List[SubGuest] = []
        self._registered: Dict[int, int] = {}
        # Carve sub-slices from the parent window via the L1 allocator.
        self._carver = handle._buffers

    def create_sub_guest(self) -> SubGuest:
        base = self._carver.alloc(self.sub_slice_bytes, alignment=self.page_size)
        guest = SubGuest(self, len(self.sub_guests), base, self.sub_slice_bytes)
        self.sub_guests.append(guest)
        return guest

    def register_region(self, l1_address: int, size: int) -> None:
        """Make an L1 region FPGA-accessible through L0's hypercalls."""
        self.handle.driver.make_region_accessible(l1_address, size)
        self._registered[l1_address] = size

    # -- introspection for tests -------------------------------------------------

    def translation_chain(self, guest: SubGuest, l2_address: int) -> Dict[str, int]:
        """Every stage of the nested translation for one address."""
        l1_gva = guest.l2_to_l1(l2_address)
        vaccel = self.handle.vaccel
        iova = vaccel.slice.iova_base + (l1_gva - (vaccel.window_base_gva or 0))
        hypervisor = self.handle.hypervisor
        hpa = hypervisor.platform.iommu.translate_sync(iova)
        return {"l2_gva": l2_address, "l1_gva": l1_gva, "iova": iova, "hpa": hpa}
