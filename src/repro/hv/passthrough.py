"""The pass-through baseline (§6.1): direct assignment with vIOMMU.

The paper compares OPTIMUS against a guest that owns the whole FPGA via
VFIO direct assignment, with QEMU's virtual IOMMU exposing the real IOMMU
so the accelerator can use the guest process's virtual addresses directly
(IOVA == GVA).  There is no hardware monitor: the single accelerator is
wired straight to the shell and issues requests every cycle.

``PassthroughHypervisor`` also doubles as the *native* (non-virtualized)
runtime when built with ``virtualized=False``: the only modeled difference
is the control-plane cost — native MMIO is an uncached PCIe access, while
virtualized MMIO pays hypervisor trap-and-emulate (§2.1).  That difference
is what separates the native and virtualized curves of Fig. 1.
"""

from __future__ import annotations

from typing import Optional

from repro.accel.base import AcceleratorJob, ExecutionContext
from repro.errors import ConfigurationError, GuestError
from repro.hv.vm import VirtualMachine
from repro.interconnect.channel_selector import VirtualChannel
from repro.mem.address import GB, MB, align_up
from repro.mem.allocator import FrameAllocator
from repro.platform.builder import Platform, PlatformMode
from repro.sim.engine import Future, Process


class PassthroughHypervisor:
    """Direct assignment of one physical accelerator to one guest."""

    def __init__(self, platform: Platform, *, virtualized: bool = True) -> None:
        if platform.mode is not PlatformMode.PASSTHROUGH:
            raise ConfigurationError("PassthroughHypervisor needs a pass-through platform")
        self.platform = platform
        self.engine = platform.engine
        self.virtualized = virtualized
        self.page_size = platform.params.page_size
        reserved = align_up(4 * GB, self.page_size)
        self.frames = FrameAllocator(
            reserved, platform.dram.size_bytes - reserved, self.page_size
        )
        self.vm: Optional[VirtualMachine] = None
        self.pages_pinned = 0
        self.mmio_ops = 0
        self._job_process: Optional[Process] = None
        self.current_job: Optional[AcceleratorJob] = None

    # -- VM lifecycle -----------------------------------------------------------

    def create_vm(self, name: str = "guest", mem_bytes: int = 10 * GB) -> VirtualMachine:
        if self.vm is not None:
            raise ConfigurationError("pass-through supports a single guest")
        self.vm = VirtualMachine(name, self, mem_bytes=mem_bytes, page_size=self.page_size)
        return self.vm

    def back_guest_page(self, _vm: VirtualMachine) -> int:
        return self.frames.alloc_frame()

    def connect(self, *, window_bytes: int = 512 * MB):
        """Hand back a connected native handle (context-manager capable).

        The surface mirrors :meth:`OptimusHypervisor.connect` so the same
        benchmark body runs on either platform flavour.
        """
        from repro.guest.api import NativeAccelerator

        return NativeAccelerator(self, window_bytes=window_bytes)

    # -- vIOMMU: identity GVA -> IOVA, mapped straight to host frames -------------------

    def viommu_map_region(self, gva: int, size: int) -> int:
        """Map ``[gva, gva+size)`` into the IOMMU with IOVA == GVA.

        Models the guest driver registering DMA memory through the vIOMMU;
        pages are pinned, as with any direct-assigned device (§5).
        """
        if self.vm is None:
            raise GuestError("no guest VM")
        iommu = self.platform.iommu
        first = gva - (gva % self.page_size)
        end = gva + size
        count = 0
        page = first
        while page < end:
            _gpa, hpa = self.vm.mmu.resolve_for_pinning(page)
            iommu.map(page, hpa, writable=True)
            self.pages_pinned += 1
            count += 1
            page += self.page_size
        return count

    # -- control plane -----------------------------------------------------------------

    @property
    def mmio_cost_ps(self) -> int:
        params = self.platform.params
        if self.virtualized:
            return params.mmio_native_ps + params.mmio_trap_ps
        return params.mmio_native_ps

    def mmio_write(self, offset: int, value: int) -> Future:
        self.mmio_ops += 1
        self.platform.sockets[0].mmio_write(offset, value)
        return self.engine.timer(self.mmio_cost_ps)

    def mmio_read(self, offset: int) -> Future:
        self.mmio_ops += 1
        value = self.platform.sockets[0].mmio_read(offset)
        return self.engine.timer(self.mmio_cost_ps, value)

    # -- job execution (no temporal multiplexing in pass-through) -------------------------

    def start_job(
        self,
        job: AcceleratorJob,
        *,
        channel: VirtualChannel = VirtualChannel.VA,
    ) -> Future:
        """Run a job to completion on the directly assigned accelerator."""
        if self._job_process is not None and not self._job_process.completion.done():
            raise ConfigurationError("an acceleration job is already running")
        socket = self.platform.sockets[0]
        socket.dma.max_outstanding = job.profile.max_outstanding
        ctx = ExecutionContext(self.engine, socket, clock=job.profile.clock, channel=channel)
        job.configure(job.regs)
        self.current_job = job
        self._job_process = self.engine.spawn(job.body(ctx), name=f"pt.{job.profile.name}")
        job.completion = self._job_process.completion
        return self._job_process.completion

    def run_until_done(self, limit_ps: Optional[int] = None) -> None:
        if self._job_process is None:
            raise ConfigurationError("no job started")
        if not self._job_process.completion.done():
            self.engine.run_until(self._job_process.completion, limit_ps=limit_ps)
