"""Preemptive temporal multiplexing of one physical accelerator (§4.2, §5).

:class:`PhysicalAccelerator` is the hypervisor-side manager for one AFU
socket.  It owns the list of virtual accelerators bound to the socket and
runs the scheduling loop that the paper describes:

* pick the next virtual accelerator per the configured policy;
* **context switch out**: send the preempt command, wait for the
  accelerator to drain in-flight transactions and serialize its state to
  the guest's DRAM buffer (or forcibly reset it after the timeout, §4.2),
  cache its application registers, and pulse the reset line for isolation;
* **context switch in**: replay cached application registers, program the
  auditor's offset-table entry for the incoming guest (page table
  slicing's only per-switch cost — the IO page table itself is *not*
  switched), restore saved state, and restart the job;
* run for one time slice (or to completion).

A physical accelerator with exactly one virtual accelerator never
preempts — temporal multiplexing overhead only appears with 2+ jobs,
matching the 1-job baseline of Fig. 8.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, List, Optional

from repro.accel.base import ExecutionContext
from repro.core.vcu import (
    REG_ACCEL_SELECT,
    REG_RESET,
    REG_SLICE_BASE,
    REG_WINDOW_BASE,
    REG_WINDOW_SIZE,
)
from repro.errors import SchedulerError
from repro.fpga.shell import SHELL_MMIO_BYTES
from repro.hv.mdev import VAccelState, VirtualAccelerator
from repro.hv.scheduler import RoundRobinScheduler, SchedulingPolicy
from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import gbps_to_bytes_per_ps
from repro.sim.engine import Process, any_of
from repro.sim.stats import UtilizationTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor


class PhysicalAccelerator:
    """Scheduler + context-switch machinery for one AFU socket."""

    def __init__(self, hypervisor: "OptimusHypervisor", socket_index: int) -> None:
        self.hypervisor = hypervisor
        self.platform = hypervisor.platform
        self.engine = self.platform.engine
        self.socket_index = socket_index
        self.socket = self.platform.sockets[socket_index]
        self.vaccels: List[VirtualAccelerator] = []
        self.scheduler: SchedulingPolicy = RoundRobinScheduler(
            self.platform.params.time_slice_ps
        )
        self.current: Optional[VirtualAccelerator] = None
        self.current_process: Optional[Process] = None
        self.current_ctx: Optional[ExecutionContext] = None
        self.default_channel = VirtualChannel.VA
        self._loop: Optional[Process] = None
        self.context_switches = 0
        # Tracing: scheduler decisions and save/restore phases are pure
        # control plane — identical between simulator modes.
        self._trace = self.engine.trace
        if self._trace is not None:
            self._trace_tid = self._trace.thread(f"hv.pa{socket_index}")

    # -- attachment ---------------------------------------------------------------

    def attach(self, vaccel: VirtualAccelerator) -> None:
        if vaccel.physical_index != self.socket_index:
            raise SchedulerError("vaccel bound to a different physical accelerator")
        self.vaccels.append(vaccel)
        vaccel.state = VAccelState.QUEUED
        vaccel.utilization = UtilizationTracker(self.engine, vaccel.name)
        vaccel.job.completion = self.engine.future()

    def start(self) -> None:
        """Begin (or resume) the scheduling loop."""
        if self._loop is None or self._loop.completion.done():
            self._loop = self.engine.spawn(
                self._schedule_loop(), name=f"sched.pa{self.socket_index}"
            )

    def all_done(self) -> bool:
        return all(va.job.done for va in self.vaccels)

    # -- cost model ------------------------------------------------------------------

    def _state_transfer_ps(self, nbytes: int) -> int:
        rate = gbps_to_bytes_per_ps(self.platform.params.state_save_bandwidth_gbps)
        return math.ceil(nbytes / rate)

    # -- the scheduling loop ------------------------------------------------------------

    def _runnable(self) -> List[VirtualAccelerator]:
        return [
            va for va in self.vaccels
            if va.started and not va.job.done and not va.quarantined
        ]

    def _schedule_loop(self) -> Generator:
        while True:
            runnable = self._runnable()
            if not runnable:
                if self.current is not None:
                    # Normally the occupant just finished; during a
                    # migration it may be an unfinished job being pulled.
                    yield from self._switch_out()
                return
            choice, slice_ps = self.scheduler.pick(runnable)
            if self._trace is not None:
                self._trace.instant("hv.sched.pick", self.engine.now,
                                    tid=self._trace_tid, cat="hv",
                                    args={"vaccel": choice.name,
                                          "slice_ps": slice_ps,
                                          "runnable": len(runnable)})
            if self.current is not choice:
                if self.current is not None:
                    yield from self._switch_out()
                yield from self._switch_in(choice)
            assert self.current_process is not None
            timer = self.engine.timer(slice_ps)
            yield any_of(self.engine, [timer, self.current_process.completion])
            if self.current.job.done:
                yield from self._retire()
                continue
            if self.current_process.completion.done():
                # The job's process ended without finishing its work: the
                # modeled circuit crashed (e.g. a malformed register made
                # it raise).  Reset the slot and fail the job visibly.
                yield from self._fail_current()
                continue
            if len(self._runnable()) == 1:
                # Sole occupant: no temporal multiplexing, no preemption.
                continue
            # Slice expired with competitors: preempt at the fixed interval.
            yield from self._switch_out()

    # -- context switch: out ----------------------------------------------------------------

    def _switch_out(self) -> Generator:
        vaccel = self.current
        if vaccel is None:
            return
        process = self.current_process
        ctx = self.current_ctx
        assert process is not None and ctx is not None
        params = self.platform.params
        save_start_ps = self.engine.now
        forced = False

        if not process.completion.done():
            save_cost = self._state_transfer_ps(vaccel.job.state_size())
            saved = ctx.arm_preemption(save_cost)
            timeout = self.engine.timer(params.preemption_timeout_ps)
            winner = yield any_of(self.engine, [saved, process.completion, timeout])
            if winner is timeout and not saved.done() and not process.completion.done():
                # Misbehaving accelerator: forcible reset (§4.2).
                process.interrupt()
                vaccel.forced_resets += 1
                forced = True
                # Unsaved progress is lost; the job restarts from its last
                # successful checkpoint when rescheduled.
            else:
                yield params.preempt_protocol_ps  # drain/handshake MMIO traps
                if not vaccel.job.done:
                    vaccel.saved_state = vaccel.job.save_state()
                    self._spill_state(vaccel)
                    vaccel.preempt_count += 1

        # Cache application registers so queued MMIO reads can be served.
        vaccel.reg_cache.update(self.socket.registers.snapshot())
        # Reset the physical accelerator to clear state for isolation (§4.1).
        self._vcu_write(REG_RESET, self.socket_index)
        if vaccel.utilization is not None:
            vaccel.utilization.end()
        vaccel.state = VAccelState.DONE if vaccel.job.done else VAccelState.QUEUED
        self.current = None
        self.current_process = None
        self.current_ctx = None
        self.context_switches += 1
        if self._trace is not None:
            self._trace.complete("hv.ctxsw.save", save_start_ps, self.engine.now,
                                 tid=self._trace_tid, cat="hv",
                                 args={"vaccel": vaccel.name, "forced": forced,
                                       "done": vaccel.job.done})

    def _spill_state(self, vaccel: VirtualAccelerator) -> None:
        """Functionally place the saved state in the guest's DRAM buffer."""
        if vaccel.state_buffer_gva is None or vaccel.saved_state is None:
            return
        vaccel.vm.write_memory(vaccel.state_buffer_gva, vaccel.saved_state)

    # -- context switch: in ---------------------------------------------------------------------

    def _switch_in(self, vaccel: VirtualAccelerator) -> Generator:
        params = self.platform.params
        restore_start_ps = self.engine.now
        yield params.resume_protocol_ps

        # Program the auditor's offset-table entry through the VCU: this is
        # the entirety of page table slicing's per-switch work.
        self._vcu_write(REG_ACCEL_SELECT, self.socket_index)
        self._vcu_write(REG_WINDOW_BASE, vaccel.window_base_gva or 0)
        self._vcu_write(REG_WINDOW_SIZE, vaccel.window_size)
        self._vcu_write(REG_SLICE_BASE, vaccel.slice.iova_base)
        yield 4 * params.mmio_native_ps

        # Replay cached application registers (§4.2: idempotent registers
        # are cached in software and synchronized while scheduling).
        self.socket.registers.restore(vaccel.cached_registers())
        self.socket.dma.max_outstanding = vaccel.job.profile.max_outstanding

        if vaccel.saved_state is not None:
            yield self._state_transfer_ps(len(vaccel.saved_state))
            vaccel.job.restore_state(vaccel.saved_state)

        ctx = ExecutionContext(
            self.engine,
            self.socket,
            clock=vaccel.job.profile.clock,
            channel=self.default_channel,
        )
        vaccel.job.configure(vaccel.cached_registers())
        self.current = vaccel
        self.current_ctx = ctx
        self.current_process = self.engine.spawn(
            vaccel.job.body(ctx), name=f"job.{vaccel.name}"
        )
        vaccel.state = VAccelState.SCHEDULED
        vaccel.schedule_count += 1
        if vaccel.utilization is not None:
            vaccel.utilization.begin()
        if self._trace is not None:
            self._trace.complete("hv.ctxsw.restore", restore_start_ps,
                                 self.engine.now, tid=self._trace_tid, cat="hv",
                                 args={"vaccel": vaccel.name,
                                       "restored_state": vaccel.saved_state is not None})

    def _fail_current(self) -> Generator:
        vaccel = self.current
        process = self.current_process
        assert vaccel is not None and process is not None
        if not vaccel.quarantined:
            # Quarantines are counted by the watchdog (auditor violation
            # counters), not as spontaneous circuit crashes.
            vaccel.crashes = getattr(vaccel, "crashes", 0) + 1
        vaccel.job.done = True  # dead: never scheduled again
        self.socket.reset()
        if vaccel.utilization is not None:
            vaccel.utilization.end()
        vaccel.state = VAccelState.DONE
        completion = vaccel.job.completion
        if completion is not None and not completion.done():
            exc = process.completion.exception()
            if exc is not None:
                completion.set_exception(exc)
            else:
                completion.set_result(False)
        self.current = None
        self.current_process = None
        self.current_ctx = None
        return
        yield  # pragma: no cover - marks this as a generator

    def _retire(self) -> Generator:
        vaccel = self.current
        assert vaccel is not None
        if vaccel.utilization is not None:
            vaccel.utilization.end()
        vaccel.state = VAccelState.DONE
        if vaccel.job.completion is not None and not vaccel.job.completion.done():
            vaccel.job.completion.set_result(True)
        self.current = None
        self.current_process = None
        self.current_ctx = None
        return
        yield  # pragma: no cover - marks this as a generator

    # -- VCU access --------------------------------------------------------------------------------

    def _vcu_write(self, register: int, value: int) -> None:
        self.platform.shell.mmio_write(SHELL_MMIO_BYTES + register, value)
