"""Temporal-multiplexing scheduling policies (§5, §6.8).

OPTIMUS ships three software schedulers:

* **unweighted round-robin** — equal time slices, the default;
* **weighted** — each virtual accelerator's slice is scaled by its weight;
* **priority** — at every slice boundary, the runnable job with the
  greatest priority runs (ties broken round-robin).

A policy is a pure decision function: given the runnable virtual
accelerators it returns who runs next and for how long.  The hypervisor's
per-physical-accelerator scheduling loop (:mod:`repro.hv.preemption`)
executes the decision, performs the context switch, and accounts actual
runtime, which §6.8 compares against each policy's expectation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulerError
from repro.hv.mdev import VirtualAccelerator
from repro.sim.clock import ms


class SchedulingPolicy:
    """Base class: pick the next virtual accelerator and its slice length."""

    name = "base"

    def pick(
        self, runnable: Sequence[VirtualAccelerator]
    ) -> Tuple[VirtualAccelerator, int]:
        raise NotImplementedError

    def expected_shares(
        self, vaccels: Sequence[VirtualAccelerator]
    ) -> Dict[int, float]:
        """Fraction of physical-accelerator time each vaccel should get.

        Used by the §6.8 experiment to compute expected execution times.
        """
        raise NotImplementedError


class RoundRobinScheduler(SchedulingPolicy):
    """Unweighted round-robin: equal slices, strict rotation (the default)."""

    name = "round-robin"

    def __init__(self, time_slice_ps: int = ms(10)) -> None:
        if time_slice_ps <= 0:
            raise SchedulerError("time slice must be positive")
        self.time_slice_ps = time_slice_ps
        self._last_id: Optional[int] = None

    def pick(self, runnable: Sequence[VirtualAccelerator]) -> Tuple[VirtualAccelerator, int]:
        if not runnable:
            raise SchedulerError("nothing runnable")
        ordered = sorted(runnable, key=lambda va: va.vaccel_id)
        if self._last_id is None:
            choice = ordered[0]
        else:
            later = [va for va in ordered if va.vaccel_id > self._last_id]
            choice = later[0] if later else ordered[0]
        self._last_id = choice.vaccel_id
        return choice, self.time_slice_ps

    def expected_shares(self, vaccels: Sequence[VirtualAccelerator]) -> Dict[int, float]:
        share = 1.0 / len(vaccels)
        return {va.vaccel_id: share for va in vaccels}


class WeightedScheduler(SchedulingPolicy):
    """Weighted time slices: vaccel ``i`` runs ``weight_i x base_slice``."""

    name = "weighted"

    def __init__(self, weights: Dict[int, float], base_slice_ps: int = ms(10)) -> None:
        if base_slice_ps <= 0:
            raise SchedulerError("base slice must be positive")
        if any(w <= 0 for w in weights.values()):
            raise SchedulerError("weights must be positive")
        self.weights = dict(weights)
        self.base_slice_ps = base_slice_ps
        self._last_id: Optional[int] = None

    def weight_of(self, vaccel: VirtualAccelerator) -> float:
        return self.weights.get(vaccel.vaccel_id, 1.0)

    def pick(self, runnable: Sequence[VirtualAccelerator]) -> Tuple[VirtualAccelerator, int]:
        if not runnable:
            raise SchedulerError("nothing runnable")
        ordered = sorted(runnable, key=lambda va: va.vaccel_id)
        if self._last_id is None:
            choice = ordered[0]
        else:
            later = [va for va in ordered if va.vaccel_id > self._last_id]
            choice = later[0] if later else ordered[0]
        self._last_id = choice.vaccel_id
        return choice, round(self.base_slice_ps * self.weight_of(choice))

    def expected_shares(self, vaccels: Sequence[VirtualAccelerator]) -> Dict[int, float]:
        total = sum(self.weight_of(va) for va in vaccels)
        return {va.vaccel_id: self.weight_of(va) / total for va in vaccels}


class PriorityScheduler(SchedulingPolicy):
    """Strict priority: the runnable job with the greatest priority runs.

    Equal-priority jobs share round-robin.  Starvation of low-priority
    jobs while higher ones run is the *intended* behaviour (§6.8 verifies
    the policy is enforced, not that it is pleasant).
    """

    name = "priority"

    def __init__(self, priorities: Dict[int, int], time_slice_ps: int = ms(10)) -> None:
        if time_slice_ps <= 0:
            raise SchedulerError("time slice must be positive")
        self.priorities = dict(priorities)
        self.time_slice_ps = time_slice_ps
        self._last_id: Optional[int] = None

    def priority_of(self, vaccel: VirtualAccelerator) -> int:
        return self.priorities.get(vaccel.vaccel_id, 0)

    def pick(self, runnable: Sequence[VirtualAccelerator]) -> Tuple[VirtualAccelerator, int]:
        if not runnable:
            raise SchedulerError("nothing runnable")
        top = max(self.priority_of(va) for va in runnable)
        candidates = sorted(
            (va for va in runnable if self.priority_of(va) == top),
            key=lambda va: va.vaccel_id,
        )
        if self._last_id is not None:
            later = [va for va in candidates if va.vaccel_id > self._last_id]
            choice = later[0] if later else candidates[0]
        else:
            choice = candidates[0]
        self._last_id = choice.vaccel_id
        return choice, self.time_slice_ps

    def expected_shares(self, vaccels: Sequence[VirtualAccelerator]) -> Dict[int, float]:
        top = max(self.priority_of(va) for va in vaccels)
        winners: List[VirtualAccelerator] = [
            va for va in vaccels if self.priority_of(va) == top
        ]
        shares = {va.vaccel_id: 0.0 for va in vaccels}
        for va in winners:
            shares[va.vaccel_id] = 1.0 / len(winners)
        return shares
