"""Shadow paging: keeping the IO page table consistent with guest memory.

The IOMMU cannot walk nested (guest, then host) page tables, so OPTIMUS
maintains a *shadow* of each guest's mappings directly in the single IO
page table (§4.1, §5): the composed translation IOVA -> HPA, where
IOVA = GVA + slicing offset.

The prototype's mechanism is a hypercall-style register pair in BAR2: the
guest driver notifies the hypervisor of a (GVA, GPA) pair for each page it
makes FPGA-accessible.  The hypervisor then

1. validates the pair against the guest's own page table (a lying guest
   is caught here),
2. checks page permissions,
3. pins the backing host frame (pass-through-style pinning, but — unlike
   SR-IOV — only for pages the guest actually registered, §5 "Huge Pages"),
4. computes the IOVA from the vaccel's slice and window base, and
5. installs IOVA -> HPA in the IO page table.

At window-registration time every IOPT entry of the window is pointed at
a per-vaccel dummy page, so a stray (but in-window) DMA can never fault
the IOMMU or touch another guest's memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import GuestError, TranslationFault
from repro.hv.mdev import VirtualAccelerator
from repro.mem.iommu import Iommu

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor

#: Windows larger than this many pages skip eager dummy backing (they would
#: bloat the IOPT); unregistered pages there simply fault-and-drop instead.
DUMMY_BACKING_PAGE_LIMIT = 65536


class ShadowPager:
    """Maintains the sliced IO page table for every virtual accelerator."""

    def __init__(self, hypervisor: "OptimusHypervisor", iommu: Iommu) -> None:
        self.hypervisor = hypervisor
        self.iommu = iommu
        self.page_size = iommu.page_size
        self.pages_mapped = 0
        self.pages_pinned = 0
        # Tracing: page-table slicing is hypervisor control plane, identical
        # between simulator modes.
        self._trace = iommu.engine.trace
        if self._trace is not None:
            self._trace_tid = self._trace.thread("hv.slicing")

    # -- window lifecycle -----------------------------------------------------------

    def install_window(self, vaccel: VirtualAccelerator) -> None:
        """Back a freshly registered DMA window with the dummy page."""
        if vaccel.window_base_gva is None or vaccel.window_size == 0:
            raise GuestError(f"{vaccel.name}: DMA window not registered")
        if vaccel.window_base_gva % self.page_size:
            raise GuestError(f"{vaccel.name}: window base must be page-aligned")
        if vaccel.window_size > vaccel.slice.size:
            raise GuestError(
                f"{vaccel.name}: window exceeds the {vaccel.slice.size:#x}-byte slice"
            )
        n_pages = (vaccel.window_size + self.page_size - 1) // self.page_size
        if self._trace is not None:
            self._trace.instant("hv.slice.window", self.iommu.engine.now,
                                tid=self._trace_tid, cat="hv",
                                args={"vaccel": vaccel.name,
                                      "iova_base": vaccel.slice.iova_base,
                                      "pages": n_pages})
        if n_pages > DUMMY_BACKING_PAGE_LIMIT:
            return  # huge reservation: leave unregistered pages unmapped
        dummy_hpa = self.hypervisor.dummy_frame()
        for index in range(n_pages):
            iova = vaccel.slice.iova_base + index * self.page_size
            self.iommu.map(iova, dummy_hpa, writable=True)

    def teardown_window(self, vaccel: VirtualAccelerator) -> int:
        """Remove every IOPT entry of a departing virtual accelerator."""
        return self.iommu.unmap_range(vaccel.slice.iova_base, vaccel.slice.size)

    # -- the hypercall (§5 "Shadow Paging") ---------------------------------------------

    def map_page(self, vaccel: VirtualAccelerator, gva: int, gpa: int) -> int:
        """Handle the guest's (GVA, GPA) notification; returns the IOVA."""
        if gva % self.page_size or gpa % self.page_size:
            raise GuestError("hypercall addresses must be page-aligned")
        window_base = vaccel.window_base_gva
        if window_base is None:
            raise GuestError(f"{vaccel.name}: register a DMA window first")
        if not window_base <= gva < window_base + vaccel.window_size:
            raise GuestError(
                f"{vaccel.name}: GVA {gva:#x} outside the registered DMA window"
            )

        # Validate the guest's claim against its own page table, check
        # permissions, and pin the backing host frame.
        vm = vaccel.vm
        try:
            claimed_gpa = vm.mmu.gva_to_gpa(gva)
        except TranslationFault as exc:
            raise GuestError(f"{vaccel.name}: GVA {gva:#x} not mapped in guest") from exc
        if claimed_gpa != gpa:
            raise GuestError(
                f"{vaccel.name}: guest lied about GPA for {gva:#x} "
                f"(claimed {gpa:#x}, page table says {claimed_gpa:#x})"
            )
        _gpa, hpa = vm.mmu.resolve_for_pinning(gva)
        self.pages_pinned += 1

        iova = vaccel.slice.iova_base + (gva - window_base)
        self.iommu.map(iova, hpa, writable=True)
        self.pages_mapped += 1
        vaccel.mapped_gvas.add(gva)
        if self._trace is not None:
            self._trace.instant("hv.slice.map", self.iommu.engine.now,
                                tid=self._trace_tid, cat="hv",
                                args={"vaccel": vaccel.name, "iova": iova})
        return iova

    def map_region(self, vaccel: VirtualAccelerator, gva: int, size: int) -> int:
        """Register every page of ``[gva, gva+size)``; returns pages mapped.

        Convenience used by the guest library after allocating a buffer.
        """
        count = 0
        first_page = gva - (gva % self.page_size)
        end = gva + size
        page = first_page
        while page < end:
            gpa = vaccel.vm.mmu.gva_to_gpa(page)
            self.map_page(vaccel, page, gpa)
            count += 1
            page += self.page_size
        return count
