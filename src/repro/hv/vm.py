"""Virtual machines and their guest address spaces.

A :class:`VirtualMachine` models what KVM + QEMU provide in the paper's
stack: a guest-physical address space backed by pinned-on-demand host
frames (EPT), a guest process address space (the single accelerator-using
process per VM the experiments run), and functional memory access that
really moves bytes through host DRAM — so an accelerator's DMA writes are
immediately visible to guest software reads and vice versa, the
consistency property §1 demands of shared-memory virtualization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError, GuestError
from repro.mem.address import align_up
from repro.mem.allocator import RegionAllocator
from repro.mem.mmu import GuestMmu

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor


class VirtualMachine:
    """One tenant VM: guest memory plus the process using the accelerator."""

    def __init__(
        self,
        name: str,
        hypervisor: "OptimusHypervisor",
        *,
        mem_bytes: int,
        page_size: int,
        gva_stagger: int = 0,
    ) -> None:
        if mem_bytes <= 0:
            raise ConfigurationError("VM memory must be positive")
        self.name = name
        self.hypervisor = hypervisor
        self.mem_bytes = mem_bytes
        self.page_size = page_size
        self.mmu = GuestMmu(name, page_size)
        # Guest-physical space: a simple bump region starting at 0.
        self._gpa_alloc = RegionAllocator(0, mem_bytes, granule=page_size)
        # Guest-virtual space for the accelerator-using process.  Start well
        # above zero so GVAs and GPAs are visibly distinct in traces, and
        # stagger each VM's base by a few 4 KB pages (ASLR-style): with
        # 4 KB IO pages this spreads different guests' buffers over
        # different IOTLB sets, as real, independently-randomized guest
        # address spaces do.
        self._gva_alloc = RegionAllocator(
            (1 << 40) + gva_stagger, 1 << 44, granule=page_size
        )

    # -- guest OS memory management -----------------------------------------------

    def alloc_pages(self, size: int) -> int:
        """Allocate guest-virtual memory backed by guest-physical pages.

        Models ``mmap`` + touching the pages: every page gets a GVA->GPA
        mapping and the hypervisor backs each GPA with a pinned-capable
        host frame (EPT entry).  Returns the GVA base.
        """
        size = align_up(size, self.page_size)
        gva = self._gva_alloc.alloc(size, alignment=self.page_size)
        gpa = self._gpa_alloc.alloc(size, alignment=self.page_size)
        for offset in range(0, size, self.page_size):
            self.mmu.map_guest(gva + offset, gpa + offset)
            hpa = self.hypervisor.back_guest_page(self)
            self.mmu.map_host(gpa + offset, hpa)
        return gva

    def reserve_va(self, size: int, *, alignment: Optional[int] = None) -> int:
        """Reserve guest-virtual space without backing it.

        Models ``mmap(MAP_NORESERVE)`` — how the guest library reserves its
        64 GB DMA slice without allocating physical memory (§5).
        """
        size = align_up(size, self.page_size)
        return self._gva_alloc.alloc(size, alignment=alignment or self.page_size)

    def back_reserved_page(self, gva: int) -> None:
        """Materialize one page inside a reserved region (first touch)."""
        if gva % self.page_size:
            raise GuestError("page address must be aligned")
        if self.mmu.guest_table.is_mapped(gva):
            return
        gpa = self._gpa_alloc.alloc(self.page_size, alignment=self.page_size)
        self.mmu.map_guest(gva, gpa)
        hpa = self.hypervisor.back_guest_page(self)
        self.mmu.map_host(gpa, hpa)

    # -- functional memory access (guest software reads/writes) ----------------------

    def write_memory(self, gva: int, data: bytes) -> None:
        """CPU-side store by the guest process; lands in host DRAM."""
        dram = self.hypervisor.platform.dram
        for chunk_gva, chunk in self._split(gva, data):
            hpa = self.mmu.gva_to_hpa(chunk_gva, write=True)
            dram.write_now(hpa, chunk)

    def read_memory(self, gva: int, size: int) -> bytes:
        """CPU-side load by the guest process; reads host DRAM."""
        dram = self.hypervisor.platform.dram
        parts = []
        current = gva
        end = gva + size
        while current < end:
            page_end = (current // self.page_size + 1) * self.page_size
            length = min(end, page_end) - current
            hpa = self.mmu.gva_to_hpa(current)
            parts.append(dram.read_now(hpa, length))
            current += length
        return b"".join(parts)

    def _split(self, gva: int, data: bytes):
        current = gva
        consumed = 0
        while consumed < len(data):
            page_end = (current // self.page_size + 1) * self.page_size
            length = min(len(data) - consumed, page_end - current)
            yield current, data[consumed : consumed + length]
            current += length
            consumed += length

    def read_u64(self, gva: int) -> int:
        return int.from_bytes(self.read_memory(gva, 8), "little")

    def write_u64(self, gva: int, value: int) -> None:
        self.write_memory(gva, (value & (2**64 - 1)).to_bytes(8, "little"))
