"""Per-guest forward-progress watchdog.

OPTIMUS's preemption machinery already handles an accelerator that refuses
to *cede* the fabric (forcible reset after the preemption timeout, §4.2),
but nothing in the paper's prototype notices a guest whose circuit keeps
cycling without ever completing work — a hang loop burns its entire fair
share of accelerator time forever.  :class:`GuestWatchdog` closes that
gap: one simulated-time process per virtual accelerator samples the job's
progress counter every ``deadline_ps``; if the guest consumed fabric time
during the window yet reported no forward progress, the watchdog
**quarantines** it — the current process is forcibly reset through the
standard interrupt path and the vaccel is permanently excluded from the
runnable set, freeing its slot for well-behaved tenants.

Quarantine is deliberately one-way within a plan window (ISSUE 4's
self-healing invariant): a guest that hung once is assumed compromised and
never regains a slot.  The event is surfaced exactly where the paper puts
isolation violations — the per-socket auditor's counter bag — under the
``watchdog_quarantined`` key, so :meth:`HardwareMonitor.violation_counts`
aggregates hangs alongside fenced DMAs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set

from repro.errors import ConfigurationError
from repro.hv.mdev import VAccelState, VirtualAccelerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hv.hypervisor import OptimusHypervisor


class GuestWatchdog:
    """Stall detector + quarantine authority for one hypervisor."""

    def __init__(self, hypervisor: "OptimusHypervisor", deadline_ps: int) -> None:
        if deadline_ps <= 0:
            raise ConfigurationError("watchdog deadline must be positive")
        self.hypervisor = hypervisor
        self.engine = hypervisor.engine
        self.deadline_ps = deadline_ps
        self.quarantined: List[VirtualAccelerator] = []
        #: Quarantine log: one record per event, deterministic order.
        self.events: List[Dict[str, object]] = []
        self._watched: Set[int] = set()
        self._trace = self.engine.trace
        if self._trace is not None:
            self._trace_tid = self._trace.thread("hv.watchdog")

    # -- watching -----------------------------------------------------------------

    def watch(self, vaccel: VirtualAccelerator) -> None:
        """Start (idempotently) the watchdog process for one vaccel."""
        if vaccel.vaccel_id in self._watched:
            return
        self._watched.add(vaccel.vaccel_id)
        self.engine.spawn(self._watch(vaccel), name=f"watchdog.{vaccel.name}")

    def _watch(self, vaccel: VirtualAccelerator) -> Generator:
        job = vaccel.job
        while not job.done and not vaccel.quarantined:
            progress = job.progress_units()
            busy = self._busy_ps(vaccel)
            yield self.deadline_ps
            if job.done or vaccel.quarantined:
                return
            consumed = self._busy_ps(vaccel) - busy
            # Stall = the guest held the fabric during the window yet its
            # progress counter never moved.  A merely *queued* guest (zero
            # fabric time) is starved, not hung — never quarantined.
            if vaccel.started and consumed > 0 and job.progress_units() <= progress:
                self.quarantine(vaccel)
                return

    def _busy_ps(self, vaccel: VirtualAccelerator) -> int:
        tracker = vaccel.utilization
        return tracker.current_busy_ps() if tracker is not None else 0

    # -- quarantine ---------------------------------------------------------------

    def quarantine(self, vaccel: VirtualAccelerator) -> None:
        """Preempt + permanently bench a stalled guest."""
        if vaccel.quarantined:
            return
        vaccel.quarantined = True
        self.quarantined.append(vaccel)
        self.events.append({
            "at_ps": self.engine.now,
            "vaccel": vaccel.name,
            "physical_index": vaccel.physical_index,
        })
        self._bump_violation(vaccel)
        if self._trace is not None:
            self._trace.instant("hv.watchdog.quarantine", self.engine.now,
                                tid=self._trace_tid, cat="fault",
                                args={"vaccel": vaccel.name})
        manager = self.hypervisor.physical[vaccel.physical_index]
        if manager.current is vaccel and manager.current_process is not None:
            # Scheduled: pull the reset line.  The process completes (with
            # None) at its next resume; the scheduling loop then routes
            # through ``_fail_current`` which finalizes job + completion.
            manager.current_process.interrupt()
        elif not vaccel.job.done:
            # Queued: no circuit to reset — finalize administratively.
            vaccel.job.done = True
            vaccel.state = VAccelState.DONE
            completion = vaccel.job.completion
            if completion is not None and not completion.done():
                completion.set_result(False)

    def _bump_violation(self, vaccel: VirtualAccelerator) -> None:
        monitor = getattr(self.hypervisor.platform, "monitor", None)
        if monitor is not None and vaccel.physical_index < len(monitor.auditors):
            auditor = monitor.auditors[vaccel.physical_index]
            auditor.counters.bump("watchdog_quarantined")
