"""CPU-FPGA interconnect: UPI/PCIe links, channel selection, memory path."""

from repro.interconnect.channel_selector import ChannelSelector, VirtualChannel
from repro.interconnect.link import Link, LinkKind
from repro.interconnect.topology import MemorySystem

__all__ = [
    "ChannelSelector",
    "Link",
    "LinkKind",
    "MemorySystem",
    "VirtualChannel",
]
