"""CCI-P virtual-channel selection.

CCI-P lets an accelerator tag each request with a virtual channel:

* ``VA``  — "auto": the shell's channel selector picks a physical link,
  optimizing for aggregate throughput (§6.1);
* ``VL0`` — force the UPI link;
* ``VH0``/``VH1`` — force one of the two PCIe links.

The paper's LinkedList benchmark pins VL0 or VH0 precisely because VA's
throughput-oriented placement makes latency unstable (§6.1: "the channel
selector places some reads on PCIe, leading to wide performance variation
for latency-sensitive benchmarks").  The VA policy here — pick the link
with the smallest backlog, breaking ties round-robin — reproduces exactly
that behaviour: an idle platform round-robins requests across UPI and
PCIe, so per-request latency alternates between ~400 ns and ~900 ns.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.interconnect.link import Link, LinkKind


class VirtualChannel(enum.Enum):
    VA = "va"  # automatic
    VL0 = "vl0"  # UPI only
    VH0 = "vh0"  # PCIe link 0 only
    VH1 = "vh1"  # PCIe link 1 only


class ChannelSelector:
    """Maps each request's virtual channel to a physical link."""

    def __init__(self, upi: Link, pcie_links: Sequence[Link]) -> None:
        if upi.kind is not LinkKind.UPI:
            raise ConfigurationError("first link must be UPI")
        if not pcie_links:
            raise ConfigurationError("need at least one PCIe link")
        for link in pcie_links:
            if link.kind is not LinkKind.PCIE:
                raise ConfigurationError("pcie_links must all be PCIe")
        self.upi = upi
        self.pcie_links = list(pcie_links)
        self.all_links: List[Link] = [upi, *pcie_links]
        self._rr_cursor = 0

    def select(self, channel: VirtualChannel) -> Link:
        """Resolve a virtual channel to a physical link for one request."""
        fixed = self.fixed_link(channel)
        if fixed is not None:
            return fixed
        return self._select_auto()

    def _select_auto(self) -> Link:
        # Throughput-optimized: least-backlog wins; ties rotate round-robin
        # so an unloaded platform spreads requests across every link.
        # Open-coded equivalent of auto_pick() (which remains the reference
        # policy): this runs per request, so avoid building the tie list
        # unless there actually is a tie.
        links = self.all_links
        best_backlog = -1
        best_first = 0
        ties = 1
        for index, link in enumerate(links):
            backlog = link.backlog_ps
            if best_backlog < 0 or backlog < best_backlog:
                best_backlog = backlog
                best_first = index
                ties = 1
            elif backlog == best_backlog:
                ties += 1
        cursor = self._rr_cursor
        self._rr_cursor = cursor + 1
        if ties == 1:
            return links[best_first]
        pick = cursor % ties
        seen = 0
        for link in links[best_first:]:
            if link.backlog_ps == best_backlog:
                if seen == pick:
                    return link
                seen += 1
        raise AssertionError("unreachable: tie scan exhausted")

    def auto_pick(self, backlogs: Sequence[int], cursor: int) -> int:
        """The pure VA policy: index of the link chosen for one request.

        Exposed so the simulator fast path can replay the exact policy
        against *planned* backlogs at a future instant (and advance the
        round-robin cursor itself only once a burst commits).
        """
        best: List[int] = []
        best_backlog = None
        for index, backlog in enumerate(backlogs):
            if best_backlog is None or backlog < best_backlog:
                best = [index]
                best_backlog = backlog
            elif backlog == best_backlog:
                best.append(index)
        return best[cursor % len(best)]

    def fixed_link(self, channel: VirtualChannel) -> Optional[Link]:
        """The forced link for a pinned channel, or ``None`` for VA."""
        if channel is VirtualChannel.VL0:
            return self.upi
        if channel is VirtualChannel.VH0:
            return self.pcie_links[0]
        if channel is VirtualChannel.VH1:
            return self.pcie_links[min(1, len(self.pcie_links) - 1)]
        return None
