"""CCI-P virtual-channel selection.

CCI-P lets an accelerator tag each request with a virtual channel:

* ``VA``  — "auto": the shell's channel selector picks a physical link,
  optimizing for aggregate throughput (§6.1);
* ``VL0`` — force the UPI link;
* ``VH0``/``VH1`` — force one of the two PCIe links.

The paper's LinkedList benchmark pins VL0 or VH0 precisely because VA's
throughput-oriented placement makes latency unstable (§6.1: "the channel
selector places some reads on PCIe, leading to wide performance variation
for latency-sensitive benchmarks").  The VA policy here — pick the link
with the smallest backlog, breaking ties round-robin — reproduces exactly
that behaviour: an idle platform round-robins requests across UPI and
PCIe, so per-request latency alternates between ~400 ns and ~900 ns.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.interconnect.link import Link, LinkKind


class VirtualChannel(enum.Enum):
    VA = "va"  # automatic
    VL0 = "vl0"  # UPI only
    VH0 = "vh0"  # PCIe link 0 only
    VH1 = "vh1"  # PCIe link 1 only


class ChannelSelector:
    """Maps each request's virtual channel to a physical link."""

    def __init__(self, upi: Link, pcie_links: Sequence[Link]) -> None:
        if upi.kind is not LinkKind.UPI:
            raise ConfigurationError("first link must be UPI")
        if not pcie_links:
            raise ConfigurationError("need at least one PCIe link")
        for link in pcie_links:
            if link.kind is not LinkKind.PCIE:
                raise ConfigurationError("pcie_links must all be PCIe")
        self.upi = upi
        self.pcie_links = list(pcie_links)
        self.all_links: List[Link] = [upi, *pcie_links]
        self._rr_cursor = 0

    def select(self, channel: VirtualChannel) -> Link:
        """Resolve a virtual channel to a physical link for one request."""
        if channel is VirtualChannel.VL0:
            return self.upi
        if channel is VirtualChannel.VH0:
            return self.pcie_links[0]
        if channel is VirtualChannel.VH1:
            return self.pcie_links[min(1, len(self.pcie_links) - 1)]
        return self._select_auto()

    def _select_auto(self) -> Link:
        # Throughput-optimized: least-backlog wins; ties rotate round-robin
        # so an unloaded platform spreads requests across every link.
        best: List[Link] = []
        best_backlog = None
        for link in self.all_links:
            backlog = link.backlog_ps
            if best_backlog is None or backlog < best_backlog:
                best = [link]
                best_backlog = backlog
            elif backlog == best_backlog:
                best.append(link)
        choice = best[self._rr_cursor % len(best)]
        self._rr_cursor += 1
        return choice
