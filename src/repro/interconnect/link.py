"""CPU-FPGA interconnect links.

Skylake HARP exposes one UPI link and two PCIe 3.0 x8 links between the
Xeon and the Arria 10 (§6.1).  Each :class:`Link` is a pair of directional
:class:`~repro.sim.port.ThroughputServer` pipes — ``to_memory`` (requests
and write payloads) and ``from_memory`` (read payloads and acks) — so read
and write traffic contend realistically with each other and with IOMMU
page-walk fetches.

UPI is lower latency than PCIe for reads (§6.1, "although UPI has lower
latency for reads, the channel selector places some reads on PCIe"); the
default latencies below are calibrated so that a pass-through LinkedList
measures ~410 ns on UPI and ~900 ns on PCIe, matching the ratios implied
by Fig. 4a.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.clock import gbps_to_bytes_per_ps
from repro.sim.engine import Engine
from repro.sim.port import ThroughputServer
from repro.sim.stats import BandwidthMeter


class LinkKind(enum.Enum):
    UPI = "upi"
    PCIE = "pcie"


class Link:
    """One physical CPU<->FPGA link with independent directions."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        kind: LinkKind,
        *,
        bandwidth_gbps: float,
        latency_ps: int,
    ) -> None:
        self.engine = engine
        self.name = name
        self.kind = kind
        self.latency_ps = latency_ps
        rate = gbps_to_bytes_per_ps(bandwidth_gbps)
        self._nominal_rate = rate
        self.degrade_factor = 1.0
        self.to_memory = ThroughputServer(engine, f"{name}.to_mem", rate, latency_ps)
        self.from_memory = ThroughputServer(engine, f"{name}.from_mem", rate, latency_ps)
        self.meter_to_memory = BandwidthMeter(engine, f"{name}.bw.to_mem")
        self.meter_from_memory = BandwidthMeter(engine, f"{name}.bw.from_mem")
        # Tracing: per-channel occupancy is emitted as *window* spans at
        # instrument-reset boundaries (plus a finalize flush), never per
        # packet — meter totals are only guaranteed identical between the
        # fast path and the reference path at idle instants, which is
        # exactly where experiments reset their meters.
        self._trace = engine.trace
        if self._trace is not None:
            self._trace_tid_to = self._trace.thread(f"{name}.to_mem")
            self._trace_tid_from = self._trace.thread(f"{name}.from_mem")

    def degrade(self, factor: float) -> None:
        """Scale both directions down to ``nominal_rate / factor``.

        Models a link retraining at a lower width/speed (fault injection).
        Committed packets keep their service times; only traffic submitted
        after the change sees the reduced rate — see
        :meth:`~repro.sim.port.ThroughputServer.set_rate`.
        """
        if factor < 1.0:
            raise ConfigurationError(f"{self.name}: degrade factor must be >= 1")
        self.degrade_factor = factor
        rate = self._nominal_rate / factor
        self.to_memory.set_rate(rate)
        self.from_memory.set_rate(rate)
        if self._trace is not None:
            self._trace.instant("link.degrade", self.engine.now,
                                tid=self._trace_tid_to, cat="fault",
                                args={"link": self.name, "factor": factor})

    def restore(self) -> None:
        """Return both directions to the nominal rate."""
        if self.degrade_factor == 1.0:
            return
        self.degrade_factor = 1.0
        self.to_memory.set_rate(self._nominal_rate)
        self.from_memory.set_rate(self._nominal_rate)
        if self._trace is not None:
            self._trace.instant("link.restore", self.engine.now,
                                tid=self._trace_tid_to, cat="fault",
                                args={"link": self.name})

    def send_to_memory(self, wire_bytes: int, deliver: Callable[..., None], *args: Any) -> int:
        self.meter_to_memory.record(wire_bytes)
        return self.to_memory.submit(wire_bytes, deliver, *args)

    def send_from_memory(self, wire_bytes: int, deliver: Callable[..., None], *args: Any) -> int:
        self.meter_from_memory.record(wire_bytes)
        return self.from_memory.submit(wire_bytes, deliver, *args)

    def reserve_to_memory(self, wire_bytes: int, at_ps: int) -> int:
        """Eventless counterpart of :meth:`send_to_memory` (fast path)."""
        self.meter_to_memory.record(wire_bytes)
        return self.to_memory.reserve(wire_bytes, at_ps)

    def reserve_from_memory(self, wire_bytes: int, at_ps: int) -> int:
        """Eventless counterpart of :meth:`send_from_memory` (fast path)."""
        self.meter_from_memory.record(wire_bytes)
        return self.from_memory.reserve(wire_bytes, at_ps)

    def backlog_at(self, at_ps: int) -> int:
        """Both directions' committed backlog as it will stand at ``at_ps``."""
        return self.to_memory.backlog_at(at_ps) + self.from_memory.backlog_at(at_ps)

    def round_trip(self, request_bytes: int, response_bytes: int, on_done: Callable[[], None]) -> None:
        """Request out, response back — used for IOMMU page-walk fetches."""
        self.send_to_memory(
            request_bytes,
            lambda: self.send_from_memory(response_bytes, on_done),
        )

    @property
    def backlog_ps(self) -> int:
        """Total committed-but-unserved time across both directions.

        The channel selector uses this as its congestion signal.
        """
        return self.to_memory.backlog_ps + self.from_memory.backlog_ps

    def trace_flush(self) -> None:
        """Emit one occupancy-window span per direction (if traced)."""
        if self._trace is None:
            return
        for meter, tid in (
            (self.meter_to_memory, self._trace_tid_to),
            (self.meter_from_memory, self._trace_tid_from),
        ):
            summary = meter.summary()
            if summary is not None:
                self._trace.complete("window", meter.window_start_ps,
                                     self.engine.now, tid=tid, cat="link",
                                     args=summary)

    def reset_meters(self) -> None:
        self.trace_flush()
        self.meter_to_memory.reset()
        self.meter_from_memory.reset()
