"""Assembly of the CPU-side memory path: links + IOMMU + DRAM.

:class:`MemorySystem` is what the FPGA shell talks to.  It accepts DMA
request packets whose addresses are **IOVAs** (pass-through guests and
OPTIMUS auditors both hand the shell IOVA-space packets), runs the timed
IOMMU translation, moves the packet across the selected link, performs the
DRAM access (functionally, so data really moves), and returns the response
packet across the link.

A translation fault drops the DMA: the response callback receives ``None``
and the fault is visible in ``iommu.faults`` — this is the observable
behaviour isolation tests assert on.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.interconnect.channel_selector import ChannelSelector, VirtualChannel
from repro.interconnect.link import Link
from repro.mem.dram import Dram
from repro.mem.iommu import Iommu
from repro.sim.engine import Engine
from repro.sim.packet import (
    REQUEST_HEADER_BYTES,
    SMALL_PACKET_BYTES,
    AddressSpace,
    Packet,
    PacketKind,
)
from repro.sim.stats import BandwidthMeter

ResponseCallback = Callable[[Optional[Packet]], None]


class MemorySystem:
    """The CPU side of CCI-P: translation, links, DRAM."""

    def __init__(
        self,
        engine: Engine,
        iommu: Iommu,
        dram: Dram,
        selector: ChannelSelector,
    ) -> None:
        self.engine = engine
        self.iommu = iommu
        self.dram = dram
        self.selector = selector
        self.read_meter = BandwidthMeter(engine, "mem.read")
        self.write_meter = BandwidthMeter(engine, "mem.write")
        self.dropped_dmas = 0
        # Page walks fetch IOPT data from DRAM over a link the shell picks.
        self.iommu.walk_transfer = self._walk_transfer

    # -- DMA data plane --------------------------------------------------------

    def dma(
        self,
        packet: Packet,
        channel: VirtualChannel,
        on_response: ResponseCallback,
    ) -> None:
        """Carry one DMA request to memory and its response back."""
        assert packet.space is AddressSpace.IOVA, "memory system expects IOVAs"
        is_write = packet.kind is PacketKind.DMA_WRITE_REQ

        def after_translate(hpa: Optional[int]) -> None:
            if hpa is None:
                self.dropped_dmas += 1
                on_response(None)
                return
            link = self.selector.select(channel)
            self._transfer(packet, hpa, is_write, link, on_response)

        self.iommu.translate_async(
            packet.address,
            write=is_write,
            master=packet.accel_id,
            on_done=after_translate,
        )

    def _transfer(
        self,
        packet: Packet,
        hpa: int,
        is_write: bool,
        link: Link,
        on_response: ResponseCallback,
    ) -> None:
        # Wire sizes are inlined (see Packet.wire_bytes_*): requests and
        # write acks are small packets, payload carriers add a header.
        if is_write:
            def at_memory() -> None:
                self.write_meter.record(packet.size)
                self.dram.write_async(
                    hpa,
                    packet.data,
                    packet.size,
                    lambda: link.send_from_memory(
                        SMALL_PACKET_BYTES,
                        on_response,
                        packet.make_response(),
                    ),
                )

            link.send_to_memory(REQUEST_HEADER_BYTES + packet.size, at_memory)
        else:
            def at_memory() -> None:
                def with_data(data: bytes) -> None:
                    self.read_meter.record(packet.size)
                    response = packet.make_response(data=data)
                    link.send_from_memory(
                        REQUEST_HEADER_BYTES + response.size, on_response, response
                    )

                self.dram.read_async(hpa, packet.size, with_data)

            link.send_to_memory(SMALL_PACKET_BYTES, at_memory)

    # -- IOMMU page-walk transport ----------------------------------------------

    def _walk_transfer(self, wire_bytes: int, on_done: Callable[[], None]) -> None:
        link = self.selector.select(VirtualChannel.VA)
        link.round_trip(SMALL_PACKET_BYTES, wire_bytes + SMALL_PACKET_BYTES, on_done)

    # -- functional access (CPU-side, zero simulated time) -----------------------

    def cpu_read(self, hpa: int, size: int) -> bytes:
        return self.dram.read_now(hpa, size)

    def cpu_write(self, hpa: int, data: bytes) -> None:
        self.dram.write_now(hpa, data)

    def reset_meters(self) -> None:
        self.read_meter.reset()
        self.write_meter.reset()
        for link in self.selector.all_links:
            link.reset_meters()
