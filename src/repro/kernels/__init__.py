"""Pure-algorithm kernels: the functional halves of the benchmark accelerators.

Everything here is hardware-independent and synchronous — implemented from
scratch so the accelerator models in :mod:`repro.accel` compute *real*
results that tests can verify against reference implementations.
"""

from repro.kernels.aes128 import encrypt_block, encrypt_ecb, expand_key
from repro.kernels.bitcoin import BlockHeader, easy_target, hash_value, meets_target, mine
from repro.kernels.dsp import GaussianGenerator, Xorshift64Star, fir_filter, lowpass_taps
from repro.kernels.graph import (
    CsrGraph,
    random_graph,
    sssp_bellman_ford,
    sssp_dijkstra,
)
from repro.kernels.image import gaussian_blur, grayscale, sobel
from repro.kernels.md5 import Md5, md5_bytes
from repro.kernels.reed_solomon import DecodeError, ReedSolomon
from repro.kernels.sha2 import Sha256, Sha512, double_sha256, sha256_bytes, sha512_bytes
from repro.kernels.smith_waterman import (
    Alignment,
    ScoringScheme,
    align,
    best_score,
    score_matrix,
)

__all__ = [
    "Alignment",
    "BlockHeader",
    "CsrGraph",
    "DecodeError",
    "GaussianGenerator",
    "Md5",
    "ReedSolomon",
    "ScoringScheme",
    "Sha256",
    "Sha512",
    "Xorshift64Star",
    "align",
    "best_score",
    "double_sha256",
    "easy_target",
    "encrypt_block",
    "encrypt_ecb",
    "expand_key",
    "fir_filter",
    "gaussian_blur",
    "grayscale",
    "hash_value",
    "lowpass_taps",
    "md5_bytes",
    "meets_target",
    "mine",
    "random_graph",
    "score_matrix",
    "sha256_bytes",
    "sha512_bytes",
    "sobel",
    "sssp_bellman_ford",
    "sssp_dijkstra",
]
