"""AES-128 (ECB) implemented from scratch.

This is the functional kernel behind the AES benchmark accelerator
(Table 1: "AES128 Encryption Algorithm", 1,965 lines of Verilog).  The
implementation is a straightforward table-free FIPS-197 AES: S-box
substitution, ShiftRows, MixColumns over GF(2^8), and the key schedule.
Correctness is asserted in tests against the FIPS-197 appendix vectors.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.errors import ConfigurationError

BLOCK_BYTES = 16
KEY_BYTES = 16
ROUNDS = 10


def _build_sbox() -> bytes:
    """Construct the AES S-box from GF(2^8) inverses + affine transform."""
    # Multiplicative inverse table via exp/log over the AES polynomial.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by generator 3 (0x03) in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        result = 0
        for bit in range(8):
            result |= (
                (
                    (inv >> bit)
                    ^ (inv >> ((bit + 4) % 8))
                    ^ (inv >> ((bit + 5) % 8))
                    ^ (inv >> ((bit + 6) % 8))
                    ^ (inv >> ((bit + 7) % 8))
                    ^ (0x63 >> bit)
                )
                & 1
            ) << bit
        sbox[value] = result
    return bytes(sbox)


SBOX = _build_sbox()
RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(value: int) -> int:
    """Multiply by x (0x02) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


@lru_cache(maxsize=16)
def expand_key(key: bytes) -> tuple:
    """FIPS-197 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != KEY_BYTES:
        raise ConfigurationError("AES-128 needs a 16-byte key")
    words: List[List[int]] = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 4 * (ROUNDS + 1)):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]  # RotWord
            word = [SBOX[b] for b in word]  # SubWord
            word[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], word)])
    round_keys = []
    for r in range(ROUNDS + 1):
        round_keys.append(bytes(sum(words[4 * r : 4 * r + 4], [])))
    return tuple(round_keys)


def _sub_bytes(state: bytearray) -> None:
    for i, b in enumerate(state):
        state[i] = SBOX[b]


def _shift_rows(state: bytearray) -> None:
    # State is column-major: byte (row, col) lives at col*4 + row.
    for row in range(1, 4):
        old = [state[col * 4 + row] for col in range(4)]
        for col in range(4):
            state[col * 4 + row] = old[(col + row) % 4]


def _mix_columns(state: bytearray) -> None:
    for col in range(4):
        a = state[col * 4 : col * 4 + 4]
        t = a[0] ^ a[1] ^ a[2] ^ a[3]
        u = a[0]
        state[col * 4 + 0] = a[0] ^ t ^ _xtime(a[0] ^ a[1])
        state[col * 4 + 1] = a[1] ^ t ^ _xtime(a[1] ^ a[2])
        state[col * 4 + 2] = a[2] ^ t ^ _xtime(a[2] ^ a[3])
        state[col * 4 + 3] = a[3] ^ t ^ _xtime(a[3] ^ u)


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    if len(block) != BLOCK_BYTES:
        raise ConfigurationError("AES block must be 16 bytes")
    round_keys = expand_key(key)
    state = bytearray(block)
    _add_round_key(state, round_keys[0])
    for r in range(1, ROUNDS):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[r])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[ROUNDS])
    return bytes(state)


def encrypt_ecb(key: bytes, data: bytes) -> bytes:
    """ECB-encrypt a multiple-of-16-bytes buffer (the accelerator's mode)."""
    if len(data) % BLOCK_BYTES:
        raise ConfigurationError("data length must be a multiple of 16")
    out = bytearray(len(data))
    for i in range(0, len(data), BLOCK_BYTES):
        out[i : i + BLOCK_BYTES] = encrypt_block(key, data[i : i + BLOCK_BYTES])
    return bytes(out)
