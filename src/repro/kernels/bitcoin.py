"""Bitcoin proof-of-work kernel.

Functional substrate behind the BTC benchmark accelerator (Table 1:
"Bitcoin Miner", ported from the Open-Source-FPGA-Bitcoin-Miner project).
Implements real Bitcoin-style mining over an 80-byte block header: grind
the 4-byte nonce until ``double_sha256(header)`` interpreted little-endian
falls below the target.  Tests use an easy target so solutions are found
in a few hundred attempts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.kernels.sha2 import double_sha256

HEADER_BYTES = 80
NONCE_OFFSET = 76


@dataclass(frozen=True)
class BlockHeader:
    """A Bitcoin block header with a mutable-nonce serialization."""

    version: int
    prev_hash: bytes  # 32 bytes
    merkle_root: bytes  # 32 bytes
    timestamp: int
    bits: int

    def __post_init__(self) -> None:
        if len(self.prev_hash) != 32 or len(self.merkle_root) != 32:
            raise ConfigurationError("hashes must be 32 bytes")

    def serialize(self, nonce: int) -> bytes:
        return (
            struct.pack("<I", self.version)
            + self.prev_hash
            + self.merkle_root
            + struct.pack("<II", self.timestamp, self.bits)
            + struct.pack("<I", nonce & 0xFFFFFFFF)
        )


def hash_value(header_bytes: bytes) -> int:
    """The PoW hash as an integer (little-endian, per Bitcoin convention)."""
    if len(header_bytes) != HEADER_BYTES:
        raise ConfigurationError("header must be 80 bytes")
    return int.from_bytes(double_sha256(header_bytes), "little")


def meets_target(header_bytes: bytes, target: int) -> bool:
    return hash_value(header_bytes) < target


def mine(
    header: BlockHeader,
    target: int,
    *,
    start_nonce: int = 0,
    max_attempts: int = 1 << 20,
) -> Optional[int]:
    """Grind nonces; returns the winning nonce or None."""
    nonce = start_nonce
    for _ in range(max_attempts):
        if meets_target(header.serialize(nonce), target):
            return nonce
        nonce = (nonce + 1) & 0xFFFFFFFF
    return None


def easy_target(leading_zero_bits: int = 12) -> int:
    """A target requiring ~2^leading_zero_bits attempts — test-friendly."""
    if not 1 <= leading_zero_bits <= 64:
        raise ConfigurationError("leading_zero_bits out of range")
    return 1 << (256 - leading_zero_bits)
