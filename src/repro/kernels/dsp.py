"""Signal-processing kernels: FIR filter and Gaussian random numbers.

Functional kernels behind the FIR benchmark (Table 1: "Finite Impulse
Response Filter") and GRN (Table 1: "Gaussian Random Number Generator").

The FIR is a direct-form transversal filter over int16 samples with int16
taps and Q15-style scaling, matching what a DSP-block implementation on
the FPGA computes.  The GRN is a Box-Muller transform over a xorshift64*
uniform source, so the output stream is deterministic for a given seed —
exactly the property a hardware LFSR-based generator has.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError


def fir_filter(samples: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Direct-form FIR: y[n] = sum_k taps[k] * x[n-k], Q15 rescaled.

    Input/output are int16; the accumulator is int64 to avoid overflow,
    then shifted back by 15 bits, as fixed-point hardware does.
    """
    if samples.dtype != np.int16 or taps.dtype != np.int16:
        raise ConfigurationError("FIR kernel expects int16 samples and taps")
    acc = np.convolve(samples.astype(np.int64), taps.astype(np.int64), mode="full")
    acc = acc[: len(samples)]  # causal part, zero-padded history
    return np.right_shift(acc, 15).clip(-32768, 32767).astype(np.int16)


def lowpass_taps(n_taps: int = 16, cutoff: float = 0.25) -> np.ndarray:
    """A Hamming-windowed sinc low-pass tap set in Q15."""
    if n_taps < 2:
        raise ConfigurationError("need at least 2 taps")
    taps: List[float] = []
    middle = (n_taps - 1) / 2.0
    for i in range(n_taps):
        x = i - middle
        ideal = 2 * cutoff * (1.0 if x == 0 else math.sin(2 * math.pi * cutoff * x) / (2 * math.pi * cutoff * x))
        window = 0.54 - 0.46 * math.cos(2 * math.pi * i / (n_taps - 1))
        taps.append(ideal * window)
    scale = sum(taps)
    q15 = np.array([round(t / scale * 32767) for t in taps], dtype=np.int16)
    return q15


class Xorshift64Star:
    """xorshift64* PRNG — the software twin of a hardware LFSR chain."""

    MASK = 2**64 - 1

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        if seed == 0:
            raise ConfigurationError("xorshift seed must be non-zero")
        self.state = seed & self.MASK

    def next_u64(self) -> int:
        x = self.state
        x ^= (x >> 12)
        x ^= (x << 25) & self.MASK
        x ^= (x >> 27)
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & self.MASK

    def next_unit(self) -> float:
        """Uniform in (0, 1], never exactly 0 (log-safe for Box-Muller)."""
        return ((self.next_u64() >> 11) + 1) / 2**53


class GaussianGenerator:
    """Box-Muller Gaussian source with deterministic xorshift input."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._uniform = Xorshift64Star(seed)
        self._spare: float = math.nan

    def next_gaussian(self) -> float:
        if not math.isnan(self._spare):
            value, self._spare = self._spare, math.nan
            return value
        u1 = self._uniform.next_unit()
        u2 = self._uniform.next_unit()
        radius = math.sqrt(-2.0 * math.log(u1))
        theta = 2.0 * math.pi * u2
        self._spare = radius * math.sin(theta)
        return radius * math.cos(theta)

    def block(self, count: int) -> np.ndarray:
        """``count`` float32 samples, the accelerator's output format."""
        return np.array([self.next_gaussian() for _ in range(count)], dtype=np.float32)
