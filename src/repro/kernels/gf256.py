"""GF(2^8) arithmetic for the Reed-Solomon codec.

The field is GF(2^8) with the conventional Reed-Solomon primitive
polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator alpha = 2 —
the CCSDS/DVB parameterization, distinct from AES's 0x11B field.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256


def _build_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_build_tables()


def gf_add(a: int, b: int) -> int:
    """Addition (and subtraction) in GF(2^8) is XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    if b == 0:
        raise ConfigurationError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % 255]


def gf_pow(a: int, power: int) -> int:
    if a == 0:
        return 0 if power > 0 else 1
    return _EXP[(_LOG[a] * power) % 255]


def gf_inverse(a: int) -> int:
    if a == 0:
        raise ConfigurationError("zero has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


# -- polynomial helpers (coefficients high-order first) ----------------------------


def poly_scale(poly: List[int], factor: int) -> List[int]:
    return [gf_mul(c, factor) for c in poly]


def poly_add(a: List[int], b: List[int]) -> List[int]:
    result = [0] * max(len(a), len(b))
    result[len(result) - len(a) :] = list(a)
    for i, coeff in enumerate(b):
        result[len(result) - len(b) + i] ^= coeff
    return result


def poly_mul(a: List[int], b: List[int]) -> List[int]:
    result = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            result[i + j] ^= gf_mul(ca, cb)
    return result


def poly_eval(poly: List[int], x: int) -> int:
    """Horner evaluation."""
    result = 0
    for coeff in poly:
        result = gf_mul(result, x) ^ coeff
    return result


def poly_divmod(dividend: List[int], divisor: List[int]) -> tuple:
    out = list(dividend)
    normalizer = divisor[0]
    for i in range(len(dividend) - len(divisor) + 1):
        out[i] = gf_div(out[i], normalizer)
        coeff = out[i]
        if coeff != 0:
            for j in range(1, len(divisor)):
                out[i + j] ^= gf_mul(divisor[j], coeff)
    separator = len(dividend) - len(divisor) + 1
    return out[:separator], out[separator:]


def exp(i: int) -> int:
    return _EXP[i % 255]


def log(a: int) -> int:
    if a == 0:
        raise ConfigurationError("log of zero in GF(256)")
    return _LOG[a]
