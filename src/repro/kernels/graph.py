"""Graph kernels: CSR representation, generators, and reference SSSP.

Functional substrate behind the SSSP benchmark accelerator (Table 1,
ported from Zhou & Prasanna's CPU-FPGA graph accelerator).  Provides:

* :class:`CsrGraph` — compressed-sparse-row adjacency with weights, plus
  (de)serialization to the exact byte layout the accelerator walks in
  shared memory (offsets array, then edge/weight pairs);
* a deterministic random-graph generator matching the paper's workloads
  (800 K vertices, 3.2 M - 51.2 M edges);
* reference Bellman-Ford / Dijkstra SSSP used to validate the
  accelerator's result.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError

#: Byte widths in the serialized layout.
OFFSET_BYTES = 8  # uint64 per vertex+1
EDGE_BYTES = 8  # uint32 destination + uint32 weight

INFINITY = np.uint32(0xFFFFFFFF)


@dataclass
class CsrGraph:
    """A weighted digraph in CSR form."""

    offsets: np.ndarray  # uint64, len = n_vertices + 1
    targets: np.ndarray  # uint32, len = n_edges
    weights: np.ndarray  # uint32, len = n_edges

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1 or self.targets.shape != self.weights.shape:
            raise ConfigurationError("malformed CSR arrays")
        if int(self.offsets[-1]) != len(self.targets):
            raise ConfigurationError("offsets do not cover the edge arrays")

    @property
    def n_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        return len(self.targets)

    def neighbors(self, vertex: int):
        start, end = int(self.offsets[vertex]), int(self.offsets[vertex + 1])
        return zip(self.targets[start:end].tolist(), self.weights[start:end].tolist())

    # -- shared-memory layout ---------------------------------------------------

    def serialize(self) -> bytes:
        """The byte image the accelerator walks: offsets || (target, weight)*."""
        edge_records = np.empty(self.n_edges * 2, dtype=np.uint32)
        edge_records[0::2] = self.targets
        edge_records[1::2] = self.weights
        return self.offsets.astype("<u8").tobytes() + edge_records.astype("<u4").tobytes()

    @property
    def offsets_bytes(self) -> int:
        return (self.n_vertices + 1) * OFFSET_BYTES

    @property
    def serialized_bytes(self) -> int:
        return self.offsets_bytes + self.n_edges * EDGE_BYTES

    @classmethod
    def deserialize(cls, data: bytes, n_vertices: int) -> "CsrGraph":
        offsets = np.frombuffer(data[: (n_vertices + 1) * OFFSET_BYTES], dtype="<u8")
        n_edges = int(offsets[-1])
        records = np.frombuffer(
            data[(n_vertices + 1) * OFFSET_BYTES :][: n_edges * EDGE_BYTES], dtype="<u4"
        )
        return cls(
            offsets=offsets.copy(),
            targets=records[0::2].copy(),
            weights=records[1::2].copy(),
        )


def random_graph(
    n_vertices: int,
    n_edges: int,
    *,
    seed: int = 42,
    max_weight: int = 100,
) -> CsrGraph:
    """A uniform random digraph with the requested size, deterministic."""
    if n_vertices < 2 or n_edges < 1:
        raise ConfigurationError("need at least 2 vertices and 1 edge")
    rng = np.random.RandomState(seed)
    sources = rng.randint(0, n_vertices, size=n_edges, dtype=np.int64)
    targets = rng.randint(0, n_vertices, size=n_edges, dtype=np.int64)
    weights = rng.randint(1, max_weight + 1, size=n_edges, dtype=np.int64)
    order = np.argsort(sources, kind="stable")
    sources = sources[order]
    targets = targets[order]
    weights = weights[order]
    counts = np.bincount(sources, minlength=n_vertices)
    offsets = np.zeros(n_vertices + 1, dtype=np.uint64)
    offsets[1:] = np.cumsum(counts)
    return CsrGraph(
        offsets=offsets,
        targets=targets.astype(np.uint32),
        weights=weights.astype(np.uint32),
    )


def sssp_dijkstra(graph: CsrGraph, source: int) -> np.ndarray:
    """Reference shortest paths (uint32 distances, INFINITY = unreachable)."""
    dist = np.full(graph.n_vertices, int(INFINITY), dtype=np.uint64)
    dist[source] = 0
    heap = [(0, source)]
    visited = np.zeros(graph.n_vertices, dtype=bool)
    while heap:
        d, vertex = heapq.heappop(heap)
        if visited[vertex]:
            continue
        visited[vertex] = True
        for target, weight in graph.neighbors(vertex):
            candidate = d + weight
            if candidate < dist[target]:
                dist[target] = candidate
                heapq.heappush(heap, (candidate, target))
    return np.minimum(dist, int(INFINITY)).astype(np.uint32)


def sssp_bellman_ford(
    graph: CsrGraph, source: int, max_rounds: Optional[int] = None
) -> np.ndarray:
    """Frontier-based Bellman-Ford — the algorithm the accelerator runs."""
    dist = np.full(graph.n_vertices, int(INFINITY), dtype=np.uint64)
    dist[source] = 0
    frontier: List[int] = [source]
    rounds = 0
    while frontier:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        next_frontier: List[int] = []
        seen = set()
        for vertex in frontier:
            base = int(dist[vertex])
            for target, weight in graph.neighbors(vertex):
                candidate = base + weight
                if candidate < dist[target]:
                    dist[target] = candidate
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
        frontier = next_frontier
    return np.minimum(dist, int(INFINITY)).astype(np.uint32)
