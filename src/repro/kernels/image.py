"""Image-processing kernels: Gaussian blur, grayscale, Sobel.

Functional kernels behind the GAU, GRS, and SBL benchmark accelerators
(Table 1).  All operate on 8-bit images:

* grayscale — RGBA (4 bytes/pixel) to luma via the BT.601 integer weights;
* gaussian — 3x3 binomial blur (1 2 1 / 2 4 2 / 1 2 1, /16) on grayscale;
* sobel — gradient magnitude with the 3x3 Sobel operators on grayscale.

Borders are handled with edge replication, like a line-buffer pipeline on
the FPGA would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

GAUSSIAN_KERNEL = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.int32)
SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.int32)
SOBEL_Y = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.int32)


def _check_gray(image: np.ndarray) -> None:
    if image.ndim != 2 or image.dtype != np.uint8:
        raise ConfigurationError("expected a 2-D uint8 grayscale image")


def _convolve3x3(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """3x3 integer convolution with edge replication; int32 output."""
    padded = np.pad(image.astype(np.int32), 1, mode="edge")
    out = np.zeros(image.shape, dtype=np.int32)
    for dy in range(3):
        for dx in range(3):
            out += kernel[dy, dx] * padded[dy : dy + image.shape[0], dx : dx + image.shape[1]]
    return out


def grayscale(rgba: np.ndarray) -> np.ndarray:
    """RGBA -> 8-bit luma with BT.601 integer arithmetic (77R+150G+29B)>>8."""
    if rgba.ndim != 3 or rgba.shape[2] != 4 or rgba.dtype != np.uint8:
        raise ConfigurationError("expected an HxWx4 uint8 RGBA image")
    r = rgba[:, :, 0].astype(np.int32)
    g = rgba[:, :, 1].astype(np.int32)
    b = rgba[:, :, 2].astype(np.int32)
    return ((77 * r + 150 * g + 29 * b) >> 8).astype(np.uint8)


def gaussian_blur(image: np.ndarray) -> np.ndarray:
    """3x3 binomial blur, /16 with rounding."""
    _check_gray(image)
    acc = _convolve3x3(image, GAUSSIAN_KERNEL)
    return ((acc + 8) >> 4).clip(0, 255).astype(np.uint8)


def sobel(image: np.ndarray) -> np.ndarray:
    """Gradient magnitude |Gx| + |Gy| (the common hardware approximation)."""
    _check_gray(image)
    gx = _convolve3x3(image, SOBEL_X)
    gy = _convolve3x3(image, SOBEL_Y)
    return (np.abs(gx) + np.abs(gy)).clip(0, 255).astype(np.uint8)
