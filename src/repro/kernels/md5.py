"""MD5 implemented from scratch (RFC 1321).

Functional kernel behind the MD5 benchmark accelerator (Table 1: "MD5
Hashing Algorithm", 1,266 lines of Verilog).  Supports both one-shot
hashing and incremental use, since the accelerator model streams data
block by block.  Verified against :mod:`hashlib` in the test suite.
"""

from __future__ import annotations

import math
import struct

_S = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)
_K = [int(abs(math.sin(i + 1)) * 2**32) & 0xFFFFFFFF for i in range(64)]

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)

BLOCK_BYTES = 64


def _left_rotate(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _compress(state: tuple, block: bytes) -> tuple:
    a0, b0, c0, d0 = state
    m = struct.unpack("<16I", block)
    a, b, c, d = a0, b0, c0, d0
    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
            g = i
        elif i < 32:
            f = (d & b) | (~d & c)
            g = (5 * i + 1) % 16
        elif i < 48:
            f = b ^ c ^ d
            g = (3 * i + 5) % 16
        else:
            f = c ^ (b | ~d)
            g = (7 * i) % 16
        f = (f + a + _K[i] + m[g]) & 0xFFFFFFFF
        a, d, c = d, c, b
        b = (b + _left_rotate(f, _S[i])) & 0xFFFFFFFF
    return (
        (a0 + a) & 0xFFFFFFFF,
        (b0 + b) & 0xFFFFFFFF,
        (c0 + c) & 0xFFFFFFFF,
        (d0 + d) & 0xFFFFFFFF,
    )


class Md5:
    """Incremental MD5, mirroring the accelerator's streaming datapath."""

    def __init__(self) -> None:
        self.state = _INIT
        self._pending = b""
        self._length = 0

    def update(self, data: bytes) -> "Md5":
        self._length += len(data)
        buffer = self._pending + data
        offset = 0
        while offset + BLOCK_BYTES <= len(buffer):
            self.state = _compress(self.state, buffer[offset : offset + BLOCK_BYTES])
            offset += BLOCK_BYTES
        self._pending = buffer[offset:]
        return self

    def digest(self) -> bytes:
        # Padding: 0x80, zeros, then the 64-bit bit length.
        bit_length = self._length * 8
        tail = self._pending + b"\x80"
        pad = (56 - len(tail)) % 64
        tail += b"\x00" * pad + struct.pack("<Q", bit_length & (2**64 - 1))
        state = self.state
        for offset in range(0, len(tail), BLOCK_BYTES):
            state = _compress(state, tail[offset : offset + BLOCK_BYTES])
        return struct.pack("<4I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def md5_bytes(data: bytes) -> bytes:
    return Md5().update(data).digest()
