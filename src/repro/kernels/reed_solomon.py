"""Reed-Solomon RS(n, k) codec over GF(2^8), from scratch.

Functional kernel behind the RSD benchmark accelerator (Table 1: "Reed
Solomon Decoder", 5,324 lines of Verilog — the largest benchmark).  The
decoder is the classical pipeline a hardware implementation mirrors:

1. syndrome computation,
2. Berlekamp-Massey for the error locator polynomial,
3. Chien search for error positions,
4. Forney's algorithm for error magnitudes.

Default parameters RS(255, 223) correct up to 16 symbol errors per block.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.kernels import gf256 as gf


class DecodeError(ConfigurationError):
    """The received word is uncorrectable (more than t symbol errors)."""


class ReedSolomon:
    """An RS(n, k) encoder/decoder with 8-bit symbols."""

    def __init__(self, n: int = 255, k: int = 223) -> None:
        if not 0 < k < n <= 255:
            raise ConfigurationError("need 0 < k < n <= 255")
        if (n - k) % 2:
            raise ConfigurationError("n - k must be even (2t parity symbols)")
        self.n = n
        self.k = k
        self.t = (n - k) // 2
        self._generator = self._build_generator(n - k)

    @staticmethod
    def _build_generator(n_parity: int) -> List[int]:
        gen = [1]
        for i in range(n_parity):
            gen = gf.poly_mul(gen, [1, gf.exp(i)])
        return gen

    # -- encoding --------------------------------------------------------------

    def encode(self, message: bytes) -> bytes:
        """Systematic encoding: message followed by n-k parity symbols."""
        if len(message) != self.k:
            raise ConfigurationError(f"message must be {self.k} bytes")
        padded = list(message) + [0] * (self.n - self.k)
        _quotient, remainder = gf.poly_divmod(padded, self._generator)
        return bytes(message) + bytes(remainder)

    # -- decoding ----------------------------------------------------------------

    def _syndromes(self, received: List[int]) -> List[int]:
        return [gf.poly_eval(received, gf.exp(i)) for i in range(2 * self.t)]

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error locator polynomial (high-order-first coefficients)."""
        locator = [1]
        previous = [1]
        for i, syndrome in enumerate(syndromes):
            previous = previous + [0]
            delta = syndrome
            for j in range(1, len(locator)):
                delta ^= gf.gf_mul(locator[-(j + 1)], syndromes[i - j])
            if delta != 0:
                if len(previous) > len(locator):
                    new = gf.poly_scale(previous, delta)
                    previous = gf.poly_scale(locator, gf.gf_inverse(delta))
                    locator = new
                locator = gf.poly_add(locator, gf.poly_scale(previous, delta))
        while len(locator) > 1 and locator[0] == 0:
            locator.pop(0)
        return locator

    def _chien_search(self, locator: List[int]) -> List[int]:
        """Positions (indices into the codeword) where errors occurred.

        The reversed locator has roots at alpha^{degree}, so scanning
        alpha^0 .. alpha^{n-1} enumerates candidate coefficient degrees.
        """
        n_errors = len(locator) - 1
        reversed_locator = list(reversed(locator))
        positions = [
            self.n - 1 - i
            for i in range(self.n)
            if gf.poly_eval(reversed_locator, gf.gf_pow(2, i)) == 0
        ]
        if len(positions) != n_errors:
            raise DecodeError("Chien search failed: uncorrectable block")
        return positions

    def _forney(
        self, syndromes: List[int], locator: List[int], positions: List[int]
    ) -> List[int]:
        """Error magnitudes at the located positions (Forney's algorithm)."""
        # Error evaluator omega(x) = [S(x) * lambda(x)] mod x^{deg(lambda)+1},
        # with both polynomials in high-order-first form (S reversed).
        product = gf.poly_mul(list(reversed(syndromes)), locator)
        _quotient, omega = gf.poly_divmod(product, [1] + [0] * len(locator))
        x_values = [gf.gf_pow(2, self.n - 1 - p) for p in positions]
        magnitudes = []
        for i, x in enumerate(x_values):
            x_inv = gf.gf_inverse(x)
            # Product form of lambda'(X_i^-1) over the error locators.
            denominator = 1
            for j, other in enumerate(x_values):
                if j != i:
                    denominator = gf.gf_mul(denominator, 1 ^ gf.gf_mul(x_inv, other))
            if denominator == 0:
                raise DecodeError("Forney denominator vanished: uncorrectable")
            magnitudes.append(gf.gf_div(gf.poly_eval(omega, x_inv), denominator))
        return magnitudes

    def decode(self, received: bytes) -> bytes:
        """Correct up to t symbol errors; returns the k message bytes.

        Raises :class:`DecodeError` when the block is uncorrectable.
        """
        if len(received) != self.n:
            raise ConfigurationError(f"codeword must be {self.n} bytes")
        word = list(received)
        syndromes = self._syndromes(word)
        if not any(syndromes):
            return bytes(word[: self.k])
        locator = self._berlekamp_massey(syndromes)
        if len(locator) - 1 > self.t:
            raise DecodeError("too many errors for this code")
        positions = self._chien_search(locator)
        magnitudes = self._forney(syndromes, locator, positions)
        for position, magnitude in zip(positions, magnitudes):
            word[position] ^= magnitude
        if any(self._syndromes(word)):
            raise DecodeError("correction failed verification")
        return bytes(word[: self.k])

    def corrupt(self, codeword: bytes, positions: List[int], values: Optional[List[int]] = None) -> bytes:
        """Test helper: XOR errors into a codeword."""
        word = bytearray(codeword)
        for index, position in enumerate(positions):
            error = values[index] if values else 0xA5
            word[position] ^= error
        return bytes(word)
