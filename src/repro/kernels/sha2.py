"""SHA-256 and SHA-512 implemented from scratch (FIPS 180-4).

SHA-512 is the functional kernel of the SHA benchmark accelerator
(Table 1: "SHA512 Hashing Algorithm", 2,218 lines of Verilog); SHA-256 is
the hash inside the Bitcoin miner's double-SHA256 proof of work.  Both are
verified against :mod:`hashlib` in the test suite.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple


def _primes(count: int) -> List[int]:
    found: List[int] = []
    candidate = 2
    while len(found) < count:
        if all(candidate % p for p in found if p * p <= candidate):
            found.append(candidate)
        candidate += 1
    return found


def _frac_root_bits(prime: int, root: float, bits: int) -> int:
    """First ``bits`` bits of the fractional part of prime**root."""
    value = prime ** root
    frac = value - int(value)
    return int(frac * (1 << bits)) & ((1 << bits) - 1)


_P64 = _primes(80)
# SHA-256 constants: 32 fractional bits of cube roots of the first 64 primes.
_K256 = tuple(_frac_root_bits(p, 1.0 / 3.0, 32) for p in _P64[:64])
_H256 = tuple(_frac_root_bits(p, 1.0 / 2.0, 32) for p in _P64[:8])

# SHA-512 constants live in tables because float precision cannot produce
# 64 fractional bits; these are the FIPS 180-4 values.
_K512 = (
    0x428A2F98D728AE22, 0x7137449123EF65CD, 0xB5C0FBCFEC4D3B2F, 0xE9B5DBA58189DBBC,
    0x3956C25BF348B538, 0x59F111F1B605D019, 0x923F82A4AF194F9B, 0xAB1C5ED5DA6D8118,
    0xD807AA98A3030242, 0x12835B0145706FBE, 0x243185BE4EE4B28C, 0x550C7DC3D5FFB4E2,
    0x72BE5D74F27B896F, 0x80DEB1FE3B1696B1, 0x9BDC06A725C71235, 0xC19BF174CF692694,
    0xE49B69C19EF14AD2, 0xEFBE4786384F25E3, 0x0FC19DC68B8CD5B5, 0x240CA1CC77AC9C65,
    0x2DE92C6F592B0275, 0x4A7484AA6EA6E483, 0x5CB0A9DCBD41FBD4, 0x76F988DA831153B5,
    0x983E5152EE66DFAB, 0xA831C66D2DB43210, 0xB00327C898FB213F, 0xBF597FC7BEEF0EE4,
    0xC6E00BF33DA88FC2, 0xD5A79147930AA725, 0x06CA6351E003826F, 0x142929670A0E6E70,
    0x27B70A8546D22FFC, 0x2E1B21385C26C926, 0x4D2C6DFC5AC42AED, 0x53380D139D95B3DF,
    0x650A73548BAF63DE, 0x766A0ABB3C77B2A8, 0x81C2C92E47EDAEE6, 0x92722C851482353B,
    0xA2BFE8A14CF10364, 0xA81A664BBC423001, 0xC24B8B70D0F89791, 0xC76C51A30654BE30,
    0xD192E819D6EF5218, 0xD69906245565A910, 0xF40E35855771202A, 0x106AA07032BBD1B8,
    0x19A4C116B8D2D0C8, 0x1E376C085141AB53, 0x2748774CDF8EEB99, 0x34B0BCB5E19B48A8,
    0x391C0CB3C5C95A63, 0x4ED8AA4AE3418ACB, 0x5B9CCA4F7763E373, 0x682E6FF3D6B2B8A3,
    0x748F82EE5DEFB2FC, 0x78A5636F43172F60, 0x84C87814A1F0AB72, 0x8CC702081A6439EC,
    0x90BEFFFA23631E28, 0xA4506CEBDE82BDE9, 0xBEF9A3F7B2C67915, 0xC67178F2E372532B,
    0xCA273ECEEA26619C, 0xD186B8C721C0C207, 0xEADA7DD6CDE0EB1E, 0xF57D4F7FEE6ED178,
    0x06F067AA72176FBA, 0x0A637DC5A2C898A6, 0x113F9804BEF90DAE, 0x1B710B35131C471B,
    0x28DB77F523047D84, 0x32CAAB7B40C72493, 0x3C9EBE0A15C9BEBC, 0x431D67C49C100D4C,
    0x4CC5D4BECB3E42B6, 0x597F299CFC657E2A, 0x5FCB6FAB3AD6FAEC, 0x6C44198C4A475817,
)
_H512 = (
    0x6A09E667F3BCC908, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B, 0xA54FF53A5F1D36F1,
    0x510E527FADE682D1, 0x9B05688C2B3E6C1F, 0x1F83D9ABFB41BD6B, 0x5BE0CD19137E2179,
)


def _rotr(value: int, amount: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    return ((value >> amount) | (value << (bits - amount))) & mask


def _compress(
    state: Sequence[int], block: bytes, *, bits: int, k: Sequence[int], rounds: int
) -> Tuple[int, ...]:
    mask = (1 << bits) - 1
    fmt = ">16I" if bits == 32 else ">16Q"
    w = list(struct.unpack(fmt, block))
    if bits == 32:
        s0_r, s1_r = (7, 18, 3), (17, 19, 10)
        e_r, a_r = (6, 11, 25), (2, 13, 22)
    else:
        s0_r, s1_r = (1, 8, 7), (19, 61, 6)
        e_r, a_r = (14, 18, 41), (28, 34, 39)
    for i in range(16, rounds):
        s0 = _rotr(w[i - 15], s0_r[0], bits) ^ _rotr(w[i - 15], s0_r[1], bits) ^ (w[i - 15] >> s0_r[2])
        s1 = _rotr(w[i - 2], s1_r[0], bits) ^ _rotr(w[i - 2], s1_r[1], bits) ^ (w[i - 2] >> s1_r[2])
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & mask)
    a, b, c, d, e, f, g, h = state
    for i in range(rounds):
        s1 = _rotr(e, e_r[0], bits) ^ _rotr(e, e_r[1], bits) ^ _rotr(e, e_r[2], bits)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + s1 + ch + k[i] + w[i]) & mask
        s0 = _rotr(a, a_r[0], bits) ^ _rotr(a, a_r[1], bits) ^ _rotr(a, a_r[2], bits)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (s0 + maj) & mask
        h, g, f, e, d, c, b, a = g, f, e, (d + temp1) & mask, c, b, a, (temp1 + temp2) & mask
    return tuple((s + v) & mask for s, v in zip(state, (a, b, c, d, e, f, g, h)))


class _Sha2:
    bits: int
    block_bytes: int
    rounds: int
    k: Sequence[int]
    init: Sequence[int]

    def __init__(self) -> None:
        self.state: Tuple[int, ...] = tuple(self.init)
        self._pending = b""
        self._length = 0

    def update(self, data: bytes) -> "_Sha2":
        self._length += len(data)
        buffer = self._pending + data
        offset = 0
        while offset + self.block_bytes <= len(buffer):
            self.state = _compress(
                self.state,
                buffer[offset : offset + self.block_bytes],
                bits=self.bits,
                k=self.k,
                rounds=self.rounds,
            )
            offset += self.block_bytes
        self._pending = buffer[offset:]
        return self

    def digest(self) -> bytes:
        length_bytes = self.block_bytes // 8  # 8 for SHA-256, 16 for SHA-512
        bit_length = self._length * 8
        tail = self._pending + b"\x80"
        pad = (self.block_bytes - length_bytes - len(tail)) % self.block_bytes
        tail += b"\x00" * pad + bit_length.to_bytes(length_bytes, "big")
        state = self.state
        for offset in range(0, len(tail), self.block_bytes):
            state = _compress(
                state,
                tail[offset : offset + self.block_bytes],
                bits=self.bits,
                k=self.k,
                rounds=self.rounds,
            )
        word_bytes = self.bits // 8
        return b"".join(word.to_bytes(word_bytes, "big") for word in state)

    def hexdigest(self) -> str:
        return self.digest().hex()


class Sha256(_Sha2):
    bits = 32
    block_bytes = 64
    rounds = 64
    k = _K256
    init = _H256


class Sha512(_Sha2):
    bits = 64
    block_bytes = 128
    rounds = 80
    k = _K512
    init = _H512


def sha256_bytes(data: bytes) -> bytes:
    return Sha256().update(data).digest()


def sha512_bytes(data: bytes) -> bytes:
    return Sha512().update(data).digest()


def double_sha256(data: bytes) -> bytes:
    """Bitcoin's proof-of-work hash: SHA-256 applied twice."""
    return sha256_bytes(sha256_bytes(data))
