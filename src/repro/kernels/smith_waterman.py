"""Smith-Waterman local sequence alignment, from scratch.

Functional kernel behind the SW benchmark accelerator (Table 1: "Smith
Waterman Algorithm", 1,265 lines of Verilog).  Hardware implementations
are systolic arrays computing anti-diagonals of the dynamic-programming
matrix; this kernel computes the same matrix row by row (numpy-free so
the recurrence is obvious) and exposes both the best local score and the
aligned substrings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScoringScheme:
    match: int = 2
    mismatch: int = -1
    gap: int = -2

    def score(self, a: str, b: str) -> int:
        return self.match if a == b else self.mismatch


@dataclass
class Alignment:
    score: int
    query_aligned: str
    target_aligned: str
    query_span: Tuple[int, int]
    target_span: Tuple[int, int]


def score_matrix(query: str, target: str, scheme: ScoringScheme = ScoringScheme()):
    """The full DP matrix H (list of lists), H[i][j] for prefixes i, j."""
    if not query or not target:
        raise ConfigurationError("sequences must be non-empty")
    rows = len(query) + 1
    cols = len(target) + 1
    h = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        row = h[i]
        prev = h[i - 1]
        qc = query[i - 1]
        for j in range(1, cols):
            diagonal = prev[j - 1] + scheme.score(qc, target[j - 1])
            up = prev[j] + scheme.gap
            left = row[j - 1] + scheme.gap
            row[j] = max(0, diagonal, up, left)
    return h


def best_score(query: str, target: str, scheme: ScoringScheme = ScoringScheme()) -> int:
    """Maximum local alignment score (what the accelerator reports)."""
    h = score_matrix(query, target, scheme)
    return max(max(row) for row in h)


def align(query: str, target: str, scheme: ScoringScheme = ScoringScheme()) -> Alignment:
    """Best local alignment with traceback."""
    h = score_matrix(query, target, scheme)
    best = 0
    best_pos = (0, 0)
    for i, row in enumerate(h):
        for j, value in enumerate(row):
            if value > best:
                best = value
                best_pos = (i, j)
    i, j = best_pos
    q_parts = []
    t_parts = []
    end_i, end_j = i, j
    while i > 0 and j > 0 and h[i][j] > 0:
        current = h[i][j]
        if current == h[i - 1][j - 1] + scheme.score(query[i - 1], target[j - 1]):
            q_parts.append(query[i - 1])
            t_parts.append(target[j - 1])
            i -= 1
            j -= 1
        elif current == h[i - 1][j] + scheme.gap:
            q_parts.append(query[i - 1])
            t_parts.append("-")
            i -= 1
        else:
            q_parts.append("-")
            t_parts.append(target[j - 1])
            j -= 1
    return Alignment(
        score=best,
        query_aligned="".join(reversed(q_parts)),
        target_aligned="".join(reversed(t_parts)),
        query_span=(i, end_i),
        target_span=(j, end_j),
    )
