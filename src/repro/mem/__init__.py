"""Memory system: sparse DRAM, page tables, MMU, IOMMU, allocators."""

from repro.mem.address import (
    DEFAULT_SLICE_BYTES,
    DEFAULT_SLICE_GAP_BYTES,
    GB,
    IOVA_BITS,
    KB,
    MB,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    TB,
    align_down,
    align_up,
    format_size,
    is_aligned,
    page_number,
    page_offset,
    parse_size,
    split_by_pages,
)
from repro.mem.allocator import FrameAllocator, RegionAllocator
from repro.mem.dram import Dram
from repro.mem.iommu import IOTLB_ENTRIES, Iommu, Iotlb
from repro.mem.mmu import GuestMmu
from repro.mem.page_table import PageTable, PageTableEntry
from repro.mem.sparse import SparseMemory

__all__ = [
    "DEFAULT_SLICE_BYTES",
    "DEFAULT_SLICE_GAP_BYTES",
    "Dram",
    "FrameAllocator",
    "GB",
    "GuestMmu",
    "IOTLB_ENTRIES",
    "IOVA_BITS",
    "Iommu",
    "Iotlb",
    "KB",
    "MB",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_4K",
    "PageTable",
    "PageTableEntry",
    "RegionAllocator",
    "SparseMemory",
    "TB",
    "align_down",
    "align_up",
    "format_size",
    "is_aligned",
    "page_number",
    "page_offset",
    "parse_size",
    "split_by_pages",
]
