"""Address-space constants and helpers.

The platform follows the paper's layout: a 48-bit IO virtual address space,
4 KB base pages, 2 MB huge pages, and 64 B cache lines.  Helpers here are
pure functions shared by the MMU, IOMMU, page-table, and slicing code.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: 4 KB base pages.
PAGE_SHIFT_4K = 12
PAGE_SIZE_4K = 1 << PAGE_SHIFT_4K

#: 2 MB huge pages (the paper's default for DMA memory, §5 "Huge Pages").
PAGE_SHIFT_2M = 21
PAGE_SIZE_2M = 1 << PAGE_SHIFT_2M

#: The IO virtual address space is 48 bits wide (§5 "Page Table Slicing").
IOVA_BITS = 48
IOVA_SPACE_SIZE = 1 << IOVA_BITS

#: Default page-table-slice size: 64 GB per virtual accelerator (§5).
DEFAULT_SLICE_BYTES = 64 * GB

#: Extra gap between slices for IOTLB conflict mitigation: 128 MB (§5).
DEFAULT_SLICE_GAP_BYTES = 128 * MB

CACHE_LINE_SHIFT = 6
CACHE_LINE_BYTES = 1 << CACHE_LINE_SHIFT


def page_shift_for(page_size: int) -> int:
    """Return log2(page_size), validating that it is a supported size."""
    if page_size == PAGE_SIZE_4K:
        return PAGE_SHIFT_4K
    if page_size == PAGE_SIZE_2M:
        return PAGE_SHIFT_2M
    raise ConfigurationError(f"unsupported page size {page_size} (use 4 KB or 2 MB)")


def align_down(address: int, alignment: int) -> int:
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    return (address + alignment - 1) & ~(alignment - 1)


def is_aligned(address: int, alignment: int) -> bool:
    return address & (alignment - 1) == 0


def page_number(address: int, page_size: int) -> int:
    return address >> page_shift_for(page_size)


def page_offset(address: int, page_size: int) -> int:
    return address & (page_size - 1)


def cache_line_number(address: int) -> int:
    return address >> CACHE_LINE_SHIFT


def split_by_pages(address: int, size: int, page_size: int) -> Iterator[Tuple[int, int]]:
    """Split ``[address, address+size)`` into per-page ``(addr, length)`` runs."""
    if size < 0:
        raise ConfigurationError("size must be non-negative")
    end = address + size
    current = address
    while current < end:
        page_end = align_down(current, page_size) + page_size
        chunk_end = min(end, page_end)
        yield current, chunk_end - current
        current = chunk_end


def format_size(size: int) -> str:
    """Human-readable size string used in experiment tables (16M, 2G, ...)."""
    for unit, factor in (("G", GB), ("M", MB), ("K", KB)):
        if size >= factor and size % factor == 0:
            return f"{size // factor}{unit}"
    return str(size)


def parse_size(text: str) -> int:
    """Inverse of :func:`format_size` — accepts '512K', '16M', '2G', '8G'."""
    text = text.strip().upper()
    multipliers = {"K": KB, "M": MB, "G": GB, "T": TB}
    if text and text[-1] in multipliers:
        return int(text[:-1]) * multipliers[text[-1]]
    return int(text)
