"""First-fit region allocators.

Two allocation problems recur in the reproduction:

* the hypervisor hands out host-physical frames for pinned guest pages
  (:class:`FrameAllocator`), and
* the guest library manages DMA virtual memory inside its reserved 64 GB
  slice (:class:`RegionAllocator`) — the role played in the paper by a
  ported dlmalloc (§5, "a ported memory allocation library used to help
  manage DMA regions").

Both are deliberately simple (sorted free lists, first fit, coalescing on
free); determinism matters more than allocation speed here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.mem.address import align_up, is_aligned


class RegionAllocator:
    """First-fit allocator over ``[base, base + size)`` with coalescing."""

    def __init__(self, base: int, size: int, *, granule: int = 64) -> None:
        if size <= 0:
            raise ConfigurationError("allocator size must be positive")
        if granule <= 0 or granule & (granule - 1):
            raise ConfigurationError("granule must be a positive power of two")
        self.base = base
        self.size = size
        self.granule = granule
        # Free list of (start, length), sorted by start, never overlapping.
        self._free: List[Tuple[int, int]] = [(base, size)]
        self._live: dict[int, int] = {}

    def alloc(self, size: int, *, alignment: Optional[int] = None) -> int:
        """Allocate ``size`` bytes; returns the region's start address."""
        if size <= 0:
            raise ConfigurationError("allocation size must be positive")
        alignment = alignment or self.granule
        if alignment & (alignment - 1):
            raise ConfigurationError("alignment must be a power of two")
        size = align_up(size, self.granule)
        for index, (start, length) in enumerate(self._free):
            aligned = align_up(start, alignment)
            waste = aligned - start
            if length < waste + size:
                continue
            # Carve [aligned, aligned+size) out of this free block.
            del self._free[index]
            if waste:
                self._free.insert(index, (start, waste))
                index += 1
            tail = length - waste - size
            if tail:
                self._free.insert(index, (aligned + size, tail))
            self._live[aligned] = size
            return aligned
        raise MemoryError(f"out of space: cannot allocate {size:#x} bytes")

    def free(self, address: int) -> None:
        """Release a region previously returned by :meth:`alloc`."""
        size = self._live.pop(address, None)
        if size is None:
            raise ConfigurationError(f"free of unallocated address {address:#x}")
        self._free.append((address, size))
        self._free.sort()
        self._coalesce()

    def _coalesce(self) -> None:
        merged: List[Tuple[int, int]] = []
        for start, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_len = merged[-1]
                merged[-1] = (prev_start, prev_len + length)
            else:
                merged.append((start, length))
        self._free = merged

    @property
    def allocated_bytes(self) -> int:
        return sum(self._live.values())

    @property
    def free_bytes(self) -> int:
        return sum(length for _start, length in self._free)

    def owns(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


class FrameAllocator:
    """Hands out page-aligned physical frames from a fixed pool."""

    def __init__(self, base: int, size: int, page_size: int) -> None:
        if not is_aligned(base, page_size):
            raise ConfigurationError("frame pool base must be page-aligned")
        self.page_size = page_size
        self._inner = RegionAllocator(base, size, granule=page_size)

    def alloc_frame(self) -> int:
        return self._inner.alloc(self.page_size, alignment=self.page_size)

    def free_frame(self, address: int) -> None:
        self._inner.free(address)

    @property
    def frames_in_use(self) -> int:
        return self._inner.allocated_bytes // self.page_size
