"""System DRAM: a sparse backing store plus a simple timing model.

DRAM is never the bottleneck in the paper's experiments (the CPU-FPGA
interconnect saturates first), so the model is a fixed access latency plus
a generous bandwidth shaper that exists only to keep the model honest if a
future experiment drives it harder.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.mem.address import GB
from repro.mem.sparse import SparseMemory
from repro.sim.clock import gbps_to_bytes_per_ps
from repro.sim.engine import Engine
from repro.sim.port import ThroughputServer


class Dram:
    """Host DRAM: functional store + access timing."""

    def __init__(
        self,
        engine: Engine,
        *,
        size_bytes: int = 188 * GB,  # the paper's testbed has 188 GB
        access_latency_ps: int = 60_000,
        bandwidth_gbps: float = 64.0,
    ) -> None:
        if size_bytes <= 0:
            raise ConfigurationError("DRAM size must be positive")
        self.engine = engine
        self.store = SparseMemory(size_bytes)
        self.access_latency_ps = access_latency_ps
        self._server = ThroughputServer(
            engine,
            "dram",
            gbps_to_bytes_per_ps(bandwidth_gbps),
            latency_ps=access_latency_ps,
        )
        self.reads = 0
        self.writes = 0

    @property
    def size_bytes(self) -> int:
        return self.store.size_bytes

    # -- timed interface -------------------------------------------------------

    def read_async(
        self, hpa: int, size: int, on_done: Callable[[bytes], None]
    ) -> None:
        """Timed read: data is delivered after the DRAM access completes."""
        self.reads += 1
        self._server.submit(size, self._deliver_read, hpa, size, on_done)

    def _deliver_read(self, hpa: int, size: int, on_done: Callable[[bytes], None]) -> None:
        on_done(self.store.read(hpa, size))

    def write_async(
        self, hpa: int, data: Optional[bytes], size: int, on_done: Callable[[], None]
    ) -> None:
        """Timed write; ``data=None`` models a payload we only shape, not store."""
        self.writes += 1
        if data is not None:
            self.store.write(hpa, data)

        self._server.submit(size, on_done)

    # -- functional shortcuts (zero-time; used by the CPU model) ---------------

    def read_now(self, hpa: int, size: int) -> bytes:
        self.reads += 1
        return self.store.read(hpa, size)

    def write_now(self, hpa: int, data: bytes) -> None:
        self.writes += 1
        self.store.write(hpa, data)
