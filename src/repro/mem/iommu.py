"""The IOMMU: a single IO page table, an IOTLB, and a page walker.

This models HARP's FPGA-resident ("soft") IOMMU, whose quirks drive much of
the paper's evaluation:

* **One IO page table.**  Unlike the MMU (one EPT per guest), the IOMMU
  walks a single table — the scarcity that motivates page table slicing.

* **512-entry, direct-mapped IOTLB.**  Per §5 ("IOTLB Conflict Mitigation"),
  the set index is the 9 bits immediately above the page offset: bits 21-29
  for 2 MB pages, bits 12-20 for 4 KB pages, one entry per set.  Two pages
  conflict iff their page numbers are congruent mod 512 — which is why
  contiguous 64 GB slices (whose bases are all congruent to set 0) thrash,
  and why a 128 MB gap (64 pages) between slices skews each accelerator
  into its own 64-set region.

* **Page walks cross the interconnect.**  HARP's IOMMU is not integrated
  into the CPU; every miss fetches page-table entries from system memory
  over UPI/PCIe (§6.4).  Walks therefore consume real link bandwidth and
  real round-trip latency in this model, which is what makes aggregate
  throughput collapse once the working set exceeds IOTLB reach (Fig. 6)
  and latency climb for 4 GB+ working sets (Fig. 5).

* **Speculative same-region pipelining.**  §6.5 reports unusually high
  read throughput when a single accelerator stays within one 2 MB region;
  the authors attribute it to a speculative IOTLB pipeline optimization.
  We model it phenomenologically: consecutive translations from the same
  master within one 2 MB region take a fast path, and
  :meth:`in_speculative_streak` lets the DMA engine issue back-to-back
  requests (see :class:`repro.fpga.afu.DmaEngine`).  The model is gated by
  ``params.speculative_region_opt`` so the effect can be ablated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProtectionFault, TranslationFault
from repro.mem.address import PAGE_SIZE_2M, page_shift_for
from repro.mem.page_table import PageTable
from repro.sim.engine import Engine
from repro.sim.packet import CACHE_LINE_BYTES

#: Number of IOTLB entries (both 4 KB and 2 MB modes; §5).
IOTLB_ENTRIES = 512
#: log2 of entries — 9 set-index bits.
IOTLB_INDEX_BITS = 9

#: 2 MB region granularity of the speculative pipeline optimization.
SPECULATIVE_REGION_SHIFT = 21


@dataclass
class IotlbStats:
    hits: int = 0
    misses: int = 0
    speculative_hits: int = 0
    evictions: int = 0
    #: Instrument-protocol name (registrable in a MetricRegistry).
    name: str = "iommu.iotlb"

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.speculative_hits

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.speculative_hits = 0
        self.evictions = 0

    def summary(self) -> Optional[Dict[str, float]]:
        """Uniform-protocol summary; ``None`` before any access."""
        if not self.accesses and not self.evictions:
            return None
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "speculative_hits": float(self.speculative_hits),
            "evictions": float(self.evictions),
            "miss_ratio": self.miss_ratio,
        }


class Iotlb:
    """Direct-mapped translation cache, set-indexed by low page-number bits."""

    def __init__(self, page_size: int, entries: int = IOTLB_ENTRIES) -> None:
        self.page_shift = page_shift_for(page_size)
        self.entries = entries
        self.index_mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._frames: List[int] = [0] * entries
        self.stats = IotlbStats()

    def set_index(self, iova: int) -> int:
        """The set an IOVA maps to: page-number bits just above the offset."""
        return (iova >> self.page_shift) & self.index_mask

    def lookup(self, iova: int) -> Optional[int]:
        """Return the cached frame number, or None on a miss."""
        vpn = iova >> self.page_shift
        index = vpn & self.index_mask
        if self._tags[index] == vpn:
            self.stats.hits += 1
            return self._frames[index]
        self.stats.misses += 1
        return None

    def install(self, iova: int, frame: int) -> None:
        vpn = iova >> self.page_shift
        index = vpn & self.index_mask
        if self._tags[index] is not None and self._tags[index] != vpn:
            self.stats.evictions += 1
        self._tags[index] = vpn
        self._frames[index] = frame

    def invalidate_all(self) -> None:
        self._tags = [None] * self.entries

    def resident_sets(self) -> int:
        return sum(1 for tag in self._tags if tag is not None)


#: Signature of the function the platform provides for walk round trips:
#: ``walk_transfer(wire_bytes, on_done)`` issues a read of the page-table
#: data across the interconnect and calls ``on_done()`` when it returns.
WalkTransfer = Callable[[int, Callable[[], None]], None]


class Iommu:
    """Translates IOVAs to HPAs for every accelerator DMA."""

    def __init__(
        self,
        engine: Engine,
        *,
        page_size: int = PAGE_SIZE_2M,
        hit_latency_ps: int = 2_500,
        speculative_latency_ps: int = 1_000,
        walker_occupancy_ps: int = 20_000,
        walk_transfer: Optional[WalkTransfer] = None,
        speculative_region_opt: bool = True,
    ) -> None:
        self.engine = engine
        self.page_size = page_size
        self.page_table = PageTable(page_size, name="iopt")
        self.iotlb = Iotlb(page_size)
        self.hit_latency_ps = hit_latency_ps
        self.speculative_latency_ps = speculative_latency_ps
        self.walker_occupancy_ps = walker_occupancy_ps
        self.walk_transfer = walk_transfer
        self.speculative_region_opt = speculative_region_opt
        self._walker_free_at_ps = 0
        self._last_master: Optional[int] = None
        self._last_region: Optional[int] = None
        self._spec_streak = 0
        self.faults: Dict[str, int] = {"translation": 0, "protection": 0}
        # Tracing: only miss-side events (misses, walks, evictions, faults)
        # are emitted — these are identical between the simulator's fast
        # path and the reference path (a burst only commits on an IOTLB tag
        # hit, so miss traffic always takes the reference path).  Per-hit
        # events would differ between modes and are deliberately absent.
        self._trace = engine.trace
        if self._trace is not None:
            self._trace_tid_events = self._trace.thread("iommu.events")
            self._trace_tid_walker = self._trace.thread("iommu.walker")

    # -- speculative streak state ------------------------------------------

    def in_speculative_streak(self, master: Optional[int]) -> bool:
        """Whether the pipeline is streaming same-region hits for ``master``.

        The DMA engine consults this to model the back-to-back issue the
        speculation enables (§6.5's "unusually-high read throughput").
        """
        return (
            self.speculative_region_opt
            and self._spec_streak >= 8
            and self._last_master == master
        )

    def _note_access(self, master: Optional[int], iova: int) -> bool:
        """Update streak tracking; return True if this access is speculative."""
        region = iova >> SPECULATIVE_REGION_SHIFT
        speculative = (
            self.speculative_region_opt
            and self._last_master == master
            and self._last_region == region
        )
        if speculative:
            self._spec_streak += 1
        else:
            self._spec_streak = 0
        self._last_master = master
        self._last_region = region
        return speculative

    # -- synchronous (functional) translation --------------------------------

    def translate_sync(self, iova: int, *, write: bool = False) -> int:
        """Pure functional translation (no timing); used for data movement."""
        return self.page_table.translate_cached(iova, write=write)

    # -- timed translation ----------------------------------------------------

    def translate_async(
        self,
        iova: int,
        *,
        write: bool,
        master: Optional[int],
        on_done: Callable[[Optional[int]], None],
    ) -> None:
        """Translate with modeled timing; ``on_done(hpa_or_None)``.

        A ``None`` result means the translation faulted; the caller (the
        memory system) drops the DMA, as the real IOMMU would after logging
        a fault.  Faults are counted for the isolation experiments.
        """
        # Streak tracking is only observable while the §6.5 optimization is
        # enabled (the flag is fixed at construction), so skip it otherwise.
        speculative = (
            self._note_access(master, iova) if self.speculative_region_opt else False
        )

        # Functional outcome first: faults short-circuit timing.
        try:
            hpa = self.page_table.translate_cached(iova, write=write)
        except TranslationFault:
            self.faults["translation"] += 1
            if self._trace is not None:
                self._trace.instant("iommu.fault", self.engine.now,
                                    tid=self._trace_tid_events, cat="iotlb",
                                    args={"kind": "translation", "iova": iova})
            self.engine.call_after(self.hit_latency_ps, on_done, None)
            return
        except ProtectionFault:
            self.faults["protection"] += 1
            if self._trace is not None:
                self._trace.instant("iommu.fault", self.engine.now,
                                    tid=self._trace_tid_events, cat="iotlb",
                                    args={"kind": "protection", "iova": iova})
            self.engine.call_after(self.hit_latency_ps, on_done, None)
            return

        if speculative:
            self.iotlb.stats.speculative_hits += 1
            self.engine.call_after(self.speculative_latency_ps, on_done, hpa)
            return

        frame = self.iotlb.lookup(iova)
        if frame is not None:
            self.engine.call_after(self.hit_latency_ps, on_done, hpa)
            return

        # Miss: serialize on the walker, then fetch PTEs over the wire.
        start = max(self.engine.now, self._walker_free_at_ps)
        self._walker_free_at_ps = start + self.walker_occupancy_ps
        walk_bytes = self.page_table.walk_levels * CACHE_LINE_BYTES
        if self._trace is not None:
            # The walker-occupancy window is known analytically at miss
            # time, so the span can be emitted eagerly (and the walker lane
            # never overlaps: occupancy intervals serialize by design).
            set_index = self.iotlb.set_index(iova)
            self._trace.instant("iotlb.miss", self.engine.now,
                                tid=self._trace_tid_events, cat="iotlb",
                                args={"set": set_index, "iova": iova})
            self._trace.complete("iotlb.walk", start, start + self.walker_occupancy_ps,
                                 tid=self._trace_tid_walker, cat="iotlb",
                                 args={"set": set_index})

        def after_occupancy() -> None:
            if self.walk_transfer is None:
                self._finish_walk(iova, hpa, on_done)
            else:
                self.walk_transfer(walk_bytes, lambda: self._finish_walk(iova, hpa, on_done))

        self.engine.call_at(start + self.walker_occupancy_ps, after_occupancy)

    def _finish_walk(
        self, iova: int, hpa: int, on_done: Callable[[Optional[int]], None]
    ) -> None:
        if self._trace is not None:
            # Detect the conflict eviction the install is about to make.
            tlb = self.iotlb
            vpn = iova >> tlb.page_shift
            index = vpn & tlb.index_mask
            victim = tlb._tags[index]
            if victim is not None and victim != vpn:
                self._trace.instant("iotlb.evict", self.engine.now,
                                    tid=self._trace_tid_events, cat="iotlb",
                                    args={"set": index, "vpn": vpn,
                                          "victim_vpn": victim})
        self.iotlb.install(iova, hpa >> self.iotlb.page_shift)
        on_done(hpa)

    # -- management (hypervisor-facing) ---------------------------------------

    def map(self, iova: int, hpa: int, *, writable: bool = True) -> None:
        """Insert an IOVA -> HPA mapping (shadow paging does this)."""
        self.page_table.map(iova, hpa, writable=writable, pinned=True, overwrite=True)

    def unmap_range(self, iova: int, size: int) -> int:
        return self.page_table.unmap_range(iova, size)

    def reset_stats(self) -> None:
        self.iotlb.stats.reset()
        self.faults = {"translation": 0, "protection": 0}
