"""CPU-side address translation: guest page tables + extended page tables.

The paper's Fig. 2 shows two translation chains into host DRAM:

* software: GVA --(guest MMU page table)--> GPA --(EPT)--> HPA
* hardware: GVA --(auditor offset)--> IOVA --(IO page table)--> HPA

This module implements the software chain.  The hypervisor's shadow-paging
code (:mod:`repro.hv.shadow`) reads these tables to build the IOVA -> HPA
entries that keep both chains consistent — the core isolation requirement
of a shared-memory platform (§1: updates by the process must be immediately
visible to its accelerator and vice versa, because both chains end at the
same HPA).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import TranslationFault
from repro.mem.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.mem.page_table import PageTable, PageTableEntry


class GuestMmu:
    """Per-VM MMU state: one guest page table and one extended page table.

    The guest page table maps guest-virtual to guest-physical for the single
    guest process using the accelerator (one address space suffices for the
    reproduction; the paper's guests likewise dedicate a process per virtual
    accelerator).  The EPT maps guest-physical to host-physical and is owned
    by the hypervisor.
    """

    def __init__(self, vm_name: str, page_size: int = PAGE_SIZE_2M) -> None:
        self.vm_name = vm_name
        self.page_size = page_size
        self.guest_table = PageTable(page_size, name=f"{vm_name}.gpt")
        self.ept = PageTable(page_size, name=f"{vm_name}.ept")

    # -- guest OS side -------------------------------------------------------

    def map_guest(self, gva: int, gpa: int, *, writable: bool = True) -> PageTableEntry:
        """The guest OS installs a GVA -> GPA mapping."""
        return self.guest_table.map(gva, gpa, writable=writable)

    def map_host(self, gpa: int, hpa: int, *, pinned: bool = False) -> PageTableEntry:
        """The hypervisor backs a guest-physical page with host memory."""
        return self.ept.map(gpa, hpa, pinned=pinned)

    # -- translation ----------------------------------------------------------

    def gva_to_gpa(self, gva: int, *, write: bool = False) -> int:
        return self.guest_table.translate_cached(gva, write=write)

    def gpa_to_hpa(self, gpa: int, *, write: bool = False) -> int:
        return self.ept.translate_cached(gpa, write=write)

    def gva_to_hpa(self, gva: int, *, write: bool = False) -> int:
        """Full software-side translation, as the CPU would perform it."""
        return self.gpa_to_hpa(self.gva_to_gpa(gva, write=write), write=write)

    def try_gva_to_hpa(self, gva: int, *, write: bool = False) -> Optional[int]:
        try:
            return self.gva_to_hpa(gva, write=write)
        except TranslationFault:
            return None

    def resolve_for_pinning(self, gva: int) -> Tuple[int, int]:
        """Return ``(gpa, hpa)`` for a page the guest asked to share.

        Used by the shadow-paging hypercall (§5): the guest passes GVA and
        GPA; the hypervisor validates the pair and pins the backing HPA.
        """
        gpa = self.gva_to_gpa(gva)
        hpa = self.gpa_to_hpa(gpa)
        entry = self.ept.lookup(gpa)
        assert entry is not None  # gpa_to_hpa would have faulted otherwise
        entry.pinned = True
        return gpa, hpa
