"""Page tables and page-table entries.

One :class:`PageTable` class serves three roles in the reproduction:

* the guest OS page table (GVA -> GPA),
* the extended page table the CPU provisions per guest (GPA -> HPA),
* the single IO page table the IOMMU walks (IOVA -> HPA) — the scarce
  resource that page table slicing partitions among virtual accelerators.

The table is logically a 4-level (4 KB) or 3-level (2 MB) radix tree over a
48-bit address space; we store it as a dict keyed by virtual page number
but expose :meth:`walk_levels` so timing models can charge the correct
number of memory touches per walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError, ProtectionFault, TranslationFault
from repro.mem.address import (
    IOVA_BITS,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    page_shift_for,
)


@dataclass
class PageTableEntry:
    """A leaf mapping: virtual page -> physical frame with permissions."""

    frame: int
    readable: bool = True
    writable: bool = True
    pinned: bool = False
    accessed: bool = False
    dirty: bool = False


class PageTable:
    """A single-page-size page table over a 48-bit virtual space."""

    def __init__(self, page_size: int = PAGE_SIZE_4K, name: str = "pt") -> None:
        self.page_size = page_size
        self.page_shift = page_shift_for(page_size)
        self.name = name
        self._entries: Dict[int, PageTableEntry] = {}
        #: Bumped on every structural change; memoized walks check it.
        self.version = 0
        self._memo: Dict[Tuple[int, bool], int] = {}
        self._memo_version = 0

    # -- structure ----------------------------------------------------------

    @property
    def walk_levels(self) -> int:
        """Radix levels a hardware walker touches for one translation.

        x86-style: 4 levels for 4 KB pages, 3 for 2 MB pages (the leaf lives
        one level higher).  The IOMMU charges one memory access per level.
        """
        return 4 if self.page_size == PAGE_SIZE_4K else 3

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    # -- mapping ------------------------------------------------------------

    def vpn(self, address: int) -> int:
        if address < 0 or address >= (1 << IOVA_BITS):
            raise ConfigurationError(f"address {address:#x} outside 48-bit space")
        return address >> self.page_shift

    def map(
        self,
        virt: int,
        phys: int,
        *,
        readable: bool = True,
        writable: bool = True,
        pinned: bool = False,
        overwrite: bool = False,
    ) -> PageTableEntry:
        """Install a mapping for the page containing ``virt``.

        Both addresses must be page-aligned; remapping an existing page
        requires ``overwrite=True`` (the hypervisor uses this when a slice
        is recycled for a new virtual accelerator).
        """
        if virt & (self.page_size - 1):
            raise ConfigurationError(f"{self.name}: virt {virt:#x} not page-aligned")
        if phys & (self.page_size - 1):
            raise ConfigurationError(f"{self.name}: phys {phys:#x} not page-aligned")
        vpn = self.vpn(virt)
        if vpn in self._entries and not overwrite:
            raise ConfigurationError(f"{self.name}: page {virt:#x} already mapped")
        entry = PageTableEntry(
            frame=phys >> self.page_shift,
            readable=readable,
            writable=writable,
            pinned=pinned,
        )
        self._entries[vpn] = entry
        self.version += 1
        return entry

    def unmap(self, virt: int) -> None:
        vpn = self.vpn(virt)
        if vpn not in self._entries:
            raise ConfigurationError(f"{self.name}: page {virt:#x} not mapped")
        del self._entries[vpn]
        self.version += 1

    def unmap_range(self, virt: int, size: int) -> int:
        """Remove every mapping whose page falls inside the range.

        The table is sparse, so the scan runs over whichever side is
        smaller: the page range or the resident entries.  Tearing down a
        multi-GB IOVA slice that holds a few hundred mappings (every
        tenant eviction does) is O(entries), not O(range) — the fleet
        serving loop's hottest path before this bound existed.
        """
        first = self.vpn(virt)
        last = self.vpn(virt + max(size - 1, 0))
        removed = 0
        entries = self._entries
        if last - first + 1 > len(entries):
            doomed = [vpn for vpn in entries if first <= vpn <= last]
            for vpn in doomed:
                del entries[vpn]
            removed = len(doomed)
        else:
            for vpn in range(first, last + 1):
                if entries.pop(vpn, None) is not None:
                    removed += 1
        if removed:
            self.version += 1
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self.version += 1

    # -- lookup -------------------------------------------------------------

    def lookup(self, address: int) -> Optional[PageTableEntry]:
        """The entry covering ``address``, or None."""
        return self._entries.get(self.vpn(address))

    def translate(self, address: int, *, write: bool = False) -> int:
        """Translate one address, enforcing permissions and setting A/D bits."""
        entry = self.lookup(address)
        if entry is None:
            raise TranslationFault(address, self.name, "no mapping")
        if write and not entry.writable:
            raise ProtectionFault(address, "write", self.name)
        if not write and not entry.readable:
            raise ProtectionFault(address, "read", self.name)
        entry.accessed = True
        if write:
            entry.dirty = True
        offset = address & (self.page_size - 1)
        return (entry.frame << self.page_shift) | offset

    def translate_cached(self, address: int, *, write: bool = False) -> int:
        """Memoized :meth:`translate` — identical results and side effects.

        The walk over a radix tree is a pure function of the table
        contents, so its result is cached per ``(page, access type)`` and
        the whole cache is dropped whenever :attr:`version` changes (map,
        unmap, clear).  The first call per page goes through
        :meth:`translate`, which also sets the A/D bits; repeated calls
        would only re-set the same bits, so skipping them is unobservable.
        Faults are never cached.
        """
        if self._memo_version != self.version:
            self._memo.clear()
            self._memo_version = self.version
        # The raw shift skips vpn()'s range check: an out-of-range address
        # can never be memoized (its first call faults in translate()), so
        # the miss path below still raises exactly as before.
        vpn = address >> self.page_shift
        offset = address & (self.page_size - 1)
        frame_base = self._memo.get((vpn, write))
        if frame_base is None:
            frame_base = self.translate(address, write=write) - offset
            self._memo[(vpn, write)] = frame_base
        return frame_base | offset

    def is_mapped(self, address: int) -> bool:
        return self.vpn(address) in self._entries

    def mappings(self) -> Iterator[Tuple[int, PageTableEntry]]:
        """Iterate ``(virtual_page_base_address, entry)`` pairs."""
        for vpn in sorted(self._entries):
            yield vpn << self.page_shift, self._entries[vpn]

    def pinned_pages(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.pinned)
