"""Sparse byte-addressable memory.

The paper's experiments touch up to 8 GB working sets on a 188 GB server.
We cannot (and need not) allocate that: for address-pattern experiments
only the *addresses* matter, and for functional benchmarks the live data is
small.  :class:`SparseMemory` therefore backs memory with 4 KB frames
materialized on first write; reads of never-written memory return zeros
without materializing anything, like freshly faulted anonymous pages.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError

_FRAME_SHIFT = 12
_FRAME_SIZE = 1 << _FRAME_SHIFT
_FRAME_MASK = _FRAME_SIZE - 1

_ZERO_FRAME = bytes(_FRAME_SIZE)


class SparseMemory:
    """A flat physical address space backed by on-demand 4 KB frames."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ConfigurationError("memory size must be positive")
        self.size_bytes = size_bytes
        self._frames: Dict[int, bytearray] = {}

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size_bytes:
            raise ConfigurationError(
                f"access [{address:#x}, {address + length:#x}) outside "
                f"{self.size_bytes:#x}-byte memory"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes; unwritten memory reads as zeros."""
        # Fast path: the overwhelmingly common case is a cache-line read
        # that stays inside one 4 KB frame.
        offset = address & _FRAME_MASK
        if 0 < length and offset + length <= _FRAME_SIZE and 0 <= address <= self.size_bytes - length:
            frame = self._frames.get(address >> _FRAME_SHIFT)
            if frame is None:
                return _ZERO_FRAME[:length]
            return bytes(frame[offset : offset + length])
        self._check_range(address, length)
        parts = []
        remaining = length
        current = address
        while remaining > 0:
            frame_no = current >> _FRAME_SHIFT
            offset = current & _FRAME_MASK
            chunk = min(remaining, _FRAME_SIZE - offset)
            frame = self._frames.get(frame_no)
            if frame is None:
                parts.append(_ZERO_FRAME[:chunk])
            else:
                parts.append(bytes(frame[offset : offset + chunk]))
            current += chunk
            remaining -= chunk
        return b"".join(parts)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` at ``address``, materializing frames as needed."""
        self._check_range(address, len(data))
        view = memoryview(data)
        current = address
        consumed = 0
        while consumed < len(data):
            frame_no = current >> _FRAME_SHIFT
            offset = current & _FRAME_MASK
            chunk = min(len(data) - consumed, _FRAME_SIZE - offset)
            frame = self._frames.get(frame_no)
            if frame is None:
                frame = bytearray(_FRAME_SIZE)
                self._frames[frame_no] = frame
            frame[offset : offset + chunk] = view[consumed : consumed + chunk]
            current += chunk
            consumed += chunk

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, (value & (2**64 - 1)).to_bytes(8, "little"))

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read(address, 4), "little")

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, (value & (2**32 - 1)).to_bytes(4, "little"))

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        self.write(address, bytes([byte]) * length)

    @property
    def resident_bytes(self) -> int:
        """How much memory is actually materialized (for tests/diagnostics)."""
        return len(self._frames) * _FRAME_SIZE
