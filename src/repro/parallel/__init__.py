"""Sharded, deterministic parallel execution for the fleet layer.

Three pieces (see DESIGN.md §9):

* :mod:`repro.parallel.pool` — the persistent worker pool behind
  ``--jobs`` sweeps, plus the cost heuristic that keeps small cells
  serial;
* :mod:`repro.parallel.shadow` — coordinator-side bookkeeping twins of
  the fleet cluster/nodes (every control-plane decision, zero IPC);
* :mod:`repro.parallel.executor` + :mod:`repro.parallel.shard` — the
  epoch-batched op stream from shadow to the worker processes owning the
  real per-node platform stacks, with byte-identical results.
"""

from repro.parallel.executor import ShardedFleetCluster, ShardedFleetService
from repro.parallel.pool import (
    DISPATCH_OVERHEAD_S,
    MIN_PARALLEL_BUDGET_S,
    WorkerPool,
    dispatch_plan,
    shared_pool,
    shutdown_shared_pool,
)
from repro.parallel.shadow import ShadowCluster, ShadowNode, ShadowTenant

__all__ = [
    "DISPATCH_OVERHEAD_S",
    "MIN_PARALLEL_BUDGET_S",
    "ShadowCluster",
    "ShadowNode",
    "ShadowTenant",
    "ShardedFleetCluster",
    "ShardedFleetService",
    "WorkerPool",
    "dispatch_plan",
    "shared_pool",
    "shutdown_shared_pool",
]
