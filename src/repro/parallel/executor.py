"""The sharded fleet executor: shadow coordinator + shard workers.

:class:`ShardedFleetCluster` presents the exact
:class:`~repro.fleet.cluster.FleetCluster` surface the serving loop and
the fault injector consume, but behind it the real per-node platform
stacks live in shard worker processes:

* the coordinator answers every control-plane read from its
  :class:`~repro.parallel.shadow.ShadowCluster` bookkeeping (no IPC on
  the serving loop's hot path);
* every mutation is emitted as an op into a per-shard buffer and flushed
  asynchronously as binary frames (:mod:`repro.parallel.opstream`),
  stamped with the epoch it belongs to.  With ``lookahead == 0`` a
  flush happens at every epoch boundary (the conservative protocol);
  with ``lookahead = K`` flushes coalesce up to K epochs per frame
  *and* the coordinator grants shard workers permission to run granted
  evictions up to K epochs ahead of the serving clock
  (:mod:`repro.parallel.speculate`) — committed by suppression when the
  speculated departure arrives on schedule, unwound by a typed rollback
  op travelling ahead of any conflicting truth in the same FIFO stream;
* observation points (:meth:`gather`, :meth:`merge_traces`,
  :meth:`close`) are the only barriers; :meth:`gather` is memoized on
  the op stream (three summary surfaces cost one round trip) and ships
  metric *deltas*, not full snapshots.

Because all admission/placement/fault *decisions* are taken against the
shadow — which replicates the provider's slot selection and the node
health machine exactly, and is verified op-by-op by the workers — serve
results, metric summaries, traces, and chaos envelopes are byte-identical
to a serial run by construction, at any ``(shards, lookahead)``.

:class:`ShardedFleetService` is the drop-in serving loop: a
:class:`~repro.fleet.admission.FleetService` whose epoch hook forwards
the clock (and itself, for speculation-window scans) to the cluster and
whose serve() ends with a verification barrier + trace merge.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.library import FpgaConfiguration
from repro.errors import ConfigurationError, UnknownTenantError
from repro.fleet.admission import FleetService
from repro.fleet.cluster import DEFAULT_TEMPLATES
from repro.fleet.node import DEFAULT_MAX_OVERSUB
from repro.parallel.opstream import FrameEncoder, OpStreamStats
from repro.parallel.pool import fork_context
from repro.parallel.shadow import ShadowCluster, ShadowNode
from repro.parallel.shard import shard_worker_main
from repro.parallel.speculate import SpeculationController, conflict_class
from repro.telemetry.tracer import current_tracer

#: With coalescing enabled, ship a frame early once this many ops have
#: buffered — bounds worker idle time behind one oversized frame.
COALESCE_OP_LIMIT = 64


class _Shard:
    """Coordinator-side handle of one worker process."""

    __slots__ = (
        "index",
        "process",
        "op_queue",
        "ack_queue",
        "buffer",
        "encoder",
    )

    def __init__(self, index: int, process, op_queue, ack_queue) -> None:
        self.index = index
        self.process = process
        self.op_queue = op_queue
        self.ack_queue = ack_queue
        #: Ops accumulated since the last flush: (node, epoch, op, payload).
        self.buffer: List[Tuple[int, int, str, tuple]] = []
        #: Stateful binary codec for this stream (epoch delta chain +
        #: string intern table persist across frames).
        self.encoder = FrameEncoder()


class ShardedFleetCluster(ShadowCluster):
    """A fleet cluster whose real nodes live in shard worker processes."""

    def __init__(
        self,
        specs: Sequence[Tuple[str, Tuple[str, ...]]],
        *,
        shards: int,
        params=None,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
        lookahead: int = 0,
        codec: str = "binary",
    ) -> None:
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        if lookahead < 0:
            raise ConfigurationError("lookahead must be >= 0")
        if codec not in ("binary", "pickle"):
            raise ConfigurationError(f"unknown op-stream codec {codec!r}")
        n_nodes = len(specs)
        self.shards = min(shards, n_nodes)
        self.lookahead = lookahead
        self._codec = codec
        self._closed = False
        self._epoch_ps = 0
        self._epochs_since_flush = 0
        self._service = None
        self._event_context = ""
        self._speculation = SpeculationController(lookahead)
        self._stats = OpStreamStats()
        self._stats.codec = codec
        self._stats.lookahead = lookahead
        #: Memoized :meth:`gather` result; invalidated by any op emission.
        self._gather_cache: Optional[Dict[int, Dict[str, object]]] = None
        #: Per-node folded metric snapshots (delta-gather accumulator).
        self._node_metrics: Dict[int, Dict[str, object]] = {}
        self._tracer = current_tracer()
        # Reserve the pid block the serial build would have consumed (one
        # engine scope per node, in node order) *before* any other scope
        # (fleet metrics, fault injector) is created by the caller.
        if self._tracer is not None:
            self._first_pid = self._tracer.reserve_pids(n_nodes)
        else:
            self._first_pid = 0

        context = fork_context()
        self._shards: List[_Shard] = []
        assignments: List[List[Tuple[int, str, Tuple[str, ...]]]] = [
            [] for _ in range(self.shards)
        ]
        for index, (name, slots) in enumerate(specs):
            assignments[index % self.shards].append((index, name, tuple(slots)))
        for shard_index, descs in enumerate(assignments):
            op_queue = context.SimpleQueue()
            ack_queue = context.SimpleQueue()
            process = context.Process(
                target=shard_worker_main,
                args=(
                    shard_index,
                    descs,
                    params,
                    max_oversub,
                    self._tracer is not None,
                    self._first_pid,
                    op_queue,
                    ack_queue,
                    codec,
                ),
                daemon=True,
                name=f"repro-shard-{shard_index}",
            )
            process.start()
            self._shards.append(_Shard(shard_index, process, op_queue, ack_queue))

        # Workers build their nodes concurrently; collect pid maps.
        self._owner: Dict[int, _Shard] = {}
        self._pid_maps: Dict[int, Dict[int, int]] = {}
        for shard, descs in zip(self._shards, assignments):
            for index, _name, _slots in descs:
                self._owner[index] = shard
        for shard in self._shards:
            kind, worker_index, pid_by_node, error = shard.ack_queue.get()
            assert kind == "built"
            if error is not None:
                self.close()
                raise RuntimeError(f"shard {worker_index} failed to build:\n{error}")
            self._pid_maps[worker_index] = pid_by_node

        nodes = [
            ShadowNode(
                index,
                name,
                FpgaConfiguration.synthesize(slots),
                max_oversub=max_oversub,
                emit=self._emit,
            )
            for index, (name, slots) in enumerate(specs)
        ]
        super().__init__(nodes)

    @classmethod
    def build(
        cls,
        n_nodes: int,
        *,
        shards: int,
        templates: Optional[Sequence[Sequence[str]]] = None,
        params=None,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
        lookahead: int = 0,
        codec: str = "binary",
    ) -> "ShardedFleetCluster":
        """Same fleet :meth:`FleetCluster.build` produces, sharded S ways."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        templates = [tuple(t) for t in (templates or DEFAULT_TEMPLATES)]
        specs = [
            (f"node{i}", templates[i % len(templates)]) for i in range(n_nodes)
        ]
        return cls(
            specs,
            shards=shards,
            params=params,
            max_oversub=max_oversub,
            lookahead=lookahead,
            codec=codec,
        )

    # -- speculation-aware epoch contract ------------------------------------

    def note_event(self, kind: str, now: int) -> str:
        """Record the event context ops are being emitted under.

        Conflict-class attribution for rollbacks (DESIGN.md §9): the
        serving loop labels each dispatched event; nested operations
        (autoscaler ticks, migrations) refine the label and restore the
        previous one, which this returns.
        """
        previous = self._event_context
        self._event_context = kind
        return previous

    def opstream_stats(self) -> Dict[str, object]:
        """The op-stream/speculation ledger for this run (side channel:
        never part of a result envelope — ``--shards``/``--lookahead``
        are execution details)."""
        return self._stats.to_dict()

    # -- op stream ----------------------------------------------------------

    def _emit(self, node_index: int, op: Tuple[str, tuple]) -> None:
        shard = self._owner[node_index]
        name, payload = op
        self._gather_cache = None
        if self._speculation.active:
            verdict = self._speculation.intercept(
                node_index, name, payload, self._epoch_ps
            )
            if verdict is not None:
                what, tenants = verdict
                if what == "commit":
                    # The worker already applied this eviction at grant
                    # time; arriving on schedule, it commits by omission.
                    self._stats.commits += 1
                    return
                self._issue_rollback(
                    shard,
                    node_index,
                    tenants,
                    conflict_class(self._event_context),
                )
        shard.buffer.append((node_index, self._epoch_ps, name, payload))

    def _issue_rollback(
        self,
        shard: _Shard,
        node_index: int,
        tenants: Tuple[str, ...],
        reason: str,
    ) -> None:
        """Unwind ``tenants``' speculative evictions on one node.

        Grants whose ``spec_evict`` is still sitting in the unflushed
        buffer are scrubbed in place (the worker never saw them); the
        rest get a ``spec_rollback`` op that travels ahead of whatever
        conflicting op the caller emits next.
        """
        scrubbed = set()
        doomed = set(tenants)
        kept = []
        for entry in shard.buffer:
            if (
                entry[0] == node_index
                and entry[2] == "spec_evict"
                and entry[3][0] in doomed
                and entry[3][0] not in scrubbed
            ):
                scrubbed.add(entry[3][0])
                continue
            kept.append(entry)
        shard.buffer = kept
        self._stats.scrubbed += len(scrubbed)
        shipped = tuple(t for t in tenants if t not in scrubbed)
        if shipped:
            shard.buffer.append(
                (node_index, self._epoch_ps, "spec_rollback", (shipped,))
            )
            self._stats.record_rollback(reason, len(shipped))

    def _rollback_outstanding(self, reason: str) -> None:
        """Cancel every outstanding grant (observation-point safety: a
        granted departure is a *future* event the serial loop has not
        processed, so no observed state may include its effects)."""
        for node_index in self._speculation.nodes_with_grants():
            tenants = self._speculation.cancel_node(node_index)
            if tenants:
                self._issue_rollback(
                    self._owner[node_index], node_index, tenants, reason
                )
                self._gather_cache = None

    def advance_epoch(self, epoch_ps: int, *, service=None) -> None:
        """The fleet clock moved: flush completed epochs' ops.

        ``service`` (passed by :class:`ShardedFleetService`) is what the
        speculation grant scan reads the event heap through; without it
        lookahead degrades gracefully to coalesced-flush-only.
        """
        if service is not None:
            self._service = service
        if epoch_ps == self._epoch_ps:
            return
        self._epoch_ps = epoch_ps
        self._epochs_since_flush += 1
        if self.lookahead == 0 or self._epochs_since_flush >= self.lookahead:
            self.flush()
        elif any(len(s.buffer) >= COALESCE_OP_LIMIT for s in self._shards):
            self.flush()

    def flush(self, *, grant: bool = True) -> None:
        """Grant safe speculation, then ship buffered ops (no barrier).

        Observation points pass ``grant=False``: they have just rolled
        back (or are about to inspect) speculative state, and granting in
        the same breath could re-speculate the very eviction they
        cancelled — e.g. re-evicting a tenant one op before its
        checkpoint round-trip.  Grants only ride epoch-advance flushes.
        """
        if grant:
            self._grant_speculation()
        shipped = False
        for shard in self._shards:
            if shard.buffer:
                self._ship(shard)
                shipped = True
        if shipped:
            self._stats.flushes += 1
        self._epochs_since_flush = 0

    def _grant_speculation(self) -> None:
        if self.lookahead <= 0 or self._service is None or self._closed:
            return
        for node_index, tenant, depart_ps in self._speculation.eligible(
            self._service, self
        ):
            self._speculation.grant(node_index, tenant, depart_ps)
            shard = self._owner[node_index]
            shard.buffer.append((node_index, depart_ps, "spec_evict", (tenant,)))
            self._stats.grants += 1
            self._gather_cache = None

    def _ship(self, shard: _Shard) -> None:
        batch = shard.buffer
        shard.buffer = []
        if self._codec == "binary":
            payload: object = shard.encoder.encode(batch)
            self._stats.frame_bytes += len(payload)  # type: ignore[arg-type]
        else:  # legacy pickle codec, kept selectable for honest benches
            payload = batch
            self._stats.frame_bytes += len(
                pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
            )
        shard.op_queue.put(("ops", payload))
        self._stats.messages += 1
        self._stats.frames += 1
        self._stats.ops += len(batch)

    def _post(self, shard: _Shard, message: tuple) -> None:
        shard.op_queue.put(message)
        self._stats.messages += 1

    def _await_ack(self, shard: _Shard):
        start = time.perf_counter()
        ack = shard.ack_queue.get()
        self._stats.barrier_stall_s += time.perf_counter() - start
        self._stats.stall_waits += 1
        return ack

    def checkpoint_tenant(self, tenant_name: str):
        """Quiesce + serialize one resident guest on its owning worker.

        A synchronous round-trip to a *single* shard (the one owning the
        tenant's node).  Outstanding grants on that node are rolled back
        first (the worker may have speculatively evicted the very guest
        being checkpointed), pending ops flushed, and SimpleQueue
        preserves order, so the worker applies every earlier mutation
        before serializing.
        """
        node = self.tenant_nodes.get(tenant_name)
        if node is None:
            raise UnknownTenantError(tenant_name, "in the fleet")
        tenants = self._speculation.cancel_node(node.index)
        if tenants:
            self._issue_rollback(
                self._owner[node.index],
                node.index,
                tenants,
                conflict_class(self._event_context or "migration"),
            )
        self.flush(grant=False)
        self._gather_cache = None
        shard = self._owner[node.index]
        self._post(shard, ("checkpoint", "ckpt", node.index, tenant_name))
        kind, _worker, token, checkpoint, worker_errors = self._await_ack(shard)
        assert kind == "checkpoint" and token == "ckpt"
        if checkpoint is None:
            raise RuntimeError(
                "sharded fleet execution diverged:\n" + "\n".join(worker_errors)
            )
        return checkpoint

    def barrier(self, token: str = "sync") -> None:
        """Flush, then wait until every shard has applied everything.

        Raises with the worker's traceback if any op failed or any
        placement diverged from the shadow's prediction.
        """
        self._rollback_outstanding("observation")
        self.flush(grant=False)
        errors: List[str] = []
        for shard in self._shards:
            self._post(shard, ("sync", token))
        for shard in self._shards:
            kind, worker_index, got, worker_errors = self._await_ack(shard)
            assert kind == "sync" and got == token
            errors.extend(worker_errors)
        if errors:
            raise RuntimeError(
                "sharded fleet execution diverged:\n" + "\n".join(errors)
            )

    # -- observation points (barriers) --------------------------------------

    def gather(self) -> Dict[int, Dict[str, object]]:
        """Per-node reports from the real stacks, in global node order.

        Memoized on the op stream: consecutive gathers with no
        intervening emission (the envelope builders call three summary
        surfaces back-to-back) cost one round trip total.  Metric
        snapshots arrive as deltas against the previous gather and are
        folded into the coordinator's accumulator.

        The legacy pickle codec deliberately reproduces the old
        protocol end to end — no memoization, full snapshots — so
        benches comparing the codecs compare whole protocols.
        """
        if self._codec == "binary" and self._gather_cache is not None:
            self._stats.gather_cache_hits += 1
            return self._gather_cache
        self._rollback_outstanding("observation")
        self.flush(grant=False)
        self._stats.gathers += 1
        reports: Dict[int, Dict[str, object]] = {}
        errors: List[str] = []
        for shard in self._shards:
            self._post(shard, ("gather", "gather"))
        for shard in self._shards:
            kind, _worker, _token, shard_reports, worker_errors = (
                self._await_ack(shard)
            )
            assert kind == "gather"
            for index, report in shard_reports.items():
                report["metrics"] = self._fold_metrics(index, report["metrics"])
                reports[index] = report
            errors.extend(worker_errors)
        if errors:
            raise RuntimeError(
                "sharded fleet execution diverged:\n" + "\n".join(errors)
            )
        result = {index: reports[index] for index in sorted(reports)}
        self._gather_cache = result
        return result

    def _fold_metrics(self, index: int, shipped) -> Dict[str, object]:
        """Fold one node's (full | delta) metric shipment into the
        accumulated snapshot and return the merged view."""
        tag = shipped[0]
        if tag == "full":
            merged = dict(shipped[1])
        else:
            merged = dict(self._node_metrics.get(index, {}))
            merged.update(shipped[1])
            for name in shipped[2]:
                merged.pop(name, None)
        self._node_metrics[index] = merged
        return merged

    def simulated_report(self) -> Dict[str, Dict[str, object]]:
        """Per-node simulated time, keyed by node name (envelope shape)."""
        reports = self.gather()
        return {
            self.nodes[index].name: {"simulated_ps": report["simulated_ps"]}
            for index, report in reports.items()
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The fleet-wide metric snapshot ``FleetCluster`` would produce
        (``node<i>.<metric>`` keys from each node's platform registry)."""
        reports = self.gather()
        snapshot: Dict[str, object] = {}
        for index, report in reports.items():
            prefix = self.nodes[index].name
            for key, value in report["metrics"].items():
                snapshot[f"{prefix}.{key}"] = value
        return dict(sorted(snapshot.items()))

    def occupancy_report(self) -> Dict[str, Dict[int, Dict[str, object]]]:
        reports = self.gather()
        return {
            self.nodes[index].name: report["occupancy"]
            for index, report in reports.items()
        }

    def merge_traces(self) -> None:
        """Pull every shard's trace events into the coordinator tracer,
        renumbered into the reserved pid block (serial pid order)."""
        if self._tracer is None:
            return
        self._rollback_outstanding("observation")
        self.flush(grant=False)
        for shard in self._shards:
            self._post(shard, ("trace", "trace"))
        for shard in self._shards:
            kind, worker_index, _token, events, worker_errors = (
                self._await_ack(shard)
            )
            assert kind == "trace"
            if worker_errors:
                raise RuntimeError(
                    "sharded fleet execution diverged:\n"
                    + "\n".join(worker_errors)
                )
            pid_map = {
                local_pid: self._first_pid + node_index
                for node_index, local_pid in self._pid_maps[worker_index].items()
            }
            self._tracer.ingest(events, pid_map=pid_map)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent.  Pending ops are flushed first."""
        if self._closed:
            return
        self._closed = True
        if getattr(self, "_shards", None):
            self._rollback_outstanding("observation")
        for shard in getattr(self, "_shards", []):
            if shard.buffer:
                self._ship(shard)
            self._post(shard, ("exit",))
        for shard in getattr(self, "_shards", []):
            shard.process.join(timeout=10)
            if shard.process.is_alive():  # pragma: no cover - defensive
                shard.process.terminate()

    def __enter__(self) -> "ShardedFleetCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ShardedFleetService(FleetService):
    """The serving loop over a :class:`ShardedFleetCluster`.

    Identical control flow to :class:`FleetService` (it *is* one); the
    epoch hook forwards the fleet clock — and the service itself, whose
    event heap is what the speculation grant scan reads — to the
    cluster so completed epochs' ops stream to the shards while the
    loop keeps running, and serve() ends with one verification barrier
    + trace merge.
    """

    def __init__(self, cluster: ShardedFleetCluster, policy, **kwargs) -> None:
        if not isinstance(cluster, ShardedFleetCluster):
            raise ConfigurationError(
                "ShardedFleetService needs a ShardedFleetCluster"
            )
        super().__init__(cluster, policy, **kwargs)

    def _advance_epoch(self, now: int) -> None:
        self.cluster.advance_epoch(now, service=self)

    def serve(self, requests) -> "ServeResult":  # noqa: F821 - parent type
        result = super().serve(requests)
        # Everything after this is observation: wait for the shards to
        # finish applying the op stream, verify no divergence, and fold
        # their trace events back into the coordinator's tracer.
        self.cluster.barrier("serve-end")
        self.cluster.merge_traces()
        return result
