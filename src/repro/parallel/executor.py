"""The sharded fleet executor: shadow coordinator + shard workers.

:class:`ShardedFleetCluster` presents the exact
:class:`~repro.fleet.cluster.FleetCluster` surface the serving loop and
the fault injector consume, but behind it the real per-node platform
stacks live in shard worker processes:

* the coordinator answers every control-plane read from its
  :class:`~repro.parallel.shadow.ShadowCluster` bookkeeping (no IPC on
  the serving loop's hot path);
* every mutation is emitted as an op into a per-shard buffer and flushed
  asynchronously at **epoch boundaries** (whenever the fleet's simulated
  clock advances), stamped with the epoch it belongs to — the
  conservative protocol: a worker may safely apply everything at or
  before the epoch because cross-node interactions (admission, placement,
  failover) are resolved coordinator-side before the ops are emitted;
* observation points (:meth:`gather`, :meth:`merge_traces`,
  :meth:`close`) are the only barriers.

Because all admission/placement/fault *decisions* are taken against the
shadow — which replicates the provider's slot selection and the node
health machine exactly, and is verified op-by-op by the workers — serve
results, metric summaries, traces, and chaos envelopes are byte-identical
to a serial run by construction.

:class:`ShardedFleetService` is the drop-in serving loop: a
:class:`~repro.fleet.admission.FleetService` whose epoch hook flushes op
batches and whose serve() ends with a verification barrier + trace merge.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.library import FpgaConfiguration
from repro.errors import ConfigurationError, UnknownTenantError
from repro.fleet.admission import FleetService
from repro.fleet.cluster import DEFAULT_TEMPLATES
from repro.fleet.node import DEFAULT_MAX_OVERSUB
from repro.parallel.shadow import ShadowCluster, ShadowNode
from repro.parallel.shard import shard_worker_main
from repro.telemetry.tracer import current_tracer


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class _Shard:
    """Coordinator-side handle of one worker process."""

    __slots__ = ("index", "process", "op_queue", "ack_queue", "buffer")

    def __init__(self, index: int, process, op_queue, ack_queue) -> None:
        self.index = index
        self.process = process
        self.op_queue = op_queue
        self.ack_queue = ack_queue
        #: Ops accumulated since the last flush: (node, epoch, op, payload).
        self.buffer: List[Tuple[int, int, str, tuple]] = []


class ShardedFleetCluster(ShadowCluster):
    """A fleet cluster whose real nodes live in shard worker processes."""

    def __init__(
        self,
        specs: Sequence[Tuple[str, Tuple[str, ...]]],
        *,
        shards: int,
        params=None,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        n_nodes = len(specs)
        self.shards = min(shards, n_nodes)
        self._closed = False
        self._epoch_ps = 0
        self._tracer = current_tracer()
        # Reserve the pid block the serial build would have consumed (one
        # engine scope per node, in node order) *before* any other scope
        # (fleet metrics, fault injector) is created by the caller.
        if self._tracer is not None:
            self._first_pid = self._tracer.reserve_pids(n_nodes)
        else:
            self._first_pid = 0

        context = _fork_context()
        self._shards: List[_Shard] = []
        assignments: List[List[Tuple[int, str, Tuple[str, ...]]]] = [
            [] for _ in range(self.shards)
        ]
        for index, (name, slots) in enumerate(specs):
            assignments[index % self.shards].append((index, name, tuple(slots)))
        for shard_index, descs in enumerate(assignments):
            op_queue = context.SimpleQueue()
            ack_queue = context.SimpleQueue()
            process = context.Process(
                target=shard_worker_main,
                args=(
                    shard_index,
                    descs,
                    params,
                    max_oversub,
                    self._tracer is not None,
                    self._first_pid,
                    op_queue,
                    ack_queue,
                ),
                daemon=True,
                name=f"repro-shard-{shard_index}",
            )
            process.start()
            self._shards.append(_Shard(shard_index, process, op_queue, ack_queue))

        # Workers build their nodes concurrently; collect pid maps.
        self._owner: Dict[int, _Shard] = {}
        self._pid_maps: Dict[int, Dict[int, int]] = {}
        for shard, descs in zip(self._shards, assignments):
            for index, _name, _slots in descs:
                self._owner[index] = shard
        for shard in self._shards:
            kind, worker_index, pid_by_node, error = shard.ack_queue.get()
            assert kind == "built"
            if error is not None:
                self.close()
                raise RuntimeError(f"shard {worker_index} failed to build:\n{error}")
            self._pid_maps[worker_index] = pid_by_node

        nodes = [
            ShadowNode(
                index,
                name,
                FpgaConfiguration.synthesize(slots),
                max_oversub=max_oversub,
                emit=self._emit,
            )
            for index, (name, slots) in enumerate(specs)
        ]
        super().__init__(nodes)

    @classmethod
    def build(
        cls,
        n_nodes: int,
        *,
        shards: int,
        templates: Optional[Sequence[Sequence[str]]] = None,
        params=None,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
    ) -> "ShardedFleetCluster":
        """Same fleet :meth:`FleetCluster.build` produces, sharded S ways."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        templates = [tuple(t) for t in (templates or DEFAULT_TEMPLATES)]
        specs = [
            (f"node{i}", templates[i % len(templates)]) for i in range(n_nodes)
        ]
        return cls(specs, shards=shards, params=params, max_oversub=max_oversub)

    # -- op stream ----------------------------------------------------------

    def _emit(self, node_index: int, op: Tuple[str, tuple]) -> None:
        shard = self._owner[node_index]
        shard.buffer.append((node_index, self._epoch_ps, op[0], op[1]))

    def advance_epoch(self, epoch_ps: int) -> None:
        """The fleet clock moved: flush every completed epoch's ops."""
        if epoch_ps != self._epoch_ps:
            self.flush()
            self._epoch_ps = epoch_ps

    def flush(self) -> None:
        """Ship buffered ops to their shards (asynchronous, no barrier)."""
        for shard in self._shards:
            if shard.buffer:
                shard.op_queue.put(("ops", shard.buffer))
                shard.buffer = []

    def checkpoint_tenant(self, tenant_name: str):
        """Quiesce + serialize one resident guest on its owning worker.

        A synchronous round-trip to a *single* shard (the one owning the
        tenant's node).  Pending ops for that shard are flushed first, and
        SimpleQueue preserves order, so the worker applies every earlier
        mutation before serializing.  Migration is rare relative to the
        op stream, so the one-shard stall is acceptable.
        """
        node = self.tenant_nodes.get(tenant_name)
        if node is None:
            raise UnknownTenantError(tenant_name, "in the fleet")
        self.flush()
        shard = self._owner[node.index]
        shard.op_queue.put(("checkpoint", "ckpt", node.index, tenant_name))
        kind, _worker, token, checkpoint, worker_errors = shard.ack_queue.get()
        assert kind == "checkpoint" and token == "ckpt"
        if checkpoint is None:
            raise RuntimeError(
                "sharded fleet execution diverged:\n" + "\n".join(worker_errors)
            )
        return checkpoint

    def barrier(self, token: str = "sync") -> None:
        """Flush, then wait until every shard has applied everything.

        Raises with the worker's traceback if any op failed or any
        placement diverged from the shadow's prediction.
        """
        self.flush()
        errors: List[str] = []
        for shard in self._shards:
            shard.op_queue.put(("sync", token))
        for shard in self._shards:
            kind, worker_index, got, worker_errors = shard.ack_queue.get()
            assert kind == "sync" and got == token
            errors.extend(worker_errors)
        if errors:
            raise RuntimeError(
                "sharded fleet execution diverged:\n" + "\n".join(errors)
            )

    # -- observation points (barriers) --------------------------------------

    def gather(self) -> Dict[int, Dict[str, object]]:
        """Per-node reports from the real stacks, in global node order."""
        self.flush()
        reports: Dict[int, Dict[str, object]] = {}
        errors: List[str] = []
        for shard in self._shards:
            shard.op_queue.put(("gather", "gather"))
        for shard in self._shards:
            kind, _worker, _token, shard_reports, worker_errors = (
                shard.ack_queue.get()
            )
            assert kind == "gather"
            reports.update(shard_reports)
            errors.extend(worker_errors)
        if errors:
            raise RuntimeError(
                "sharded fleet execution diverged:\n" + "\n".join(errors)
            )
        return {index: reports[index] for index in sorted(reports)}

    def simulated_report(self) -> Dict[str, Dict[str, object]]:
        """Per-node simulated time, keyed by node name (envelope shape)."""
        reports = self.gather()
        return {
            self.nodes[index].name: {"simulated_ps": report["simulated_ps"]}
            for index, report in reports.items()
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The fleet-wide metric snapshot ``FleetCluster`` would produce
        (``node<i>.<metric>`` keys from each node's platform registry)."""
        reports = self.gather()
        snapshot: Dict[str, object] = {}
        for index, report in reports.items():
            prefix = self.nodes[index].name
            for key, value in report["metrics"].items():
                snapshot[f"{prefix}.{key}"] = value
        return dict(sorted(snapshot.items()))

    def occupancy_report(self) -> Dict[str, Dict[int, Dict[str, object]]]:
        reports = self.gather()
        return {
            self.nodes[index].name: report["occupancy"]
            for index, report in reports.items()
        }

    def merge_traces(self) -> None:
        """Pull every shard's trace events into the coordinator tracer,
        renumbered into the reserved pid block (serial pid order)."""
        if self._tracer is None:
            return
        self.flush()
        for shard in self._shards:
            shard.op_queue.put(("trace", "trace"))
        for shard in self._shards:
            kind, worker_index, _token, events, worker_errors = (
                shard.ack_queue.get()
            )
            assert kind == "trace"
            if worker_errors:
                raise RuntimeError(
                    "sharded fleet execution diverged:\n"
                    + "\n".join(worker_errors)
                )
            pid_map = {
                local_pid: self._first_pid + node_index
                for node_index, local_pid in self._pid_maps[worker_index].items()
            }
            self._tracer.ingest(events, pid_map=pid_map)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent.  Pending ops are flushed first."""
        if self._closed:
            return
        self._closed = True
        for shard in getattr(self, "_shards", []):
            if shard.buffer:
                shard.op_queue.put(("ops", shard.buffer))
                shard.buffer = []
            shard.op_queue.put(("exit",))
        for shard in getattr(self, "_shards", []):
            shard.process.join(timeout=10)
            if shard.process.is_alive():  # pragma: no cover - defensive
                shard.process.terminate()

    def __enter__(self) -> "ShardedFleetCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ShardedFleetService(FleetService):
    """The serving loop over a :class:`ShardedFleetCluster`.

    Identical control flow to :class:`FleetService` (it *is* one); the
    epoch hook forwards the fleet clock to the cluster so completed
    epochs' ops stream to the shards while the loop keeps running, and
    serve() ends with one verification barrier + trace merge.
    """

    def __init__(self, cluster: ShardedFleetCluster, policy, **kwargs) -> None:
        if not isinstance(cluster, ShardedFleetCluster):
            raise ConfigurationError(
                "ShardedFleetService needs a ShardedFleetCluster"
            )
        super().__init__(cluster, policy, **kwargs)

    def _advance_epoch(self, now: int) -> None:
        self.cluster.advance_epoch(now)

    def serve(self, requests) -> "ServeResult":  # noqa: F821 - parent type
        result = super().serve(requests)
        # Everything after this is observation: wait for the shards to
        # finish applying the op stream, verify no divergence, and fold
        # their trace events back into the coordinator's tracer.
        self.cluster.barrier("serve-end")
        self.cluster.merge_traces()
        return result
