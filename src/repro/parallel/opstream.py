"""Binary framing + accounting for the coordinator -> shard op stream.

The conservative protocol shipped every op batch as a pickled list of
``(node, epoch, op, payload)`` tuples.  Pickle is general but expensive
for what is, in practice, a tiny closed vocabulary of hot ops whose
payloads are a couple of short strings and small ints.  This module
packs a batch into one compact binary frame:

* frame header: varint op count;
* per op: op code (u8), varint global node index, zigzag-varint epoch
  delta against the previous op's epoch (ops on one stream cluster
  tightly in simulated time, so the common delta is 1–5 bytes against 8
  for a raw u64; the delta chain persists **across** frames, so only
  the first op of a run pays for a full picosecond timestamp), then a
  code-specific payload;
* every string — tenant names, accelerator types, auditor counter keys
  — goes through a per-stream intern table that also persists across
  frames: first use ships varint-length-prefixed UTF-8 and enters the
  table, every repeat is one small varint.  A tenant name therefore
  ships exactly once (at placement); its eviction is a 1–2 byte ref;
* ``place`` ships its oversubscription flag in the op code
  (``OP_PLACE`` vs ``OP_PLACE_OVERSUB``) and the predicted slot as a
  varint;
* the cold tail (``restore_tenant`` carries a full
  :class:`~repro.hv.checkpoint.GuestCheckpoint`; future ops default the
  same way) falls back to an embedded pickle blob under ``OP_PICKLE``,
  so the codec never constrains what the protocol can say — it only
  makes the common case cheap.

Because the codec is stateful per stream, each coordinator-side shard
handle owns a :class:`FrameEncoder` and each worker owns the matching
:class:`FrameDecoder`; frames must be decoded in ship order, which the
SimpleQueue FIFO already guarantees.  The layout is an IPC detail
between one coordinator and the workers it forked; it is never
persisted, so there is no versioning story beyond "both ends run the
same build".

:class:`OpStreamStats` is the coordinator-side ledger the new bench
columns and the CI proxy gate read: messages/frames/bytes shipped,
speculation outcomes (grants, commits, rollbacks by conflict class),
gather round-trips vs cache hits, and barrier-stall accounting.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Tuple

#: One buffered op: (global node index, epoch_ps, op name, payload).
BufferedOp = Tuple[int, int, str, tuple]

_F64 = struct.Struct("!d")

OP_PLACE = 1
OP_EVICT = 2
OP_CORDON = 3
OP_UNCORDON = 4
OP_CRASH = 5
OP_RECOVER = 6
OP_RESTORE = 7
OP_DEGRADE = 8
OP_BUMP_AUDITOR = 9
OP_SPEC_EVICT = 10
OP_SPEC_ROLLBACK = 11
OP_PLACE_OVERSUB = 12
OP_PICKLE = 0xFF

_NULLARY_BY_NAME = {
    "cordon": OP_CORDON,
    "uncordon": OP_UNCORDON,
    "crash": OP_CRASH,
    "recover": OP_RECOVER,
    "restore": OP_RESTORE,
}
_NULLARY_BY_CODE = {code: name for name, code in _NULLARY_BY_NAME.items()}


def _zigzag(value: int) -> int:
    return -(value << 1) - 1 if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class FrameEncoder:
    """Stateful encoder for one coordinator->worker op stream."""

    __slots__ = ("_epoch", "_names", "parts")

    def __init__(self) -> None:
        self._epoch = 0
        self._names: Dict[str, int] = {}
        self.parts: List[bytes] = []

    # -- primitives ----------------------------------------------------------

    def _varint(self, value: int) -> None:
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self.parts.append(bytes((byte | 0x80,)))
            else:
                self.parts.append(bytes((byte,)))
                return

    def _string(self, text: str) -> None:
        """Interned: tag 0 + bytes on first use, ``index + 1`` after."""
        index = self._names.get(text)
        if index is None:
            self._varint(0)
            raw = text.encode("utf-8")
            self._varint(len(raw))
            self.parts.append(raw)
            self._names[text] = len(self._names)
        else:
            self._varint(index + 1)

    # -- frames --------------------------------------------------------------

    def encode(self, ops: List[BufferedOp]) -> bytes:
        """Pack one op batch into a binary frame."""
        self.parts = []
        self._varint(len(ops))
        for node_index, epoch_ps, op, payload in ops:
            if op == "place":
                code = OP_PLACE_OVERSUB if payload[3] else OP_PLACE
            elif op == "evict":
                code = OP_EVICT
            elif op == "spec_evict":
                code = OP_SPEC_EVICT
            elif op == "spec_rollback":
                code = OP_SPEC_ROLLBACK
            elif op == "degrade":
                code = OP_DEGRADE
            elif op == "bump_auditor":
                code = OP_BUMP_AUDITOR
            else:
                code = _NULLARY_BY_NAME.get(op, OP_PICKLE)
            self.parts.append(bytes((code,)))
            self._varint(node_index)
            self._varint(_zigzag(epoch_ps - self._epoch))
            self._epoch = epoch_ps
            if code in (OP_PLACE, OP_PLACE_OVERSUB):
                tenant_name, accel_type, physical_index, _oversub = payload
                self._string(tenant_name)
                self._string(accel_type)
                self._varint(physical_index)
            elif code in (OP_EVICT, OP_SPEC_EVICT):
                self._string(payload[0])
            elif code == OP_SPEC_ROLLBACK:
                tenants = payload[0]
                self._varint(len(tenants))
                for tenant_name in tenants:
                    self._string(tenant_name)
            elif code == OP_DEGRADE:
                self.parts.append(_F64.pack(payload[0]))
            elif code == OP_BUMP_AUDITOR:
                physical_index, key, count = payload
                self._varint(physical_index)
                self._string(key)
                self._varint(count)
            elif code == OP_PICKLE:  # cold tail: restore_tenant, future ops
                blob = pickle.dumps(
                    (op, payload), protocol=pickle.HIGHEST_PROTOCOL
                )
                self._varint(len(blob))
                self.parts.append(blob)
            # nullary codes carry nothing beyond the op head
        frame = b"".join(self.parts)
        self.parts = []
        return frame


class FrameDecoder:
    """Stateful decoder mirroring :class:`FrameEncoder`, frame-ordered."""

    __slots__ = ("_epoch", "_names", "_data", "_offset")

    def __init__(self) -> None:
        self._epoch = 0
        self._names: List[str] = []
        self._data = b""
        self._offset = 0

    # -- primitives ----------------------------------------------------------

    def _varint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self._data[self._offset]
            self._offset += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def _string(self) -> str:
        tag = self._varint()
        if tag == 0:
            length = self._varint()
            raw = self._data[self._offset : self._offset + length]
            self._offset += length
            text = raw.decode("utf-8")
            self._names.append(text)
            return text
        return self._names[tag - 1]

    def _f64(self) -> float:
        (value,) = _F64.unpack_from(self._data, self._offset)
        self._offset += _F64.size
        return value

    # -- frames --------------------------------------------------------------

    def decode(self, data: bytes) -> List[BufferedOp]:
        """Unpack one binary frame back into the op-batch list."""
        self._data = data
        self._offset = 0
        count = self._varint()
        ops: List[BufferedOp] = []
        for _ in range(count):
            code = data[self._offset]
            self._offset += 1
            node_index = self._varint()
            epoch_ps = self._epoch + _unzigzag(self._varint())
            self._epoch = epoch_ps
            if code in (OP_PLACE, OP_PLACE_OVERSUB):
                tenant_name = self._string()
                accel_type = self._string()
                physical_index = self._varint()
                payload: tuple = (
                    tenant_name,
                    accel_type,
                    physical_index,
                    code == OP_PLACE_OVERSUB,
                )
                op = "place"
            elif code == OP_EVICT:
                payload = (self._string(),)
                op = "evict"
            elif code == OP_SPEC_EVICT:
                payload = (self._string(),)
                op = "spec_evict"
            elif code == OP_SPEC_ROLLBACK:
                n_tenants = self._varint()
                payload = (tuple(self._string() for _ in range(n_tenants)),)
                op = "spec_rollback"
            elif code == OP_DEGRADE:
                payload = (self._f64(),)
                op = "degrade"
            elif code == OP_BUMP_AUDITOR:
                physical_index = self._varint()
                key = self._string()
                bump_count = self._varint()
                payload = (physical_index, key, bump_count)
                op = "bump_auditor"
            elif code in _NULLARY_BY_CODE:
                payload = ()
                op = _NULLARY_BY_CODE[code]
            elif code == OP_PICKLE:
                length = self._varint()
                raw = self._data[self._offset : self._offset + length]
                self._offset += length
                op, payload = pickle.loads(raw)
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"unknown op code {code}")
            ops.append((node_index, epoch_ps, op, payload))
        self._data = b""
        return ops


def encode_frame(ops: List[BufferedOp]) -> bytes:
    """One-shot convenience over :class:`FrameEncoder` (tests, tools)."""
    return FrameEncoder().encode(ops)


def decode_frame(data: bytes) -> List[BufferedOp]:
    """One-shot convenience over :class:`FrameDecoder` (tests, tools)."""
    return FrameDecoder().decode(data)


class OpStreamStats:
    """Coordinator-side accounting for one sharded run.

    Everything except the wall-clock stall timers is deterministic for a
    fixed (trace, shards, lookahead) triple, which is what lets CI gate
    on these numbers instead of on noisy 1-CPU timings.
    """

    def __init__(self) -> None:
        self.codec = "binary"
        self.lookahead = 0
        #: Every queue put (op frames + control messages).
        self.messages = 0
        #: "ops" messages only.
        self.frames = 0
        #: Encoded op-frame payload bytes (for the legacy pickle codec,
        #: the pickled batch size — the honest like-for-like number).
        self.frame_bytes = 0
        self.ops = 0
        self.flushes = 0
        #: Speculation ledger.
        self.grants = 0
        self.commits = 0
        self.rollbacks = 0
        self.rollbacks_by_class: Dict[str, int] = {}
        #: Grants cancelled while their spec_evict was still buffered
        #: (scrubbed before ever reaching a worker; no rollback op needed).
        self.scrubbed = 0
        #: Observation-point accounting.
        self.gathers = 0
        self.gather_cache_hits = 0
        self.barrier_stall_s = 0.0
        #: Deterministic companion to the wall-clock stall timer: how many
        #: synchronous acks the coordinator waited on.
        self.stall_waits = 0

    def record_rollback(self, conflict_class: str, grants: int) -> None:
        self.rollbacks += grants
        self.rollbacks_by_class[conflict_class] = (
            self.rollbacks_by_class.get(conflict_class, 0) + grants
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "codec": self.codec,
            "lookahead": self.lookahead,
            "messages": self.messages,
            "frames": self.frames,
            "frame_bytes": self.frame_bytes,
            "ops": self.ops,
            "flushes": self.flushes,
            "grants": self.grants,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "rollbacks_by_class": dict(sorted(self.rollbacks_by_class.items())),
            "scrubbed": self.scrubbed,
            "gathers": self.gathers,
            "gather_cache_hits": self.gather_cache_hits,
            "barrier_stall_s": self.barrier_stall_s,
            "stall_waits": self.stall_waits,
        }
