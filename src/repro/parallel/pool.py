"""A persistent process-worker pool for experiment fan-out.

The first ``--jobs`` implementation spawned a fresh ``multiprocessing.Pool``
per sweep (and therefore per *call* of :func:`repro.experiments.harness
.parallel_map`), which made small grids a net loss: BENCH_simulator.json
recorded ``speedup_fast_jobs: 0.91`` because pool start-up and teardown
dwarfed the cells themselves.  This module replaces that with:

* :class:`WorkerPool` — long-lived worker processes fed over one shared
  task queue.  Workers survive across ``map`` calls, so a sweep of many
  small grids pays the fork cost once.
* :func:`shared_pool` — the module-level singleton the experiment harness
  uses; it grows on demand and is torn down at interpreter exit.
* a **cost heuristic** (:func:`dispatch_plan`): the harness probes the
  first cell inline and stays serial when the measured cell time is below
  the pool's per-cell dispatch overhead — fanning out only when it can
  actually win.  Results are identical either way; cells are independent
  and merged in submission order.

Fork start is preferred (workers inherit the configured fast-path mode
and any installed tracer-less state for free); spawn is the non-POSIX
fallback, covered by the ``REPRO_FAST_PATH`` environment variable.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import traceback
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Measured cost of shipping one task through the persistent pool
#: (pickle + queue round trip), in seconds.  Cells cheaper than a few of
#: these are not worth dispatching.
DISPATCH_OVERHEAD_S = 0.005

#: Minimum total remaining work (estimated) worth waking the pool for.
MIN_PARALLEL_BUDGET_S = 0.05


def fork_context():
    """The multiprocessing context every repro parallel surface shares.

    Fork start is preferred (workers inherit the configured fast-path
    mode for free); spawn is the non-POSIX fallback, covered by the
    ``REPRO_FAST_PATH`` environment variable.  Used by both the
    experiment pool and the sharded fleet executor.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _worker_main(task_queue, result_queue) -> None:  # pragma: no cover - subprocess
    """One pool worker: loop over (seq, fn, item) tasks until poisoned."""
    while True:
        task = task_queue.get()
        if task is None:
            return
        seq, fn, item = task
        try:
            result_queue.put((seq, True, fn(item)))
        except BaseException as exc:  # surface errors to the coordinator
            result_queue.put(
                (seq, False, (repr(exc), traceback.format_exc()))
            )


class WorkerPool:
    """Persistent worker processes behind one shared task queue.

    ``map`` keeps the classic contract of :func:`parallel_map`: results
    come back in item order regardless of worker scheduling, and the
    first failing item (by submission order) re-raises coordinator-side.
    """

    def __init__(self, processes: int, *, context: Optional[str] = None) -> None:
        if processes < 1:
            raise ConfigurationError("a worker pool needs at least one process")
        if context is None:
            self._context = fork_context()
        else:
            self._context = multiprocessing.get_context(context)
        self.processes = processes
        self._tasks = self._context.SimpleQueue()
        self._results = self._context.SimpleQueue()
        self._workers = [
            self._context.Process(
                target=_worker_main,
                args=(self._tasks, self._results),
                daemon=True,
                name=f"repro-pool-{i}",
            )
            for i in range(processes)
        ]
        for worker in self._workers:
            worker.start()
        self._closed = False

    # -- mapping ------------------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item across the pool; results in order."""
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        items = list(items)
        for seq, item in enumerate(items):
            self._tasks.put((seq, fn, item))
        slots: List = [None] * len(items)
        failures: List[Tuple[int, Tuple[str, str]]] = []
        for _ in range(len(items)):
            seq, ok, payload = self._results.get()
            if ok:
                slots[seq] = payload
            else:
                failures.append((seq, payload))
        if failures:
            failures.sort()
            shown, formatted = failures[0][1]
            raise RuntimeError(
                f"pool worker failed on item {failures[0][0]}: {shown}\n{formatted}"
            )
        return slots

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Poison every worker and join; idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- the shared singleton -----------------------------------------------------

_SHARED: Optional[WorkerPool] = None


def shared_pool(processes: int) -> WorkerPool:
    """The process-wide pool, created lazily and grown on demand.

    Growing replaces the pool (workers are stateless); shrinking never
    happens — a sweep asking for 2 after one asked for 8 reuses the 8.
    """
    global _SHARED
    if _SHARED is None or _SHARED._closed:
        _SHARED = WorkerPool(processes)
    elif _SHARED.processes < processes:
        _SHARED.close()
        _SHARED = WorkerPool(processes)
    return _SHARED


def shutdown_shared_pool() -> None:
    """Tear the singleton down (tests; also registered at exit)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None


atexit.register(shutdown_shared_pool)


def dispatch_plan(probe_s: float, remaining: int, jobs: int) -> bool:
    """Should the remaining cells go to the pool?  (The cost heuristic.)

    ``probe_s`` is the measured wall time of the first cell, run inline.
    Fan out only when the estimated remaining work both exceeds the
    dispatch overhead per cell and adds up to enough total work that the
    pool can win back its coordination cost.  Pure function — unit tested
    directly; override via ``REPRO_FORCE_JOBS=1`` for benchmarking.
    """
    if os.environ.get("REPRO_FORCE_JOBS") == "1":
        return True
    if jobs <= 1 or remaining < 1:
        return False
    if probe_s < DISPATCH_OVERHEAD_S:
        return False
    return probe_s * remaining >= MIN_PARALLEL_BUDGET_S
