"""Coordinator-side shadow bookkeeping for sharded fleet execution.

The fleet serving loop (:class:`repro.fleet.admission.FleetService`) is
pure control plane: every decision it makes — which node a policy picks,
which physical slot the provider assigns, when a session departs — reads
nothing but *bookkeeping* (per-slot occupancy counts, node health, static
capacity).  The heavyweight per-node state (platform, engine, hypervisor,
IOMMU) is only ever *written* by placements and evictions, never read
back by the loop.

That asymmetry is what makes sharding safe: the coordinator keeps a
:class:`ShadowNode` per fleet node that replicates the bookkeeping
exactly — the same spatial-then-temporal slot selection as
:meth:`repro.cloud.provider.CloudProvider.place` (``min`` over same-type
slots by occupancy, ties to the lowest index), the same health machine as
:class:`repro.fleet.node.FleetNode` — while the real node lives in a
shard worker that replays the identical operation stream.  Workers verify
every placement against the shadow's prediction, so any divergence fails
loudly instead of silently skewing results.

Shadow classes deliberately mirror the :class:`FleetNode` /
:class:`FleetCluster` surfaces the placement policies and the serving
loop touch; they are plain bookkeeping with no simulation imports.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cloud.library import FpgaConfiguration
from repro.errors import ConfigurationError, SchedulerError, UnknownTenantError
from repro.fleet.node import DEFAULT_MAX_OVERSUB, EvictedPlacement, NodeHealth
from repro.hv.checkpoint import GuestCheckpoint

#: An op forwarded to the shard worker owning a node: (op name, payload).
ShardOp = Tuple[str, tuple]


class ShadowTenant:
    """The coordinator's view of one placed tenant.

    ``oversubscribed`` is a live property (like the real
    :class:`~repro.cloud.provider.Tenant`): it reads the slot's *current*
    occupancy, because eviction records it at evict time, not place time.
    """

    __slots__ = ("name", "accel_type", "physical_index", "_node")

    def __init__(self, name: str, accel_type: str, physical_index: int, node: "ShadowNode") -> None:
        self.name = name
        self.accel_type = accel_type
        self.physical_index = physical_index
        self._node = node

    @property
    def oversubscribed(self) -> bool:
        return self._node.slot_occupancy[self.physical_index] > 1


class ShadowNode:
    """Bookkeeping twin of one :class:`~repro.fleet.node.FleetNode`.

    Mutations forward the equivalent operation to the shard worker that
    owns the real node via ``emit`` (set by the executor); reads are
    answered locally and never block on a worker.
    """

    def __init__(
        self,
        index: int,
        name: str,
        configuration: FpgaConfiguration,
        *,
        max_oversub: int = DEFAULT_MAX_OVERSUB,
        emit: Optional[Callable[[int, ShardOp], None]] = None,
    ) -> None:
        if max_oversub < 1:
            raise ConfigurationError("max_oversub must be >= 1")
        self.index = index
        self._name = name
        self.configuration = configuration
        self.max_oversub = max_oversub
        self.slot_occupancy: List[int] = [0] * configuration.n_slots
        self.tenants: Dict[str, ShadowTenant] = {}
        self.health = NodeHealth.HEALTHY
        self.cordoned = False
        self._emit = emit or (lambda index, op: None)

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowNode({self._name!r}, slots={list(self.configuration.slots)})"

    # -- capacity accounting (mirrors FleetNode exactly) ----------------------

    @property
    def total_slots(self) -> int:
        return self.configuration.n_slots

    def capacity(self, accel_type: str) -> int:
        return len(self.configuration.slots_of_type(accel_type))

    def occupancy(self, accel_type: str) -> int:
        return sum(
            self.slot_occupancy[i]
            for i in self.configuration.slots_of_type(accel_type)
        )

    def free_slots(self, accel_type: str) -> int:
        return sum(
            1
            for i in self.configuration.slots_of_type(accel_type)
            if not self.slot_occupancy[i]
        )

    def headroom(self, accel_type: str) -> int:
        return self.max_oversub * self.capacity(accel_type) - self.occupancy(accel_type)

    @property
    def resident(self) -> int:
        return len(self.tenants)

    @property
    def load(self) -> float:
        if not self.total_slots:
            return 0.0
        return self.resident / self.total_slots

    def affinity(self, accel_type: str) -> float:
        if not self.total_slots:
            return 0.0
        return self.capacity(accel_type) / self.total_slots

    def can_place(self, accel_type: str, *, oversubscribe: bool = True) -> bool:
        if self.health is NodeHealth.DEAD:
            return False
        if self.capacity(accel_type) == 0:
            return False
        if self.free_slots(accel_type) > 0:
            return True
        return oversubscribe and self.headroom(accel_type) > 0

    def utilization_by_type(self) -> Dict[str, float]:
        report: Dict[str, float] = {}
        for accel_type in sorted(set(self.configuration.slots)):
            report[accel_type] = self.occupancy(accel_type) / self.capacity(accel_type)
        return report

    # -- placement lifecycle ---------------------------------------------------

    def place(self, tenant_name: str, accel_type: str) -> ShadowTenant:
        """Mirror of provider slot selection: least-occupied same-type slot,
        ties to the lowest index (``min`` over the candidate list)."""
        if tenant_name in self.tenants:
            raise ConfigurationError(f"tenant {tenant_name!r} already on {self.name}")
        if not self.can_place(accel_type):
            raise SchedulerError(
                f"node {self.name} has no headroom for {accel_type!r}"
            )
        candidates = self.configuration.slots_of_type(accel_type)
        physical_index = min(candidates, key=self.slot_occupancy.__getitem__)
        self.slot_occupancy[physical_index] += 1
        tenant = ShadowTenant(tenant_name, accel_type, physical_index, self)
        self.tenants[tenant_name] = tenant
        self._emit(
            self.index,
            ("place", (tenant_name, accel_type, physical_index,
                       self.slot_occupancy[physical_index] > 1)),
        )
        return tenant

    def evict(self, tenant_name: str) -> EvictedPlacement:
        tenant = self.tenants.pop(tenant_name, None)
        if tenant is None:
            raise UnknownTenantError(tenant_name, f"on node {self.name}")
        placement = EvictedPlacement(
            tenant=tenant.name,
            accel_type=tenant.accel_type,
            node_name=self.name,
            physical_index=tenant.physical_index,
            oversubscribed=tenant.oversubscribed,
        )
        self.slot_occupancy[tenant.physical_index] -= 1
        self._emit(self.index, ("evict", (tenant_name,)))
        return placement

    def restore_tenant(self, checkpoint: GuestCheckpoint) -> ShadowTenant:
        """Mirror of :meth:`FleetNode.restore_tenant`: same slot rule as
        ``place``; the checkpoint itself ships to the owning worker."""
        if checkpoint.vm_name in self.tenants:
            raise ConfigurationError(
                f"tenant {checkpoint.vm_name!r} already on {self.name}"
            )
        if not self.can_place(checkpoint.accel_type):
            raise SchedulerError(
                f"node {self.name} has no headroom for {checkpoint.accel_type!r}"
            )
        candidates = self.configuration.slots_of_type(checkpoint.accel_type)
        physical_index = min(candidates, key=self.slot_occupancy.__getitem__)
        self.slot_occupancy[physical_index] += 1
        tenant = ShadowTenant(
            checkpoint.vm_name, checkpoint.accel_type, physical_index, self
        )
        self.tenants[checkpoint.vm_name] = tenant
        self._emit(
            self.index,
            ("restore_tenant", (checkpoint, physical_index,
                                self.slot_occupancy[physical_index] > 1)),
        )
        return tenant

    # -- health transitions -----------------------------------------------------

    def cordon(self) -> None:
        self.cordoned = True
        self._emit(self.index, ("cordon", ()))

    def uncordon(self) -> None:
        self.cordoned = False
        self._emit(self.index, ("uncordon", ()))

    def crash(self) -> None:
        self.health = NodeHealth.DEAD
        self._emit(self.index, ("crash", ()))

    def recover(self) -> None:
        if self.health is NodeHealth.DEGRADED:
            pass  # restore() below flips DEGRADED back; recover forces HEALTHY
        self.health = NodeHealth.HEALTHY
        self._emit(self.index, ("recover", ()))

    def degrade(self, factor: float) -> None:
        if self.health is NodeHealth.DEAD:
            raise ConfigurationError(f"cannot degrade dead node {self.name}")
        self.health = NodeHealth.DEGRADED
        self._emit(self.index, ("degrade", (factor,)))

    def restore(self) -> None:
        if self.health is NodeHealth.DEGRADED:
            self.health = NodeHealth.HEALTHY
        self._emit(self.index, ("restore", ()))


class ShadowCluster:
    """Bookkeeping twin of :class:`~repro.fleet.cluster.FleetCluster`.

    Implements the exact serving-loop surface (placement, eviction, node
    health, capacity queries, auditor bumps) over :class:`ShadowNode`s.
    The executor wires ``emit`` so every mutation reaches the owning
    shard; pure reads stay local and cost no IPC.
    """

    def __init__(self, nodes: Sequence[ShadowNode]) -> None:
        if not nodes:
            raise ConfigurationError("a fleet needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self.nodes: List[ShadowNode] = list(nodes)
        self.tenant_nodes: Dict[str, ShadowNode] = {}

    # -- fleet-wide capacity ----------------------------------------------------

    @property
    def total_slots(self) -> int:
        return sum(node.total_slots for node in self.nodes)

    def offered_types(self) -> List[str]:
        types = set()
        for node in self.nodes:
            types.update(node.configuration.slots)
        return sorted(types)

    def capacity(self, accel_type: str) -> int:
        return sum(node.capacity(accel_type) for node in self.nodes)

    def occupancy(self, accel_type: str) -> int:
        return sum(node.occupancy(accel_type) for node in self.nodes)

    @property
    def resident(self) -> int:
        return len(self.tenant_nodes)

    def can_place(self, accel_type: str) -> bool:
        return any(node.can_place(accel_type) for node in self.nodes)

    # -- placement ---------------------------------------------------------------

    def place(self, tenant_name: str, accel_type: str, policy):
        if tenant_name in self.tenant_nodes:
            raise ConfigurationError(f"tenant {tenant_name!r} already placed")
        alive = [
            n
            for n in self.nodes
            if n.health is not NodeHealth.DEAD and not n.cordoned
        ]
        if not alive:
            return None
        node = policy.choose(alive, accel_type)
        if node is None:
            return None
        tenant = node.place(tenant_name, accel_type)
        self.tenant_nodes[tenant_name] = node
        return node, tenant

    def evict(self, tenant_name: str) -> EvictedPlacement:
        node = self.tenant_nodes.pop(tenant_name, None)
        if node is None:
            raise UnknownTenantError(tenant_name, "in the fleet")
        return node.evict(tenant_name)

    def restore_tenant(self, node_name: str, checkpoint: GuestCheckpoint):
        if checkpoint.vm_name in self.tenant_nodes:
            raise ConfigurationError(
                f"tenant {checkpoint.vm_name!r} already placed"
            )
        node = self.node(node_name)
        tenant = node.restore_tenant(checkpoint)
        self.tenant_nodes[checkpoint.vm_name] = node
        return tenant

    # -- node health ---------------------------------------------------------------

    def node(self, name: str) -> ShadowNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigurationError(f"no node {name!r} in the fleet")

    def cordon(self, name: str) -> ShadowNode:
        node = self.node(name)
        node.cordon()
        return node

    def uncordon(self, name: str) -> ShadowNode:
        node = self.node(name)
        node.uncordon()
        return node

    def crash_node(self, name: str) -> List[EvictedPlacement]:
        warnings.warn(
            "FleetCluster.crash_node is deprecated; use FleetOps.crash "
            "(service.ops.crash) so displaced sessions are resolved through "
            "the typed fleet-operations API",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._crash_node(name)

    def _crash_node(self, name: str) -> List[EvictedPlacement]:
        node = self.node(name)
        displaced = []
        for tenant in sorted(node.tenants):
            self.tenant_nodes.pop(tenant, None)
            displaced.append(node.evict(tenant))
        node.crash()
        return displaced

    def recover_node(self, name: str) -> ShadowNode:
        node = self.node(name)
        node.recover()
        return node

    def health_report(self) -> Dict[str, str]:
        return {node.name: node.health.value for node in self.nodes}

    def note_event(self, kind: str, now: int) -> str:
        """Event-context label hook (see ``FleetCluster.note_event``).

        The plain shadow needs nothing; :class:`~repro.parallel.executor
        .ShardedFleetCluster` overrides this to attribute speculation
        rollbacks to conflict classes.
        """
        return ""

    # -- fault-side plumbing -------------------------------------------------------

    def bump_auditor(
        self, name: str, physical_index: int, key: str, count: int
    ) -> None:
        """Forward an auditor-counter bump to the real node's monitor."""
        node = self.node(name)
        node._emit(node.index, ("bump_auditor", (physical_index, key, count)))

    # -- reporting -----------------------------------------------------------------

    def utilization_by_type(self) -> Dict[str, float]:
        report: Dict[str, float] = {}
        for accel_type in self.offered_types():
            capacity = self.capacity(accel_type)
            if capacity:
                report[accel_type] = self.occupancy(accel_type) / capacity
        return report
