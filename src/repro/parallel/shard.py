"""The shard worker: owns a subset of real fleet nodes, replays ops.

One worker process per shard.  At startup it builds the *real*
:class:`~repro.fleet.node.FleetNode` stacks for the node indices it owns
(platform synthesis is the expensive part of a fleet build, so N nodes
across S shards build in parallel), then loops over operation batches the
coordinator's shadow bookkeeping emitted:

``place / evict / restore_tenant / cordon / uncordon / crash / recover /
degrade / restore / bump_auditor`` — plus the speculation pair
``spec_evict`` (apply a granted eviction early, after snapshotting the
undo state) and ``spec_rollback`` (reinstate named speculative evictions,
newest first, verifying the rebuilt guests digest identically).

Op batches arrive either as plain lists (legacy pickle codec) or as
binary frames (:mod:`repro.parallel.opstream`); each op is stamped with
the epoch (simulated fleet time) it belongs to and applied strictly in
emission order per node — the same order the serial serving loop would
have applied them.  ``place`` ops carry the shadow's *predicted* slot and
oversubscription flag; the worker verifies the real provider agrees and
reports any divergence at the next barrier, so a bookkeeping bug fails
the run loudly instead of silently skewing results.

A regular op at epoch t retires undo entries granted at epochs <= t
(their departures have committed coordinator-side by suppression); an
undo entry still live *past* a regular op is a protocol violation and
fails the run — the coordinator's rollback is guaranteed to travel ahead
of any conflicting op in the same FIFO stream.

Tracing: a forked worker inherits the coordinator's installed tracer
*object*, which must not be written to (its events would be lost and the
pid sequence corrupted).  When the coordinator traces, the worker installs
a **fresh** local tracer before building anything; the scopes its
platforms allocate get local pids which the coordinator later renumbers
into the pid block it reserved (see ``Tracer.reserve_pids``/``ingest``).
"""

from __future__ import annotations

import traceback
from typing import Dict, List, Optional, Tuple

from repro.parallel.opstream import FrameDecoder
from repro.parallel.speculate import capture_eviction_undo, reinstate_eviction


def shard_worker_main(
    worker_index: int,
    node_descs: List[Tuple[int, str, Tuple[str, ...]]],
    params,
    max_oversub: int,
    tracing: bool,
    first_pid: int,
    op_queue,
    ack_queue,
    codec: str = "binary",
) -> None:  # pragma: no cover - runs in a forked subprocess
    """Entry point of one shard worker process.

    ``node_descs`` is ``[(global_index, name, slots), ...]`` in global
    node order.  Messages on ``op_queue``:

    * ``("ops", frame_bytes_or_list)`` — apply a batch of
      ``(global_index, epoch_ps, op, payload)`` ops; binary frames are
      decoded via :func:`repro.parallel.opstream.decode_frame`
    * ``("checkpoint", token, global_index, tenant_name)`` — quiesce and
      serialize one resident guest; ack ``("checkpoint", worker_index,
      token, checkpoint_or_None, errors)``
    * ``("sync", token)`` — barrier ack: ``("sync", token, errors)``
    * ``("gather", token)`` — per-node reports (simulated time, metric
      snapshots shipped as deltas against the previous gather, occupancy)
    * ``("trace", token)`` — export the local tracer's events, once
    * ``("exit",)`` — leave the loop

    The worker never raises out of the loop: failures are captured and
    surfaced through the next ``sync``/``gather`` ack so the coordinator
    can raise with the worker's traceback attached.
    """
    from repro.fleet.node import FleetNode, NodeSpec
    from repro.hv.checkpoint import IncrementalCheckpointer
    from repro.telemetry.tracer import install_tracer, uninstall_tracer

    local_tracer = None
    errors: List[str] = []
    nodes: Dict[int, object] = {}
    pid_by_node: Dict[int, int] = {}
    #: Per-node speculative-eviction undo log, in application order.
    undo_logs: Dict[int, List[object]] = {}
    checkpointer = IncrementalCheckpointer()
    #: Last metric snapshot shipped per node (delta-gather baseline).
    last_metrics: Dict[int, Dict[str, object]] = {}
    #: Stateful binary codec for this stream, mirroring the
    #: coordinator-side encoder frame for frame.
    decoder = FrameDecoder()

    try:
        if tracing:
            # Drop the inherited (coordinator) tracer; trace locally.
            uninstall_tracer()
            local_tracer = install_tracer()
        for global_index, name, slots in node_descs:
            if local_tracer is not None:
                # Scope labels embed the pid (``platform<pid> (...)``), so
                # the engine scope must be *created* under the exact pid the
                # serial build would have used — skip the pids owned by
                # nodes on other shards, then build.
                skip = (first_pid + global_index) - (local_tracer._next_pid + 1)
                if skip > 0:
                    local_tracer.reserve_pids(skip)
            node = FleetNode(
                NodeSpec.of(name, slots), params=params, max_oversub=max_oversub
            )
            nodes[global_index] = node
            if local_tracer is not None:
                scope = node.provider.platform.engine.trace
                pid_by_node[global_index] = scope.pid if scope is not None else 0
        ack_queue.put(("built", worker_index, pid_by_node, None))
    except BaseException:
        ack_queue.put(("built", worker_index, {}, traceback.format_exc()))
        return

    def retire_committed(global_index: int, epoch_ps: int) -> None:
        """Drop undo entries whose grants have committed (epoch <= now).

        Any entry still live after that proves the coordinator let a
        regular op overtake an unresolved grant — a protocol bug.
        """
        log = undo_logs.get(global_index)
        if not log:
            return
        live = []
        for undo in log:
            if undo.grant_epoch <= epoch_ps:
                checkpointer.forget(undo.vaccel.vaccel_id)
            else:
                live.append(undo)
        log[:] = live
        if log:
            raise RuntimeError(
                f"speculation protocol violation on node {global_index}: "
                f"regular op at epoch {epoch_ps} with unresolved grants at "
                f"epochs {[u.grant_epoch for u in log]}"
            )

    def drain_undo_logs() -> None:
        """A barrier/gather means every outstanding grant was resolved
        coordinator-side; surviving entries are committed leftovers."""
        for log in undo_logs.values():
            for undo in log:
                checkpointer.forget(undo.vaccel.vaccel_id)
            log.clear()

    while True:
        message = op_queue.get()
        kind = message[0]
        if kind == "exit":
            return
        if kind == "ops":
            batch = message[1]
            if isinstance(batch, (bytes, bytearray)):
                batch = decoder.decode(batch)
            for global_index, epoch_ps, op, payload in batch:
                try:
                    if op == "spec_evict":
                        tenant_name = payload[0]
                        undo = capture_eviction_undo(
                            nodes[global_index],
                            tenant_name,
                            epoch_ps,
                            checkpointer,
                        )
                        nodes[global_index].evict(tenant_name)
                        undo_logs.setdefault(global_index, []).append(undo)
                    elif op == "spec_rollback":
                        _rollback(
                            nodes[global_index],
                            undo_logs.get(global_index, []),
                            payload[0],
                            checkpointer,
                        )
                    else:
                        retire_committed(global_index, epoch_ps)
                        _apply(nodes[global_index], op, payload)
                except BaseException:
                    errors.append(
                        f"node {global_index} op {op}{payload!r} at epoch "
                        f"{epoch_ps}:\n{traceback.format_exc()}"
                    )
        elif kind == "checkpoint":
            _kind, token, global_index, tenant_name = message
            checkpoint = None
            try:
                checkpoint = nodes[global_index].checkpoint_tenant(tenant_name)
            except BaseException:
                errors.append(
                    f"node {global_index} checkpoint of {tenant_name!r}:\n"
                    f"{traceback.format_exc()}"
                )
            ack_queue.put(
                ("checkpoint", worker_index, token, checkpoint, list(errors))
            )
        elif kind == "sync":
            drain_undo_logs()
            ack_queue.put(("sync", worker_index, message[1], list(errors)))
        elif kind == "gather":
            drain_undo_logs()
            reports = {}
            try:
                for global_index, node in nodes.items():
                    snapshot = node.provider.platform.metrics.snapshot()
                    previous = last_metrics.get(global_index)
                    if previous is None or codec == "pickle":
                        # The legacy codec reproduces the old protocol:
                        # every gather ships the full snapshot.
                        shipped: tuple = ("full", snapshot)
                    else:
                        changed = {
                            key: value
                            for key, value in snapshot.items()
                            if key not in previous or previous[key] != value
                        }
                        removed = [k for k in previous if k not in snapshot]
                        shipped = ("delta", changed, removed)
                    last_metrics[global_index] = snapshot
                    reports[global_index] = {
                        "simulated_ps": node.provider.platform.engine.now,
                        "metrics": shipped,
                        "occupancy": node.provider.occupancy_report(),
                        "health": node.health.value,
                    }
            except BaseException:
                errors.append(traceback.format_exc())
            ack_queue.put(("gather", worker_index, message[1], reports, list(errors)))
        elif kind == "trace":
            events = local_tracer.export_events() if local_tracer is not None else []
            ack_queue.put(("trace", worker_index, message[1], events, list(errors)))


def _rollback(node, log: List[object], tenant_names, checkpointer) -> None:
    """Reinstate the named speculative evictions, newest first."""
    names = set(tenant_names)
    doomed = [u for u in log if u.tenant_name in names]
    if len(doomed) != len(names):
        missing = names - {u.tenant_name for u in doomed}
        raise RuntimeError(
            f"rollback of unknown speculative evictions on {node.name}: "
            f"{sorted(missing)}"
        )
    log[:] = [u for u in log if u.tenant_name not in names]
    for undo in reversed(doomed):
        reinstate_eviction(node, undo)
        checkpointer.forget(undo.vaccel.vaccel_id)


def _apply(node, op: str, payload: tuple) -> None:
    """Apply one shadow-emitted op to a real :class:`FleetNode`."""
    if op == "place":
        tenant_name, accel_type, predicted_index, predicted_oversub = payload
        tenant = node.place(tenant_name, accel_type)
        if (
            tenant.physical_index != predicted_index
            or tenant.oversubscribed != predicted_oversub
        ):
            raise RuntimeError(
                "shadow bookkeeping diverged from the provider: "
                f"tenant {tenant_name!r} predicted slot {predicted_index} "
                f"(oversub={predicted_oversub}), got {tenant.physical_index} "
                f"(oversub={tenant.oversubscribed})"
            )
    elif op == "evict":
        node.evict(payload[0])
    elif op == "restore_tenant":
        checkpoint, predicted_index, predicted_oversub = payload
        tenant = node.restore_tenant(checkpoint)
        if (
            tenant.physical_index != predicted_index
            or tenant.oversubscribed != predicted_oversub
        ):
            raise RuntimeError(
                "shadow bookkeeping diverged from the provider: "
                f"restored tenant {checkpoint.vm_name!r} predicted slot "
                f"{predicted_index} (oversub={predicted_oversub}), got "
                f"{tenant.physical_index} (oversub={tenant.oversubscribed})"
            )
    elif op == "cordon":
        node.cordon()
    elif op == "uncordon":
        node.uncordon()
    elif op == "crash":
        node.crash()
    elif op == "recover":
        node.recover()
    elif op == "degrade":
        node.degrade(payload[0])
    elif op == "restore":
        node.restore()
    elif op == "bump_auditor":
        physical_index, key, count = payload
        monitor = node.provider.platform.monitor
        if monitor is not None:
            monitor.auditors[physical_index].counters.bump(key, count)
    else:  # pragma: no cover - protocol bug
        raise RuntimeError(f"unknown shard op {op!r}")
