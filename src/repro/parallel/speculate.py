"""Speculative epoch lookahead: grants, conflict detection, rollback.

The optimistic half of the sharded executor (DESIGN.md §9).  Two sides:

**Coordinator** — :class:`SpeculationController` is the conflict
detector.  At flush time it scans the serving loop's event heap
(:meth:`~repro.fleet.admission.FleetService.speculation_window`) for the
run of departures that are *certain* to dispatch exactly as scheduled,
and grants the owning workers permission to apply those evictions up to
``lookahead`` epochs early.  Every later op emission is interception
ground: the op that proves a speculated epoch wrong (a placement, a
migration eviction, an autoscaler cordon — anything touching a node
with outstanding grants) triggers a typed rollback *ahead of itself* in
the FIFO op stream, so the worker unwinds speculation before applying
the conflicting truth.  The common case — the granted departure arrives
on schedule — commits by **suppression**: the coordinator simply does
not re-send the eviction the worker already performed.

**Worker** — :func:`capture_eviction_undo` snapshots the exact state a
never-started guest's eviction destroys (IOPT slice entries, list/dict
positions, slice free-list membership, handle/vaccel flags) plus a
checkpoint digest via
:class:`~repro.hv.checkpoint.IncrementalCheckpointer`;
:func:`reinstate_eviction` puts every piece back and verifies a fresh
checkpoint digests identically — a rollback that does not reproduce the
pre-eviction guest bit-for-bit fails the run loudly.

Grant safety argument (why the uncontended case never rolls back): a
departure is granted only when every earlier heap event is itself a
granted departure, the admission queue is empty (so the departure's
drain places nothing), and the tenant is the sole occupant of its slot
(so eviction commutes with nothing and quiesce's remove/re-append is an
identity).  Anything else — faults, scheduled ops, retries, stale
departures, arrivals — is a speculation barrier.  Events pushed *after*
a grant (gateway follow-ups, autoscaler actions at dispatch time) are
caught by emission-time interception instead.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.hv.checkpoint import IncrementalCheckpointer, checkpoint_guest

#: Conflict classes, keyed from the event-dispatch context the cluster's
#: ``note_event`` hook records (DESIGN.md §9).
CONFLICT_CLASSES = {
    "arrival": "admission",
    "retry": "admission",
    "departure": "late_eviction",
    "fault": "fault",
    "watchdog": "fault",
    "ops": "operation",
    "migration": "migration",
    "autoscale": "autoscale",
    "observation": "observation",
}


def conflict_class(event_kind: str) -> str:
    return CONFLICT_CLASSES.get(event_kind, event_kind or "unknown")


class SpeculationController:
    """Coordinator-side grant ledger + conflict detector.

    Tracks, per node, the evictions granted to run ahead of the serving
    clock (``{tenant: granted epoch}``, insertion order = worker
    application order).  The executor consults :meth:`intercept` on
    every regular op emission and :meth:`eligible` on every flush.
    """

    def __init__(self, lookahead: int) -> None:
        self.lookahead = lookahead
        self._outstanding: Dict[int, Dict[str, int]] = {}

    @property
    def active(self) -> bool:
        return bool(self._outstanding)

    def outstanding_on(self, node_index: int) -> Dict[str, int]:
        return self._outstanding.get(node_index, {})

    def nodes_with_grants(self) -> List[int]:
        return list(self._outstanding)

    def eligible(self, service, cluster) -> List[Tuple[int, str, int]]:
        """New safe grants: ``[(node_index, tenant, depart_ps), ...]``.

        Consults the service's speculation window (the certain-departure
        prefix of the event heap).  A departure that cannot be granted —
        a time-shared slot, where eviction order interacts with the
        manager's run list — is a scan **barrier**, not a skip: granting
        anything past it would guarantee a conflict the moment its
        regular eviction is emitted.  Departures already granted are
        passed over (their outcome is known: the worker has applied
        them) and the scan continues.
        """
        if self.lookahead <= 0:
            return []
        window = service.speculation_window(self.lookahead)
        grants: List[Tuple[int, str, int]] = []
        for tenant, _epoch, depart_ps in window:
            node = cluster.tenant_nodes.get(tenant)
            if node is None:  # pragma: no cover - window guarantees liveness
                break
            shadow_tenant = node.tenants[tenant]
            if node.slot_occupancy[shadow_tenant.physical_index] != 1:
                break
            if tenant in self._outstanding.get(node.index, {}):
                continue
            grants.append((node.index, tenant, depart_ps))
        return grants

    def grant(self, node_index: int, tenant: str, epoch_ps: int) -> None:
        self._outstanding.setdefault(node_index, {})[tenant] = epoch_ps

    def intercept(
        self, node_index: int, op: str, payload: tuple, epoch_now: int
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """Rule on one regular op emission against outstanding grants.

        Returns ``None`` (no grants on the node: emit as usual),
        ``("commit", (tenant,))`` (the op IS a granted eviction arriving
        exactly on schedule: suppress it), or ``("rollback", tenants)``
        (the op conflicts: unwind ``tenants`` — every grant on the node,
        in application order — before emitting it).
        """
        grants = self._outstanding.get(node_index)
        if not grants:
            return None
        if op == "evict":
            tenant = payload[0]
            granted_epoch = grants.get(tenant)
            if granted_epoch is not None and granted_epoch == epoch_now:
                del grants[tenant]
                if not grants:
                    del self._outstanding[node_index]
                return ("commit", (tenant,))
        doomed = tuple(grants)
        del self._outstanding[node_index]
        return ("rollback", doomed)

    def cancel_node(self, node_index: int) -> Tuple[str, ...]:
        """Drop every grant on a node (observation-point pre-rollback)."""
        grants = self._outstanding.pop(node_index, {})
        return tuple(grants)


# -- worker side --------------------------------------------------------------------


class EvictionUndo:
    """Everything one speculative eviction destroyed, ready to reinstate.

    Captured against a guest that holds its slot alone and has never
    been scheduled mid-eviction (the grant conditions), whose eviction
    therefore touches exactly: the IOPT entries of its IOVA slice, four
    container positions (node tenant dict, provider tenant list,
    hypervisor vaccel list, manager vaccel list), the slice free-list,
    the started flag, the vaccel state, and the handle's connected flag.
    The original :class:`~repro.mem.page_table.PageTableEntry` *objects*
    are kept and reinstated so accessed/dirty/pinned bits survive.
    """

    __slots__ = (
        "tenant_name",
        "grant_epoch",
        "tenant",
        "vaccel",
        "vaccel_state",
        "started",
        "node_tenants_pos",
        "provider_pos",
        "hv_pos",
        "manager_pos",
        "iopt_entries",
        "digest",
    )

    def __init__(self, tenant_name: str, grant_epoch: int) -> None:
        self.tenant_name = tenant_name
        self.grant_epoch = grant_epoch


def capture_eviction_undo(
    node,
    tenant_name: str,
    grant_epoch: int,
    checkpointer: IncrementalCheckpointer,
) -> EvictionUndo:
    """Snapshot ``tenant_name`` on ``node`` just before its speculative
    eviction.  Raises if the grant conditions do not hold worker-side."""
    tenant = node.tenants.get(tenant_name)
    if tenant is None:
        raise RuntimeError(
            f"speculative eviction of unknown tenant {tenant_name!r} "
            f"on {node.name}"
        )
    hypervisor = node.provider.hypervisor
    vaccel = tenant.vaccel
    manager = hypervisor.physical[tenant.physical_index]
    if len(manager.vaccels) != 1:
        raise RuntimeError(
            f"speculative eviction of {tenant_name!r} on a time-shared "
            f"slot ({len(manager.vaccels)} residents) — the conflict "
            "detector must never grant this"
        )
    undo = EvictionUndo(tenant_name, grant_epoch)
    undo.tenant = tenant
    undo.vaccel = vaccel
    undo.vaccel_state = vaccel.state
    undo.started = hypervisor._started.get(vaccel.vaccel_id, False)
    undo.node_tenants_pos = list(node.tenants).index(tenant_name)
    undo.provider_pos = node.provider.tenants.index(tenant)
    undo.hv_pos = hypervisor.vaccels.index(vaccel)
    undo.manager_pos = manager.vaccels.index(vaccel)
    page_table = hypervisor.shadow.iommu.page_table
    first = page_table.vpn(vaccel.slice.iova_base)
    last = page_table.vpn(vaccel.slice.iova_base + vaccel.slice.size - 1)
    undo.iopt_entries = [
        (vpn, page_table._entries[vpn])
        for vpn in sorted(page_table._entries)
        if first <= vpn <= last
    ]
    undo.digest = checkpointer.checkpoint(
        hypervisor, vaccel, accel_type=tenant.accel_type
    ).digest()
    return undo


def reinstate_eviction(node, undo: EvictionUndo) -> None:
    """Put back everything :func:`capture_eviction_undo` recorded.

    Only valid while no other op has touched the node since the
    speculative eviction — which the FIFO protocol guarantees (the
    rollback op travels ahead of the conflicting op in the same stream).
    Verifies the rebuilt guest checkpoints to the captured digest.
    """
    hypervisor = node.provider.hypervisor
    tenant = undo.tenant
    vaccel = undo.vaccel
    page_table = hypervisor.shadow.iommu.page_table
    for vpn, entry in undo.iopt_entries:
        page_table._entries[vpn] = entry
    if undo.iopt_entries:
        page_table.version += 1
    manager = hypervisor.physical[tenant.physical_index]
    manager.vaccels.insert(undo.manager_pos, vaccel)
    vaccel.state = undo.vaccel_state
    hypervisor.vaccels.insert(undo.hv_pos, vaccel)
    hypervisor._free_slices.remove(vaccel.slice.index)
    heapq.heapify(hypervisor._free_slices)
    hypervisor._started[vaccel.vaccel_id] = undo.started
    tenant.handle.connected = True
    node.provider.tenants.insert(undo.provider_pos, tenant)
    items = list(node.tenants.items())
    items.insert(undo.node_tenants_pos, (undo.tenant_name, tenant))
    node.tenants.clear()
    node.tenants.update(items)
    fresh = checkpoint_guest(
        hypervisor, vaccel, accel_type=tenant.accel_type
    ).digest()
    if fresh != undo.digest:
        raise RuntimeError(
            f"rollback of {undo.tenant_name!r} on {node.name} did not "
            f"reproduce the pre-eviction guest: checkpoint digest "
            f"{fresh} != {undo.digest}"
        )
