"""Platform parameters and assembly."""

from repro.platform.builder import Platform, PlatformMode, build_platform
from repro.platform.params import DEFAULT_PARAMS, PlatformParams

__all__ = [
    "DEFAULT_PARAMS",
    "Platform",
    "PlatformMode",
    "PlatformParams",
    "build_platform",
]
