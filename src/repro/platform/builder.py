"""Platform assembly: one call builds a complete simulated HARP machine.

:func:`build_platform` wires the substrates together in one of two modes:

* ``optimus`` — N accelerator sockets behind the hardware monitor
  (auditors + multiplexer tree + VCU), the configuration of Fig. 3;
* ``passthrough`` — a single socket wired directly to the shell, the
  paper's baseline (direct assignment with vIOMMU, §6.1).

The returned :class:`Platform` owns the simulation engine and everything
on it, and is the object hypervisors, guests, and experiments talk to.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.monitor import HardwareMonitor
from repro.errors import ConfigurationError
from repro.fpga.afu import AfuSocket
from repro.fpga.shell import Shell
from repro.interconnect.channel_selector import ChannelSelector
from repro.interconnect.link import Link, LinkKind
from repro.interconnect.topology import MemorySystem
from repro.mem.dram import Dram
from repro.mem.iommu import Iommu
from repro.platform.fastpath import FastPath
from repro.platform.params import PlatformParams
from repro.sim.clock import Clock, gbps_to_bytes_per_ps
from repro.sim.engine import Engine
from repro.telemetry import MetricRegistry, current_tracer


class PlatformMode(enum.Enum):
    OPTIMUS = "optimus"
    PASSTHROUGH = "passthrough"


class Platform:
    """A fully wired simulated shared-memory FPGA machine."""

    def __init__(
        self,
        engine: Engine,
        params: PlatformParams,
        mode: PlatformMode,
        dram: Dram,
        iommu: Iommu,
        links: List[Link],
        selector: ChannelSelector,
        memory: MemorySystem,
        shell: Shell,
        sockets: List[AfuSocket],
        monitor: Optional[HardwareMonitor],
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.engine = engine
        self.params = params
        self.mode = mode
        self.dram = dram
        self.iommu = iommu
        self.links = links
        self.selector = selector
        self.memory = memory
        self.shell = shell
        self.sockets = sockets
        self.monitor = monitor
        self.metrics = metrics if metrics is not None else MetricRegistry("platform")
        self.interconnect_clock = Clock(params.interconnect_mhz)

    @property
    def n_sockets(self) -> int:
        return len(self.sockets)

    def snapshot(self) -> dict:
        """One summary per registered instrument (``None`` when empty)."""
        return self.metrics.snapshot()

    def reset_measurements(self) -> None:
        """Zero every meter/counter before a measurement window."""
        self.memory.reset_meters()
        self.iommu.reset_stats()
        for socket in self.sockets:
            socket.dma.reset_meters()

    def trace_flush(self) -> None:
        """Close open meter windows into the trace (finalize hook)."""
        scope = self.engine.trace
        if scope is None:
            return
        for link in self.links:
            link.trace_flush()
        now = self.engine.now
        stats = self.iommu.iotlb.stats
        scope.counter("iotlb", now,
                      {"hits": float(stats.hits), "misses": float(stats.misses),
                       "evictions": float(stats.evictions)},
                      tid=scope.thread("iommu.events"), cat="iotlb")
        for meter in (self.memory.read_meter, self.memory.write_meter):
            summary = meter.summary()
            if summary is not None:
                scope.complete("window", meter.window_start_ps, now,
                               tid=scope.thread(meter.name), cat="link",
                               args=summary)

    def run_for(self, duration_ps: int) -> None:
        self.engine.run(until_ps=self.engine.now + duration_ps)


def build_platform(
    params: Optional[PlatformParams] = None,
    *,
    n_accelerators: int = 1,
    mode: PlatformMode = PlatformMode.OPTIMUS,
    max_outstanding: int = 64,
    mux_topology=None,
) -> Platform:
    """Construct a platform; see module docstring for the two modes."""
    params = params or PlatformParams()
    if mode is PlatformMode.PASSTHROUGH and n_accelerators != 1:
        raise ConfigurationError("pass-through assigns exactly one accelerator")
    if n_accelerators < 1 or n_accelerators > params.max_physical_accelerators:
        raise ConfigurationError(
            f"n_accelerators must be in [1, {params.max_physical_accelerators}]"
        )

    engine = Engine()
    interconnect_clock = Clock(params.interconnect_mhz)

    dram = Dram(
        engine,
        size_bytes=params.dram_bytes,
        access_latency_ps=params.dram_latency_ps,
        bandwidth_gbps=params.dram_bandwidth_gbps,
    )
    iommu = Iommu(
        engine,
        page_size=params.page_size,
        hit_latency_ps=params.iotlb_hit_ps,
        speculative_latency_ps=params.iotlb_speculative_ps,
        walker_occupancy_ps=params.walker_occupancy_ps,
        speculative_region_opt=params.speculative_region_opt,
    )

    upi = Link(
        engine,
        "upi0",
        LinkKind.UPI,
        bandwidth_gbps=params.upi_bandwidth_gbps,
        latency_ps=params.upi_latency_ps,
    )
    pcie_links = [
        Link(
            engine,
            f"pcie{i}",
            LinkKind.PCIE,
            bandwidth_gbps=params.pcie_bandwidth_gbps,
            latency_ps=params.pcie_latency_ps,
        )
        for i in range(params.pcie_link_count)
    ]
    selector = ChannelSelector(upi, pcie_links)
    memory = MemorySystem(engine, iommu, dram, selector)
    shell = Shell(engine, memory, latency_ps=params.shell_latency_ps)

    issue_interval = (
        params.optimus_issue_interval_cycles
        if mode is PlatformMode.OPTIMUS
        else params.passthrough_issue_interval_cycles
    )
    sockets = []
    for accel_id in range(n_accelerators):
        socket = AfuSocket(
            engine,
            accel_id,
            clock=interconnect_clock,
            issue_interval_cycles=issue_interval,
            max_outstanding=max_outstanding,
            spec_probe=(lambda aid=accel_id: iommu.in_speculative_streak(aid)),
        )
        sockets.append(socket)

    monitor: Optional[HardwareMonitor] = None
    if mode is PlatformMode.OPTIMUS:
        monitor = HardwareMonitor(
            engine,
            shell,
            sockets,
            mux_radix=params.mux_tree_radix,
            mux_level_latency_ps=params.mux_level_latency_ps,
            auditor_latency_ps=params.auditor_latency_ps,
            interconnect_clock=interconnect_clock,
            mux_topology=mux_topology,
            root_cost_per_line_cycles=(
                64.0 / gbps_to_bytes_per_ps(params.shell_accept_gbps)
            ) / interconnect_clock.period_ps,
        )
        shell.configure(monitor, n_accelerators)
    else:
        socket = sockets[0]
        socket.connect(shell.passthrough_dma_sink)
        shell.configure(socket, 1)
        if params.fast_path:
            # Burst coalescing is only provably exact on the pass-through
            # datapath (sole DMA master, no multiplexer arbitration); under
            # OPTIMUS every burst splits into reference per-line packets.
            socket.dma.fastpath = FastPath(
                engine, memory, interconnect_clock, params.shell_latency_ps
            )

    # Every instrument the platform owns, behind the uniform protocol
    # (name / reset / summary) with hierarchical dotted names.
    metrics = MetricRegistry("platform")
    metrics.register(iommu.iotlb.stats)  # "iommu.iotlb"
    for link in [upi, *pcie_links]:
        metrics.register(link.meter_to_memory)  # e.g. "upi0.bw.to_mem"
        metrics.register(link.meter_from_memory)
    metrics.register(memory.read_meter)  # "mem.read" / "mem.write"
    metrics.register(memory.write_meter)
    for socket in sockets:
        metrics.register(socket.dma.read_meter)  # e.g. "afu0.read"
        metrics.register(socket.dma.write_meter)
        metrics.register(socket.dma.latency)  # e.g. "afu0.latency"

    platform = Platform(
        engine=engine,
        params=params,
        mode=mode,
        dram=dram,
        iommu=iommu,
        links=[upi, *pcie_links],
        selector=selector,
        memory=memory,
        shell=shell,
        sockets=sockets,
        monitor=monitor,
        metrics=metrics,
    )

    tracer = current_tracer()
    if tracer is not None and engine.trace is not None:
        engine.trace.set_process_name(
            f"platform{engine.trace.pid} ({mode.value})"
        )
        tracer.on_finalize(platform.trace_flush)
    return platform
