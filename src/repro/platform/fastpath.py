"""The simulator fast path: timing-preserving DMA burst coalescing.

A streaming accelerator that reads N contiguous cache lines issues, on the
reference path, N request packets — each one a chain of ~8 global
simulation events (issue throttle, shell hop, translation, link
serialization, DRAM access, return link, completion), each carrying
closures, futures, and per-component dispatch.  For large sweeps those
events dominate wall-clock time while carrying no information: every
per-line time is a pure function of state known when the burst arrives.

:class:`FastPath` exploits that.  A burst (one :class:`~repro.sim.packet.
Packet` with ``coalesced=True`` covering N lines) is *planned* by running
the identical event semantics on a **private local heap** — plain tuples,
no closures, no futures, no layered callbacks, and nothing touching the
global engine — and then *committed*: all shared-resource state (server
occupancy, channel-selector cursor, meters, counters) is advanced exactly
as the per-line events would have advanced it, and a single real event at
the last line's completion resolves the burst and reaps its window slots.

Equivalence is guaranteed by construction only under the governor's
preconditions; any burst that fails one is **split** back into the exact
per-line packets of the reference path (see
:meth:`repro.fpga.afu.DmaEngine._split_burst`), so declining is always
correct.  The preconditions:

* the engine is wired to the **pass-through** datapath (no multiplexer
  tree, a sole DMA master: nothing else can interleave with the planned
  reservations);
* the packet is a **read** burst of whole cache lines — posted writes keep
  per-line futures so the streaming pipeline's backlog stall drains at
  exactly the reference granularity;
* the DMA engine's queue is empty and every outstanding request is itself
  a committed burst line ("all virtual"): a real in-flight packet would
  have pending global events that must interleave with our reservations
  in arrival order;
* the burst falls within **one translated page**, that page is mapped
  readable, and its translation is a present IOTLB **tag hit**;
* ``speculative_region_opt`` is **off**: the §6.5 same-region pipeline
  makes per-line translation latency depend on the interleaving of future
  accesses, which a committed plan cannot know.  With the optimization
  off, translation latency is the time-invariant hit latency and the
  IOMMU's streak state is unobservable, so skipping its updates is exact.

Known (documented) approximations, none observable in full-run totals:

* meters and IOTLB hit counters for a committed burst are recorded at
  commit / burst completion rather than spread across per-line instants,
  so a measurement-window reset taken *while a burst is in flight*
  attributes those lines to a different window than the reference path
  would.  All shipped experiments reset instruments only while the
  platform is idle.
* read payloads are captured from the functional store at commit rather
  than at each line's DRAM instant — identical unless the sole master
  writes a location and re-reads it within one DRAM round trip, which no
  streaming accelerator does (reads and writes target disjoint buffers).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.interconnect.channel_selector import VirtualChannel
from repro.sim.clock import Clock
from repro.sim.engine import Engine, Future
from repro.sim.packet import (
    CACHE_LINE_BYTES,
    REQUEST_HEADER_BYTES,
    SMALL_PACKET_BYTES,
    Packet,
    PacketKind,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fpga.afu import DmaEngine
    from repro.interconnect.topology import MemorySystem

# Local event kinds, in no particular order (ties resolve by seq, exactly
# like the global engine's (time, seq) heap entries).
_EXIST_COMPLETE = 0  # a pre-existing virtual line completes (frees a slot)
_WAKEUP = 1  # the issue throttle re-arms
_SCHED_SELECT = 2  # shell hop done; translation latency starts
_SELECT = 3  # translation done; channel selection + request link
_AT_MEMORY = 4  # request reached memory; DRAM access starts
_DELIVERED = 5  # DRAM done; response link starts
_COMPLETE = 6  # response reached the accelerator


class FastPath:
    """Plans and commits coalesced read bursts on the pass-through path."""

    def __init__(
        self,
        engine: Engine,
        memory: "MemorySystem",
        clock: Clock,
        shell_latency_ps: int,
    ) -> None:
        self.engine = engine
        self.memory = memory
        self.iommu = memory.iommu
        self.selector = memory.selector
        self.dram = memory.dram
        self.clock = clock
        self.shell_latency_ps = shell_latency_ps
        # Visibility counters (read by benchmarks and the equivalence tests).
        self.committed_bursts = 0
        self.committed_lines = 0
        self.declined_bursts = 0

    # -- governor -------------------------------------------------------------

    def try_commit(
        self, dma: "DmaEngine", packet: Packet, channel: VirtualChannel
    ) -> Optional[Future]:
        """Commit ``packet`` as an analytic burst, or return ``None``.

        ``None`` means "take the per-line reference path"; nothing has been
        mutated in that case.
        """
        iommu = self.iommu
        if (
            packet.kind is not PacketKind.DMA_READ_REQ
            or iommu.speculative_region_opt
            or packet.size <= 0
            or packet.size % CACHE_LINE_BYTES
            or dma.outstanding != len(dma._virtual_completions)
        ):
            self.declined_bursts += 1
            return None
        address = packet.address
        page_mask = iommu.page_table.page_size - 1
        if (address & ~page_mask) != ((address + packet.size - 1) & ~page_mask):
            self.declined_bursts += 1
            return None  # page-crossing burst: split at the boundary instead
        entry = iommu.page_table.lookup(address)
        if entry is None or not entry.readable:
            self.declined_bursts += 1
            return None  # would fault: the reference path must observe it
        vpn = address >> iommu.iotlb.page_shift
        if iommu.iotlb._tags[vpn & iommu.iotlb.index_mask] != vpn:
            self.declined_bursts += 1
            return None  # IOTLB miss: the walk serializes on real state
        hpa_base = (entry.frame << iommu.page_table.page_shift) | (address & page_mask)
        plan = self._plan(dma, packet.size // CACHE_LINE_BYTES, channel)
        return self._commit(dma, packet, hpa_base, plan)

    # -- plan: the reference event semantics on a private heap ---------------

    def _plan(self, dma: "DmaEngine", lines: int, channel: VirtualChannel) -> dict:
        """Replay the per-line event chain locally; mutate nothing shared.

        Events are ``(time, seq, kind, line)`` tuples on a local heap; seq
        is assigned at scheduling time, so same-instant ordering matches
        the global engine's tie-breaking exactly.
        """
        now = self.engine.now
        interval_ps = self.clock.cycles(dma.issue_interval_cycles)
        shell_ps = self.shell_latency_ps
        hit_ps = self.iommu.hit_latency_ps
        dram_server = self.dram._server
        dram_svc = dram_server.service_time_ps(CACHE_LINE_BYTES)
        dram_lat = dram_server.latency_ps
        links = self.selector.all_links
        req_svc = [link.to_memory.service_time_ps(SMALL_PACKET_BYTES) for link in links]
        resp_svc = [
            link.from_memory.service_time_ps(REQUEST_HEADER_BYTES + CACHE_LINE_BYTES)
            for link in links
        ]
        fixed = self.selector.fixed_link(channel)
        fixed_index = links.index(fixed) if fixed is not None else -1

        # Shadowed shared state.
        to_free = [link.to_memory._next_free_ps for link in links]
        from_free = [link.from_memory._next_free_ps for link in links]
        dram_free = dram_server._next_free_ps
        cursor = self.selector._rr_cursor
        next_issue = dma._next_issue_ps
        in_flight = dma.outstanding
        max_outstanding = dma.max_outstanding

        issue_ps = [0] * lines
        complete_ps = [0] * lines
        link_choice = [0] * lines
        req_arrival: List[Tuple[int, int]] = []  # per to_memory reservation
        dram_arrival: List[int] = []
        resp_arrival: List[Tuple[int, int]] = []  # per from_memory reservation

        heap: List[Tuple[int, int, int, int]] = []
        seq = 0
        # Pre-existing virtual lines complete as if they were real events
        # scheduled long ago: they get the smallest seq numbers.
        for when in sorted(dma._virtual_completions):
            heap.append((when, seq, _EXIST_COMPLETE, -1))
            seq += 1
        heapq.heapify(heap)

        unissued = 0  # next line index to issue
        wakeup_pending = False

        def try_issue(at: int) -> None:
            # The exact logic of DmaEngine._try_issue for queued lines.
            nonlocal unissued, in_flight, next_issue, wakeup_pending, seq
            while unissued < lines and in_flight < max_outstanding:
                if at < next_issue:
                    if not wakeup_pending:
                        wakeup_pending = True
                        heapq.heappush(
                            heap, (max(next_issue, at), seq, _WAKEUP, -1)
                        )
                        seq += 1
                    return
                line = unissued
                unissued += 1
                in_flight += 1
                issue_ps[line] = at
                next_issue = at + interval_ps
                heapq.heappush(heap, (at + shell_ps, seq, _SCHED_SELECT, line))
                seq += 1

        try_issue(now)
        done = 0
        while done < lines:
            at, _order, kind, line = heapq.heappop(heap)
            if kind == _EXIST_COMPLETE:
                in_flight -= 1
                try_issue(at)
            elif kind == _WAKEUP:
                wakeup_pending = False
                try_issue(at)
            elif kind == _SCHED_SELECT:
                heapq.heappush(heap, (at + hit_ps, seq, _SELECT, line))
                seq += 1
            elif kind == _SELECT:
                if fixed_index >= 0:
                    index = fixed_index
                else:
                    backlogs = [
                        max(0, to_free[i] - at) + max(0, from_free[i] - at)
                        for i in range(len(links))
                    ]
                    index = self.selector.auto_pick(backlogs, cursor)
                    cursor += 1
                link_choice[line] = index
                req_arrival.append((index, at))
                start = max(at, to_free[index])
                to_free[index] = start + req_svc[index]
                at_memory = to_free[index] + links[index].to_memory.latency_ps
                heapq.heappush(heap, (at_memory, seq, _AT_MEMORY, line))
                seq += 1
            elif kind == _AT_MEMORY:
                dram_arrival.append(at)
                start = max(at, dram_free)
                dram_free = start + dram_svc
                heapq.heappush(heap, (dram_free + dram_lat, seq, _DELIVERED, line))
                seq += 1
            elif kind == _DELIVERED:
                index = link_choice[line]
                resp_arrival.append((index, at))
                start = max(at, from_free[index])
                from_free[index] = start + resp_svc[index]
                complete = from_free[index] + links[index].from_memory.latency_ps
                heapq.heappush(heap, (complete, seq, _COMPLETE, line))
                seq += 1
            else:  # _COMPLETE
                complete_ps[line] = at
                in_flight -= 1
                done += 1
                try_issue(at)
        return {
            "issue_ps": issue_ps,
            "complete_ps": complete_ps,
            "cursor": cursor,
            "next_issue": next_issue,
            "req_arrival": req_arrival,
            "dram_arrival": dram_arrival,
            "resp_arrival": resp_arrival,
        }

    # -- commit ---------------------------------------------------------------

    def _commit(
        self, dma: "DmaEngine", packet: Packet, hpa_base: int, plan: dict
    ) -> Future:
        issue_ps: List[int] = plan["issue_ps"]
        complete_ps: List[int] = plan["complete_ps"]
        lines = len(issue_ps)
        links = self.selector.all_links

        # Replay the reservations through the real servers in the exact
        # per-server arrival order the plan produced — reserve() applies
        # submit()'s shaping math, so the chains land identically — and
        # advance everything else the per-line events would have touched.
        self.selector._rr_cursor = plan["cursor"]
        for index, at in plan["req_arrival"]:
            links[index].reserve_to_memory(SMALL_PACKET_BYTES, at)
        dram_server = self.dram._server
        for at in plan["dram_arrival"]:
            dram_server.reserve(CACHE_LINE_BYTES, at)
        for index, at in plan["resp_arrival"]:
            links[index].reserve_from_memory(
                REQUEST_HEADER_BYTES + CACHE_LINE_BYTES, at
            )
        self.iommu.iotlb.stats.hits += lines
        self.dram.reads += lines

        # Functional data movement, captured in commit order (exact for a
        # sole master whose in-flight reads and writes are disjoint).
        data = self.dram.store.read(hpa_base, lines * CACHE_LINE_BYTES)

        dma._outstanding += lines
        dma._next_issue_ps = plan["next_issue"]
        for when in complete_ps:
            heapq.heappush(dma._virtual_completions, when)
        packet.issued_at_ps = issue_ps[0]
        future = self.engine.future()
        self.committed_bursts += 1
        self.committed_lines += lines

        def finish() -> None:
            dma._reap_virtual()
            record = dma.latency.record
            for line in range(lines):
                record(complete_ps[line] - issue_ps[line])
            dma.read_meter.record_burst(lines * CACHE_LINE_BYTES, lines)
            self.memory.read_meter.record_burst(lines * CACHE_LINE_BYTES, lines)
            future.set_result(data)
            dma._try_issue()

        self.engine.call_at(max(complete_ps), finish)
        return future
