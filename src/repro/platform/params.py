"""Calibrated platform parameters — the single source of truth.

Every latency, bandwidth, and sizing constant of the simulated Skylake
HARP platform lives here, with its provenance:

* values the paper states directly (mux-tree level latency, IOTLB geometry,
  slice sizes, time slice) are used verbatim;
* values the paper implies (per-link latencies back-solved from Fig. 4a's
  124.2%/111.1% LinkedList overheads and the ~100 ns mux-tree adder) are
  derived in comments;
* remaining values (DRAM latency, link bandwidths) are calibrated so that
  headline measurements (pass-through MemBench ~14 GB/s, OPTIMUS MemBench
  ~90% of that) land where the paper's Figs. 4b and 6 put them.

Experiments construct a :class:`PlatformParams`, tweak fields (page size,
channel policy, conflict mitigation), and hand it to
:func:`repro.platform.builder.build_platform`.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mem.address import (
    DEFAULT_SLICE_BYTES,
    DEFAULT_SLICE_GAP_BYTES,
    GB,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.sim.clock import ms, ns, us

#: Process-wide default for :attr:`PlatformParams.fast_path`, overridable
#: via the ``REPRO_FAST_PATH`` environment variable (``0``/``false``/``off``
#: select the reference path) or :func:`set_default_fast_path`.
_FAST_PATH_DEFAULT = os.environ.get("REPRO_FAST_PATH", "1").lower() not in (
    "0",
    "false",
    "off",
)


def set_default_fast_path(enabled: bool) -> None:
    """Set the default ``fast_path`` for subsequently built params."""
    global _FAST_PATH_DEFAULT
    _FAST_PATH_DEFAULT = bool(enabled)


def default_fast_path() -> bool:
    return _FAST_PATH_DEFAULT


@dataclass
class PlatformParams:
    """All tunables of the simulated platform, with HARP-calibrated defaults."""

    # ---- clocks ------------------------------------------------------------
    interconnect_mhz: float = 400.0  # Arria 10 shell clock (§6.1)
    cpu_ghz: float = 2.8  # Xeon (§6.1)

    # ---- system memory -------------------------------------------------------
    dram_bytes: int = 188 * GB  # testbed DRAM (§6.1)
    dram_latency_ps: int = ns(60)
    dram_bandwidth_gbps: float = 64.0

    # ---- links ------------------------------------------------------------------
    # One UPI + two PCIe 3.0 links (§6.1).  Latencies are back-solved from
    # Fig. 4a: pass-through LinkedList ~410 ns (UPI) / ~905 ns (PCIe) and
    # OPTIMUS adds ~100 ns of mux tree, giving the paper's 124.2% / 111.1%.
    # Raw wire rates; 16-byte headers on 64-byte payloads make the usable
    # read goodput ~(64/80) of these, i.e. ~13.9 GB/s aggregate — where a
    # pass-through MemBench lands (its OPTIMUS counterpart is then capped
    # at 12.8 GB/s by the one-request-per-two-cycles issue limit, ~90%).
    upi_bandwidth_gbps: float = 8.6
    upi_latency_ps: int = ns(160)
    pcie_bandwidth_gbps: float = 4.4
    pcie_latency_ps: int = ns(405)
    pcie_link_count: int = 2

    # ---- IOMMU ------------------------------------------------------------------
    page_size: int = PAGE_SIZE_2M  # 2 MB huge pages are the default (§5)
    iotlb_hit_ps: int = ns(2.5)  # one 400 MHz cycle
    iotlb_speculative_ps: int = ns(1)
    walker_occupancy_ps: int = ns(20)
    speculative_region_opt: bool = True  # §6.5's same-region pipeline effect

    # ---- hardware monitor ----------------------------------------------------------
    mux_tree_radix: int = 2  # three-level binary tree (§5)
    mux_level_latency_ps: int = ns(33)  # "each added layer ... ~33 ns" (§6.3)
    # "the accelerator can only transmit a memory request packet every two
    # cycles" under OPTIMUS (§6.3); pass-through issues every cycle.
    optimus_issue_interval_cycles: int = 2
    passthrough_issue_interval_cycles: int = 1
    auditor_latency_ps: int = ns(2.5)  # single-cycle GVA<->IOVA offset add (§4.1)
    shell_latency_ps: int = ns(5)
    # The shell accepts requests from the tree's root only as fast as the
    # interconnect can carry them; this makes the root's round-robin the
    # operative bandwidth allocator (§6.7's fairness guarantees).
    shell_accept_gbps: float = 13.5

    # ---- page table slicing -----------------------------------------------------------
    slice_bytes: int = DEFAULT_SLICE_BYTES  # 64 GB per virtual accelerator (§5)
    slice_gap_bytes: int = DEFAULT_SLICE_GAP_BYTES  # 128 MB IOTLB mitigation (§5)
    conflict_mitigation: bool = True

    # ---- MMIO / control plane -----------------------------------------------------------
    # Host-initiated MMIO: an uncached PCIe access takes ~0.3 us natively;
    # trap-and-emulate through the hypervisor costs ~1.2 us more (§2.1's
    # "control plane operations become more expensive due to hypervisor
    # trap-and-emulate" — this ratio produces Fig. 1's virtualized gap).
    mmio_native_ps: int = ns(300)
    mmio_trap_ps: int = ns(1200)

    # ---- temporal multiplexing -------------------------------------------------------------
    time_slice_ps: int = ms(10)  # default 10 ms slice (§5)
    preemption_timeout_ps: int = ms(100)  # forcible reset after this (§4.2)
    preempt_protocol_ps: int = us(30)  # drain + control-register handshake
    resume_protocol_ps: int = us(12)  # resume command + status poll
    state_save_bandwidth_gbps: float = 4.5  # accelerator state (de)serialization

    # ---- spatial multiplexing ---------------------------------------------------------------
    max_physical_accelerators: int = 8  # synthesis limit at 400 MHz (§5)

    # ---- simulator fast path ----------------------------------------------------------------
    # Request granularity of every accelerator; the CCI-P interface moves
    # whole cache lines, so all byte math derives from this one knob.
    cache_line: int = 64
    # Timing-preserving burst coalescing for streaming DMA (see DESIGN.md
    # "Performance architecture").  Timing-equivalent by construction and
    # verified by tests/test_fastpath_equivalence.py; turn off for the
    # per-line reference path.
    fast_path: bool = field(default_factory=default_fast_path)

    def __post_init__(self) -> None:
        if self.page_size not in (PAGE_SIZE_4K, PAGE_SIZE_2M):
            raise ConfigurationError("page_size must be 4 KB or 2 MB")
        if self.pcie_link_count < 1:
            raise ConfigurationError("need at least one PCIe link")
        if self.mux_tree_radix < 2:
            raise ConfigurationError("mux tree radix must be >= 2")
        if self.slice_bytes <= 0 or self.slice_gap_bytes < 0:
            raise ConfigurationError("invalid slice geometry")
        if self.cache_line <= 0 or self.cache_line & (self.cache_line - 1):
            raise ConfigurationError("cache_line must be a positive power of two")

    # -- convenience ------------------------------------------------------------

    @property
    def interconnect_period_ps(self) -> int:
        return round(1e6 / self.interconnect_mhz)

    @property
    def slice_stride_bytes(self) -> int:
        """Distance between consecutive slice bases in the IOVA space."""
        gap = self.slice_gap_bytes if self.conflict_mitigation else 0
        return self.slice_bytes + gap

    def copy(self, **overrides: object) -> "PlatformParams":
        """A modified copy — experiments never mutate shared params."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


#: Immutable default instance for casual use; experiments call ``.copy()``.
DEFAULT_PARAMS = PlatformParams()
