"""repro.scenario — constrained-random differential fuzzing (ISSUE 9).

The test suite pins hand-picked configurations; this package generates
them.  A seeded :class:`ScenarioGenerator` draws typed scenarios from the
discrete config space in :mod:`repro.scenario.space` (guest mixes,
IOTLB-conflicting address layouts, placement policies, fault-plan
presets, serve traces, capacity regimes), the differential oracle
(:mod:`repro.scenario.oracle`) runs each one two ways that must agree to
the byte — fast path vs reference, serial vs sharded, analytic vs DES —
plus the property checks in :mod:`repro.scenario.properties`, and
failing scenarios are delta-debugged down to minimal canonical-JSON
reproducers (:mod:`repro.scenario.shrink`).  ``python -m repro fuzz``
is the CLI; ``--replay file.json`` re-runs a shrunk reproducer.
"""

from repro.scenario.generator import ScenarioGenerator, generate
from repro.scenario.oracle import ORACLES, OracleResult, run_scenario
from repro.scenario.runner import FuzzConfig, FuzzReport, replay, run_fuzz
from repro.scenario.shrink import (
    ShrinkResult,
    load_reproducer,
    shrink,
    write_reproducer,
)
from repro.scenario.space import (
    SCENARIO_KINDS,
    Choice,
    Scenario,
    ScenarioKind,
    ScenarioSpaceError,
    Subset,
    kind_names,
    register_kind,
    resolve_kinds,
)

__all__ = [
    "Choice",
    "FuzzConfig",
    "FuzzReport",
    "ORACLES",
    "OracleResult",
    "SCENARIO_KINDS",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioKind",
    "ScenarioSpaceError",
    "ShrinkResult",
    "Subset",
    "generate",
    "kind_names",
    "load_reproducer",
    "register_kind",
    "replay",
    "resolve_kinds",
    "run_fuzz",
    "run_scenario",
    "shrink",
    "write_reproducer",
]
