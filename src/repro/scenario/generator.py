"""Seeded scenario generation: (seed, index) -> one Scenario, forever.

Each scenario is drawn from its own ``np.random.RandomState([seed,
index])`` stream, so scenario *i* is a pure function of the pair — not of
how many scenarios were drawn before it, not of which kinds were enabled
on some other run.  That per-index independence is what makes a fuzz run
resumable and a failing index quotable: ``--seed 7`` scenario 12 is the
same scenario on every machine, in every subset run that includes it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.scenario.space import SCENARIO_KINDS, Scenario, resolve_kinds


class ScenarioGenerator:
    """Draws scenarios from the registered kinds, round-robin-free."""

    def __init__(self, seed: int, kinds: Optional[Sequence[str]] = None) -> None:
        self.seed = int(seed)
        self.kinds: List[str] = (
            list(kinds) if kinds is not None else sorted(SCENARIO_KINDS)
        )
        for name in self.kinds:
            if name not in SCENARIO_KINDS:
                raise KeyError(name)

    def draw(self, index: int) -> Scenario:
        """Scenario ``index`` of this seed — stable across runs."""
        rng = np.random.RandomState([self.seed, int(index)])
        kind = SCENARIO_KINDS[self.kinds[int(rng.randint(len(self.kinds)))]]
        return kind.draw(rng)

    def scenarios(self, count: int, start: int = 0) -> Iterator[Scenario]:
        for index in range(start, start + count):
            yield self.draw(index)


def generate(seed: int, count: int,
             kinds: Optional[str] = None) -> List[Scenario]:
    """Convenience wrapper: ``kinds`` is the CLI's comma-separated spec."""
    generator = ScenarioGenerator(seed, resolve_kinds(kinds))
    return list(generator.scenarios(count))
