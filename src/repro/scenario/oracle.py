"""The differential oracle: run one scenario, two ways, and compare.

Each scenario kind maps to a pair of execution arms that the codebase
promises are *byte-identical*:

======== ============================== ==============================
kind     arm A                          arm B
======== ============================== ==============================
burst    fast-path burst governor       reference per-line packets
platform fast-path chaos stack          timing-equivalent reference
fleet    serial serving loop            sharded executor (2 workers)
serve    serial gateway                 sharded gateway (2 workers)
capacity analytic closed form (exact)   fleet DES (same config)
======== ============================== ==============================

The comparison is over compact canonical JSON of the observables
(:func:`repro.envelope.canonical_json`), so "identical" means identical
to the byte — the same bar the CI envelope jobs hold the CLIs to.
Property checks (:mod:`repro.scenario.properties`) run on top, catching
the failure mode differential testing cannot: both arms agreeing on a
wrong answer.  Capacity scenarios drawn in the fluid regime (load above
the oversubscription ceiling) get property checks only — there the
analytic engine is an approximation by design, so byte-equality against
the DES is not a promise to hold it to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.envelope import canonical_json, to_jsonable
from repro.faults.plan import FaultPlan, resolve_plan
from repro.mem import MB
from repro.scenario import properties
from repro.scenario.space import Scenario
from repro.sim.clock import ms, us


@dataclass
class OracleResult:
    """The verdict on one scenario."""

    scenario: Scenario
    failures: List[str] = field(default_factory=list)
    #: Canonical-JSON digests (or payloads) per arm, for the envelope.
    observables: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "digest": self.scenario.digest(),
            "ok": self.ok,
            "failures": list(self.failures),
            "observables": to_jsonable(self.observables),
        }


def _plan_for(name: str) -> FaultPlan:
    if name == "none":
        return FaultPlan.of([], seed=0, name="none")
    return resolve_plan(name)


def _diff(failures: List[str], label: str, a: object, b: object) -> None:
    text_a, text_b = canonical_json(a), canonical_json(b)
    if text_a != text_b:
        # Point at the first diverging key so a human (or the shrinker
        # log) sees *where* without wading through two full payloads.
        detail = ""
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                if canonical_json(a.get(key)) != canonical_json(b.get(key)):
                    detail = f" (first diverging key: {key!r})"
                    break
        failures.append(f"differential divergence in {label}{detail}")


# -- platform: fast path vs reference simulator ----------------------------------


def _platform_report(scenario: Scenario, fast_path: bool) -> Dict[str, object]:
    from repro.faults.single import SinglePlatformChaos
    from repro.platform import PlatformParams

    f = scenario.fields
    params = PlatformParams(
        fast_path=fast_path,
        page_size=int(f["page_size"]),
        conflict_mitigation=bool(f["conflict_mitigation"]),
        speculative_region_opt=bool(f["speculative_region_opt"]),
        time_slice_ps=us(int(f["time_slice_us"])),
    )
    working_set = int(f["working_set_mb"]) * MB
    chaos = SinglePlatformChaos(
        _plan_for(str(f["fault_plan"])),
        params=params,
        n_accelerators=2,
        working_set=working_set,
        victim="LL",
    )
    # The scenario's accelerator mix rides alongside the chaos victim:
    # extra tenants spread across both physical slots, so the mux tree,
    # IOTLB, and auditors see contention in every draw.
    for index, name in enumerate(f["accels"]):
        chaos.stack.launch(
            str(name),
            physical_index=(index + 1) % chaos.n_accelerators,
            working_set=working_set,
        )
    return chaos.run(window_ps=ms(int(f["window_ms"])))


def _run_platform(scenario: Scenario) -> OracleResult:
    result = OracleResult(scenario)
    fast = _platform_report(scenario, fast_path=True)
    reference = _platform_report(scenario, fast_path=False)
    _diff(result.failures, "fast vs reference chaos report", fast, reference)
    window_ps = ms(int(scenario.fields["window_ms"]))
    plan = _plan_for(str(scenario.fields["fault_plan"]))
    result.failures.extend(properties.check_platform(
        fast, plan, window_ps,
        time_slice_ps=us(int(scenario.fields["time_slice_us"])),
    ))
    result.observables = {"report": fast}
    return result


# -- burst: the fast-path governor vs reference per-line packets -----------------
#
# The analytic burst path only exists on the pass-through datapath (under
# OPTIMUS every burst splits through the multiplexer into reference
# packets — see builder.py), so this kind is where a broken fast-path
# governor actually diverges: commit a burst with wrong completion times
# and finish_ps / latency samples / meters drift off the reference run.


def _burst_job(scenario: Scenario):
    import hashlib

    from repro.accel.base import AcceleratorProfile
    from repro.accel.streaming import StreamingJob
    from repro.fpga.resources import ResourceFootprint

    f = scenario.fields

    class BurstReader(StreamingJob):
        """Pure streaming reader; demand set by the scenario's knobs."""

        profile = AcceleratorProfile(
            name="RD0",
            description="scenario-fuzz streaming reader",
            loc_verilog=0,
            freq_mhz=400.0,
            footprint=ResourceFootprint(alm_pct=1.0, bram_pct=1.0),
            max_outstanding=64,
        )
        output_ratio = 0.0

        def __init__(self) -> None:
            super().__init__(functional=True)
            self.bytes_per_cycle = float(f["bytes_per_cycle"])
            self.tile_lines = int(f["tile_lines"])
            self.prefetch_tiles = int(f["prefetch_tiles"])
            self.digest = hashlib.sha256()

        def transform(self, data: bytes, offset: int) -> bytes:
            self.digest.update(data)
            return data

    return BurstReader()


def _burst_arm(scenario: Scenario, fast_path: bool) -> Dict[str, object]:
    import numpy as np

    from repro.accel.streaming import REG_DST, REG_LEN, REG_SRC
    from repro.guest import NativeAccelerator
    from repro.hv import PassthroughHypervisor
    from repro.mem import MB as MB_
    from repro.platform import PlatformMode, PlatformParams, build_platform

    f = scenario.fields
    params = PlatformParams(
        fast_path=fast_path,
        page_size=int(f["page_size"]),
        speculative_region_opt=bool(f["speculative_region_opt"]),
    )
    platform = build_platform(params, mode=PlatformMode.PASSTHROUGH)
    hypervisor = PassthroughHypervisor(platform)
    handle = NativeAccelerator(hypervisor, window_bytes=32 * MB_)
    data = np.random.RandomState(int(f["pattern_seed"])).bytes(
        int(f["data_kb"]) * 1024
    )
    src = handle.alloc_buffer(len(data))
    handle.write_buffer(src, data)
    dst = handle.alloc_buffer(64 * 1024)
    job = _burst_job(scenario)
    job.regs.update({REG_SRC: src, REG_DST: dst, REG_LEN: len(data)})
    done = hypervisor.start_job(job)
    platform.engine.run_until(done, limit_ps=ms(50))

    dma = platform.sockets[0].dma
    stats = platform.iommu.iotlb.stats
    observables: Dict[str, object] = {
        "finish_ps": platform.engine.now,
        "done": job.done,
        "digest": job.digest.hexdigest(),
        "bytes_in": job.bytes_in,
        "latency_samples": sorted(dma.latency.samples_ps),
        "afu_read": [dma.read_meter.bytes_total, dma.read_meter.packets_total],
        "mem_read": [
            platform.memory.read_meter.bytes_total,
            platform.memory.read_meter.packets_total,
        ],
        "iotlb": [stats.hits, stats.misses, stats.evictions],
        "dram": [platform.dram.reads, platform.dram.writes],
        "links": [
            [
                link.meter_to_memory.bytes_total,
                link.meter_to_memory.packets_total,
                link.meter_from_memory.bytes_total,
                link.meter_from_memory.packets_total,
            ]
            for link in platform.links
        ],
        "faults": dict(platform.iommu.faults),
        "dropped": dma.dropped,
    }
    fastpath = dma.fastpath
    governor = {
        "attached": fastpath is not None,
        "committed_bursts": getattr(fastpath, "committed_bursts", 0),
        "committed_lines": getattr(fastpath, "committed_lines", 0),
        "declined_bursts": getattr(fastpath, "declined_bursts", 0),
    }
    return {"observables": observables, "governor": governor, "data": data}


def _run_burst(scenario: Scenario) -> OracleResult:
    import hashlib

    result = OracleResult(scenario)
    fast = _burst_arm(scenario, fast_path=True)
    reference = _burst_arm(scenario, fast_path=False)
    _diff(
        result.failures,
        "fast-path vs reference burst metrics",
        fast["observables"],
        reference["observables"],
    )
    result.failures.extend(properties.check_burst(
        fast["observables"],
        fast["governor"],
        expected_digest=hashlib.sha256(fast["data"]).hexdigest(),
        speculative_region_opt=bool(scenario.fields["speculative_region_opt"]),
    ))
    result.observables = {
        "metrics": fast["observables"],
        "governor": fast["governor"],
    }
    return result


# -- fleet: serial vs sharded serving loop ---------------------------------------


def _fleet_arm(scenario: Scenario, sharded: bool) -> Dict[str, object]:
    from repro.fleet import (
        FleetCluster,
        FleetService,
        TrafficGenerator,
        TrafficProfile,
        make_policy,
    )

    f = scenario.fields
    nodes = int(f["nodes"])
    cluster = None
    try:
        if sharded:
            from repro.parallel import ShardedFleetCluster, ShardedFleetService

            cluster = ShardedFleetCluster.build(
                nodes, shards=2, lookahead=int(f.get("lookahead", 0))
            )
            service_cls = ShardedFleetService
        else:
            cluster = FleetCluster.build(nodes)
            service_cls = FleetService
        service = service_cls(cluster, make_policy(str(f["policy"])))
        if f["fault_plan"] != "none":
            service.install_faults(_plan_for(str(f["fault_plan"])))
        standby = int(f["autoscale_standby"])
        if standby:
            from repro.fleet import AutoscaleConfig

            names = tuple(f"node{i}" for i in range(nodes - standby, nodes))
            service.install_autoscaler(AutoscaleConfig(standby_nodes=names))
        migrations: List[Tuple[str, Optional[str]]] = []
        if f["drain_node"] != "none":
            def record_op(verb: str, report, now_ps: int) -> None:
                migrations.extend(
                    (outcome.tenant, outcome.checkpoint_digest)
                    for outcome in report.migrated
                )

            service.op_observer = record_op
            service.schedule_op(
                ms(int(f["drain_at_ms"])), "drain", node_name=str(f["drain_node"])
            )
        generator = TrafficGenerator(
            TrafficProfile(load=float(f["load"])),
            fleet_slots=cluster.total_slots,
            seed=int(f["traffic_seed"]),
        )
        result = service.serve(generator.generate(int(f["requests"])))
        observables: Dict[str, object] = {
            "summary": to_jsonable(result.summary()),
            "outcomes": result.outcome_counts(),
            "availability": result.availability(),
            "nodes": to_jsonable(cluster.simulated_report()),
            "migrations": [list(entry) for entry in migrations],
        }
        if service.autoscaler is not None:
            observables["autoscaler"] = to_jsonable(service.autoscaler.summary())
        return observables
    finally:
        if sharded and cluster is not None:
            cluster.close()


def _run_fleet(scenario: Scenario) -> OracleResult:
    result = OracleResult(scenario)
    serial = _fleet_arm(scenario, sharded=False)
    sharded = _fleet_arm(scenario, sharded=True)
    _diff(result.failures, "serial vs sharded fleet result", serial, sharded)
    result.failures.extend(
        properties.check_fleet(serial, int(scenario.fields["requests"]))
    )
    result.failures.extend(
        properties.check_migrations(serial["migrations"], sharded["migrations"])
    )
    result.observables = serial
    return result


# -- serve: serial vs sharded gateway --------------------------------------------


def _serve_arm(scenario: Scenario, sharded: bool) -> Dict[str, object]:
    from repro.fleet import AdmissionConfig, FleetCluster, make_policy
    from repro.serve import (
        Gateway,
        GatewayFleetService,
        GatewayShardedFleetService,
        ServeProfile,
        SloBudgetPolicy,
        synthesize,
    )

    f = scenario.fields
    nodes = int(f["nodes"])
    cluster = None
    try:
        if sharded:
            from repro.parallel import ShardedFleetCluster

            cluster = ShardedFleetCluster.build(nodes, shards=2)
            service_cls = GatewayShardedFleetService
        else:
            cluster = FleetCluster.build(nodes)
            service_cls = GatewayFleetService
        trace = synthesize(
            ServeProfile(
                load=float(f["load"]),
                followup_prob=float(f["followup"]),
                diurnal_amplitude=float(f["diurnal"]),
                burst_prob=float(f["burst"]),
            ),
            sessions=int(f["sessions"]),
            fleet_slots=cluster.total_slots,
            seed=int(f["trace_seed"]),
        )
        admission_policy = (
            SloBudgetPolicy() if f["admission"] == "slo-budget" else None
        )
        service = service_cls(
            cluster,
            make_policy("best-fit"),
            admission=AdmissionConfig(),
            admission_policy=admission_policy,
        )
        return Gateway(service, trace).run().to_dict()
    finally:
        if sharded and cluster is not None:
            cluster.close()


def _run_serve(scenario: Scenario) -> OracleResult:
    result = OracleResult(scenario)
    serial = _serve_arm(scenario, sharded=False)
    sharded = _serve_arm(scenario, sharded=True)
    _diff(result.failures, "serial vs sharded gateway result", serial, sharded)
    result.failures.extend(properties.check_serve(serial))
    result.observables = serial
    return result


# -- capacity: analytic closed form vs fleet DES ---------------------------------

#: The subset of the capacity envelope the exact engine promises to
#: reproduce bit for bit (tests/test_capacity.py::TestExactRegime).
_EXACT_KEYS = ("requests", "placements", "rejections", "latency_ps", "span_ps")


def _run_capacity(scenario: Scenario) -> OracleResult:
    from repro.analytic import CapacityConfig, run_capacity

    result = OracleResult(scenario)
    f = scenario.fields
    config = CapacityConfig(
        tenants=int(f["tenants"]),
        nodes=int(f["nodes"]),
        load=float(f["load"]),
        seed=int(f["seed"]),
        mean_session_ps=ms(int(f["mean_session_ms"])),
        bootstrap=0,
    )
    analytic = run_capacity("analytic", config, goodput=False)
    if analytic["engine"] == "exact":
        des = run_capacity("optimus", config, goodput=False)
        for key in _EXACT_KEYS:
            _diff(
                result.failures,
                f"analytic vs DES capacity [{key}]",
                {key: analytic[key]},
                {key: des[key]},
            )
    result.failures.extend(properties.check_capacity(analytic))
    result.observables = {"analytic": analytic}
    return result


# -- dispatch --------------------------------------------------------------------

ORACLES: Dict[str, Callable[[Scenario], OracleResult]] = {
    "burst": _run_burst,
    "platform": _run_platform,
    "fleet": _run_fleet,
    "serve": _run_serve,
    "capacity": _run_capacity,
}


def run_scenario(scenario: Scenario) -> OracleResult:
    """Run one scenario through its kind's differential arms + properties."""
    scenario.spec().validate(scenario.fields)
    return ORACLES[scenario.kind](scenario)
